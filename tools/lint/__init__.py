"""``repro-lint``: AST-based invariant checker for the simulation stack.

Nine PRs of growth accreted load-bearing *conventions* that runtime tests can
only catch after a wrong number ships: explicit ``numpy.random.Generator``
threading (the bit-identical-at-any-pool-size guarantee), zero-intensity
planes drawing **no** randomness (loss p=0 / churn rate 0 stay bit-identical
to the plane-off paths), signature-compatible ``_disseminate``/
``_disseminate_batch`` hooks (the dispatcher gates ``latency=``/``churn=`` on
the hook's signature, so drift silently disables a plane), and frozen
picklable sampler dataclasses (models cross ``utils.parallel`` pools).  This
package encodes each of those contracts as a static rule over the stdlib
``ast`` module — no new runtime dependencies — so violations fail lint, not
production numbers.

Run it from the repository root::

    python -m tools.lint src benchmarks

Rules (see ``docs/ARCHITECTURE.md`` § "Static invariants" for the runtime
contract each protects):

========  =============================================================
 RL001    no global-RNG calls (``np.random.*`` module functions,
          stdlib ``random``, unseeded/time-seeded ``default_rng()``)
 RL002    protocol hook signatures accept the dispatcher's gated
          ``network``/``churn``/``latency`` keywords (or opt out)
 RL003    latency/churn/failure models are ``@dataclass(frozen=True)``
          with no closure/lambda/Generator fields (pool-picklable)
 RL004    functions under a ``# repro: zero-draw(<name>)`` contract only
          touch the Generator behind a guard on ``<name>``
 RL005    no wall-clock reads (``time.time``, ``datetime.now``, ...)
 RL006    experiment-registry hygiene: every experiment module registers
          exactly once and ``with_scale`` never widens budgets
========  =============================================================

Suppress a single finding with an inline pragma on the offending line::

    rng = np.random.rand(4)  # repro-lint: disable=RL001
"""

from tools.lint.engine import (
    FileContext,
    Violation,
    iter_python_files,
    lint_paths,
    load_file_context,
)
from tools.lint.rules import ALL_RULES, Rule

__all__ = [
    "ALL_RULES",
    "FileContext",
    "Rule",
    "Violation",
    "iter_python_files",
    "lint_paths",
    "load_file_context",
]

"""Core machinery of ``repro-lint``: file loading, pragmas, rule driving.

The engine parses every target file exactly once into a :class:`FileContext`
(AST + raw lines + suppression pragmas + ``# repro: zero-draw`` contract
markers), hands each context to every rule's per-file pass, then runs each
rule's project-level pass over the full file set (cross-file rules like the
registry-hygiene check need to see the registry and the experiment modules
together).  Violations landing on a line carrying a matching
``# repro-lint: disable=RLxxx`` pragma are dropped before reporting.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator, Sequence

__all__ = [
    "FileContext",
    "Rule",
    "Violation",
    "ZeroDrawMarker",
    "iter_python_files",
    "lint_paths",
    "load_file_context",
]

#: ``# repro-lint: disable=RL001`` or ``disable=RL001,RL003`` (inline pragma).
_PRAGMA_RE = re.compile(r"#\s*repro-lint:\s*disable=([A-Z]{2}\d{3}(?:\s*,\s*[A-Z]{2}\d{3})*)")

#: ``# repro: zero-draw`` or ``# repro: zero-draw(<name>)`` contract marker.
_ZERO_DRAW_RE = re.compile(r"#\s*repro:\s*zero-draw(?:\(([A-Za-z_][A-Za-z0-9_]*)?\))?")


@dataclass(frozen=True)
class Violation:
    """One finding: rule code, location, and a human-readable message."""

    code: str
    path: str
    line: int
    message: str

    def render(self) -> str:
        """Return the canonical one-line report, ``path:line: CODE message``."""
        return f"{self.path}:{self.line}: {self.code} {self.message}"


@dataclass(frozen=True)
class ZeroDrawMarker:
    """A ``# repro: zero-draw(<guard>)`` contract comment.

    ``guard`` is the parameter/attribute name whose zero configuration must
    gate every Generator draw in the marked function; ``None`` means the
    function may draw **nothing** at all (e.g. a constant-latency sampler).
    """

    line: int
    guard: str | None


@dataclass
class FileContext:
    """Everything the rules need to know about one parsed source file."""

    path: Path
    source: str
    tree: ast.Module
    lines: list[str] = field(default_factory=list)
    #: line number -> set of rule codes suppressed on that line
    pragmas: dict[int, frozenset[str]] = field(default_factory=dict)
    #: line number of the marker comment -> parsed zero-draw contract
    zero_draw_markers: dict[int, ZeroDrawMarker] = field(default_factory=dict)

    def is_suppressed(self, code: str, line: int) -> bool:
        """Return True iff ``code`` is pragma-disabled on ``line``."""
        return code in self.pragmas.get(line, frozenset())

    def marker_for(self, node: ast.FunctionDef | ast.AsyncFunctionDef) -> ZeroDrawMarker | None:
        """Return the zero-draw marker attached to ``node``, if any.

        A marker binds to a function when its comment sits on the ``def``
        line itself, on the line directly above the function (above any
        decorators), or on a decorator line.
        """
        first = min([node.lineno] + [d.lineno for d in node.decorator_list])
        candidates = set(range(first - 1, node.lineno + 1))
        for line in sorted(candidates):
            marker = self.zero_draw_markers.get(line)
            if marker is not None:
                return marker
        return None


def load_file_context(path: Path) -> FileContext:
    """Parse one file into a :class:`FileContext` (raises ``SyntaxError``)."""
    source = path.read_text(encoding="utf-8")
    tree = ast.parse(source, filename=str(path))
    lines = source.splitlines()
    pragmas: dict[int, frozenset[str]] = {}
    markers: dict[int, ZeroDrawMarker] = {}
    for lineno, text in enumerate(lines, start=1):
        if "#" not in text:
            continue
        pragma = _PRAGMA_RE.search(text)
        if pragma is not None:
            codes = frozenset(code.strip() for code in pragma.group(1).split(","))
            pragmas[lineno] = pragmas.get(lineno, frozenset()) | codes
        marker = _ZERO_DRAW_RE.search(text)
        if marker is not None:
            markers[lineno] = ZeroDrawMarker(line=lineno, guard=marker.group(1))
    return FileContext(
        path=path,
        source=source,
        tree=tree,
        lines=lines,
        pragmas=pragmas,
        zero_draw_markers=markers,
    )


def iter_python_files(paths: Sequence[Path]) -> Iterator[Path]:
    """Yield every ``.py`` file under ``paths`` (files pass through as-is)."""
    seen: set[Path] = set()
    for path in paths:
        if path.is_file():
            candidates: Iterable[Path] = [path] if path.suffix == ".py" else []
        else:
            candidates = sorted(path.rglob("*.py"))
        for candidate in candidates:
            resolved = candidate.resolve()
            if resolved not in seen and "__pycache__" not in candidate.parts:
                seen.add(resolved)
                yield candidate


class Rule:
    """Base class of one lint rule: code, summary, and the two check passes."""

    #: rule identifier, e.g. ``"RL001"``
    code: str = "RL000"
    #: one-line summary printed by ``--list-rules`` and used in docs
    summary: str = ""

    def check_file(self, context: FileContext) -> Iterator[Violation]:
        """Yield findings for one parsed file (default: none)."""
        return iter(())

    def finalize(self, contexts: Sequence[FileContext]) -> Iterator[Violation]:
        """Yield cross-file findings after every file was parsed (default: none)."""
        return iter(())


def lint_paths(
    paths: Sequence[Path],
    rules: Sequence[Rule] | None = None,
    *,
    select: Iterable[str] | None = None,
) -> list[Violation]:
    """Run the rules over every Python file under ``paths``.

    Parameters
    ----------
    paths:
        Files and/or directories to scan (directories recurse).
    rules:
        Rule instances to run; defaults to :data:`tools.lint.rules.ALL_RULES`.
    select:
        Optional iterable of rule codes to restrict the run to.

    Returns
    -------
    list[Violation]:
        Pragma-filtered findings, sorted by path, line, and code.
    """
    from tools.lint.rules import ALL_RULES

    active = list(rules) if rules is not None else list(ALL_RULES)
    if select is not None:
        wanted = set(select)
        unknown = wanted - {rule.code for rule in active}
        if unknown:
            raise ValueError(f"unknown rule codes: {sorted(unknown)}")
        active = [rule for rule in active if rule.code in wanted]

    contexts = [load_file_context(path) for path in iter_python_files(paths)]
    violations: list[Violation] = []
    for rule in active:
        for context in contexts:
            for violation in rule.check_file(context):
                if not context.is_suppressed(violation.code, violation.line):
                    violations.append(violation)
        for violation in rule.finalize(contexts):
            context_by_path = {str(c.path): c for c in contexts}
            owner = context_by_path.get(violation.path)
            if owner is None or not owner.is_suppressed(violation.code, violation.line):
                violations.append(violation)
    violations.sort(key=lambda v: (v.path, v.line, v.code))
    return violations

"""Small AST utilities shared by the ``repro-lint`` rules."""

from __future__ import annotations

import ast

__all__ = [
    "GENERATOR_METHODS",
    "dotted_name",
    "mentioned_names",
    "decorator_dataclass_call",
]

#: Drawing methods of :class:`numpy.random.Generator`.  A call to any of
#: these — on whatever receiver — consumes randomness, which is what the
#: zero-draw rule (RL004) polices.
GENERATOR_METHODS = frozenset(
    {
        "beta",
        "binomial",
        "bytes",
        "chisquare",
        "choice",
        "dirichlet",
        "exponential",
        "f",
        "gamma",
        "geometric",
        "gumbel",
        "hypergeometric",
        "integers",
        "laplace",
        "logistic",
        "lognormal",
        "logseries",
        "multinomial",
        "multivariate_hypergeometric",
        "multivariate_normal",
        "negative_binomial",
        "noncentral_chisquare",
        "noncentral_f",
        "normal",
        "pareto",
        "permutation",
        "permuted",
        "poisson",
        "power",
        "random",
        "rayleigh",
        "shuffle",
        "standard_cauchy",
        "standard_exponential",
        "standard_gamma",
        "standard_normal",
        "standard_t",
        "triangular",
        "uniform",
        "vonmises",
        "wald",
        "weibull",
        "zipf",
    }
)


def dotted_name(node: ast.expr) -> str | None:
    """Return ``"np.random.rand"``-style dotted paths for Name/Attribute chains."""
    parts: list[str] = []
    current: ast.expr = node
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if isinstance(current, ast.Name):
        parts.append(current.id)
        return ".".join(reversed(parts))
    return None


def mentioned_names(node: ast.AST) -> set[str]:
    """Return every bare name and attribute name appearing in ``node``.

    Used to decide whether a guard expression "mentions" a contract name:
    both ``loss_probability`` in ``self.loss_probability <= 0.0`` and
    ``_is_iid`` in ``self._is_iid()`` count.
    """
    names: set[str] = set()
    for child in ast.walk(node):
        if isinstance(child, ast.Name):
            names.add(child.id)
        elif isinstance(child, ast.Attribute):
            names.add(child.attr)
    return names


def decorator_dataclass_call(node: ast.ClassDef) -> ast.Call | ast.Name | ast.Attribute | None:
    """Return the ``@dataclass`` decorator node of ``node``, if present.

    Handles ``@dataclass``, ``@dataclass(...)``, and the ``@dataclasses.…``
    spellings; returns the decorator expression so callers can inspect its
    keywords (``frozen=True``).
    """
    for decorator in node.decorator_list:
        target = decorator.func if isinstance(decorator, ast.Call) else decorator
        name = dotted_name(target)
        if name is not None and name.split(".")[-1] == "dataclass":
            return decorator
    return None

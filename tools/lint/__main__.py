"""Command-line entry point: ``python -m tools.lint src benchmarks``.

Exit codes: 0 when clean, 1 when violations were found, 2 on usage errors
(unknown rule code, missing path, unparseable file).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Sequence

from tools.lint.engine import lint_paths
from tools.lint.rules import ALL_RULES


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m tools.lint",
        description="repro-lint: static invariant checker for the simulation stack",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        type=Path,
        help="files or directories to scan (directories recurse over *.py)",
    )
    parser.add_argument(
        "--select",
        default=None,
        help="comma-separated rule codes to run (default: all rules)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule codes with their one-line summaries and exit",
    )
    options = parser.parse_args(argv)

    if options.list_rules:
        for rule in ALL_RULES:
            print(f"{rule.code}  {rule.summary}")
        return 0
    if not options.paths:
        parser.print_usage(sys.stderr)
        print("error: no paths given (try: python -m tools.lint src benchmarks)", file=sys.stderr)
        return 2
    missing = [path for path in options.paths if not path.exists()]
    if missing:
        print(f"error: no such path(s): {', '.join(map(str, missing))}", file=sys.stderr)
        return 2

    select = None
    if options.select is not None:
        select = [code.strip() for code in options.select.split(",") if code.strip()]
    try:
        violations = lint_paths(options.paths, select=select)
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    except SyntaxError as error:
        print(f"error: cannot parse {error.filename}:{error.lineno}: {error.msg}", file=sys.stderr)
        return 2

    for violation in violations:
        print(violation.render())
    if violations:
        count = len(violations)
        plural = "s" if count != 1 else ""
        print(f"repro-lint: {count} violation{plural} found", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

"""Rule registry of ``repro-lint``.

Each rule is a small stateless object with a per-file pass
(:meth:`~tools.lint.engine.Rule.check_file`) and an optional project-level
pass (:meth:`~tools.lint.engine.Rule.finalize`) that sees every parsed file
at once — the registry-hygiene rule needs the registry and the experiment
modules side by side.
"""

from __future__ import annotations

from tools.lint.engine import Rule
from tools.lint.rules.rl001_global_rng import GlobalRngRule
from tools.lint.rules.rl002_hook_signatures import HookSignatureRule
from tools.lint.rules.rl003_frozen_samplers import FrozenSamplerRule
from tools.lint.rules.rl004_zero_draw import ZeroDrawRule
from tools.lint.rules.rl005_wall_clock import WallClockRule
from tools.lint.rules.rl006_registry import RegistryHygieneRule

__all__ = ["ALL_RULES", "Rule"]

#: The bundled rules, in code order.  ``lint_paths`` runs these by default.
ALL_RULES: tuple[Rule, ...] = (
    GlobalRngRule(),
    HookSignatureRule(),
    FrozenSamplerRule(),
    ZeroDrawRule(),
    WallClockRule(),
    RegistryHygieneRule(),
)

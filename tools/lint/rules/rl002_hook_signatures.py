"""RL002 — protocol hook signatures accept the dispatcher's gated keywords.

Runtime contract protected: ``simulate_protocol_batch`` inspects each
protocol's ``_disseminate_batch`` signature and only threads the ``latency``
plane through hooks that declare the keyword (legacy external subclasses keep
working loss-free).  That gating means signature drift does not crash — it
silently *disables a plane*: a hook that loses its ``latency=`` parameter
still runs, just without delivery times, and the regression only surfaces as
a wrong (or missing) number downstream.  This rule pins the full keyword
surface at lint time instead.

Checked, for every class that defines the hooks (the protocol zoo):

* ``_disseminate(self, n, alive, source, rng, network=…)`` — must accept a
  ``network`` parameter (or ``**kwargs``) so the loss plane reaches it;
* ``_disseminate_batch(...)`` — must accept ``network``, ``churn``, **and**
  ``latency`` (or ``**kwargs``), and every plane parameter must carry a
  default so the hook stays callable through the legacy positional form.

A hook that deliberately opts out of a plane (the abstract base's
scalar-replay fallback tracks no time, for instance) documents that with an
inline ``# repro-lint: disable=RL002`` on its ``def`` line.
"""

from __future__ import annotations

import ast
from typing import Iterator

from tools.lint.engine import FileContext, Rule, Violation

__all__ = ["HookSignatureRule"]

#: keyword surface the batched dispatcher gates on
_BATCH_PLANES = ("network", "churn", "latency")


def _signature_names(node: ast.FunctionDef) -> tuple[set[str], set[str], bool]:
    """Return (all parameter names, names with defaults, has **kwargs)."""
    args = node.args
    positional = args.posonlyargs + args.args
    names = {a.arg for a in positional} | {a.arg for a in args.kwonlyargs}
    defaulted = {a.arg for a in positional[len(positional) - len(args.defaults) :]}
    defaulted |= {
        a.arg for a, d in zip(args.kwonlyargs, args.kw_defaults, strict=True) if d is not None
    }
    return names, defaulted, args.kwarg is not None


class HookSignatureRule(Rule):
    code = "RL002"
    summary = "dissemination hooks accept the dispatcher's network/churn/latency keywords"

    def check_file(self, context: FileContext) -> Iterator[Violation]:
        path = str(context.path)
        for node in ast.walk(context.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            for item in node.body:
                if not isinstance(item, ast.FunctionDef):
                    continue
                if item.name == "_disseminate":
                    yield from self._check_scalar_hook(node, item, path)
                elif item.name == "_disseminate_batch":
                    yield from self._check_batch_hook(node, item, path)

    def _check_scalar_hook(
        self, cls: ast.ClassDef, hook: ast.FunctionDef, path: str
    ) -> Iterator[Violation]:
        names, defaulted, has_kwargs = _signature_names(hook)
        if has_kwargs:
            return
        if "network" not in names:
            yield Violation(
                code=self.code,
                path=path,
                line=hook.lineno,
                message=(
                    f"{cls.name}._disseminate does not accept `network`; the loss "
                    "plane cannot reach this protocol (add `network=None` or opt "
                    "out with `# repro-lint: disable=RL002`)"
                ),
            )
        elif "network" not in defaulted:
            yield Violation(
                code=self.code,
                path=path,
                line=hook.lineno,
                message=(
                    f"{cls.name}._disseminate: `network` needs a default — the "
                    "engine omits it on loss-free runs (legacy 4-argument form)"
                ),
            )

    def _check_batch_hook(
        self, cls: ast.ClassDef, hook: ast.FunctionDef, path: str
    ) -> Iterator[Violation]:
        names, defaulted, has_kwargs = _signature_names(hook)
        if has_kwargs:
            return
        for plane in _BATCH_PLANES:
            if plane not in names:
                yield Violation(
                    code=self.code,
                    path=path,
                    line=hook.lineno,
                    message=(
                        f"{cls.name}._disseminate_batch does not accept `{plane}`; "
                        "the dispatcher gates this plane on the hook signature, so "
                        "the protocol would silently run without it (add "
                        f"`{plane}=None` or opt out with `# repro-lint: disable=RL002`)"
                    ),
                )
            elif plane not in defaulted:
                yield Violation(
                    code=self.code,
                    path=path,
                    line=hook.lineno,
                    message=(
                        f"{cls.name}._disseminate_batch: `{plane}` needs a default — "
                        "the engine only passes planes that were actually requested"
                    ),
                )

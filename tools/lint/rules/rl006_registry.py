"""RL006 — experiment-registry hygiene.

Runtime contract protected: the registry
(``src/repro/experiments/registry.py``) is the single enumeration surface
behind the CLI, the CI smoke runs, and the docs — an experiment module that
forgets to register is silently unreachable from ``repro run``, and one
registered twice runs twice in sweeps.  The companion ``with_scale``
contract (PR 5) is budget safety: CLI ``--scale`` may only *shrink* a
configuration, because scaled-down smoke runs reuse the full-scale
statistical shape checks and a widened replica budget would silently turn a
30-second CI smoke into a full-scale run (or weaken a certified answer).

Checks:

* every *experiment module* (a module under ``experiments/`` defining both a
  top-level ``PAPER_REFERENCE`` and a ``run_*`` function) is referenced by
  exactly one ``ExperimentSpec(runner=<module>.<fn>)`` entry in the registry
  — zero means unreachable, two means double-run;
* every ``with_scale`` method validates or clamps its ``factor`` against 1
  and only shrinks: each keyword passed to ``replace(...)`` must reference
  ``factor``, must not divide by it, and must not scale a ``self`` attribute
  by a numeric literal greater than 1.
"""

from __future__ import annotations

import ast
from collections import Counter
from pathlib import PurePath
from typing import Iterator, Sequence

from tools.lint.asthelpers import dotted_name, mentioned_names
from tools.lint.engine import FileContext, Rule, Violation

__all__ = ["RegistryHygieneRule"]


def _is_experiment_module(context: FileContext) -> bool:
    if "experiments" not in PurePath(context.path).parts:
        return False
    has_reference = False
    has_runner = False
    for node in context.tree.body:
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name) and target.id == "PAPER_REFERENCE":
                    has_reference = True
        elif isinstance(node, ast.FunctionDef) and node.name.startswith("run_"):
            has_runner = True
    return has_reference and has_runner


def _registered_runner_modules(context: FileContext) -> Counter[str]:
    """Count, per module name, the ``ExperimentSpec(runner=<module>.<fn>)`` entries."""
    counts: Counter[str] = Counter()
    for node in ast.walk(context.tree):
        if not isinstance(node, ast.Call):
            continue
        func_name = dotted_name(node.func)
        if func_name is None or func_name.split(".")[-1] != "ExperimentSpec":
            continue
        for keyword in node.keywords:
            if keyword.arg == "runner":
                runner = dotted_name(keyword.value)
                if runner is not None and "." in runner:
                    counts[runner.split(".")[0]] += 1
    return counts


class RegistryHygieneRule(Rule):
    code = "RL006"
    summary = "experiment modules register exactly once; with_scale never widens budgets"

    def check_file(self, context: FileContext) -> Iterator[Violation]:
        path = str(context.path)
        for node in ast.walk(context.tree):
            if isinstance(node, ast.FunctionDef) and node.name == "with_scale":
                yield from self._check_with_scale(node, path)

    def finalize(self, contexts: Sequence[FileContext]) -> Iterator[Violation]:
        registry = None
        experiment_modules: dict[str, FileContext] = {}
        for context in contexts:
            if PurePath(context.path).name == "registry.py" and "experiments" in PurePath(
                context.path
            ).parts:
                registry = context
            elif _is_experiment_module(context):
                experiment_modules[PurePath(context.path).stem] = context
        if registry is None:
            if experiment_modules:
                any_context = next(iter(experiment_modules.values()))
                yield Violation(
                    code=self.code,
                    path=str(any_context.path),
                    line=1,
                    message=(
                        "experiment modules found but no experiments/registry.py in the "
                        "scanned paths; the registry is the only enumeration surface"
                    ),
                )
            return
        counts = _registered_runner_modules(registry)
        for module, context in sorted(experiment_modules.items()):
            registered = counts.get(module, 0)
            if registered == 0:
                yield Violation(
                    code=self.code,
                    path=str(context.path),
                    line=1,
                    message=(
                        f"experiment module `{module}` defines PAPER_REFERENCE and a "
                        "run_* entry point but is not registered in "
                        "experiments/registry.py — it is unreachable from `repro run`"
                    ),
                )
            elif registered > 1:
                yield Violation(
                    code=self.code,
                    path=str(registry.path),
                    line=1,
                    message=(
                        f"experiment module `{module}` is registered {registered} times "
                        "in experiments/registry.py — sweeps would run it repeatedly"
                    ),
                )

    def _check_with_scale(self, node: ast.FunctionDef, path: str) -> Iterator[Violation]:
        if not self._validates_factor(node):
            yield Violation(
                code=self.code,
                path=path,
                line=node.lineno,
                message=(
                    f"{node.name} never validates/clamps `factor` against 1 — "
                    "CLI --scale must only be able to shrink the configuration"
                ),
            )
        local_bindings: dict[str, ast.expr] = {}
        for child in ast.walk(node):
            if isinstance(child, ast.Assign) and child.value is not None:
                for target in child.targets:
                    if isinstance(target, ast.Name):
                        local_bindings[target.id] = child.value
        for call in ast.walk(node):
            if not isinstance(call, ast.Call):
                continue
            func_name = dotted_name(call.func)
            if func_name is None or func_name.split(".")[-1] != "replace":
                continue
            for keyword in call.keywords:
                if keyword.arg is None:
                    continue
                yield from self._check_replacement(keyword, local_bindings, path)

    @staticmethod
    def _validates_factor(node: ast.FunctionDef) -> bool:
        for child in ast.walk(node):
            if isinstance(child, ast.Compare) and "factor" in mentioned_names(child):
                comparators = [child.left, *child.comparators]
                for comparator in comparators:
                    if isinstance(comparator, ast.Constant) and comparator.value in (1, 1.0, 0.999):
                        return True
        return False

    def _check_replacement(
        self, keyword: ast.keyword, local_bindings: dict[str, ast.expr], path: str
    ) -> Iterator[Violation]:
        value = keyword.value
        # A bare local name (``replace(self, ns=ns)``) is judged by the
        # expression that computed it earlier in the function.
        if isinstance(value, ast.Name) and value.id in local_bindings:
            value = local_bindings[value.id]
        names = mentioned_names(value)
        if "factor" not in names:
            yield Violation(
                code=self.code,
                path=path,
                line=value.lineno,
                message=(
                    f"with_scale replaces `{keyword.arg}` with an expression that "
                    "ignores `factor` — scaled runs must shrink every budget "
                    "they touch"
                ),
            )
            return
        for child in ast.walk(value):
            if not isinstance(child, ast.BinOp):
                continue
            if isinstance(child.op, ast.Div) and "factor" in mentioned_names(child.right):
                yield Violation(
                    code=self.code,
                    path=path,
                    line=child.lineno,
                    message=(
                        f"with_scale divides `{keyword.arg}` by `factor` — with "
                        "factor <= 1 that *widens* the budget"
                    ),
                )
            elif isinstance(child.op, ast.Mult):
                for side in (child.left, child.right):
                    if (
                        isinstance(side, ast.Constant)
                        and isinstance(side.value, (int, float))
                        and side.value > 1
                    ):
                        yield Violation(
                            code=self.code,
                            path=path,
                            line=child.lineno,
                            message=(
                                f"with_scale multiplies `{keyword.arg}` by the literal "
                                f"{side.value} — --scale may only shrink budgets"
                            ),
                        )

"""RL001 — no global-RNG calls.

Runtime contract protected: every stochastic entry point threads an explicit
``numpy.random.Generator`` (normalised by ``repro.utils.rng.as_generator``),
which is what makes replica layouts repetitions-only and results bit-identical
at any pool size (PR 5).  A single ``np.random.rand()`` — or a stdlib
``random.random()`` — draws from hidden process-global state, silently
breaking that guarantee in whichever worker happens to import the module.

Flagged:

* calls to ``np.random.<fn>`` / ``numpy.random.<fn>`` module-level functions
  (the legacy ``RandomState`` API: ``rand``, ``randint``, ``seed``, ...);
* ``default_rng()`` with no argument or a literal ``None`` (fresh OS entropy:
  non-deterministic by construction) — passing a ``seed`` *variable* through
  is fine, that is exactly what ``as_generator`` does;
* ``default_rng(time.time())`` and friends (wall-clock seeding);
* any call into the stdlib ``random`` module (``random.random()``,
  ``from random import shuffle; shuffle(...)``).
"""

from __future__ import annotations

import ast
from typing import Iterator

from tools.lint.asthelpers import dotted_name
from tools.lint.engine import FileContext, Rule, Violation

__all__ = ["GlobalRngRule"]

#: ``np.random`` attributes that are *not* hidden-global-state draws:
#: constructors and seeding types that explicit-Generator code legitimately
#: touches.
_SANCTIONED = frozenset(
    {
        "default_rng",
        "Generator",
        "BitGenerator",
        "SeedSequence",
        "PCG64",
        "PCG64DXSM",
        "Philox",
        "SFC64",
        "MT19937",
    }
)

_WALL_CLOCK_SEEDS = frozenset({"time.time", "time.time_ns", "datetime.now", "datetime.utcnow"})


def _numpy_aliases(tree: ast.Module) -> set[str]:
    """Return the local names bound to the numpy module (``numpy``, ``np``...)."""
    aliases: set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == "numpy":
                    aliases.add(alias.asname or "numpy")
    return aliases


def _stdlib_random_names(tree: ast.Module) -> tuple[set[str], set[str]]:
    """Return (module aliases of stdlib ``random``, names imported from it)."""
    modules: set[str] = set()
    functions: set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == "random":
                    modules.add(alias.asname or "random")
        elif isinstance(node, ast.ImportFrom):
            if node.module == "random" and node.level == 0:
                for alias in node.names:
                    functions.add(alias.asname or alias.name)
    return modules, functions


class GlobalRngRule(Rule):
    code = "RL001"
    summary = "no global-RNG calls; all randomness flows through an explicit Generator"

    def check_file(self, context: FileContext) -> Iterator[Violation]:
        numpy_names = _numpy_aliases(context.tree)
        random_modules, random_functions = _stdlib_random_names(context.tree)
        path = str(context.path)
        for node in ast.walk(context.tree):
            if not isinstance(node, ast.Call):
                continue
            name = dotted_name(node.func)
            if name is None:
                continue
            parts = name.split(".")
            # np.random.<fn>(...) — the legacy global-state API.
            if len(parts) == 3 and parts[0] in numpy_names and parts[1] == "random":
                if parts[2] not in _SANCTIONED:
                    yield Violation(
                        code=self.code,
                        path=path,
                        line=node.lineno,
                        message=(
                            f"call to global-state `{name}` — thread an explicit "
                            "numpy.random.Generator (repro.utils.rng.as_generator) instead"
                        ),
                    )
                    continue
            # default_rng() / default_rng(None) / default_rng(<wall clock>).
            if parts[-1] == "default_rng" and (
                len(parts) == 1 or (parts[0] in numpy_names and "random" in parts)
            ):
                yield from self._check_default_rng(node, name, path)
                continue
            # stdlib random module calls.
            if len(parts) >= 2 and parts[0] in random_modules:
                yield Violation(
                    code=self.code,
                    path=path,
                    line=node.lineno,
                    message=(
                        f"call to stdlib `{name}` — the `random` module is process-global "
                        "state; use the threaded numpy Generator"
                    ),
                )
            elif len(parts) == 1 and parts[0] in random_functions:
                yield Violation(
                    code=self.code,
                    path=path,
                    line=node.lineno,
                    message=(
                        f"call to `{name}` imported from stdlib `random` — process-global "
                        "state; use the threaded numpy Generator"
                    ),
                )

    def _check_default_rng(self, node: ast.Call, name: str, path: str) -> Iterator[Violation]:
        if not node.args and not node.keywords:
            yield Violation(
                code=self.code,
                path=path,
                line=node.lineno,
                message=(
                    f"`{name}()` with no seed draws fresh OS entropy — "
                    "pass an explicit seed (or accept one from the caller)"
                ),
            )
            return
        seed_args = list(node.args) + [kw.value for kw in node.keywords if kw.arg == "seed"]
        for arg in seed_args:
            if isinstance(arg, ast.Constant) and arg.value is None:
                yield Violation(
                    code=self.code,
                    path=path,
                    line=node.lineno,
                    message=(
                        f"`{name}(None)` draws fresh OS entropy — "
                        "pass an explicit seed (or accept one from the caller)"
                    ),
                )
            elif isinstance(arg, ast.Call):
                inner = dotted_name(arg.func)
                if inner in _WALL_CLOCK_SEEDS:
                    yield Violation(
                        code=self.code,
                        path=path,
                        line=node.lineno,
                        message=(
                        f"`{name}` seeded from the wall clock (`{inner}`) "
                        "is not reproducible"
                    ),
                    )

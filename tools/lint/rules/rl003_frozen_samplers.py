"""RL003 — latency/churn/failure models are frozen, picklable dataclasses.

Runtime contract protected: model objects (latency samplers, churn models,
failure models) ride inside the work tuples that ``utils.parallel`` pickles
to worker processes, and experiments reuse one model instance across many
cells.  PR 8 already paid this bill once — closure-based latency samplers
could not cross the pool and had to be rewritten as frozen dataclasses —
and a mutable model shared across cells is a cross-cell state leak waiting
to happen.  Frozen + lambda-free is the cheap static proxy for "pickles
cleanly and cannot leak state".

A class is *a model* when it subclasses ``ChurnModel`` or ``FailureModel``,
or when it implements the latency-sampler protocol (both ``__call__`` and
``draw`` methods).  Abstract bases (``ABC`` subclasses or classes with
``@abstractmethod`` members) are exempt.  A matched concrete class must:

* be decorated ``@dataclass(frozen=True)``;
* have no ``lambda`` field default and no ``field(default_factory=lambda…)``
  (closures do not pickle);
* have no field annotated as a ``Generator`` (generators are stateful stream
  owners, never model configuration).
"""

from __future__ import annotations

import ast
from typing import Iterator

from tools.lint.asthelpers import decorator_dataclass_call, dotted_name
from tools.lint.engine import FileContext, Rule, Violation

__all__ = ["FrozenSamplerRule"]

_MODEL_BASES = frozenset({"ChurnModel", "FailureModel"})


def _base_names(node: ast.ClassDef) -> set[str]:
    names: set[str] = set()
    for base in node.bases:
        name = dotted_name(base)
        if name is not None:
            names.add(name.split(".")[-1])
    return names


def _is_abstract(node: ast.ClassDef, bases: set[str]) -> bool:
    if "ABC" in bases:
        return True
    for item in node.body:
        if isinstance(item, ast.FunctionDef):
            for decorator in item.decorator_list:
                name = dotted_name(decorator)
                if name is not None and name.split(".")[-1] == "abstractmethod":
                    return True
    return False


def _is_latency_sampler(node: ast.ClassDef) -> bool:
    methods = {item.name for item in node.body if isinstance(item, ast.FunctionDef)}
    return "__call__" in methods and "draw" in methods


class FrozenSamplerRule(Rule):
    code = "RL003"
    summary = "latency/churn/failure models are @dataclass(frozen=True) and pool-picklable"

    def check_file(self, context: FileContext) -> Iterator[Violation]:
        path = str(context.path)
        for node in ast.walk(context.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            bases = _base_names(node)
            is_model = bool(bases & _MODEL_BASES) or _is_latency_sampler(node)
            if not is_model or _is_abstract(node, bases):
                continue
            yield from self._check_model_class(node, path)

    def _check_model_class(self, node: ast.ClassDef, path: str) -> Iterator[Violation]:
        decorator = decorator_dataclass_call(node)
        frozen = False
        if isinstance(decorator, ast.Call):
            for keyword in decorator.keywords:
                if keyword.arg == "frozen":
                    frozen = isinstance(keyword.value, ast.Constant) and bool(keyword.value.value)
        if decorator is None or not frozen:
            yield Violation(
                code=self.code,
                path=path,
                line=node.lineno,
                message=(
                    f"model class {node.name} must be @dataclass(frozen=True): models "
                    "cross process pools and are shared across experiment cells, so "
                    "they must pickle cleanly and stay immutable"
                ),
            )
        for item in node.body:
            if not isinstance(item, ast.AnnAssign) or not isinstance(item.target, ast.Name):
                continue
            field_name = item.target.id
            annotation = ast.dump(item.annotation)
            if "Generator" in annotation:
                yield Violation(
                    code=self.code,
                    path=path,
                    line=item.lineno,
                    message=(
                        f"model field {node.name}.{field_name} holds a Generator — "
                        "generators own a random stream and must be threaded per "
                        "call, never stored on the model"
                    ),
                )
            if item.value is None:
                continue
            for child in ast.walk(item.value):
                if isinstance(child, ast.Lambda):
                    yield Violation(
                        code=self.code,
                        path=path,
                        line=item.lineno,
                        message=(
                            f"model field {node.name}.{field_name} defaults to a lambda — "
                            "closures do not pickle across utils.parallel pools"
                        ),
                    )
                    break

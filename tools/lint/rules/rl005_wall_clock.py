"""RL005 — no wall-clock reads in simulation or benchmark code.

Runtime contract protected: results are a pure function of (configuration,
seed).  A wall-clock read anywhere in ``src/`` or ``benchmarks/`` is either
a hidden seed (breaking replayability) or a hidden measurement bias
(``time.time`` is not monotonic; NTP steps it mid-benchmark, which is why
the benchmark harness standardises on ``time.perf_counter``).

Flagged calls: ``time.time``, ``time.time_ns``, ``datetime.now``,
``datetime.utcnow``, ``datetime.today``, ``date.today`` (through the module
or the imported class).  Monotonic clocks (``perf_counter``,
``process_time``, ``monotonic``) are explicitly allowed.
"""

from __future__ import annotations

import ast
from typing import Iterator

from tools.lint.asthelpers import dotted_name
from tools.lint.engine import FileContext, Rule, Violation

__all__ = ["WallClockRule"]

#: dotted suffixes that read the wall clock
_FORBIDDEN = frozenset(
    {
        "time.time",
        "time.time_ns",
        "datetime.now",
        "datetime.utcnow",
        "datetime.today",
        "date.today",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
    }
)


class WallClockRule(Rule):
    code = "RL005"
    summary = "no wall-clock reads; results are a function of (configuration, seed)"

    def check_file(self, context: FileContext) -> Iterator[Violation]:
        path = str(context.path)
        for node in ast.walk(context.tree):
            if not isinstance(node, ast.Call):
                continue
            name = dotted_name(node.func)
            if name is None:
                continue
            if name in _FORBIDDEN or any(
                name.endswith("." + suffix) for suffix in ("time.time", "time.time_ns")
            ):
                yield Violation(
                    code=self.code,
                    path=path,
                    line=node.lineno,
                    message=(
                        f"wall-clock read `{name}()` — simulation and benchmark code "
                        "must be a pure function of (configuration, seed); use "
                        "time.perf_counter for interval timing"
                    ),
                )

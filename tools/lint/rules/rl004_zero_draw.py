"""RL004 — zero-draw discipline for plane contract functions.

Runtime contract protected: the planes (loss, churn, latency) are only
composable because a zero-intensity configuration draws **no randomness** —
loss p=0, churn rate 0, and constant latency ≤ T leave the caller's RNG
stream untouched, so plane-on runs are bit-for-bit identical to plane-off
runs at the same seed (pinned by PRs 4/6/8 across the whole protocol zoo).
One stray unconditional ``rng.random()`` in a draw path silently shifts
every downstream draw and the bit-identity tests fail far from the cause.

A function opts into the contract with a marker comment directly above or on
its ``def`` line::

    # repro: zero-draw(loss_probability)
    def draw_loss(self, rng, count): ...

Inside a marked function, every :class:`numpy.random.Generator` drawing
method call (``.random()``, ``.geometric()``, ...) must be *guarded* on the
named parameter/attribute: lexically inside an ``if`` whose condition
mentions the name, or after an early-return ``if`` on the name (the repo's
idiomatic short-circuit shape).  The bare form ``# repro: zero-draw`` means
the function may not touch the Generator at all (constant-latency samplers).

The guard analysis is lexical, not a dataflow proof — it exists to catch the
realistic regression (an unconditional draw slipped into a draw path), not
to verify arbitrary control flow.
"""

from __future__ import annotations

import ast
from typing import Iterator

from tools.lint.asthelpers import GENERATOR_METHODS, mentioned_names
from tools.lint.engine import FileContext, Rule, Violation, ZeroDrawMarker

__all__ = ["ZeroDrawRule"]


def _draw_calls(node: ast.AST) -> Iterator[ast.Call]:
    """Yield Generator drawing-method calls anywhere inside ``node``."""
    for child in ast.walk(node):
        if (
            isinstance(child, ast.Call)
            and isinstance(child.func, ast.Attribute)
            and child.func.attr in GENERATOR_METHODS
        ):
            yield child


def _terminates(body: list[ast.stmt]) -> bool:
    """True when the block unconditionally leaves the function (return/raise)."""
    return any(isinstance(stmt, (ast.Return, ast.Raise)) for stmt in body)


class ZeroDrawRule(Rule):
    code = "RL004"
    summary = "zero-draw contract functions only touch the Generator behind their guard"

    def check_file(self, context: FileContext) -> Iterator[Violation]:
        path = str(context.path)
        for node in ast.walk(context.tree):
            if not isinstance(node, ast.FunctionDef):
                continue
            marker = context.marker_for(node)
            if marker is None:
                continue
            yield from self._check_function(node, marker, path)

    def _check_function(
        self, node: ast.FunctionDef, marker: ZeroDrawMarker, path: str
    ) -> Iterator[Violation]:
        if marker.guard is None:
            for call in _draw_calls(node):
                yield Violation(
                    code=self.code,
                    path=path,
                    line=call.lineno,
                    message=(
                        f"{node.name} is marked `# repro: zero-draw` but calls "
                        f"Generator.{call.func.attr}(); this function must consume "
                        "no randomness at all"
                    ),
                )
            return
        yield from self._scan_block(
            node.body, guarded=False, marker=marker, name=node.name, path=path
        )

    def _scan_block(
        self,
        statements: list[ast.stmt],
        *,
        guarded: bool,
        marker: ZeroDrawMarker,
        name: str,
        path: str,
    ) -> Iterator[Violation]:
        guard = marker.guard
        for statement in statements:
            if isinstance(statement, ast.If):
                decides = guard in mentioned_names(statement.test)
                if not (guarded or decides):
                    yield from self._report(statement.test, marker, name, path)
                branch_guarded = guarded or decides
                yield from self._scan_block(
                    statement.body, guarded=branch_guarded, marker=marker, name=name, path=path
                )
                yield from self._scan_block(
                    statement.orelse, guarded=branch_guarded, marker=marker, name=name, path=path
                )
                # Early-return guard: everything after `if <guard-ish>: return/raise`
                # runs only when the guard decision fell the other way.
                if decides and _terminates(statement.body):
                    guarded = True
            elif isinstance(statement, (ast.For, ast.While, ast.With)):
                header: ast.expr | None = None
                if isinstance(statement, ast.For):
                    header = statement.iter
                elif isinstance(statement, ast.While):
                    header = statement.test
                if header is not None and not guarded:
                    yield from self._report(header, marker, name, path)
                yield from self._scan_block(
                    statement.body, guarded=guarded, marker=marker, name=name, path=path
                )
                orelse = getattr(statement, "orelse", [])
                yield from self._scan_block(
                    orelse, guarded=guarded, marker=marker, name=name, path=path
                )
            elif isinstance(statement, ast.Try):
                for block in (statement.body, statement.orelse, statement.finalbody):
                    yield from self._scan_block(
                        block, guarded=guarded, marker=marker, name=name, path=path
                    )
                for handler in statement.handlers:
                    yield from self._scan_block(
                        handler.body, guarded=guarded, marker=marker, name=name, path=path
                    )
            else:
                if not guarded:
                    yield from self._report(statement, marker, name, path)

    def _report(
        self, node: ast.AST, marker: ZeroDrawMarker, name: str, path: str
    ) -> Iterator[Violation]:
        for call in _draw_calls(node):
            yield Violation(
                code=self.code,
                path=path,
                line=call.lineno,
                message=(
                    f"{name} is marked `# repro: zero-draw({marker.guard})` but calls "
                    f"Generator.{call.func.attr}() outside a guard on "
                    f"`{marker.guard}` — a zero-{marker.guard} configuration would "
                    "consume randomness and break bit-identity with the plane-off path"
                ),
            )

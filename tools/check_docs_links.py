#!/usr/bin/env python
"""Check that relative links in the repository's markdown docs resolve.

Scans ``README.md``, ``docs/*.md``, and the other top-level markdown files
for inline markdown links (``[text](target)``) and verifies that every
relative target exists in the working tree.  External links (``http(s)://``,
``mailto:``) are skipped — CI must not depend on the network — and pure
in-page anchors (``#section``) are checked against the headings of the file
that contains them.

Beyond links, the checker cross-references the "Static invariants" section
of ``docs/ARCHITECTURE.md`` against the live ``tools.lint`` rule inventory:
every ``RLxxx`` rule must have a documentation entry and every documented
code must exist, so the docs cannot drift from the checker.

Exit status: 0 when every link resolves, 1 otherwise (one line per broken
link).  Run from the repository root: ``python tools/check_docs_links.py``.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

#: Inline markdown links, non-greedy so adjacent links don't merge.
LINK_PATTERN = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")

#: ATX headings, for anchor validation.
HEADING_PATTERN = re.compile(r"^#{1,6}\s+(.*)$", re.MULTILINE)


def github_anchor(heading: str) -> str:
    """Return the GitHub-style anchor slug of one heading text."""
    heading = re.sub(r"[`*_]", "", heading.strip().lower())
    heading = re.sub(r"[^\w\- ]", "", heading)
    return heading.replace(" ", "-")


def collect_markdown_files(root: Path) -> list:
    """Return the markdown files to scan: top-level ``*.md`` plus ``docs/``."""
    files = sorted(root.glob("*.md"))
    docs = root / "docs"
    if docs.is_dir():
        files.extend(sorted(docs.rglob("*.md")))
    benchmarks = root / "benchmarks"
    if benchmarks.is_dir():
        files.extend(sorted(benchmarks.rglob("*.md")))
    return files


def check_file(path: Path, root: Path) -> list:
    """Return the broken links of one markdown file as problem strings."""
    text = path.read_text(encoding="utf-8")
    anchors = {github_anchor(h) for h in HEADING_PATTERN.findall(text)}
    problems = []
    for match in LINK_PATTERN.finditer(text):
        target = match.group(1)
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        base, _, fragment = target.partition("#")
        if not base:
            if fragment and github_anchor(fragment) not in anchors:
                problems.append(f"{path.relative_to(root)}: broken anchor #{fragment}")
            continue
        resolved = (path.parent / base).resolve()
        if not resolved.exists():
            problems.append(f"{path.relative_to(root)}: broken link {target}")
    return problems


#: Bold rule entries in the "Static invariants" docs section, e.g. ``**RL001``.
RULE_ENTRY_PATTERN = re.compile(r"\*\*(RL\d{3})\b")


def check_static_invariants_section(root: Path) -> list:
    """Cross-check docs/ARCHITECTURE.md's rule entries against tools.lint.

    Every rule shipped by ``tools.lint.rules.ALL_RULES`` must have a
    ``**RLxxx`` entry in the "Static invariants" section, and every
    documented code must correspond to a shipped rule.
    """
    architecture = root / "docs" / "ARCHITECTURE.md"
    if not architecture.is_file():
        return []
    text = architecture.read_text(encoding="utf-8")
    problems = []
    if "Static invariants" not in text:
        return ["docs/ARCHITECTURE.md: missing the 'Static invariants' section"]
    documented = set(RULE_ENTRY_PATTERN.findall(text))
    sys.path.insert(0, str(root))
    try:
        from tools.lint.rules import ALL_RULES
    finally:
        sys.path.pop(0)
    shipped = {rule.code for rule in ALL_RULES}
    for code in sorted(shipped - documented):
        problems.append(
            f"docs/ARCHITECTURE.md: repro-lint rule {code} is shipped but has no "
            "entry in the 'Static invariants' section"
        )
    for code in sorted(documented - shipped):
        problems.append(
            f"docs/ARCHITECTURE.md: 'Static invariants' documents {code}, which "
            "tools.lint does not ship"
        )
    return problems


def main() -> int:
    root = Path(__file__).resolve().parents[1]
    files = collect_markdown_files(root)
    problems = []
    for path in files:
        problems.extend(check_file(path, root))
    problems.extend(check_static_invariants_section(root))
    print(f"checked {len(files)} markdown file(s)")
    if problems:
        for problem in problems:
            print(f"  BROKEN: {problem}")
        return 1
    print("all relative links resolve")
    return 0


if __name__ == "__main__":
    sys.exit(main())

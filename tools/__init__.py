"""Repository tooling: static checkers run by CI (`tools.lint`, docs link check)."""

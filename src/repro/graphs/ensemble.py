"""Batched graph-percolation ensembles: many ``Gossip(n, P, q)`` graphs at once.

The round simulator validates the paper's reliability curves execution by
execution; this module validates them **graph-side**, at scales the round
simulator cannot reach.  One gossip execution *is* a generalized random graph
(Section 3), so realising ``R`` independent graphs and measuring their giant
components and source reachabilities is a direct empirical check of Eq. 4 —
and it reduces to exactly two vectorised kernels:

* one batched distinct-target draw for **all (replica, member) pairs at
  once** through :func:`repro.utils.sampling.sample_distinct_rows` — the same
  kernel the batched Monte-Carlo simulator uses, so the graph layer and the
  simulator cannot drift apart statistically; and
* one CSR + :mod:`scipy.sparse.csgraph` pass per replica for the undirected
  component partition and the directed source BFS
  (:mod:`repro.graphs.components` fast paths).

Two ensembles are provided:

* :class:`GossipGraphEnsemble` — replicas of the **directed gossip graph**
  with fail-stop failures applied.  Its directed-reachability reliability is
  the operational quantity the paper predicts; its undirected-projection
  giant fraction is the structural proxy.  Note the projection's degree
  distribution is the sum of out- and in-degrees, so only the *reachability*
  is comparable to Eq. 4 (for Poisson fanouts they coincide).
* :func:`percolation_ensemble` — replicas of the **undirected
  configuration-model** graph under site percolation, the ensemble on which
  Eqs. 2-4 are derived; its giant fraction converges to Eq. 4 for any fanout
  distribution.

Replicas are processed in row-budgeted chunks so the batched draw matrix
(``rows × max fanout``) stays memory-bounded even at ``n = 10⁶``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import sparse
from scipy.sparse import csgraph

from repro.core.distributions import FanoutDistribution
from repro.graphs.configuration_model import configuration_model_edges
from repro.graphs.degree_sequence import DegreeMoments, sample_degree_sequence
from repro.utils.rng import SeedLike, as_generator
from repro.utils.sampling import sample_distinct_rows_excluding
from repro.utils.validation import check_integer, check_probability

__all__ = [
    "GraphEnsembleResult",
    "GossipGraphEnsemble",
    "PercolationEnsembleResult",
    "percolation_ensemble",
]

#: Row budget of one batched target draw (rows = replicas × members in the
#: chunk).  Bounds the (rows × max-fanout) draw matrix to ~10⁷ int64 cells
#: regardless of how many replicas were requested.
_MAX_ROWS_PER_CHUNK = 1 << 20


def _csr_from_sorted(n_nodes: int, src_sorted: np.ndarray, dst: np.ndarray) -> "sparse.csr_matrix | None":
    """Return the CSR adjacency of arcs whose sources are already nondecreasing.

    Both ensemble edge streams arrive sorted by source (the batched draw
    emits rows in node order; the configuration model lexsorts its edges), so
    the indptr is one bincount + cumsum and the COO round-trip — the single
    most expensive step of a naive ``csr_matrix((data, (row, col)))`` build —
    disappears.  Data is float64 because that is
    :mod:`scipy.sparse.csgraph`'s native dtype; any other dtype makes every
    csgraph call convert (and copy) the whole matrix first.  Returns None
    for an empty arc set.
    """
    if src_sorted.size == 0:
        return None
    counts = np.bincount(src_sorted, minlength=n_nodes)
    # int32 indices/indptr (all ensemble graphs fit): halves the index
    # bandwidth of the csgraph kernels, which are memory-bound at this size.
    indptr = np.empty(n_nodes + 1, dtype=np.int32)
    indptr[0] = 0
    np.cumsum(counts, out=indptr[1:])
    data = np.ones(dst.size, dtype=np.float64)
    return sparse.csr_matrix(
        (data, dst.astype(np.int32, copy=False), indptr), shape=(n_nodes, n_nodes)
    )


def _largest_component(n: int, adj: "sparse.csr_matrix | None") -> int:
    """Largest undirected component of the replica (isolated nodes are singletons)."""
    if adj is None:
        return 1 if n else 0
    n_components, labels = csgraph.connected_components(adj, directed=False)
    return int(np.bincount(labels, minlength=n_components).max())


@dataclass(frozen=True)
class GraphEnsembleResult:
    """Per-replica measurements of a gossip-graph ensemble.

    Attributes
    ----------
    n, q, source:
        The ``Gossip(n, P, q)`` parameters of the ensemble.
    repetitions:
        Number of independent graph replicas ``R``.
    n_alive:
        ``(R,)`` nonfailed members per replica.
    reached:
        ``(R,)`` members reachable from the source along effective arcs
        (the source itself included).
    giant_fraction:
        ``(R,)`` largest undirected component of the effective arcs as a
        share of nonfailed members (the structural proxy).
    reliability:
        ``(R,)`` ``reached / n_alive`` — the operational reliability of the
        execution the graph encodes.
    degree_moments:
        Empirical moments of the realised out-degrees of nonfailed members,
        pooled over all replicas; ``1 / mean_excess`` estimates the critical
        ratio of Eq. 3.
    """

    n: int
    q: float
    source: int
    repetitions: int
    n_alive: np.ndarray
    reached: np.ndarray
    giant_fraction: np.ndarray
    reliability: np.ndarray
    degree_moments: DegreeMoments

    def spread_occurred(self, min_reached: int | None = None) -> np.ndarray:
        """Per-replica epidemic-took-off flags (same convention as the simulator)."""
        if min_reached is None:
            min_reached = max(10, int(np.sqrt(self.n)))
        return self.reached > min_reached

    def conditional_reliability(self) -> float:
        """Mean reliability over replicas whose dissemination took off.

        This is the branch the analytical reliability (the giant-component
        size, Eq. 4) corresponds to; returns NaN when no replica took off.
        """
        spread = self.spread_occurred()
        if not spread.any():
            return float("nan")
        return float(self.reliability[spread].mean())

    def mean_giant_fraction(self) -> float:
        """Mean giant-component fraction across replicas."""
        return float(self.giant_fraction.mean())

    def std_giant_fraction(self) -> float:
        """Sample standard deviation of the giant fraction (0 for one replica)."""
        if self.repetitions < 2:
            return 0.0
        return float(self.giant_fraction.std(ddof=1))

    def empirical_critical_ratio(self) -> float:
        """Empirical Eq. 3: ``1 / G1'(1)`` from the pooled degree moments."""
        excess = self.degree_moments.mean_excess
        return 1.0 / excess if excess > 0 else float("inf")


class GossipGraphEnsemble:
    """Realise ``R`` replicas of the ``Gossip(n, P, q)`` graph as one array program.

    Semantically each replica is an independent
    :func:`~repro.graphs.gossip_graph.build_gossip_graph` draw (fresh failure
    pattern, fresh fanouts, fresh targets); the ensemble merely batches the
    fanout and distinct-target draws across all replicas and runs the
    component/reachability measurements through the CSR fast paths.
    ``tests/graphs/test_ensemble.py`` pins it to the scalar builder in
    distribution.
    """

    def __init__(
        self,
        n: int,
        distribution: FanoutDistribution,
        q: float,
        *,
        source: int = 0,
    ) -> None:
        self.n = check_integer("n", n, minimum=1)
        self.distribution = distribution
        self.q = check_probability("q", q)
        self.source = check_integer("source", source, minimum=0, maximum=self.n - 1)

    def realise(self, repetitions: int, *, seed: SeedLike = None) -> GraphEnsembleResult:
        """Build and measure ``repetitions`` independent graph replicas."""
        repetitions = check_integer("repetitions", repetitions, minimum=1)
        rng = as_generator(seed)
        n, q, source = self.n, self.q, self.source

        n_alive = np.zeros(repetitions, dtype=np.int64)
        reached = np.zeros(repetitions, dtype=np.int64)
        giant = np.zeros(repetitions, dtype=np.float64)
        reliability = np.zeros(repetitions, dtype=np.float64)
        pooled_count = 0
        pooled_sum = 0.0
        pooled_sum_sq = 0.0

        chunk_replicas = max(1, _MAX_ROWS_PER_CHUNK // n)
        done = 0
        while done < repetitions:
            chunk = min(chunk_replicas, repetitions - done)
            fanouts = self.distribution.sample(chunk * n, seed=rng)
            fanouts = np.minimum(fanouts.astype(np.int64, copy=False), n - 1)
            alive = rng.random((chunk, n)) < q
            alive[:, source] = True
            # Failed members never forward: their rows draw zero targets.
            eff_out = np.where(alive, fanouts.reshape(chunk, n), 0)

            # One batched distinct-target draw for every forwarding row of
            # the chunk (all replicas at once); rows with zero fanout are
            # skipped entirely so a low q costs proportionally less.
            ks = eff_out.ravel()
            active = np.flatnonzero(ks > 0)
            members = active % n
            # The shared exclusion kernel shifts slots >= the drawing member
            # up by one to skip itself (in place: the matrix is ours and it
            # is the chunk's largest allocation).
            matrix, valid = sample_distinct_rows_excluding(rng, n, ks[active], members)
            # Work in chunk-global node ids (replica r's member i is r·n + i):
            # the whole chunk then forms ONE block-diagonal graph whose
            # components never span replicas, so a single csgraph
            # connected_components call measures every replica at once.
            # Everything fits int32 (chunk·n <= ~2·_MAX_ROWS_PER_CHUNK),
            # halving the bandwidth of the flatten/filter/gather stages.
            active32 = active.astype(np.int32)
            edge_ks = ks[active]
            src_global = np.repeat(active32, edge_ks)
            dst_global = matrix[valid] + np.repeat(
                (active - members).astype(np.int32), edge_ks
            )
            # Effective arcs: alive source (guaranteed) AND alive target.
            keep = alive.ravel()[dst_global]
            es, ed = src_global[keep], dst_global[keep]
            adj = _csr_from_sorted(chunk * n, es, ed)

            alive_counts = alive.sum(axis=1)
            n_alive[done : done + chunk] = alive_counts
            if adj is None:
                giant[done : done + chunk] = 1.0 / alive_counts
                reached[done : done + chunk] = 1
            else:
                n_components, labels = csgraph.connected_components(adj, directed=False)
                sizes = np.bincount(labels, minlength=n_components)
                # Size of each node's component, reshaped per replica: the
                # row-wise max is that replica's largest component (isolated
                # and failed members count as singletons, exactly as in the
                # scalar largest_component_size).
                giant[done : done + chunk] = (
                    sizes[labels].reshape(chunk, n).max(axis=1) / alive_counts
                )
                # One BFS covers every replica: a virtual super-source node
                # (id chunk·n, sorting after every real node) with an arc to
                # each replica's source visits exactly the union of the
                # per-replica reachable sets.
                super_id = chunk * n
                bfs_adj = _csr_from_sorted(
                    super_id + 1,
                    np.concatenate([es, np.full(chunk, super_id, dtype=np.int32)]),
                    np.concatenate(
                        [ed, np.arange(chunk, dtype=np.int32) * n + source]
                    ),
                )
                order = csgraph.breadth_first_order(
                    bfs_adj, super_id, directed=True, return_predecessors=False
                )
                reached[done : done + chunk] = np.bincount(
                    order[order < super_id] // n, minlength=chunk
                )
            reliability[done : done + chunk] = (
                reached[done : done + chunk] / alive_counts
            )

            alive_degrees = eff_out[alive].astype(np.float64)
            pooled_count += alive_degrees.size
            pooled_sum += float(alive_degrees.sum())
            pooled_sum_sq += float((alive_degrees * alive_degrees).sum())
            done += chunk

        moments = _moments_from_sums(pooled_count, pooled_sum, pooled_sum_sq)
        return GraphEnsembleResult(
            n=n,
            q=q,
            source=source,
            repetitions=repetitions,
            n_alive=n_alive,
            reached=reached,
            giant_fraction=giant,
            reliability=reliability,
            degree_moments=moments,
        )


def _moments_from_sums(count: int, total: float, total_sq: float) -> DegreeMoments:
    """Assemble :class:`DegreeMoments` from pooled ``(count, Σk, Σk²)`` sums."""
    if count == 0:
        return DegreeMoments(mean=0.0, second_factorial=0.0, mean_excess=0.0, variance=0.0)
    mean = total / count
    second_factorial = (total_sq - total) / count
    mean_excess = second_factorial / mean if mean > 0 else 0.0
    variance = total_sq / count - mean * mean
    return DegreeMoments(
        mean=mean,
        second_factorial=second_factorial,
        mean_excess=mean_excess,
        variance=max(variance, 0.0),
    )


@dataclass(frozen=True)
class PercolationEnsembleResult:
    """Per-replica giant fractions of the undirected configuration-model ensemble.

    ``giant_fraction[r]`` is the largest component's share of the *occupied*
    (nonfailed) nodes of replica ``r`` — directly comparable to Eq. 4's
    ``R(q, P)``.
    """

    n: int
    q: float
    repetitions: int
    giant_fraction: np.ndarray

    def mean_fraction(self) -> float:
        """Mean giant fraction across replicas."""
        return float(self.giant_fraction.mean())

    def std_fraction(self) -> float:
        """Sample standard deviation across replicas (0 for one replica)."""
        if self.repetitions < 2:
            return 0.0
        return float(self.giant_fraction.std(ddof=1))


def percolation_ensemble(
    dist: FanoutDistribution,
    n: int,
    q: float,
    *,
    repetitions: int = 10,
    seed: SeedLike = None,
) -> PercolationEnsembleResult:
    """Measure the giant component of ``ζ(n, P)`` under site percolation, batched.

    The vectorised counterpart of
    :func:`repro.graphs.metrics.empirical_giant_component` (which remains the
    scalar reference): per replica one stub-matching build, one vectorised
    occupation filter, and one CSR component pass — no per-edge Python work,
    so ``n = 10⁶`` replicas complete in seconds.
    """
    n = check_integer("n", n, minimum=1)
    q = check_probability("q", q)
    repetitions = check_integer("repetitions", repetitions, minimum=1)
    rng = as_generator(seed)

    fractions = np.zeros(repetitions, dtype=np.float64)
    for rep in range(repetitions):
        degrees = sample_degree_sequence(dist, n, seed=rng, max_degree=n - 1)
        edges = configuration_model_edges(degrees, seed=rng)
        occupied = rng.random(n) < q
        occupied_count = int(occupied.sum())
        if occupied_count == 0:
            fractions[rep] = 0.0
            continue
        if edges.size:
            # The simplified edge list is lexsorted, so the occupied filter
            # leaves the sources nondecreasing — the direct CSR build applies.
            keep = occupied[edges[:, 0]] & occupied[edges[:, 1]]
            kept = edges[keep]
            adj = _csr_from_sorted(n, kept[:, 0], kept[:, 1])
        else:
            adj = None
        fractions[rep] = _largest_component(n, adj) / occupied_count
    return PercolationEnsembleResult(
        n=n, q=q, repetitions=repetitions, giant_fraction=fractions
    )

"""Configuration-model construction of generalized random graphs.

The generalized random graph ``ζ(n, P)`` of Section 4.1 is a graph whose
degree distribution is the fanout distribution ``P``.  Two constructions are
provided:

* :func:`directed_configuration_edges` — each node ``i`` with out-degree
  ``d_i`` picks ``d_i`` distinct targets uniformly at random from the other
  nodes.  This is exactly what the gossip algorithm does (its Figure 1), so
  it is the construction used by :mod:`repro.graphs.gossip_graph` and the
  simulator.  The default ``"vectorized"`` method performs **one** batched
  distinct-target draw for all nodes through
  :func:`repro.utils.sampling.sample_distinct_rows` — the same kernel the
  batched Monte-Carlo simulator uses — while ``"scalar"`` keeps the original
  per-node ``rng.choice`` loop as the behavioural reference.
* :func:`configuration_model_edges` — the classical undirected stub-matching
  configuration model (Newman–Strogatz–Watts), used to validate the
  percolation formulas on their "native" ensemble.

Both return plain ``(m, 2)`` edge arrays; :func:`to_networkx` converts to a
:mod:`networkx` graph when richer graph algorithms are wanted (the networkx
import happens lazily there, so the graph hot path never pays for it).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from repro.utils.rng import SeedLike, as_generator
from repro.utils.sampling import sample_distinct_rows
from repro.utils.validation import check_choice, check_integer

if TYPE_CHECKING:  # pragma: no cover - import kept lazy at runtime
    import networkx as nx

__all__ = [
    "configuration_model_edges",
    "directed_configuration_edges",
    "to_networkx",
]


def directed_configuration_edges(
    out_degrees: np.ndarray,
    *,
    seed: SeedLike = None,
    allow_self_loops: bool = False,
    method: str = "vectorized",
) -> np.ndarray:
    """Build directed edges where node ``i`` picks ``out_degrees[i]`` distinct targets.

    Targets are chosen uniformly at random without replacement from the other
    nodes (matching the gossip algorithm's "select f_i nodes uniformly at
    random from its membership view").  Out-degrees larger than the number of
    available targets are truncated to it.

    ``method="vectorized"`` (default) draws all nodes' targets in one batched
    :func:`~repro.utils.sampling.sample_distinct_rows` call;
    ``method="scalar"`` is the original per-node loop kept as the behavioural
    reference (the two consume randomness differently, so they agree in
    distribution, not per seed — ``tests/graphs/test_graph_equivalence.py``
    pins them together).

    Returns an ``(m, 2)`` int64 array of ``(source, target)`` pairs.
    """
    check_choice("method", method, ("vectorized", "scalar"))
    rng = as_generator(seed)
    out_degrees = np.asarray(out_degrees, dtype=np.int64)
    n = out_degrees.size
    if np.any(out_degrees < 0):
        raise ValueError("out-degrees must be non-negative")
    max_targets = n if allow_self_loops else n - 1
    if max_targets < 0:
        max_targets = 0

    if method == "scalar":
        return _directed_edges_scalar(rng, out_degrees, n, max_targets, allow_self_loops)

    ks = np.minimum(out_degrees, max_targets)
    matrix, valid = sample_distinct_rows(rng, max_targets, ks)
    if not allow_self_loops and matrix.shape[1]:
        # Each row sampled from the n-1 virtual slots with its own id removed;
        # drawn slots >= node shift up by one to restore real identifiers.
        matrix = matrix + (matrix >= np.arange(n, dtype=np.int64)[:, None])
    sources = np.repeat(np.arange(n, dtype=np.int64), ks)
    if sources.size == 0:
        return np.empty((0, 2), dtype=np.int64)
    return np.column_stack([sources, matrix[valid]])


def _directed_edges_scalar(
    rng: np.random.Generator,
    out_degrees: np.ndarray,
    n: int,
    max_targets: int,
    allow_self_loops: bool,
) -> np.ndarray:
    """Per-node reference construction (the seed implementation)."""
    sources: list[np.ndarray] = []
    targets: list[np.ndarray] = []
    for node in range(n):
        k = int(min(out_degrees[node], max_targets))
        if k <= 0:
            continue
        chosen = _sample_targets(rng, n, node, k, allow_self_loops)
        sources.append(np.full(k, node, dtype=np.int64))
        targets.append(chosen)
    if not sources:
        return np.empty((0, 2), dtype=np.int64)
    return np.column_stack([np.concatenate(sources), np.concatenate(targets)])


def _sample_targets(
    rng: np.random.Generator, n: int, node: int, k: int, allow_self_loops: bool
) -> np.ndarray:
    """Sample ``k`` distinct targets for ``node`` from ``0..n-1`` (optionally excluding it)."""
    if allow_self_loops:
        return rng.choice(n, size=k, replace=False).astype(np.int64)
    # Sample from n-1 slots and shift indices >= node by one to skip `node`.
    chosen = rng.choice(n - 1, size=k, replace=False).astype(np.int64)
    chosen[chosen >= node] += 1
    return chosen


def configuration_model_edges(
    degrees: np.ndarray,
    *,
    seed: SeedLike = None,
    simplify: bool = True,
    max_parity_fixes: int = 1,
) -> np.ndarray:
    """Build an undirected configuration-model edge list by stub matching.

    Parameters
    ----------
    degrees:
        Desired degree of every node.  If the sum is odd, one unit is added
        to a randomly chosen node (the standard repair, applied at most
        ``max_parity_fixes`` times).
    simplify:
        When True, self-loops and parallel edges produced by stub matching are
        dropped; the realised degree sequence then deviates slightly from the
        prescribed one, which is the usual trade-off and is irrelevant for
        giant-component measurements at large ``n``.

    Returns an ``(m, 2)`` int64 array with each undirected edge listed once,
    rows sorted lexicographically when ``simplify`` is on.
    """
    rng = as_generator(seed)
    degrees = np.asarray(degrees, dtype=np.int64).copy()
    if np.any(degrees < 0):
        raise ValueError("degrees must be non-negative")
    n = degrees.size
    if n == 0:
        return np.empty((0, 2), dtype=np.int64)
    fixes = 0
    while degrees.sum() % 2 != 0:
        if fixes >= max_parity_fixes:
            raise ValueError("degree sequence has odd sum and parity repair is disabled")
        degrees[int(rng.integers(0, n))] += 1
        fixes += 1

    stubs = np.repeat(np.arange(n, dtype=np.int64), degrees)
    rng.shuffle(stubs)
    pairs = stubs.reshape(-1, 2)
    if simplify and pairs.size:
        keep = pairs[:, 0] != pairs[:, 1]
        pairs = pairs[keep]
        # Drop parallel edges: canonicalise order, lexsort, keep the first of
        # each run (same output as np.unique(axis=0) without its void-dtype
        # row comparisons, which dominated the build at large n).
        lo = np.minimum(pairs[:, 0], pairs[:, 1])
        hi = np.maximum(pairs[:, 0], pairs[:, 1])
        order = np.lexsort((hi, lo))
        lo, hi = lo[order], hi[order]
        first = np.ones(lo.size, dtype=bool)
        first[1:] = (lo[1:] != lo[:-1]) | (hi[1:] != hi[:-1])
        pairs = np.column_stack([lo[first], hi[first]])
    return pairs.astype(np.int64)


def to_networkx(n: int, edges: np.ndarray, *, directed: bool = True) -> "nx.Graph":
    """Convert an edge array into a networkx graph with nodes ``0..n-1``."""
    import networkx as nx

    n = check_integer("n", n, minimum=0)
    graph = nx.DiGraph() if directed else nx.Graph()
    graph.add_nodes_from(range(n))
    edges = np.asarray(edges, dtype=np.int64)
    if edges.size:
        graph.add_edges_from(map(tuple, edges))
    return graph

"""Configuration-model construction of generalized random graphs.

The generalized random graph ``ζ(n, P)`` of Section 4.1 is a graph whose
degree distribution is the fanout distribution ``P``.  Two constructions are
provided:

* :func:`directed_configuration_edges` — each node ``i`` with out-degree
  ``d_i`` picks ``d_i`` distinct targets uniformly at random from the other
  nodes.  This is exactly what the gossip algorithm does (its Figure 1), so
  it is the construction used by :mod:`repro.graphs.gossip_graph` and the
  simulator.
* :func:`configuration_model_edges` — the classical undirected stub-matching
  configuration model (Newman–Strogatz–Watts), used to validate the
  percolation formulas on their "native" ensemble.

Both return plain ``(m, 2)`` edge arrays; :func:`to_networkx` converts to a
:mod:`networkx` graph when richer graph algorithms are wanted.
"""

from __future__ import annotations

import numpy as np
import networkx as nx

from repro.utils.rng import as_generator
from repro.utils.validation import check_integer

__all__ = [
    "configuration_model_edges",
    "directed_configuration_edges",
    "to_networkx",
]


def directed_configuration_edges(
    out_degrees: np.ndarray,
    *,
    seed=None,
    allow_self_loops: bool = False,
) -> np.ndarray:
    """Build directed edges where node ``i`` picks ``out_degrees[i]`` distinct targets.

    Targets are chosen uniformly at random without replacement from the other
    nodes (matching the gossip algorithm's "select f_i nodes uniformly at
    random from its membership view").  Out-degrees larger than the number of
    available targets are truncated to it.

    Returns an ``(m, 2)`` int64 array of ``(source, target)`` pairs.
    """
    rng = as_generator(seed)
    out_degrees = np.asarray(out_degrees, dtype=np.int64)
    n = out_degrees.size
    if np.any(out_degrees < 0):
        raise ValueError("out-degrees must be non-negative")
    max_targets = n if allow_self_loops else n - 1
    if max_targets < 0:
        max_targets = 0
    sources: list[np.ndarray] = []
    targets: list[np.ndarray] = []
    for node in range(n):
        k = int(min(out_degrees[node], max_targets))
        if k <= 0:
            continue
        chosen = _sample_targets(rng, n, node, k, allow_self_loops)
        sources.append(np.full(k, node, dtype=np.int64))
        targets.append(chosen)
    if not sources:
        return np.empty((0, 2), dtype=np.int64)
    return np.column_stack([np.concatenate(sources), np.concatenate(targets)])


def _sample_targets(
    rng: np.random.Generator, n: int, node: int, k: int, allow_self_loops: bool
) -> np.ndarray:
    """Sample ``k`` distinct targets for ``node`` from ``0..n-1`` (optionally excluding it)."""
    if allow_self_loops:
        return rng.choice(n, size=k, replace=False).astype(np.int64)
    # Sample from n-1 slots and shift indices >= node by one to skip `node`.
    chosen = rng.choice(n - 1, size=k, replace=False).astype(np.int64)
    chosen[chosen >= node] += 1
    return chosen


def configuration_model_edges(
    degrees: np.ndarray,
    *,
    seed=None,
    simplify: bool = True,
    max_parity_fixes: int = 1,
) -> np.ndarray:
    """Build an undirected configuration-model edge list by stub matching.

    Parameters
    ----------
    degrees:
        Desired degree of every node.  If the sum is odd, one unit is added
        to a randomly chosen node (the standard repair, applied at most
        ``max_parity_fixes`` times).
    simplify:
        When True, self-loops and parallel edges produced by stub matching are
        dropped; the realised degree sequence then deviates slightly from the
        prescribed one, which is the usual trade-off and is irrelevant for
        giant-component measurements at large ``n``.

    Returns an ``(m, 2)`` int64 array with each undirected edge listed once.
    """
    rng = as_generator(seed)
    degrees = np.asarray(degrees, dtype=np.int64).copy()
    if np.any(degrees < 0):
        raise ValueError("degrees must be non-negative")
    n = degrees.size
    if n == 0:
        return np.empty((0, 2), dtype=np.int64)
    fixes = 0
    while degrees.sum() % 2 != 0:
        if fixes >= max_parity_fixes:
            raise ValueError("degree sequence has odd sum and parity repair is disabled")
        degrees[int(rng.integers(0, n))] += 1
        fixes += 1

    stubs = np.repeat(np.arange(n, dtype=np.int64), degrees)
    rng.shuffle(stubs)
    pairs = stubs.reshape(-1, 2)
    if simplify and pairs.size:
        keep = pairs[:, 0] != pairs[:, 1]
        pairs = pairs[keep]
        # Drop parallel edges: canonicalise order then unique.
        lo = np.minimum(pairs[:, 0], pairs[:, 1])
        hi = np.maximum(pairs[:, 0], pairs[:, 1])
        canon = np.column_stack([lo, hi])
        pairs = np.unique(canon, axis=0)
    return pairs.astype(np.int64)


def to_networkx(n: int, edges: np.ndarray, *, directed: bool = True) -> "nx.Graph":
    """Convert an edge array into a networkx graph with nodes ``0..n-1``."""
    n = check_integer("n", n, minimum=0)
    graph = nx.DiGraph() if directed else nx.Graph()
    graph.add_nodes_from(range(n))
    edges = np.asarray(edges, dtype=np.int64)
    if edges.size:
        graph.add_edges_from(map(tuple, edges))
    return graph

"""Connected components, union-find, and source reachability.

The analytical model talks about components of the *undirected projection* of
the gossip graph (the giant component), while the operational question — "did
member ``y`` receive the message?" — is directed reachability from the source
node.  Both are provided here on plain edge arrays so the simulator does not
need to materialise a networkx graph on the hot path.

Two implementations back every query:

* the **fast path** (default ``method="csgraph"``) converts the edge array to
  a CSR sparse matrix once and runs :mod:`scipy.sparse.csgraph`'s C kernels
  (``connected_components`` for the undirected partition,
  ``breadth_first_order`` for directed reachability) — linear in ``n + m``
  with no Python-level per-edge work, which is what makes million-node
  percolation ensembles (:mod:`repro.graphs.ensemble`) feasible;
* the **reference path** (``method="unionfind"`` / ``"python"``) keeps the
  original per-edge :class:`UnionFind` loop and the list-frontier BFS.  Both
  are deterministic graph algorithms, so the equivalence tests pin the fast
  path to the reference *exactly*, not just in distribution.
"""

from __future__ import annotations

import numpy as np
from scipy import sparse
from scipy.sparse import csgraph

from repro.utils.validation import check_choice, check_integer

__all__ = [
    "UnionFind",
    "component_labels",
    "connected_components",
    "component_sizes",
    "largest_component_size",
    "reachable_from",
]


class UnionFind:
    """Disjoint-set forest with union by size and path compression.

    Elements are integers ``0 .. n-1``.
    """

    def __init__(self, n: int) -> None:
        n = check_integer("n", n, minimum=0)
        self.parent = np.arange(n, dtype=np.int64)
        self.size = np.ones(n, dtype=np.int64)
        self.n_components = n

    def __len__(self) -> int:
        return len(self.parent)

    def find(self, x: int) -> int:
        """Return the representative of ``x`` (with path compression)."""
        parent = self.parent
        root = x
        while parent[root] != root:
            root = parent[root]
        while parent[x] != root:
            parent[x], x = root, parent[x]
        return int(root)

    def union(self, a: int, b: int) -> bool:
        """Merge the sets containing ``a`` and ``b``; return True if they were distinct."""
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return False
        if self.size[ra] < self.size[rb]:
            ra, rb = rb, ra
        self.parent[rb] = ra
        self.size[ra] += self.size[rb]
        self.n_components -= 1
        return True

    def connected(self, a: int, b: int) -> bool:
        """Return True iff ``a`` and ``b`` are in the same set."""
        return self.find(a) == self.find(b)

    def component_size(self, x: int) -> int:
        """Return the size of the set containing ``x``."""
        return int(self.size[self.find(x)])

    def roots(self) -> np.ndarray:
        """Return the representative of every element at once.

        Vectorised pointer doubling: squaring the parent map halves the
        maximal chain depth per iteration, so with union-by-size (depth
        O(log n)) this converges in O(log log n) full-array passes instead of
        ``n`` Python-level :meth:`find` calls.
        """
        roots = self.parent.copy()
        while True:
            nxt = roots[roots]
            if np.array_equal(nxt, roots):
                return roots
            roots = nxt

    def components(self) -> list[np.ndarray]:
        """Return the current partition as a list of element arrays."""
        return _split_by_labels(self.roots())


def _split_by_labels(labels: np.ndarray) -> list[np.ndarray]:
    """Group element indices by label (one stable argsort, no Python loops)."""
    if labels.size == 0:
        return []
    order = np.argsort(labels, kind="stable")
    boundaries = np.flatnonzero(np.diff(labels[order])) + 1
    return np.split(order, boundaries)


def _check_edges(edges: np.ndarray) -> np.ndarray:
    edges = np.asarray(edges, dtype=np.int64)
    if edges.size and (edges.ndim != 2 or edges.shape[1] != 2):
        raise ValueError(f"edges must have shape (m, 2), got {edges.shape}")
    return edges


def edges_to_csr(n: int, edges: np.ndarray) -> "sparse.csr_matrix":
    """Build the ``n × n`` CSR adjacency of an edge array (duplicates collapse)."""
    edges = _check_edges(edges)
    if edges.size == 0:
        return sparse.csr_matrix((n, n), dtype=np.int8)
    data = np.ones(edges.shape[0], dtype=np.int8)
    return sparse.csr_matrix((data, (edges[:, 0], edges[:, 1])), shape=(n, n))


def component_labels(n: int, edges: np.ndarray) -> tuple[int, np.ndarray]:
    """Return ``(n_components, labels)`` of the undirected graph given by ``edges``.

    ``labels[i]`` is the component index of node ``i``; direction is ignored.
    This is the primitive of the fast path — one CSR build plus one
    ``scipy.sparse.csgraph.connected_components`` call.
    """
    n = check_integer("n", n, minimum=0)
    edges = _check_edges(edges)
    if n == 0:
        return 0, np.empty(0, dtype=np.int64)
    if edges.size == 0:
        return n, np.arange(n, dtype=np.int64)
    n_components, labels = csgraph.connected_components(
        edges_to_csr(n, edges), directed=False
    )
    return int(n_components), labels.astype(np.int64, copy=False)


def connected_components(n: int, edges: np.ndarray, *, method: str = "csgraph") -> list[np.ndarray]:
    """Return the connected components of an undirected graph given by ``edges``.

    Parameters
    ----------
    n:
        Number of nodes (``0 .. n-1``).
    edges:
        Array of shape ``(m, 2)``; direction is ignored.
    method:
        ``"csgraph"`` (default, CSR + scipy) or ``"unionfind"`` (the per-edge
        reference).  Both return the same partition; only the ordering of the
        component list may differ.
    """
    check_choice("method", method, ("csgraph", "unionfind"))
    if method == "unionfind":
        return _union_all(n, edges).components()
    _, labels = component_labels(n, edges)
    return _split_by_labels(labels)


def component_sizes(n: int, edges: np.ndarray, *, method: str = "csgraph") -> np.ndarray:
    """Return the sizes of all connected components (descending order)."""
    check_choice("method", method, ("csgraph", "unionfind"))
    if method == "unionfind":
        roots = _union_all(n, edges).roots()
        _, counts = np.unique(roots, return_counts=True)
        return np.sort(counts)[::-1]
    n_components, labels = component_labels(n, edges)
    counts = np.bincount(labels, minlength=n_components)
    return np.sort(counts)[::-1]


def largest_component_size(n: int, edges: np.ndarray, *, method: str = "csgraph") -> int:
    """Return the size of the largest connected component (0 for an empty graph)."""
    if n == 0:
        return 0
    return int(component_sizes(n, edges, method=method)[0])


def _union_all(n: int, edges: np.ndarray) -> UnionFind:
    n = check_integer("n", n, minimum=0)
    edges = _check_edges(edges)
    uf = UnionFind(n)
    if edges.size == 0:
        return uf
    for a, b in edges:
        uf.union(int(a), int(b))
    return uf


def reachable_from(
    n: int, edges: np.ndarray, source: int, *, method: str = "csgraph"
) -> np.ndarray:
    """Return the boolean mask of nodes reachable from ``source`` along directed edges.

    This is the operational definition of "received the message": member ``y``
    receives the message of source ``s`` iff there is a directed gossip path
    ``s → ... → y``.  The default method builds the CSR adjacency once and
    runs :func:`scipy.sparse.csgraph.breadth_first_order` (a C-level frontier
    BFS); ``method="python"`` keeps the original list-frontier BFS as the
    behavioural reference.  Both are linear in ``n + m`` and agree exactly.
    """
    check_choice("method", method, ("csgraph", "python"))
    n = check_integer("n", n, minimum=0)
    source = check_integer("source", source, minimum=0, maximum=max(n - 1, 0))
    edges = _check_edges(edges)
    visited = np.zeros(n, dtype=bool)
    if n == 0:
        return visited
    visited[source] = True
    if edges.size == 0:
        return visited

    if method == "csgraph":
        order = csgraph.breadth_first_order(
            edges_to_csr(n, edges), source, directed=True, return_predecessors=False
        )
        visited[order] = True
        return visited

    # Reference path: CSR-style adjacency via one argsort, list-frontier BFS.
    order = np.argsort(edges[:, 0], kind="stable")
    src_sorted = edges[order, 0]
    dst_sorted = edges[order, 1]
    starts = np.searchsorted(src_sorted, np.arange(n), side="left")
    ends = np.searchsorted(src_sorted, np.arange(n), side="right")

    frontier = [source]
    while frontier:
        next_frontier: list[int] = []
        for u in frontier:
            for v in dst_sorted[starts[u] : ends[u]]:
                if not visited[v]:
                    visited[v] = True
                    next_frontier.append(int(v))
        frontier = next_frontier
    return visited

"""Connected components, union-find, and source reachability.

The analytical model talks about components of the *undirected projection* of
the gossip graph (the giant component), while the operational question — "did
member ``y`` receive the message?" — is directed reachability from the source
node.  Both are provided here on plain edge arrays so the simulator does not
need to materialise a networkx graph on the hot path.
"""

from __future__ import annotations

import numpy as np

from repro.utils.validation import check_integer

__all__ = [
    "UnionFind",
    "connected_components",
    "component_sizes",
    "largest_component_size",
    "reachable_from",
]


class UnionFind:
    """Disjoint-set forest with union by size and path compression.

    Elements are integers ``0 .. n-1``.
    """

    def __init__(self, n: int):
        n = check_integer("n", n, minimum=0)
        self.parent = np.arange(n, dtype=np.int64)
        self.size = np.ones(n, dtype=np.int64)
        self.n_components = n

    def __len__(self) -> int:
        return len(self.parent)

    def find(self, x: int) -> int:
        """Return the representative of ``x`` (with path compression)."""
        parent = self.parent
        root = x
        while parent[root] != root:
            root = parent[root]
        while parent[x] != root:
            parent[x], x = root, parent[x]
        return int(root)

    def union(self, a: int, b: int) -> bool:
        """Merge the sets containing ``a`` and ``b``; return True if they were distinct."""
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return False
        if self.size[ra] < self.size[rb]:
            ra, rb = rb, ra
        self.parent[rb] = ra
        self.size[ra] += self.size[rb]
        self.n_components -= 1
        return True

    def connected(self, a: int, b: int) -> bool:
        """Return True iff ``a`` and ``b`` are in the same set."""
        return self.find(a) == self.find(b)

    def component_size(self, x: int) -> int:
        """Return the size of the set containing ``x``."""
        return int(self.size[self.find(x)])

    def components(self) -> list[np.ndarray]:
        """Return the current partition as a list of element arrays."""
        roots = np.array([self.find(i) for i in range(len(self.parent))], dtype=np.int64)
        out: list[np.ndarray] = []
        for root in np.unique(roots):
            out.append(np.flatnonzero(roots == root))
        return out


def connected_components(n: int, edges: np.ndarray) -> list[np.ndarray]:
    """Return the connected components of an undirected graph given by ``edges``.

    Parameters
    ----------
    n:
        Number of nodes (``0 .. n-1``).
    edges:
        Array of shape ``(m, 2)``; direction is ignored.
    """
    uf = _union_all(n, edges)
    return uf.components()


def component_sizes(n: int, edges: np.ndarray) -> np.ndarray:
    """Return the sizes of all connected components (descending order)."""
    uf = _union_all(n, edges)
    roots = np.array([uf.find(i) for i in range(n)], dtype=np.int64)
    _, counts = np.unique(roots, return_counts=True)
    return np.sort(counts)[::-1]


def largest_component_size(n: int, edges: np.ndarray) -> int:
    """Return the size of the largest connected component (0 for an empty graph)."""
    if n == 0:
        return 0
    return int(component_sizes(n, edges)[0])


def _union_all(n: int, edges: np.ndarray) -> UnionFind:
    n = check_integer("n", n, minimum=0)
    edges = np.asarray(edges, dtype=np.int64)
    uf = UnionFind(n)
    if edges.size == 0:
        return uf
    if edges.ndim != 2 or edges.shape[1] != 2:
        raise ValueError(f"edges must have shape (m, 2), got {edges.shape}")
    for a, b in edges:
        uf.union(int(a), int(b))
    return uf


def reachable_from(n: int, edges: np.ndarray, source: int) -> np.ndarray:
    """Return the boolean mask of nodes reachable from ``source`` along directed edges.

    This is the operational definition of "received the message": member ``y``
    receives the message of source ``s`` iff there is a directed gossip path
    ``s → ... → y``.  Implemented as a frontier BFS over a CSR-style adjacency
    built once from the edge array, so it is linear in ``n + m``.
    """
    n = check_integer("n", n, minimum=0)
    source = check_integer("source", source, minimum=0, maximum=max(n - 1, 0))
    edges = np.asarray(edges, dtype=np.int64)
    visited = np.zeros(n, dtype=bool)
    if n == 0:
        return visited
    visited[source] = True
    if edges.size == 0:
        return visited
    if edges.ndim != 2 or edges.shape[1] != 2:
        raise ValueError(f"edges must have shape (m, 2), got {edges.shape}")

    # CSR adjacency: sort edges by source node once.
    order = np.argsort(edges[:, 0], kind="stable")
    src_sorted = edges[order, 0]
    dst_sorted = edges[order, 1]
    starts = np.searchsorted(src_sorted, np.arange(n), side="left")
    ends = np.searchsorted(src_sorted, np.arange(n), side="right")

    frontier = [source]
    while frontier:
        next_frontier: list[int] = []
        for u in frontier:
            for v in dst_sorted[starts[u] : ends[u]]:
                if not visited[v]:
                    visited[v] = True
                    next_frontier.append(int(v))
        frontier = next_frontier
    return visited

"""Empirical graph statistics used to validate the analytical model.

These helpers compute, on realised graphs, the quantities the generating
function machinery predicts in expectation: degree moments, component-size
distributions, and the relative size of the giant component under site
percolation.  The integration tests compare them against
:mod:`repro.core.percolation` at moderate ``n``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.distributions import FanoutDistribution
from repro.graphs.components import component_sizes
from repro.graphs.configuration_model import configuration_model_edges
from repro.graphs.degree_sequence import DegreeMoments, empirical_moments, sample_degree_sequence
from repro.utils.rng import SeedLike, as_generator
from repro.utils.validation import check_integer, check_probability

__all__ = [
    "degree_statistics",
    "component_size_distribution",
    "empirical_giant_component",
    "GiantComponentEstimate",
]


def degree_statistics(degrees: np.ndarray) -> DegreeMoments:
    """Return the empirical degree moments (thin wrapper kept for API symmetry)."""
    return empirical_moments(degrees)


def component_size_distribution(n: int, edges: np.ndarray) -> np.ndarray:
    """Return all component sizes of the undirected graph, in descending order."""
    return component_sizes(n, edges)


@dataclass(frozen=True)
class GiantComponentEstimate:
    """Monte-Carlo estimate of the giant component under site percolation.

    Attributes
    ----------
    mean_fraction:
        Average (over repetitions) of the largest component's share of the
        *occupied* (nonfailed) nodes — directly comparable to the paper's
        reliability ``R(q, P)``.
    std_fraction:
        Sample standard deviation across repetitions.
    repetitions:
        Number of independent graphs measured.
    """

    mean_fraction: float
    std_fraction: float
    repetitions: int


def empirical_giant_component(
    dist: FanoutDistribution,
    n: int,
    q: float,
    *,
    repetitions: int = 10,
    seed: SeedLike = None,
) -> GiantComponentEstimate:
    """Estimate the giant-component fraction of ``ζ(n, P)`` under site percolation.

    For each repetition a fresh undirected configuration-model graph is built
    from the fanout distribution, a uniform fraction ``1 - q`` of nodes is
    removed, and the largest remaining component is measured relative to the
    number of occupied nodes.
    """
    n = check_integer("n", n, minimum=1)
    q = check_probability("q", q)
    repetitions = check_integer("repetitions", repetitions, minimum=1)
    rng = as_generator(seed)

    fractions = np.zeros(repetitions)
    for rep in range(repetitions):
        degrees = sample_degree_sequence(dist, n, seed=rng, max_degree=n - 1)
        edges = configuration_model_edges(degrees, seed=rng)
        occupied = rng.random(n) < q
        occ_count = int(occupied.sum())
        if occ_count == 0:
            fractions[rep] = 0.0
            continue
        if edges.size:
            keep = occupied[edges[:, 0]] & occupied[edges[:, 1]]
            kept_edges = edges[keep]
        else:
            kept_edges = edges
        sizes = component_sizes(n, kept_edges)
        # component_sizes counts isolated removed nodes as singleton components;
        # the largest occupied component is still the max because removed nodes
        # are isolated (all their edges were dropped) — unless every occupied
        # node is isolated, in which case the max is 1 and still correct.
        fractions[rep] = sizes[0] / occ_count if occ_count else 0.0
    return GiantComponentEstimate(
        mean_fraction=float(fractions.mean()),
        std_fraction=float(fractions.std(ddof=1)) if repetitions > 1 else 0.0,
        repetitions=repetitions,
    )

"""Generalized random-graph substrate.

The analytical model treats one execution of the gossip algorithm as the
construction of a generalized random graph (an arc ``x → y`` means "x gossips
the message to y").  This subpackage provides the graph-level machinery the
simulation and the empirical validation of the percolation predictions rely
on:

* :mod:`repro.graphs.degree_sequence` — sampling degree (fanout) sequences
  and computing their empirical moments,
* :mod:`repro.graphs.configuration_model` — building random (di)graphs with a
  prescribed degree sequence,
* :mod:`repro.graphs.components` — union-find, connected components, and
  source-reachability (the "who receives the message" question),
* :mod:`repro.graphs.gossip_graph` — the gossip-induced digraph of one
  execution with fail-stop failures applied,
* :mod:`repro.graphs.ensemble` — the batched graph-percolation ensemble
  engine (replicas of ``Gossip(n, P, q)`` graphs realised and measured as
  one array program), and
* :mod:`repro.graphs.metrics` — empirical giant-component / percolation
  statistics used to validate the analytical model.
"""

from repro.graphs.degree_sequence import (
    sample_degree_sequence,
    empirical_moments,
    is_graphical,
)
from repro.graphs.components import (
    UnionFind,
    component_labels,
    connected_components,
    largest_component_size,
    reachable_from,
)
from repro.graphs.ensemble import (
    GossipGraphEnsemble,
    GraphEnsembleResult,
    PercolationEnsembleResult,
    percolation_ensemble,
)
from repro.graphs.configuration_model import (
    configuration_model_edges,
    directed_configuration_edges,
    to_networkx,
)
from repro.graphs.gossip_graph import GossipGraph, build_gossip_graph
from repro.graphs.metrics import (
    degree_statistics,
    component_size_distribution,
    empirical_giant_component,
)

__all__ = [
    "sample_degree_sequence",
    "empirical_moments",
    "is_graphical",
    "UnionFind",
    "component_labels",
    "connected_components",
    "largest_component_size",
    "reachable_from",
    "GossipGraphEnsemble",
    "GraphEnsembleResult",
    "PercolationEnsembleResult",
    "percolation_ensemble",
    "configuration_model_edges",
    "directed_configuration_edges",
    "to_networkx",
    "GossipGraph",
    "build_gossip_graph",
    "degree_statistics",
    "component_size_distribution",
    "empirical_giant_component",
]

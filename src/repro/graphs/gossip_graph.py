"""The gossip-induced random graph of one execution, with failures applied.

Section 3 of the paper observes that "the process of generating a random
graph is similar to the process of gossiping a message": an arc ``x → y`` is
present iff ``x`` gossips the message to ``y``.  Fail-stop failures remove
nodes (site percolation): a failed member neither forwards nor counts towards
the reliability.

:class:`GossipGraph` materialises that object — the directed graph a single
execution *would* trace if every nonfailed member that receives the message
forwards it according to its pre-drawn fanout — and answers both questions
the paper studies:

* which nonfailed members are reachable from the source (reliability), and
* what the component structure of the undirected projection looks like
  (the analytical proxy).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.distributions import FanoutDistribution
from repro.graphs.components import largest_component_size, reachable_from
from repro.graphs.configuration_model import directed_configuration_edges
from repro.graphs.degree_sequence import sample_degree_sequence
from repro.utils.rng import SeedLike, as_generator
from repro.utils.validation import check_integer, check_probability

__all__ = ["GossipGraph", "build_gossip_graph"]


@dataclass
class GossipGraph:
    """One realised gossip execution viewed as a random graph.

    Attributes
    ----------
    n:
        Total number of members.
    source:
        The source member (never fails).
    alive:
        Boolean mask of nonfailed members (``alive[source]`` is always True).
    fanouts:
        The fanout drawn by each member (only meaningful for alive members —
        failed members never forward).
    edges:
        Directed gossip arcs ``(x, y)`` restricted to alive sources.  Arcs
        into failed members are kept: a failed member may "receive" the
        message but never forwards it, matching the paper's two failure cases
        (crash before receiving, or after receiving but before forwarding).
    """

    n: int
    source: int
    alive: np.ndarray
    fanouts: np.ndarray
    edges: np.ndarray
    _effective_edges: np.ndarray | None = field(
        default=None, init=False, repr=False, compare=False
    )

    # ------------------------------------------------------------ queries
    def n_alive(self) -> int:
        """Return the number of nonfailed members."""
        return int(self.alive.sum())

    def effective_edges(self) -> np.ndarray:
        """Return the arcs usable for dissemination (alive source AND alive target).

        Arcs into failed members cannot contribute to further dissemination,
        so reachability over the *effective* arcs equals reachability of
        nonfailed members over the full arc set.  The filtered array is
        computed once and cached — ``reached()``, ``reliability()``, and
        ``giant_component_fraction()`` all start from it, and ``alive`` /
        ``edges`` are not meant to be mutated after construction.
        """
        if self._effective_edges is None:
            if self.edges.size == 0:
                self._effective_edges = self.edges
            else:
                keep = self.alive[self.edges[:, 0]] & self.alive[self.edges[:, 1]]
                self._effective_edges = self.edges[keep]
        return self._effective_edges

    def reached(self) -> np.ndarray:
        """Return the boolean mask of members reachable from the source."""
        return reachable_from(self.n, self.effective_edges(), self.source)

    def reliability(self) -> float:
        """Return the realised reliability: reached nonfailed members / nonfailed members."""
        alive_count = self.n_alive()
        if alive_count == 0:
            return 0.0
        reached_alive = int((self.reached() & self.alive).sum())
        return reached_alive / alive_count

    def giant_component_fraction(self) -> float:
        """Return the largest undirected component's share of nonfailed members.

        This is the analytical proxy the paper uses for reliability: the
        undirected projection of the effective gossip arcs, restricted to
        nonfailed members.
        """
        alive_count = self.n_alive()
        if alive_count == 0:
            return 0.0
        effective = self.effective_edges()
        return largest_component_size(self.n, effective) / alive_count if alive_count else 0.0

    def out_degree_of_alive(self) -> np.ndarray:
        """Return the realised out-degrees of nonfailed members."""
        degrees = np.zeros(self.n, dtype=np.int64)
        if self.edges.size:
            np.add.at(degrees, self.edges[:, 0], 1)
        return degrees[self.alive]


def build_gossip_graph(
    n: int,
    distribution: FanoutDistribution,
    q: float,
    *,
    source: int = 0,
    seed: SeedLike = None,
    method: str = "vectorized",
) -> GossipGraph:
    """Build the gossip graph of one execution of ``Gossip(n, P, q)``.

    Every member draws a fanout from ``distribution`` and selects that many
    distinct targets uniformly at random from the other members; then a
    uniform fraction ``1 - q`` of members (never the source) is marked failed.

    Parameters
    ----------
    n:
        Group size.
    distribution:
        Fanout distribution ``P``.
    q:
        Nonfailed-member ratio.
    source:
        The member that initiates gossiping (assumed never to fail).
    seed:
        RNG seed or generator.
    method:
        Edge-construction method, forwarded to
        :func:`~repro.graphs.configuration_model.directed_configuration_edges`
        (``"vectorized"`` default, ``"scalar"`` reference).
    """
    n = check_integer("n", n, minimum=1)
    q = check_probability("q", q)
    source = check_integer("source", source, minimum=0, maximum=n - 1)
    rng = as_generator(seed)

    fanouts = sample_degree_sequence(distribution, n, seed=rng, max_degree=n - 1)
    alive = rng.random(n) < q
    alive[source] = True

    # Failed members never forward: drop their out-arcs before building edges
    # (equivalent to building all arcs then filtering, but cheaper).
    effective_out = np.where(alive, fanouts, 0)
    edges = directed_configuration_edges(effective_out, seed=rng, method=method)
    return GossipGraph(n=n, source=source, alive=alive, fanouts=fanouts, edges=edges)

"""Degree (fanout) sequences of the gossip-induced random graph.

The out-degree of a member in one gossip execution is exactly its fanout, so
degree sequences are sampled straight from a
:class:`~repro.core.distributions.FanoutDistribution`.  The helpers here also
provide the empirical moments used to compare a realised graph against the
analytical generating-function predictions, and the Erdős–Gallai
graphicality check used when an *undirected* configuration-model graph is
requested.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import numpy.typing as npt

from repro.core.distributions import FanoutDistribution
from repro.utils.rng import SeedLike, as_generator
from repro.utils.validation import check_integer

__all__ = ["sample_degree_sequence", "empirical_moments", "is_graphical", "DegreeMoments"]


def sample_degree_sequence(
    dist: FanoutDistribution,
    n: int,
    *,
    seed: SeedLike = None,
    max_degree: int | None = None,
) -> np.ndarray:
    """Sample an i.i.d. degree sequence of length ``n`` from ``dist``.

    Parameters
    ----------
    dist:
        Fanout distribution to draw from.
    n:
        Number of members.
    max_degree:
        Optional cap: members cannot gossip to more targets than exist in the
        rest of the group, so simulators pass ``max_degree = n - 1``.
    """
    n = check_integer("n", n, minimum=0)
    rng = as_generator(seed)
    degrees = dist.sample(n, seed=rng)
    if max_degree is not None:
        max_degree = check_integer("max_degree", max_degree, minimum=0)
        degrees = np.minimum(degrees, max_degree)
    return degrees.astype(np.int64)


@dataclass(frozen=True)
class DegreeMoments:
    """Empirical moments of a degree sequence.

    Attributes
    ----------
    mean:
        Sample mean, estimator of ``G0'(1)``.
    second_factorial:
        Sample mean of ``k (k - 1)``, estimator of ``G0''(1)``.
    mean_excess:
        ``second_factorial / mean`` — estimator of ``G1'(1)``, whose
        reciprocal is the empirical critical ratio (Eq. 3).
    variance:
        Sample variance of the degrees.
    """

    mean: float
    second_factorial: float
    mean_excess: float
    variance: float


def empirical_moments(degrees: np.ndarray) -> DegreeMoments:
    """Compute the empirical moments of a degree sequence."""
    degrees = np.asarray(degrees, dtype=float)
    if degrees.size == 0:
        return DegreeMoments(mean=0.0, second_factorial=0.0, mean_excess=0.0, variance=0.0)
    mean = float(degrees.mean())
    second_factorial = float(np.mean(degrees * (degrees - 1.0)))
    mean_excess = second_factorial / mean if mean > 0 else 0.0
    variance = float(degrees.var())
    return DegreeMoments(
        mean=mean,
        second_factorial=second_factorial,
        mean_excess=mean_excess,
        variance=variance,
    )


def is_graphical(degrees: npt.ArrayLike) -> bool:
    """Return ``True`` iff ``degrees`` is realisable as a simple undirected graph.

    Implements the Erdős–Gallai condition.  Used by the undirected
    configuration-model builder to decide whether a sampled sequence needs the
    usual "+1 on a random entry" parity repair or must be rejected.
    """
    d = np.sort(np.asarray(degrees, dtype=np.int64))[::-1]
    n = d.size
    if n == 0:
        return True
    if np.any(d < 0) or d[0] >= n:
        return False
    if d.sum() % 2 != 0:
        return False
    prefix = np.cumsum(d)
    for k in range(1, n + 1):
        rhs = k * (k - 1) + np.sum(np.minimum(d[k:], k))
        if prefix[k - 1] > rhs:
            return False
    return True

"""repro — fault-tolerance modeling of gossip-based reliable multicast.

Reproduction of Fan, Cao, Wu, Raynal, "On Modeling Fault Tolerance of
Gossip-Based Reliable Multicast Protocols", ICPP 2008.

The package is organised as:

* :mod:`repro.core` — the analytical model (fanout distributions, generating
  functions, percolation, reliability and success of gossiping).
* :mod:`repro.graphs` — generalized random-graph substrate (configuration
  model, components, gossip-induced graphs).
* :mod:`repro.simulation` — Monte-Carlo and event-driven simulators of the
  general gossip algorithm with fail-stop failures.
* :mod:`repro.protocols` — baseline reliable-multicast protocols used for
  comparison (fixed fanout, pbcast-style, lpbcast-style, RDG-style, flooding).
* :mod:`repro.analysis` — sweeps, analysis-vs-simulation comparison,
  goodness-of-fit utilities, and the certified dimensioning solvers
  (:func:`~repro.analysis.dimensioning.dimension_fanout`,
  :func:`~repro.analysis.dimensioning.dimension_pareto`).
* :mod:`repro.serving` — dimensioning as a service: precomputed certified
  reliability surfaces, interpolated microsecond queries, and the
  JSON-lines serving loop behind ``repro serve``.
* :mod:`repro.experiments` — one driver per registered experiment: the
  paper's figures plus the extension planes (see ``docs/EXPERIMENTS.md``).

See ``docs/ARCHITECTURE.md`` for how the layers stack onto the paper's
equations (Eqs. 3-4, 11, 12).
"""

from repro.core import (
    BinomialFanout,
    EmpiricalFanout,
    FanoutDistribution,
    FixedFanout,
    GeneratingFunction,
    GeometricFanout,
    GossipModel,
    MixtureFanout,
    PercolationResult,
    PoissonFanout,
    ReliabilityModel,
    SuccessModel,
    UniformFanout,
    ZipfFanout,
    critical_mean_fanout,
    critical_ratio,
    giant_component_size,
    mean_component_size,
    mean_fanout_for_reliability,
    min_executions,
    percolation_analysis,
    poisson_critical_fanout,
    poisson_critical_ratio,
    poisson_reliability,
    reliability,
    reliability_curve,
    required_fanout_poisson,
    success_count_pmf,
    success_probability,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "FanoutDistribution",
    "PoissonFanout",
    "FixedFanout",
    "BinomialFanout",
    "GeometricFanout",
    "UniformFanout",
    "ZipfFanout",
    "EmpiricalFanout",
    "MixtureFanout",
    "GeneratingFunction",
    "PercolationResult",
    "critical_ratio",
    "critical_mean_fanout",
    "giant_component_size",
    "mean_component_size",
    "percolation_analysis",
    "ReliabilityModel",
    "reliability",
    "reliability_curve",
    "required_fanout_poisson",
    "success_probability",
    "min_executions",
    "success_count_pmf",
    "SuccessModel",
    "poisson_reliability",
    "poisson_critical_ratio",
    "poisson_critical_fanout",
    "mean_fanout_for_reliability",
    "GossipModel",
]

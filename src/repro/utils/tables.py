"""Tiny fixed-width table formatting used by benchmarks and examples.

The benchmark harness prints the same rows/series the paper reports; this
module keeps that formatting in one place so output stays uniform and is easy
to test.
"""

from __future__ import annotations

from typing import Iterable, Sequence


def format_row(values: Sequence, widths: Sequence[int], precision: int = 4) -> str:
    """Format one row of mixed str/float/int cells with per-column widths."""
    if len(values) != len(widths):
        raise ValueError("values and widths must have the same length")
    cells = []
    for value, width in zip(values, widths, strict=True):
        if isinstance(value, bool):
            text = str(value)
        elif isinstance(value, float):
            text = f"{value:.{precision}f}"
        else:
            text = str(value)
        cells.append(text.rjust(width))
    return " ".join(cells)


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence],
    precision: int = 4,
    min_width: int = 8,
) -> str:
    """Render a complete fixed-width table with a header separator line."""
    rows = [list(r) for r in rows]
    for row in rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but table has {len(headers)} headers"
            )
    widths = [max(min_width, len(h)) for h in headers]
    for row in rows:
        for j, value in enumerate(row):
            text = f"{value:.{precision}f}" if isinstance(value, float) else str(value)
            widths[j] = max(widths[j], len(text))
    lines = [format_row(headers, widths, precision)]
    lines.append(" ".join("-" * w for w in widths))
    for row in rows:
        lines.append(format_row(row, widths, precision))
    return "\n".join(lines)


def format_series(name: str, xs: Sequence[float], ys: Sequence[float], precision: int = 4) -> str:
    """Render a named (x, y) series as two aligned columns under a title."""
    if len(xs) != len(ys):
        raise ValueError("xs and ys must have the same length")
    body = format_table(["x", name], list(zip(xs, ys, strict=True)), precision=precision)
    return body

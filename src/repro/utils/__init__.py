"""Shared utilities: RNG management, validation, formatting, parallel helpers."""

from repro.utils.rng import as_generator, spawn_generators, seed_sequence
from repro.utils.validation import (
    check_probability,
    check_positive,
    check_non_negative,
    check_in_range,
    check_integer,
)

__all__ = [
    "as_generator",
    "spawn_generators",
    "seed_sequence",
    "check_probability",
    "check_positive",
    "check_non_negative",
    "check_in_range",
    "check_integer",
]

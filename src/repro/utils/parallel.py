"""Optional process-parallel map used by the Monte-Carlo runner.

The simulator is fast enough that most experiments run serially, but large
sweeps (n=5000, many (fanout, q) pairs, many replicas) benefit from using the
available cores.  ``parallel_map`` degrades gracefully to a serial loop when
``processes <= 1`` or when the work list is tiny, so tests and benchmarks can
force deterministic serial execution.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from typing import Callable, Iterable, Sequence, TypeVar

T = TypeVar("T")
R = TypeVar("R")


def default_processes() -> int:
    """Return a conservative default worker count (leave one core free)."""
    cpus = os.cpu_count() or 1
    return max(1, cpus - 1)


def parallel_map(
    func: Callable[[T], R],
    items: Sequence[T] | Iterable[T],
    *,
    processes: int | None = None,
    chunksize: int = 1,
    serial_threshold: int = 4,
) -> list[R]:
    """Map ``func`` over ``items``, optionally across processes.

    Parameters
    ----------
    func:
        A picklable callable (module-level function or functools.partial of
        one) applied to each item.
    items:
        Work items; converted to a list so the result order always matches.
    processes:
        Worker count.  ``None`` uses :func:`default_processes`; values <= 1
        run serially in the calling process.
    chunksize:
        Forwarded to :meth:`ProcessPoolExecutor.map`.
    serial_threshold:
        Work lists at or below this size are run serially regardless of
        ``processes`` — the pool start-up cost dominates for tiny batches.
    """
    items = list(items)
    if processes is None:
        processes = default_processes()
    if processes <= 1 or len(items) <= serial_threshold:
        return [func(item) for item in items]
    with ProcessPoolExecutor(max_workers=processes) as pool:
        return list(pool.map(func, items, chunksize=max(1, chunksize)))

"""Argument-validation helpers shared across the library.

All helpers raise ``ValueError`` (or ``TypeError`` for wrong types) with a
message naming the offending parameter, and return the validated value so
they can be used inline::

    self.fanout = check_positive("fanout", fanout)
"""

from __future__ import annotations

import math
import numbers


def check_probability(
    name: str, value: object, *, allow_zero: bool = True, allow_one: bool = True
) -> float:
    """Validate that ``value`` is a probability in [0, 1]."""
    value = check_real(name, value)
    lo_ok = value > 0.0 or (allow_zero and value == 0.0)
    hi_ok = value < 1.0 or (allow_one and value == 1.0)
    if not (lo_ok and hi_ok):
        lo = "[0" if allow_zero else "(0"
        hi = "1]" if allow_one else "1)"
        raise ValueError(f"{name} must be a probability in {lo}, {hi}, got {value!r}")
    return float(value)


def check_real(name: str, value: object) -> float:
    """Validate that ``value`` is a finite real number."""
    if isinstance(value, bool) or not isinstance(value, numbers.Real):
        raise TypeError(f"{name} must be a real number, got {type(value).__name__}")
    value = float(value)
    if not math.isfinite(value):
        raise ValueError(f"{name} must be finite, got {value!r}")
    return value


def check_positive(name: str, value: object) -> float:
    """Validate that ``value`` is a finite real number > 0."""
    value = check_real(name, value)
    if value <= 0:
        raise ValueError(f"{name} must be > 0, got {value!r}")
    return value


def check_non_negative(name: str, value: object) -> float:
    """Validate that ``value`` is a finite real number >= 0."""
    value = check_real(name, value)
    if value < 0:
        raise ValueError(f"{name} must be >= 0, got {value!r}")
    return value


def check_in_range(
    name: str, value: object, lo: float, hi: float, *, inclusive: bool = True
) -> float:
    """Validate that ``value`` lies in ``[lo, hi]`` (or ``(lo, hi)``)."""
    value = check_real(name, value)
    if inclusive:
        ok = lo <= value <= hi
        bounds = f"[{lo}, {hi}]"
    else:
        ok = lo < value < hi
        bounds = f"({lo}, {hi})"
    if not ok:
        raise ValueError(f"{name} must be in {bounds}, got {value!r}")
    return value


def check_integer(
    name: str, value: object, *, minimum: int | None = None, maximum: int | None = None
) -> int:
    """Validate that ``value`` is an integer within optional bounds."""
    if isinstance(value, bool) or not isinstance(value, numbers.Integral):
        raise TypeError(f"{name} must be an integer, got {type(value).__name__}")
    value = int(value)
    if minimum is not None and value < minimum:
        raise ValueError(f"{name} must be >= {minimum}, got {value}")
    if maximum is not None and value > maximum:
        raise ValueError(f"{name} must be <= {maximum}, got {value}")
    return value


def check_node_id(name: str, value: object, n: int) -> int:
    """Validate that ``value`` is a node identifier in ``[0, n)``."""
    return check_integer(name, value, minimum=0, maximum=n - 1)


def check_choice(name: str, value: str, options: tuple[str, ...]) -> str:
    """Validate that ``value`` is one of the allowed string ``options``."""
    if value not in options:
        allowed = " or ".join(repr(option) for option in options)
        raise ValueError(f"{name} must be {allowed}, got {value!r}")
    return value


def check_sample_shape(name: str, value: object) -> int | tuple[int, ...]:
    """Validate a sampling ``size``: a non-negative int or a tuple of them.

    Scalar sizes return an ``int``; tuple sizes return a tuple so they can be
    forwarded directly to numpy's ``size=`` arguments (ensemble workloads
    draw ``(replicas, members)``-shaped fanout matrices in one call).
    """
    if isinstance(value, tuple):
        return tuple(check_integer(f"{name}[{i}]", v, minimum=0) for i, v in enumerate(value))
    return check_integer(name, value, minimum=0)

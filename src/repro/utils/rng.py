"""Random-number-generator management.

Every stochastic entry point in the library accepts a ``seed`` argument that
may be ``None``, an integer, a :class:`numpy.random.SeedSequence`, or an
existing :class:`numpy.random.Generator`.  These helpers normalise that
argument so Monte-Carlo experiments are reproducible by construction and so
independent replicas receive statistically independent streams.
"""

from __future__ import annotations

from typing import Iterable, Sequence, TypeAlias

import numpy as np

#: Anything the ``seed`` arguments accept: ``None`` (fresh entropy), an
#: integer, a ``SeedSequence``, or an existing ``Generator``.
SeedLike: TypeAlias = "int | None | np.random.SeedSequence | np.random.Generator"


def as_generator(seed: SeedLike = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``seed``.

    Parameters
    ----------
    seed:
        ``None`` (non-deterministic entropy), an ``int``, a
        :class:`numpy.random.SeedSequence`, or an existing ``Generator``
        (returned unchanged).

    Examples
    --------
    >>> g = as_generator(123)
    >>> g2 = as_generator(g)
    >>> g is g2
    True
    """
    if isinstance(seed, np.random.Generator):
        return seed
    if isinstance(seed, np.random.SeedSequence):
        return np.random.default_rng(seed)
    return np.random.default_rng(seed)


def seed_sequence(seed: SeedLike = None) -> np.random.SeedSequence:
    """Return a :class:`numpy.random.SeedSequence` for ``seed``.

    A ``Generator`` argument is not accepted here because a generator cannot
    be converted back into a seed sequence without consuming its stream.
    """
    if isinstance(seed, np.random.Generator):
        raise TypeError(
            "seed_sequence() cannot accept a Generator; pass an int, None, or SeedSequence"
        )
    if isinstance(seed, np.random.SeedSequence):
        return seed
    return np.random.SeedSequence(seed)


def spawn_generators(n: int, seed: SeedLike = None) -> list[np.random.Generator]:
    """Spawn ``n`` independent generators derived from ``seed``.

    Used by the Monte-Carlo runner so every replica gets an independent
    stream regardless of execution order (serial or process-parallel).
    """
    if n < 0:
        raise ValueError(f"n must be >= 0, got {n}")
    if isinstance(seed, np.random.Generator):
        # Derive children by drawing entropy from the parent stream.
        children = seed.integers(0, 2**63 - 1, size=n, dtype=np.int64)
        return [np.random.default_rng(int(c)) for c in children]
    ss = seed_sequence(seed)
    return [np.random.default_rng(child) for child in ss.spawn(n)]


def spawn_seeds(n: int, seed: SeedLike = None) -> list[int]:
    """Return ``n`` independent integer seeds derived from ``seed``.

    Integer seeds (rather than generator objects) are picklable and therefore
    safe to ship to worker processes.
    """
    if n < 0:
        raise ValueError(f"n must be >= 0, got {n}")
    if isinstance(seed, np.random.Generator):
        return [int(s) for s in seed.integers(0, 2**63 - 1, size=n, dtype=np.int64)]
    ss = seed_sequence(seed)
    return [int(child.generate_state(1, dtype=np.uint64)[0] % (2**63 - 1)) for child in ss.spawn(n)]


def interleave_choice(rng: np.random.Generator, pools: Sequence[Iterable[int]]) -> list[int]:
    """Pick one element uniformly at random from each pool.

    Small helper used by membership views when building heterogeneous
    neighbour sets; kept here so it can be unit-tested in isolation.
    """
    out: list[int] = []
    for pool in pools:
        pool = list(pool)
        if not pool:
            raise ValueError("cannot choose from an empty pool")
        out.append(pool[int(rng.integers(0, len(pool)))])
    return out

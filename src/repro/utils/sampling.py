"""Shared distinct-sampling kernels for the simulator and the graph layer.

Both hot paths of the library reduce to the same primitive — "draw ``k``
distinct integers uniformly at random from a population" — applied at two
granularities:

* :func:`sample_distinct` — one draw (Floyd's algorithm with a numpy
  partial-permutation crossover).  Used by the scalar simulators and the
  round-based protocol baselines.
* :func:`sample_distinct_rows` — a whole batch of draws as one array
  program (with :func:`sample_distinct_rows_excluding` layering the
  ubiquitous "never draw yourself" exclusion on top): draw every row
  **with replacement** in a single operation and
  redraw the rare rows that contain a collision, falling back to an exact
  random-key top-``k`` (argpartition over uniform keys — a Gumbel-top-k with
  uniform instead of Gumbel noise, identical selection law) for rows whose
  ``k`` is a large fraction of the population.  This is the engine behind
  :meth:`repro.simulation.membership.MembershipView.sample_targets_batch`
  (the batched Monte-Carlo simulator) and
  :func:`repro.graphs.configuration_model.directed_configuration_edges`
  (the batched graph-percolation ensemble), so the two layers cannot drift
  apart statistically.

The module lives under :mod:`repro.utils` because it must not depend on
either the simulation or the graph subpackage.
"""

from __future__ import annotations

import numpy as np

__all__ = ["sample_distinct", "sample_distinct_rows", "sample_distinct_rows_excluding"]

#: Above this ``k * _NUMPY_CROSSOVER >= population`` threshold the scalar
#: sampler uses a numpy partial permutation instead of the Python Floyd loop:
#: Floyd costs ~k Python-level iterations while the permutation costs O(pop)
#: numpy work, so the crossover sits at k ≈ population / 32.
_NUMPY_CROSSOVER = 32

#: Rejection-sampling retry budget of the batched sampler before a row falls
#: back to the exact random-key path.
_MAX_REJECTION_ROUNDS = 6

#: Element budget of one random-key matrix chunk (rows × population); keeps
#: the fallback path's memory bounded for huge batches.
_KEY_CHUNK_ELEMENTS = 1 << 24


def sample_distinct(
    rng: np.random.Generator, population: int, k: int, exclude: int | None = None
) -> np.ndarray:
    """Sample ``k`` distinct integers from ``[0, population)`` excluding ``exclude``.

    Small ``k`` uses Floyd's algorithm (O(k) expected work); once ``k`` is a
    sizeable fraction of the population (``k * 32 >= population``) a numpy
    partial permutation is cheaper than the Python-level Floyd loop.  If
    ``k`` exceeds the number of available values it is truncated.
    """
    if population <= 0:
        return np.empty(0, dtype=np.int64)
    has_exclude = exclude is not None and 0 <= exclude < population
    available = population - (1 if has_exclude else 0)
    k = min(int(k), available)
    if k <= 0:
        return np.empty(0, dtype=np.int64)
    # Sample from the virtual slot range [0, m) with the excluded value (if
    # any) removed; indices >= exclude are shifted up by one afterwards.
    m = available
    if k * _NUMPY_CROSSOVER >= m:
        arr = rng.permutation(m)[:k].astype(np.int64)
    else:
        chosen: set[int] = set()
        for j in range(m - k, m):
            t = int(rng.integers(0, j + 1))
            chosen.add(t if t not in chosen else j)
        arr = np.fromiter(chosen, dtype=np.int64, count=len(chosen))
    if has_exclude:
        arr[arr >= exclude] += 1
    return arr


def sample_distinct_rows(
    rng: np.random.Generator, population: int, ks: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Draw ``ks[i]`` distinct integers from ``[0, population)`` for every row ``i``.

    Returns ``(matrix, valid)`` where ``matrix`` has shape
    ``(len(ks), max(ks))`` and ``valid[i, j]`` marks the ``ks[i]`` meaningful
    entries of row ``i`` (the rest is junk padding).  Each row is an
    independent uniform distinct sample.  The matrix dtype is the smallest
    integer type that holds the population (int32 below ~2³¹ — at millions
    of rows the draw/sort memory traffic dominates, so halving the element
    width is a measurable win); callers upcast on demand.

    Strategy: draw every row **with replacement** in one array operation and
    redraw only the rows that contain a collision — for the gossip regime
    (fanout ≈ 4, population ≈ thousands) collisions hit ~``k²/2·pop`` of the
    rows so one pass nearly always suffices.  Rows whose ``k`` is a large
    fraction of the population (rejection would thrash) and rows that exhaust
    the retry budget use an exact random-key top-``k``: uniform keys per
    candidate, ``argpartition`` for the ``k`` smallest (a Gumbel-top-k with
    uniform instead of Gumbel noise — identical selection law).
    """
    ks = np.minimum(np.asarray(ks, dtype=np.int64), population)
    m = ks.size
    kmax = int(ks.max()) if m else 0
    if m == 0 or kmax <= 0 or population <= 0:
        valid = np.zeros((m, 0), dtype=bool)
        return np.zeros((m, 0), dtype=np.int64), valid
    cols = np.arange(kmax, dtype=np.int64)
    valid = cols[None, :] < ks[:, None]
    dtype = np.int32 if population + kmax < np.iinfo(np.int32).max else np.int64

    # Rows where the expected collision count is large go straight to the
    # exact path; rejection would redraw them over and over.
    direct = ks * ks > 4 * population
    key_rows = np.flatnonzero(direct)
    # Padding values `population + col` are distinct within a row and never
    # collide with real draws, so the duplicate scan can sort whole rows.
    pad = (population + cols).astype(dtype)
    # First round: draw for EVERY row and let the output own the draw matrix.
    # Redrawing only the rare collision rows afterwards avoids the two
    # full-size fancy-indexed copies a "copy the accepted rows" formulation
    # costs (the dominant expense at millions of rows).  Direct rows receive
    # throwaway draws here; the exact path overwrites them below.  The
    # duplicate scan deliberately includes the padding cells beyond each
    # row's k (their draws are junk): a junk-cell collision only sends the
    # row through one more redraw, which is far cheaper than masking every
    # cell of the full matrix.
    out = rng.integers(0, population, size=(m, kmax), dtype=dtype)
    work = np.sort(out, axis=1)
    dup = (work[:, 1:] == work[:, :-1]).any(axis=1)
    rej = np.flatnonzero(dup & ~direct)
    for _ in range(_MAX_REJECTION_ROUNDS - 1):
        if not rej.size:
            break
        draws = rng.integers(0, population, size=(rej.size, kmax), dtype=dtype)
        work = np.where(valid[rej], draws, pad)
        work.sort(axis=1)
        dup = (work[:, 1:] == work[:, :-1]).any(axis=1)
        ok = ~dup
        out[rej[ok]] = draws[ok]
        rej = rej[dup]
    if rej.size:
        key_rows = np.concatenate([key_rows, rej])

    # Exact fallback: per row, the k smallest of `population` uniform keys
    # form a uniform k-subset.  Chunked so the key matrix stays bounded.
    if key_rows.size:
        chunk = max(1, _KEY_CHUNK_ELEMENTS // max(1, population))
        for start in range(0, key_rows.size, chunk):
            sub = key_rows[start : start + chunk]
            kb = int(ks[sub].max())
            keys = rng.random((sub.size, population))
            if kb < population:
                part = np.argpartition(keys, kb - 1, axis=1)[:, :kb]
                part_keys = np.take_along_axis(keys, part, axis=1)
                order = np.argsort(part_keys, axis=1)
                sel = np.take_along_axis(part, order, axis=1)
            else:
                sel = np.argsort(keys, axis=1)
            out[sub, :kb] = sel[:, :kb]
    return out, valid


def sample_distinct_rows_excluding(
    rng: np.random.Generator, population: int, ks: np.ndarray, exclude: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Row-wise distinct draws from ``[0, population)`` with one excluded value per row.

    ``exclude[i]`` is removed from row ``i``'s candidate set — the "never
    gossip to yourself" rule every membership view and overlay builder needs.
    Implemented as a draw from the ``population - 1`` *virtual* slots with
    the excluded value deleted; drawn slots ``>= exclude[i]`` shift up by one
    to restore real identifiers.  Returns ``(matrix, valid)`` exactly like
    :func:`sample_distinct_rows` (``ks`` is additionally clipped to
    ``population - 1``); the shift happens in place on the freshly drawn
    matrix, so no extra copy is made.
    """
    ks = np.minimum(np.asarray(ks, dtype=np.int64), population - 1)
    matrix, valid = sample_distinct_rows(rng, population - 1, ks)
    if matrix.shape[1]:
        matrix += matrix >= np.asarray(exclude)[:, None]
    return matrix, valid

"""repro.serving — dimensioning as a service.

The serving subsystem turns the repository's slow-but-certified
dimensioning answers into a fast query service, in three layers:

* :mod:`repro.serving.surface` — **precompute**:
  :func:`~repro.serving.surface.build_surface` fills a rectilinear
  ``(n, q, loss, fanout, rounds)`` grid with batched Monte-Carlo
  reliability estimates, one Wilson interval per cell, and persists the
  result (``.npz`` arrays + JSON manifest keyed by engine version,
  protocol, seed, and grid spec).  :func:`~repro.serving.surface.load_surface`
  refuses any artifact whose manifest disagrees with its arrays.
* :mod:`repro.serving.query` — **serve**:
  :class:`~repro.serving.query.SurfaceQueryEngine` interpolates answers in
  microseconds behind a deterministic LRU cache, keeping every answer
  certifiable (served ``ci_low`` = the minimum over the enclosing cell
  corners).  :func:`~repro.serving.query.dimension_from_surface` answers
  the inverse question with a live-solver fallback off-grid, and
  :func:`~repro.serving.query.pareto_from_surface` serves the joint
  ``(fanout, rounds)`` frontier.
* :mod:`repro.serving.serve` — **speak**: a JSON-lines request loop
  (``repro serve`` / ``repro query`` in the CLI).

See ``docs/ARCHITECTURE.md`` for how this layer sits on top of the
simulation engines, and the ``surface_dimensioning`` experiment for the
served-vs-live agreement and speedup evidence.
"""

from repro.serving.query import (
    LRUCache,
    ServedDimensioning,
    ServedReliability,
    SurfaceCoverageError,
    SurfaceQueryEngine,
    dimension_from_surface,
    pareto_from_surface,
)
from repro.serving.serve import handle_request, serve_loop
from repro.serving.surface import (
    GOSSIP_PROTOCOLS,
    SURFACE_FORMAT_VERSION,
    ReliabilitySurface,
    SurfaceGrid,
    SurfaceValidationError,
    build_surface,
    load_surface,
)

__all__ = [
    "SURFACE_FORMAT_VERSION",
    "GOSSIP_PROTOCOLS",
    "SurfaceGrid",
    "ReliabilitySurface",
    "SurfaceValidationError",
    "build_surface",
    "load_surface",
    "SurfaceCoverageError",
    "ServedReliability",
    "ServedDimensioning",
    "LRUCache",
    "SurfaceQueryEngine",
    "dimension_from_surface",
    "pareto_from_surface",
    "handle_request",
    "serve_loop",
]

"""Certified reliability surfaces — precompute once, serve forever.

:func:`repro.analysis.dimensioning.dimension_fanout` re-simulates per query
(seconds per answer), which is the right tool for a one-off design study and
the wrong tool for a service answering millions of "what fanout do I need?"
queries.  The paper's reliability model ``R(q, P)`` is a smooth surface over
a small parameter space, so this module precomputes it once on a rectilinear
``(n, q, loss, fanout, rounds)`` grid with a **Wilson confidence interval
per cell**, and persists the result as a versioned artifact that the query
layer (:mod:`repro.serving.query`) interpolates in microseconds.

Three public entry points:

* :class:`SurfaceGrid` — the rectilinear grid specification (strictly
  increasing axes; a ``rounds`` axis of ``(0,)`` marks a horizon-free
  gossip surface).
* :func:`build_surface` — fill the grid by chunked calls into the batched
  Monte-Carlo engines (:func:`~repro.simulation.gossip.simulate_gossip_batch`
  or :func:`~repro.simulation.protocol_batch.simulate_protocol_batch`),
  one independent pre-spawned seed per cell so any process-pool layout
  reproduces bit-identically.
* :meth:`ReliabilitySurface.save` / :func:`load_surface` — persistence as a
  ``.npz`` array file plus a JSON manifest keyed by engine version,
  protocol, seed, and grid spec.  Loading validates *strictly*: a manifest
  whose format version, engine version, seed, checksum, or grid disagrees
  with the arrays is refused with :class:`SurfaceValidationError` rather
  than served from.

Units: ``q`` and ``loss`` are probabilities in ``[0, 1]``; ``fanout`` is a
mean fanout (messages per infected member per activation); ``rounds`` is a
protocol round horizon (dimensionless count); reliability cells are expected
fractions of nonfailed members reached, in ``[0, 1]``; ``cost`` cells are
payload messages per member (messages, dimensionless).

Example
-------
>>> grid = SurfaceGrid(ns=(64,), qs=(0.8, 1.0), losses=(0.0,),
...                    fanouts=(2.0, 6.0))
>>> surface = build_surface(grid, repetitions=16, seed=7)
>>> surface.mean.shape  # (n, q, loss, fanout, rounds)
(1, 2, 1, 2, 1)
>>> bool(surface.ci_low[0, 1, 0, 1, 0] > surface.ci_low[0, 1, 0, 0, 0])
True
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator

import numpy as np

import repro
from repro.analysis.dimensioning import wilson_interval
from repro.core.distributions import FanoutDistribution, PoissonFanout
from repro.simulation.gossip import simulate_gossip_batch
from repro.simulation.network import NetworkModel
from repro.simulation.protocol_batch import simulate_protocol_batch
from repro.utils.parallel import parallel_map
from repro.utils.rng import spawn_seeds
from repro.utils.validation import check_integer, check_probability

__all__ = [
    "SURFACE_FORMAT_VERSION",
    "GOSSIP_PROTOCOLS",
    "SurfaceValidationError",
    "SurfaceGrid",
    "ReliabilitySurface",
    "build_surface",
    "load_surface",
]

#: On-disk format version; bumped whenever the artifact layout changes.
SURFACE_FORMAT_VERSION = 1

#: Horizon-free surface ids: ``gossip-<family>`` runs the batched gossip
#: engine with the named fanout-distribution family (the paper's general
#: gossip algorithm, no round horizon).  Any other protocol id is resolved
#: through :func:`repro.experiments.protocol_comparison.protocol_zoo`.
GOSSIP_PROTOCOLS = ("gossip-poisson", "gossip-fixed", "gossip-geometric", "gossip-uniform")


class SurfaceValidationError(ValueError):
    """A surface artifact failed strict load-time validation (refuse to serve)."""


def _check_axis(name: str, values: Iterable[float], *, integral: bool = False) -> tuple:
    """Validate one grid axis: non-empty, finite, strictly increasing."""
    values = tuple(float(v) for v in values)
    if not values:
        raise ValueError(f"{name} axis must be non-empty")
    if not all(np.isfinite(values)):
        raise ValueError(f"{name} axis must be finite, got {values}")
    if any(b <= a for a, b in zip(values, values[1:], strict=False)):
        raise ValueError(f"{name} axis must be strictly increasing, got {values}")
    if integral:
        if any(v != int(v) for v in values):
            raise ValueError(f"{name} axis must be integer-valued, got {values}")
        return tuple(int(v) for v in values)
    return values


@dataclass(frozen=True)
class SurfaceGrid:
    """Rectilinear grid specification of a reliability surface.

    Parameters
    ----------
    ns:
        Group sizes (strictly increasing integers, each >= 2).
    qs:
        Nonfailed-ratio axis, probabilities in ``(0, 1]``.
    losses:
        Per-message loss-probability axis, in ``[0, 1)``.
    fanouts:
        Mean-fanout axis (positive reals; integer-valued for protocol
        surfaces, which dimension an integer per-member fanout).
    rounds:
        Round-horizon axis.  ``(0,)`` (the default) marks a horizon-free
        gossip surface: the engine runs every replica to quiescence and the
        axis is degenerate.  Protocol surfaces use horizons >= 1.

    Example
    -------
    >>> grid = SurfaceGrid(ns=(100,), qs=(0.9, 1.0), losses=(0.0, 0.2),
    ...                    fanouts=(2.0, 4.0, 8.0))
    >>> grid.shape
    (1, 2, 2, 3, 1)
    >>> len(list(grid.cells()))
    12
    """

    ns: tuple
    qs: tuple
    losses: tuple
    fanouts: tuple
    rounds: tuple = (0,)

    def __post_init__(self) -> None:
        object.__setattr__(self, "ns", _check_axis("ns", self.ns, integral=True))
        object.__setattr__(self, "qs", _check_axis("qs", self.qs))
        object.__setattr__(self, "losses", _check_axis("losses", self.losses))
        object.__setattr__(self, "fanouts", _check_axis("fanouts", self.fanouts))
        object.__setattr__(self, "rounds", _check_axis("rounds", self.rounds, integral=True))
        for n in self.ns:
            check_integer("n", n, minimum=2)
        for q in self.qs:
            check_probability("q", q, allow_zero=False)
        for loss in self.losses:
            check_probability("loss", loss, allow_one=False)
        if any(f <= 0 for f in self.fanouts):
            raise ValueError(f"fanouts must be positive, got {self.fanouts}")
        if any(r < 0 for r in self.rounds):
            raise ValueError(f"rounds must be >= 0, got {self.rounds}")
        if 0 in self.rounds and len(self.rounds) > 1:
            raise ValueError("a horizon-free rounds axis must be exactly (0,)")

    @property
    def shape(self) -> tuple:
        """Array shape of the surface: ``(len(ns), len(qs), len(losses), len(fanouts), len(rounds))``."""
        return (len(self.ns), len(self.qs), len(self.losses), len(self.fanouts), len(self.rounds))

    @property
    def axes(self) -> tuple:
        """The five axes in array order: ``(ns, qs, losses, fanouts, rounds)``."""
        return (self.ns, self.qs, self.losses, self.fanouts, self.rounds)

    def cells(self) -> Iterator[tuple]:
        """Yield ``(index_tuple, n, q, loss, fanout, rounds)`` in C (row-major) order."""
        for index in np.ndindex(self.shape):
            i, j, k, m, r = index
            yield (index, self.ns[i], self.qs[j], self.losses[k], self.fanouts[m], self.rounds[r])

    def to_manifest(self) -> dict:
        """Return the JSON-serialisable grid spec for the artifact manifest."""
        return {
            "ns": list(self.ns),
            "qs": list(self.qs),
            "losses": list(self.losses),
            "fanouts": list(self.fanouts),
            "rounds": list(self.rounds),
        }

    @classmethod
    def from_manifest(cls, spec: dict) -> "SurfaceGrid":
        """Rebuild a grid from its manifest spec (inverse of :meth:`to_manifest`)."""
        try:
            return cls(
                ns=tuple(spec["ns"]),
                qs=tuple(spec["qs"]),
                losses=tuple(spec["losses"]),
                fanouts=tuple(spec["fanouts"]),
                rounds=tuple(spec["rounds"]),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise SurfaceValidationError(f"invalid grid spec in manifest: {exc}") from exc


@dataclass(frozen=True)
class ReliabilitySurface:
    """A precomputed, certified reliability grid plus its provenance.

    All cell arrays share :attr:`SurfaceGrid.shape`; per cell they hold the
    Monte-Carlo mean replica reliability, its two-sided Wilson interval at
    :attr:`confidence`, and the mean payload cost in messages per member.

    Attributes
    ----------
    grid:
        The :class:`SurfaceGrid` the cells were evaluated on.
    protocol:
        Engine id: ``gossip-<family>`` (horizon-free batched gossip engine)
        or a protocol-zoo id (``pbcast``, ``flooding``, ...).
    mean, ci_low, ci_high:
        Reliability estimate and Wilson bounds per cell, each in ``[0, 1]``.
    cost:
        Mean payload messages per member per cell (dimensionless count).
    repetitions:
        Monte-Carlo replicas behind every cell.
    confidence:
        Two-sided coverage of the Wilson bounds, e.g. ``0.95``.
    seed:
        Base seed of the build; each cell used an independent spawned child.
    engine_version:
        ``repro.__version__`` the surface was built with.  Load-time
        validation refuses to serve across engine versions by default.
    conditional_on_spread:
        Whether replicas that never took off were charged as reliability 0
        (the dimensioning convention) instead of their raw tiny fraction.
    """

    grid: SurfaceGrid
    protocol: str
    mean: np.ndarray
    ci_low: np.ndarray
    ci_high: np.ndarray
    cost: np.ndarray
    repetitions: int
    confidence: float
    seed: int
    engine_version: str = field(default=repro.__version__)
    conditional_on_spread: bool = True

    def __post_init__(self) -> None:
        shape = self.grid.shape
        for name in ("mean", "ci_low", "ci_high", "cost"):
            array = np.asarray(getattr(self, name), dtype=float)
            object.__setattr__(self, name, array)
            if array.shape != shape:
                raise SurfaceValidationError(
                    f"{name} array shape {array.shape} does not match grid shape {shape}"
                )
        if not (
            np.all(self.ci_low >= -1e-12)
            and np.all(self.ci_low <= self.mean + 1e-12)
            and np.all(self.mean <= self.ci_high + 1e-12)
            and np.all(self.ci_high <= 1.0 + 1e-12)
        ):
            raise SurfaceValidationError(
                "cell bounds must satisfy 0 <= ci_low <= mean <= ci_high <= 1"
            )
        if np.any(self.cost < 0):
            raise SurfaceValidationError("cost cells must be non-negative")

    @property
    def cells(self) -> int:
        """Total number of grid cells."""
        return int(np.prod(self.grid.shape))

    def manifest(self) -> dict:
        """Return the JSON manifest describing this surface (sans checksum)."""
        return {
            "format_version": SURFACE_FORMAT_VERSION,
            "engine_version": self.engine_version,
            "protocol": self.protocol,
            "seed": int(self.seed),
            "repetitions": int(self.repetitions),
            "confidence": float(self.confidence),
            "conditional_on_spread": bool(self.conditional_on_spread),
            "grid": self.grid.to_manifest(),
        }

    def save(self, path: str | Path) -> tuple:
        """Persist as ``<path>`` (``.npz`` arrays) + ``<path stem>.manifest.json``.

        The manifest stores a SHA-256 checksum of the array file, so a
        mismatched or corrupted pair is refused at load time.  Returns the
        ``(npz_path, manifest_path)`` pair actually written.
        """
        npz_path = Path(path)
        if npz_path.suffix != ".npz":
            npz_path = npz_path.with_suffix(".npz")
        manifest_path = _manifest_path(npz_path)
        npz_path.parent.mkdir(parents=True, exist_ok=True)
        with open(npz_path, "wb") as fh:
            np.savez_compressed(
                fh,
                mean=self.mean,
                ci_low=self.ci_low,
                ci_high=self.ci_high,
                cost=self.cost,
                axis_ns=np.asarray(self.grid.ns, dtype=np.int64),
                axis_qs=np.asarray(self.grid.qs, dtype=float),
                axis_losses=np.asarray(self.grid.losses, dtype=float),
                axis_fanouts=np.asarray(self.grid.fanouts, dtype=float),
                axis_rounds=np.asarray(self.grid.rounds, dtype=np.int64),
                seed=np.asarray(self.seed, dtype=np.int64),
            )
        manifest = self.manifest()
        manifest["arrays_sha256"] = _sha256(npz_path)
        with open(manifest_path, "w") as fh:
            json.dump(manifest, fh, indent=2, sort_keys=True)
            fh.write("\n")
        return npz_path, manifest_path


def _manifest_path(npz_path: Path) -> Path:
    """Return the manifest path paired with an ``.npz`` artifact path."""
    return npz_path.with_suffix("").with_suffix(".manifest.json")


def _sha256(path: Path) -> str:
    """Return the hex SHA-256 of a file's bytes."""
    digest = hashlib.sha256()
    with open(path, "rb") as fh:
        for chunk in iter(lambda: fh.read(1 << 20), b""):
            digest.update(chunk)
    return digest.hexdigest()


def _gossip_distribution(protocol: str, fanout: float) -> FanoutDistribution:
    """Build the fanout distribution of a ``gossip-<family>`` surface cell."""
    family = protocol.removeprefix("gossip-")
    if family == "poisson":
        return PoissonFanout(float(fanout))
    from repro.analysis.sweep import default_distribution_families

    return default_distribution_families(float(fanout))[family]


def _build_cell(args: tuple) -> tuple:
    """Process-pool worker: evaluate one grid cell.

    Returns ``(mean, ci_low, ci_high, cost)`` for the cell; only plain
    scalars cross the process boundary (the protocol instance is rebuilt
    inside the worker from its id).
    """
    (protocol, n, q, loss, fanout, rounds, repetitions, confidence, conditional, seed) = args
    network = NetworkModel(loss_probability=loss) if loss > 0.0 else None
    if protocol in GOSSIP_PROTOCOLS:
        result = simulate_gossip_batch(
            n,
            _gossip_distribution(protocol, fanout),
            q,
            repetitions=repetitions,
            seed=seed,
            network=network,
        )
        reliability = result.reliability()
        if conditional:
            reliability = np.where(result.spread_occurred(), reliability, 0.0)
        cost = float(np.mean(result.messages_sent / n))
    else:
        from repro.experiments.protocol_comparison import protocol_zoo

        zoo = dict(protocol_zoo(int(round(fanout)), int(rounds), include_peer_sampling=True,
                                include_recovery=True))
        result = simulate_protocol_batch(
            zoo[protocol], n, q, repetitions=repetitions, seed=seed, network=network
        )
        reliability = result.reliability()
        cost = float(np.mean(result.payload_messages_per_member()))
    lo, hi = wilson_interval(float(np.sum(reliability)), len(reliability), confidence)
    return float(np.mean(reliability)), lo, hi, cost


def build_surface(
    grid: SurfaceGrid,
    *,
    protocol: str = "gossip-poisson",
    repetitions: int = 96,
    confidence: float = 0.95,
    conditional_on_spread: bool = True,
    seed: int = 0,
    processes: int | None = 1,
) -> ReliabilitySurface:
    """Fill a :class:`SurfaceGrid` with certified Monte-Carlo reliability cells.

    Parameters
    ----------
    grid:
        The rectilinear grid to evaluate.
    protocol:
        ``gossip-<family>`` (horizon-free batched gossip engine; the grid's
        rounds axis must be the ``(0,)`` sentinel) or a protocol-zoo id
        (``flooding``, ``pbcast``, ``lpbcast``, ``rdg``, ``fixed-fanout``,
        ``random-fanout``, ``hyparview``, ``lazy-push``, ``anti-entropy``;
        requires round horizons >= 1 and integer fanouts).
    repetitions:
        Monte-Carlo replicas per cell (the certificate width shrinks like
        ``1/sqrt(repetitions)``).
    confidence:
        Two-sided Wilson coverage per cell, e.g. ``0.95``.
    conditional_on_spread:
        Charge gossip replicas that never took off as reliability 0 (the
        dimensioning convention; ignored for protocol surfaces).
    seed:
        Base seed; every cell draws an independent spawned child seed, so
        the surface is bit-identical for any ``processes`` value.
    processes:
        Worker processes for fanning cells out (``1`` = serial, ``None`` =
        one per core).

    Returns
    -------
    ReliabilitySurface
        The filled surface, ready to :meth:`~ReliabilitySurface.save` or to
        wrap in a :class:`~repro.serving.query.SurfaceQueryEngine`.
    """
    check_integer("repetitions", repetitions, minimum=2)
    confidence = check_probability("confidence", confidence, allow_zero=False, allow_one=False)
    seed = check_integer("seed", seed, minimum=0)
    if protocol in GOSSIP_PROTOCOLS:
        if grid.rounds != (0,):
            raise SurfaceValidationError(
                f"gossip surfaces are horizon-free: rounds axis must be (0,), got {grid.rounds}"
            )
    else:
        if any(r < 1 for r in grid.rounds):
            raise SurfaceValidationError(
                f"protocol {protocol!r} needs round horizons >= 1, got {grid.rounds}"
            )
        if any(f != int(f) for f in grid.fanouts):
            raise SurfaceValidationError(
                f"protocol {protocol!r} dimensions integer fanouts, got {grid.fanouts}"
            )
        from repro.experiments.protocol_comparison import protocol_zoo

        known = dict(protocol_zoo(2, 2, include_peer_sampling=True, include_recovery=True))
        if protocol not in known:
            raise SurfaceValidationError(
                f"unknown protocol {protocol!r}; choose a gossip family "
                f"{GOSSIP_PROTOCOLS} or one of {sorted(known)}"
            )

    cells = list(grid.cells())
    seeds = spawn_seeds(len(cells), seed)
    work = [
        (protocol, n, q, loss, fanout, rounds, repetitions, confidence,
         conditional_on_spread, cell_seed)
        for (_, n, q, loss, fanout, rounds), cell_seed in zip(cells, seeds, strict=True)
    ]
    rows = parallel_map(_build_cell, work, processes=processes, serial_threshold=1)

    shape = grid.shape
    mean = np.empty(shape, dtype=float)
    ci_low = np.empty(shape, dtype=float)
    ci_high = np.empty(shape, dtype=float)
    cost = np.empty(shape, dtype=float)
    for (index, *_), row in zip(cells, rows, strict=True):
        mean[index], ci_low[index], ci_high[index], cost[index] = row
    return ReliabilitySurface(
        grid=grid,
        protocol=protocol,
        mean=mean,
        ci_low=ci_low,
        ci_high=ci_high,
        cost=cost,
        repetitions=repetitions,
        confidence=confidence,
        seed=seed,
        conditional_on_spread=conditional_on_spread,
    )


def load_surface(path: str | Path, *, allow_version_mismatch: bool = False) -> ReliabilitySurface:
    """Load a persisted surface with strict artifact validation.

    Every served answer inherits this surface's certificates, so loading is
    deliberately paranoid.  The following are all refused with
    :class:`SurfaceValidationError`:

    * missing array or manifest file;
    * unknown manifest ``format_version``;
    * manifest ``engine_version`` different from the running
      ``repro.__version__`` (unless ``allow_version_mismatch=True`` —
      engine behaviour changes would silently invalidate every cell);
    * SHA-256 mismatch between the manifest and the ``.npz`` bytes
      (corruption, or a manifest paired with the wrong arrays);
    * seed recorded in the arrays different from the manifest seed;
    * axes recorded in the arrays different from the manifest grid;
    * malformed cell bounds (checked by :class:`ReliabilitySurface`).

    Parameters
    ----------
    path:
        The ``.npz`` artifact path (the manifest is looked up next to it).
    allow_version_mismatch:
        Serve a surface built by a different engine version anyway (for
        offline inspection, never for production serving).
    """
    npz_path = Path(path)
    manifest_path = _manifest_path(npz_path)
    if not npz_path.exists():
        raise SurfaceValidationError(f"surface arrays not found: {npz_path}")
    if not manifest_path.exists():
        raise SurfaceValidationError(f"surface manifest not found: {manifest_path}")
    try:
        with open(manifest_path) as fh:
            manifest = json.load(fh)
    except json.JSONDecodeError as exc:
        raise SurfaceValidationError(f"unreadable manifest {manifest_path}: {exc}") from exc

    format_version = manifest.get("format_version")
    if format_version != SURFACE_FORMAT_VERSION:
        raise SurfaceValidationError(
            f"unsupported surface format_version {format_version!r} "
            f"(this engine reads {SURFACE_FORMAT_VERSION})"
        )
    engine_version = manifest.get("engine_version")
    if engine_version != repro.__version__ and not allow_version_mismatch:
        raise SurfaceValidationError(
            f"surface was built by engine {engine_version!r} but this is "
            f"{repro.__version__!r}; rebuild it (or pass allow_version_mismatch=True "
            "for offline inspection)"
        )
    expected_sha = manifest.get("arrays_sha256")
    if expected_sha != _sha256(npz_path):
        raise SurfaceValidationError(
            f"checksum mismatch for {npz_path}: the arrays do not match the manifest "
            "(corrupted file or mismatched artifact pair)"
        )

    grid = SurfaceGrid.from_manifest(manifest.get("grid", {}))
    with np.load(npz_path) as arrays:
        required = {"mean", "ci_low", "ci_high", "cost", "axis_ns", "axis_qs",
                    "axis_losses", "axis_fanouts", "axis_rounds", "seed"}
        missing = required - set(arrays.files)
        if missing:
            raise SurfaceValidationError(f"surface arrays missing keys {sorted(missing)}")
        stored_axes = (
            tuple(int(v) for v in arrays["axis_ns"]),
            tuple(float(v) for v in arrays["axis_qs"]),
            tuple(float(v) for v in arrays["axis_losses"]),
            tuple(float(v) for v in arrays["axis_fanouts"]),
            tuple(int(v) for v in arrays["axis_rounds"]),
        )
        if stored_axes != grid.axes:
            raise SurfaceValidationError(
                "grid axes recorded in the arrays disagree with the manifest grid spec"
            )
        stored_seed = int(arrays["seed"])
        if stored_seed != int(manifest.get("seed", -1)):
            raise SurfaceValidationError(
                f"seed recorded in the arrays ({stored_seed}) disagrees with the "
                f"manifest seed ({manifest.get('seed')!r})"
            )
        try:
            return ReliabilitySurface(
                grid=grid,
                protocol=str(manifest["protocol"]),
                mean=arrays["mean"],
                ci_low=arrays["ci_low"],
                ci_high=arrays["ci_high"],
                cost=arrays["cost"],
                repetitions=int(manifest["repetitions"]),
                confidence=float(manifest["confidence"]),
                seed=stored_seed,
                engine_version=str(engine_version),
                conditional_on_spread=bool(manifest["conditional_on_spread"]),
            )
        except KeyError as exc:
            raise SurfaceValidationError(f"manifest missing field {exc}") from exc

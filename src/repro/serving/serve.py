"""JSON-lines serving loop — ``repro serve`` and ``repro query``.

A deliberately tiny wire protocol so the dimensioning service can sit
behind anything that speaks pipes (a socket wrapper, a container health
check, an interactive shell): **one JSON object per line in, one JSON
object per line out**, no framing beyond the newline.

Requests (the ``op`` field selects the operation)::

    {"op": "reliability", "q": 0.9, "loss": 0.1, "fanout": 4}
    {"op": "dimension", "q": 0.9, "loss": 0.1, "target": 0.99}
    {"op": "pareto", "q": 0.9, "target": 0.99}
    {"op": "info"}
    {"op": "shutdown"}

Optional request fields: ``n`` and ``rounds`` (default to the surface's
only / largest grid value), ``objective`` (``min_fanout`` | ``min_cost``)
and ``live_fallback`` (bool, default false — a *serving* process answers
from the surface only, so its latency stays bounded) for ``dimension``,
and a free-form ``id`` echoed back verbatim for request/response
correlation.

Every response carries ``"ok": true`` plus the answer fields, or
``"ok": false`` plus ``"error"``; malformed lines never kill the loop.

Example
-------
>>> import io, json
>>> from repro.serving.surface import SurfaceGrid, build_surface
>>> surface = build_surface(
...     SurfaceGrid(ns=(64,), qs=(0.8, 1.0), losses=(0.0,), fanouts=(2.0, 8.0)),
...     repetitions=16, seed=7)
>>> out = io.StringIO()
>>> served = serve_loop(surface,
...     io.StringIO('{"op": "reliability", "q": 0.9, "loss": 0.0, "fanout": 5}\\n'),
...     out)
>>> served
1
>>> json.loads(out.getvalue())["ok"]
True
"""

from __future__ import annotations

import json
import math
from typing import Any, TextIO

from repro.serving.query import (
    SurfaceCoverageError,
    SurfaceQueryEngine,
    dimension_from_surface,
    pareto_from_surface,
)
from repro.serving.surface import ReliabilitySurface

__all__ = ["handle_request", "serve_loop"]


def _clean(value: Any) -> Any:
    """Make one value JSON-safe (NaN/inf have no JSON spelling -> None)."""
    if isinstance(value, float) and not math.isfinite(value):
        return None
    return value


def _served_fields(answer: Any) -> dict:
    """Flatten a served dataclass into JSON-safe response fields."""
    return {key: _clean(value) for key, value in vars(answer).items()}


def _default_n(engine: SurfaceQueryEngine, request: dict) -> int:
    """Resolve the group size: explicit, or the grid's only ``n`` value."""
    if "n" in request:
        return int(request["n"])
    ns = engine.surface.grid.ns
    if len(ns) == 1:
        return ns[0]
    raise ValueError(f"request must name n (the surface spans several: {list(ns)})")


def handle_request(engine: SurfaceQueryEngine, request: dict) -> dict:
    """Serve one decoded request object; never raises on bad input.

    Returns the JSON-serialisable response dict (see the module docstring
    for the wire protocol).  A ``shutdown`` response carries
    ``"shutdown": true`` so :func:`serve_loop` knows to stop reading.
    """
    if not isinstance(request, dict):
        return {"ok": False, "error": "request must be a JSON object"}
    response: dict = {"ok": True}
    if "id" in request:
        response["id"] = request["id"]
    op = request.get("op")
    try:
        if op == "reliability":
            answer = engine.query(
                n=_default_n(engine, request),
                q=float(request["q"]),
                loss=float(request.get("loss", 0.0)),
                fanout=float(request["fanout"]),
                rounds=request.get("rounds"),
            )
            response.update(_served_fields(answer))
        elif op == "dimension":
            answer = dimension_from_surface(
                engine,
                n=_default_n(engine, request),
                q=float(request["q"]),
                target_reliability=float(request["target"]),
                loss=float(request.get("loss", 0.0)),
                objective=request.get("objective", "min_fanout"),
                allow_live_fallback=bool(request.get("live_fallback", False)),
            )
            response.update(_served_fields(answer))
        elif op == "pareto":
            frontier = pareto_from_surface(
                engine,
                n=_default_n(engine, request),
                q=float(request["q"]),
                target_reliability=float(request["target"]),
                loss=float(request.get("loss", 0.0)),
            )
            response["frontier"] = [_served_fields(c) for c in frontier]
        elif op == "info":
            response["manifest"] = engine.surface.manifest()
            response["cache"] = engine.cache_info()
        elif op == "shutdown":
            response["shutdown"] = True
        else:
            response = {"ok": False, "error": f"unknown op {op!r}"}
            if "id" in request:
                response["id"] = request["id"]
    except (KeyError, TypeError, ValueError, SurfaceCoverageError) as exc:
        response = {"ok": False, "error": f"{type(exc).__name__}: {exc}"}
        if isinstance(request, dict) and "id" in request:
            response["id"] = request["id"]
    return response


def serve_loop(
    surface: ReliabilitySurface, stdin: TextIO, stdout: TextIO, *, cache_size: int = 4096
) -> int:
    """Run the JSON-lines loop until EOF or a ``shutdown`` request.

    Parameters
    ----------
    surface:
        The surface to serve (already validated by
        :func:`~repro.serving.surface.load_surface` when it came from disk).
    stdin, stdout:
        Text streams: one JSON request per input line, one JSON response
        per output line (flushed after every response, so a pipe peer sees
        answers immediately).
    cache_size:
        LRU query-cache capacity of the underlying engine.

    Returns
    -------
    int
        The number of requests answered (blank lines are skipped).
    """
    engine = SurfaceQueryEngine(surface, cache_size=cache_size)
    served = 0
    for line in stdin:
        line = line.strip()
        if not line:
            continue
        try:
            request = json.loads(line)
        except json.JSONDecodeError as exc:
            response = {"ok": False, "error": f"invalid JSON: {exc}"}
        else:
            response = handle_request(engine, request)
        stdout.write(json.dumps(response) + "\n")
        stdout.flush()
        served += 1
        if response.get("shutdown"):
            break
    return served

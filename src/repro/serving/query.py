"""Microsecond serving of precomputed reliability surfaces.

:class:`SurfaceQueryEngine` answers reliability queries by **multilinear
interpolation** over a :class:`~repro.serving.surface.ReliabilitySurface`,
with deliberately conservative certificate handling: the interpolated mean
is the usual convex combination of the enclosing cell corners, but the
served ``ci_low`` is the **minimum** over those corners (and ``ci_high``
the maximum), so every served answer remains certifiable — it can only
under-promise relative to the cells it was derived from.  A deterministic
LRU cache makes repeated queries (the hot path of a dimensioning service)
allocation-free.

:func:`dimension_from_surface` is the serving fast path for the inverse
question ("what fanout do I need?"): it scans the surface's fanout/rounds
axes for the cheapest certified candidate in microseconds and falls back to
a live :func:`~repro.analysis.dimensioning.dimension_fanout` solve only when
the query leaves the grid (or nothing on the grid certifies).

Units match :mod:`repro.serving.surface`: probabilities in ``[0, 1]``,
fanouts in messages per member per activation, rounds as dimensionless
horizons, costs in payload messages per member.

Example
-------
>>> from repro.serving.surface import SurfaceGrid, build_surface
>>> surface = build_surface(
...     SurfaceGrid(ns=(64,), qs=(0.8, 1.0), losses=(0.0,), fanouts=(2.0, 8.0)),
...     repetitions=16, seed=7)
>>> engine = SurfaceQueryEngine(surface)
>>> answer = engine.query(n=64, q=0.9, loss=0.0, fanout=5.0)
>>> bool(answer.ci_low <= answer.reliability <= answer.ci_high)
True
>>> engine.cache_info()["misses"]
1
"""

from __future__ import annotations

import math
from collections import OrderedDict
from dataclasses import dataclass
from itertools import product
from typing import Any, Callable, Hashable

from repro.serving.surface import GOSSIP_PROTOCOLS, ReliabilitySurface

__all__ = [
    "SurfaceCoverageError",
    "ServedReliability",
    "ServedDimensioning",
    "LRUCache",
    "SurfaceQueryEngine",
    "dimension_from_surface",
    "pareto_from_surface",
]

#: Relative tolerance for treating a query coordinate as an exact axis hit.
_AXIS_RTOL = 1e-9


class SurfaceCoverageError(ValueError):
    """The query lies outside the surface grid (the caller should fall back live)."""


@dataclass(frozen=True)
class ServedReliability:
    """One interpolated reliability answer with its conservative certificate.

    Attributes
    ----------
    n, q, loss, fanout, rounds:
        The query as posed (``rounds`` is 0 on horizon-free gossip surfaces).
    reliability:
        Multilinearly interpolated mean replica reliability, in ``[0, 1]``.
    ci_low, ci_high:
        Conservative Wilson envelope: ``ci_low`` is the *minimum* lower
        bound over the enclosing cell corners and ``ci_high`` the maximum
        upper bound, so the pair brackets every surface the true curve
        could be within the corners' certificates.
    cost:
        Interpolated mean payload messages per member.
    exact:
        True when the query hit a grid point on every axis (no
        interpolation; the certificate is the cell's own interval).
    """

    n: int
    q: float
    loss: float
    fanout: float
    rounds: int
    reliability: float
    ci_low: float
    ci_high: float
    cost: float
    exact: bool


@dataclass(frozen=True)
class ServedDimensioning:
    """Answer of the served inverse query ("what fanout do I need?").

    Attributes
    ----------
    n, q, target_reliability, loss, confidence:
        The problem as posed (confidence is the surface's per-cell Wilson
        coverage for surface answers, the live solver's for fallbacks).
    fanout, rounds:
        The selected candidate (``rounds`` is ``None`` on horizon-free
        surfaces and for live distribution-mode fallbacks).
    achieved_reliability, ci_low, ci_high:
        Estimate and certificate at the selected candidate; for surface
        answers these are the conservative served values, so
        ``ci_low >= target_reliability`` still certifies the answer.
    cost:
        Served payload messages per member (NaN for live fallbacks, whose
        solver does not report costs).
    source:
        ``"surface"`` when served from the precomputed grid, ``"live"``
        when the query fell back to a fresh Monte-Carlo solve.
    feasible:
        False when neither the surface nor the fallback could certify any
        candidate (then ``fanout`` is the largest candidate examined).
    """

    n: int
    q: float
    target_reliability: float
    loss: float
    confidence: float
    fanout: float
    rounds: int | None
    achieved_reliability: float
    ci_low: float
    ci_high: float
    cost: float
    source: str
    feasible: bool


class LRUCache:
    """A deterministic least-recently-used cache with observable state.

    ``functools.lru_cache`` hides its eviction order; serving wants the
    cache *testable* (eviction determinism is part of the repository's test
    surface) and instrumented, so this is a thin ordered-dict LRU whose
    :meth:`keys` exposes the exact recency order (oldest first).

    Examples
    --------
    >>> cache = LRUCache(2)
    >>> cache.put("a", 1); cache.put("b", 2)
    >>> cache.get("a")
    1
    >>> cache.put("c", 3)   # evicts "b", the least recently used
    >>> cache.keys()
    ('a', 'c')
    >>> cache.get("b") is None
    True
    >>> cache.info()["evictions"]
    1
    """

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = int(capacity)
        self._data: OrderedDict = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def get(self, key: Hashable) -> Any:
        """Return the cached value (refreshing its recency) or ``None``."""
        try:
            value = self._data[key]
        except KeyError:
            self.misses += 1
            return None
        self._data.move_to_end(key)
        self.hits += 1
        return value

    def put(self, key: Hashable, value: Any) -> None:
        """Insert a value, evicting the least recently used entry when full."""
        if key in self._data:
            self._data.move_to_end(key)
        self._data[key] = value
        if len(self._data) > self.capacity:
            self._data.popitem(last=False)
            self.evictions += 1

    def keys(self) -> tuple:
        """Return cached keys in recency order, least recently used first."""
        return tuple(self._data)

    def info(self) -> dict:
        """Return cache statistics: capacity, size, hits, misses, evictions."""
        return {
            "capacity": self.capacity,
            "size": len(self._data),
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
        }


def _bracket(axis: tuple, value: float) -> tuple:
    """Locate ``value`` on a strictly increasing axis.

    Returns ``(lo_index, hi_index, weight)`` with
    ``value = (1 - weight) * axis[lo] + weight * axis[hi]``; an exact hit
    (within relative tolerance) collapses to ``(i, i, 0.0)``.  Raises
    :class:`SurfaceCoverageError` outside ``[axis[0], axis[-1]]``.
    """
    for i, knot in enumerate(axis):
        if math.isclose(value, knot, rel_tol=_AXIS_RTOL, abs_tol=1e-12):
            return i, i, 0.0
    if value < axis[0] or value > axis[-1]:
        raise SurfaceCoverageError(
            f"value {value} outside the grid axis [{axis[0]}, {axis[-1]}]"
        )
    lo = 0
    while axis[lo + 1] < value:
        lo += 1
    weight = (value - axis[lo]) / (axis[lo + 1] - axis[lo])
    return lo, lo + 1, weight


class SurfaceQueryEngine:
    """Interpolated, cached serving of one :class:`ReliabilitySurface`.

    Parameters
    ----------
    surface:
        The precomputed surface to serve from (built or loaded).
    cache_size:
        Capacity of the LRU query cache (>= 1).
    """

    def __init__(self, surface: ReliabilitySurface, *, cache_size: int = 4096) -> None:
        self.surface = surface
        self._cache = LRUCache(cache_size)

    @property
    def protocol(self) -> str:
        """The surface's engine id (``gossip-<family>`` or a zoo protocol)."""
        return self.surface.protocol

    @property
    def horizon_free(self) -> bool:
        """True for gossip surfaces, whose rounds axis is the ``(0,)`` sentinel."""
        return self.surface.grid.rounds == (0,)

    def covers(self, *, n: int, q: float, loss: float, fanout: float,
               rounds: int | None = None) -> bool:
        """Return whether the query lies inside the grid on every axis."""
        try:
            self._locate(n, q, loss, fanout, rounds)
        except SurfaceCoverageError:
            return False
        return True

    def _default_rounds(self, rounds: int | None) -> int:
        """Resolve a missing rounds coordinate: horizon-free surfaces pin it
        to the sentinel, protocol surfaces default to their largest horizon."""
        if rounds is None:
            return 0 if self.horizon_free else self.surface.grid.rounds[-1]
        return int(rounds)

    def _locate(
        self, n: int, q: float, loss: float, fanout: float, rounds: int | None
    ) -> tuple:
        grid = self.surface.grid
        rounds = self._default_rounds(rounds)
        return (
            _bracket(grid.ns, float(n)),
            _bracket(grid.qs, float(q)),
            _bracket(grid.losses, float(loss)),
            _bracket(grid.fanouts, float(fanout)),
            _bracket(grid.rounds, float(rounds)),
        )

    def query(self, *, n: int, q: float, loss: float, fanout: float,
              rounds: int | None = None) -> ServedReliability:
        """Serve one reliability query from the surface.

        Parameters
        ----------
        n, q, loss, fanout:
            The configuration to evaluate; each must lie inside the grid's
            span on its axis (:class:`SurfaceCoverageError` otherwise —
            extrapolation would void the certificate).
        rounds:
            Round horizon for protocol surfaces (defaults to the largest
            horizon on the grid); ignored on horizon-free gossip surfaces.

        Returns
        -------
        ServedReliability
            Interpolated mean/cost with the conservative certificate
            envelope (see the class docstring).
        """
        rounds = self._default_rounds(rounds)
        key = (float(n), float(q), float(loss), float(fanout), int(rounds))
        cached = self._cache.get(key)
        if cached is not None:
            return cached

        brackets = self._locate(n, q, loss, fanout, rounds)
        corner_axes = []
        for lo, hi, weight in brackets:
            if lo == hi:
                corner_axes.append(((lo, 1.0),))
            else:
                corner_axes.append(((lo, 1.0 - weight), (hi, weight)))
        mean = 0.0
        cost = 0.0
        ci_low = 1.0
        ci_high = 0.0
        surface = self.surface
        for corner in product(*corner_axes):
            index = tuple(i for i, _ in corner)
            weight = 1.0
            for _, w in corner:
                weight *= w
            if weight <= 0.0:
                continue
            mean += weight * float(surface.mean[index])
            cost += weight * float(surface.cost[index])
            ci_low = min(ci_low, float(surface.ci_low[index]))
            ci_high = max(ci_high, float(surface.ci_high[index]))
        answer = ServedReliability(
            n=int(n),
            q=float(q),
            loss=float(loss),
            fanout=float(fanout),
            rounds=int(rounds),
            reliability=mean,
            ci_low=ci_low,
            ci_high=ci_high,
            cost=cost,
            exact=all(lo == hi for lo, hi, _ in brackets),
        )
        self._cache.put(key, answer)
        return answer

    def cache_info(self) -> dict:
        """Return the LRU query cache statistics."""
        return self._cache.info()

    def certified_candidates(self, *, n: int, q: float, target_reliability: float,
                             loss: float) -> list:
        """Return every grid ``(fanout, rounds)`` whose served answer certifies.

        Serves one query per grid candidate at the caller's ``(n, q, loss)``
        and keeps those with ``ci_low >= target_reliability``.  Raises
        :class:`SurfaceCoverageError` when ``(n, q, loss)`` is off-grid.
        """
        grid = self.surface.grid
        # Fail fast (and atomically) when the fixed coordinates are off-grid.
        self._locate(n, q, loss, grid.fanouts[0], grid.rounds[0])
        candidates = []
        for fanout in grid.fanouts:
            for rounds in grid.rounds:
                served = self.query(n=n, q=q, loss=loss, fanout=fanout, rounds=rounds)
                if served.ci_low >= target_reliability:
                    candidates.append(served)
        return candidates


def pareto_from_surface(engine: SurfaceQueryEngine, *, n: int, q: float,
                        target_reliability: float, loss: float = 0.0) -> tuple:
    """Serve the joint ``(fanout, rounds)`` Pareto frontier from a surface.

    The served analogue of
    :func:`repro.analysis.dimensioning.dimension_pareto`: among all grid
    candidates whose conservative served certificate clears the target, the
    non-dominated subset in ``(fanout, rounds)`` is returned (sorted by
    rising fanout).  Empty when nothing on the grid certifies.
    """
    from repro.analysis.dimensioning import pareto_frontier

    certified = engine.certified_candidates(
        n=n, q=q, target_reliability=target_reliability, loss=loss
    )
    return tuple(pareto_frontier(certified, keys=lambda c: (c.fanout, c.rounds)))


def dimension_from_surface(
    engine: SurfaceQueryEngine,
    *,
    n: int,
    q: float,
    target_reliability: float,
    loss: float = 0.0,
    objective: str = "min_fanout",
    allow_live_fallback: bool = True,
    live_solver: Callable[..., Any] | None = None,
    **live_kwargs: Any,
) -> ServedDimensioning:
    """Serve the inverse query: the cheapest certified ``(fanout, rounds)``.

    The fast path scans the surface's fanout (and rounds) axes for served
    candidates with ``ci_low >= target_reliability`` — microseconds, since
    each scan point is one cached interpolation.  Only when the query falls
    outside the grid, or no grid candidate certifies, does the solve fall
    back to a live :func:`~repro.analysis.dimensioning.dimension_fanout`
    bisection (seconds); the returned ``source`` field says which path
    answered.

    Parameters
    ----------
    engine:
        The surface query engine to serve from.
    n, q, target_reliability, loss:
        The dimensioning problem, with loss under
        :ref:`the loss contract <loss-semantics>`.
    objective:
        ``"min_fanout"`` picks the smallest certified fanout (then the
        smallest rounds — the classic lexicographic answer);
        ``"min_cost"`` picks the certified candidate with the smallest
        served payload messages per member (the cost-aware objective).
    allow_live_fallback:
        When False, an off-grid or uncertifiable query returns a
        ``feasible=False`` answer instead of simulating.
    live_solver:
        Override for the fallback solver (testing hook); defaults to
        :func:`~repro.analysis.dimensioning.dimension_fanout`.
    live_kwargs:
        Extra keyword arguments forwarded to the live solver (``seed``,
        ``protocol_factory``, replica budgets, ...).
    """
    if objective not in ("min_fanout", "min_cost"):
        raise ValueError(f"objective must be 'min_fanout' or 'min_cost', got {objective!r}")
    surface = engine.surface
    try:
        certified = engine.certified_candidates(
            n=n, q=q, target_reliability=target_reliability, loss=loss
        )
    except SurfaceCoverageError:
        certified = None  # off-grid: the surface cannot answer at all

    if certified:
        if objective == "min_cost":
            best = min(certified, key=lambda c: (c.cost, c.fanout, c.rounds))
        else:
            best = min(certified, key=lambda c: (c.fanout, c.rounds))
        return ServedDimensioning(
            n=int(n),
            q=float(q),
            target_reliability=float(target_reliability),
            loss=float(loss),
            confidence=surface.confidence,
            fanout=best.fanout,
            rounds=None if engine.horizon_free else best.rounds,
            achieved_reliability=best.reliability,
            ci_low=best.ci_low,
            ci_high=best.ci_high,
            cost=best.cost,
            source="surface",
            feasible=True,
        )

    if not allow_live_fallback:
        grid = surface.grid
        return ServedDimensioning(
            n=int(n),
            q=float(q),
            target_reliability=float(target_reliability),
            loss=float(loss),
            confidence=surface.confidence,
            fanout=float(grid.fanouts[-1]),
            rounds=None if engine.horizon_free else int(grid.rounds[-1]),
            achieved_reliability=math.nan,
            ci_low=0.0,
            ci_high=1.0,
            cost=math.nan,
            source="surface",
            feasible=False,
        )

    if live_solver is None:
        from repro.analysis.dimensioning import dimension_fanout

        live_solver = dimension_fanout
    if surface.protocol in GOSSIP_PROTOCOLS:
        live_kwargs.setdefault("conditional_on_spread", surface.conditional_on_spread)
    live = live_solver(
        int(n),
        float(q),
        float(target_reliability),
        loss=float(loss),
        confidence=surface.confidence,
        **live_kwargs,
    )
    return ServedDimensioning(
        n=int(n),
        q=float(q),
        target_reliability=float(target_reliability),
        loss=float(loss),
        confidence=surface.confidence,
        fanout=live.fanout,
        rounds=live.rounds,
        achieved_reliability=live.achieved_reliability,
        ci_low=live.ci_low,
        ci_high=live.ci_high,
        cost=math.nan,
        source="live",
        feasible=live.feasible,
    )

"""Fig. 6 — distribution of gossiping success with {f = 4.0, q = 0.9}.

2000-member group, Poisson fanout with mean 4.0, nonfailed ratio 0.9, 20
executions per simulation, 100 simulations; the empirical distribution of the
success count ``X`` is compared against the Binomial ``B(20, R(0.9, Po(4)))``
(≈ B(20, 0.967) in the paper's rounding).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.success_figures import (
    SuccessFigureConfig,
    SuccessFigureResult,
    run_success_figure,
)

__all__ = ["Fig6Config", "Fig6Result", "run_fig6"]

EXPERIMENT_ID = "fig6"
PAPER_REFERENCE = "Fig. 6 — The distribution of Gossiping Success with f=4.0, q=0.9"


@dataclass(frozen=True)
class Fig6Config(SuccessFigureConfig):
    """Fig. 6 configuration: {f = 4.0, q = 0.9} in a 2000-member group."""

    mean_fanout: float = 4.0
    q: float = 0.9


class Fig6Result(SuccessFigureResult):
    """Fig. 6 result type (alias of the shared success-figure result)."""


def run_fig6(config: Fig6Config | None = None) -> SuccessFigureResult:
    """Run the Fig. 6 experiment."""
    return run_success_figure(config or Fig6Config())

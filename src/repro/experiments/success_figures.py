"""Shared machinery for the success-of-gossiping figures (Figs. 6 and 7).

Protocol (Section 5.2): group of 2000 members, the gossip algorithm is run 20
times per simulation, each simulation is repeated 100 times, and the
distribution of the success count ``X`` is compared with the Binomial
``B(20, R(q, Po(z)))``.  The two figures differ only in the parameter pair:
{f = 4.0, q = 0.9} for Fig. 6 and {f = 6.0, q = 0.6} for Fig. 7 — both have
``f·q = 3.6`` and therefore the same analytical reliability (≈ 0.967 in the
paper's rounding), which is precisely the point the paper makes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.binomial_fit import BinomialFit, ChiSquareResult, chi_square_binomial_test, fit_binomial
from repro.analysis.tables import pmf_to_table
from repro.core.distributions import PoissonFanout
from repro.core.success import min_executions
from repro.simulation.metrics import SuccessCountResult
from repro.simulation.rounds import simulate_success_counts
from repro.utils.validation import check_choice, check_integer, check_probability

__all__ = ["SuccessFigureConfig", "SuccessFigureResult", "run_success_figure"]


@dataclass(frozen=True)
class SuccessFigureConfig:
    """Configuration of a success-count figure.

    Attributes
    ----------
    n:
        Group size (paper: 2000).
    mean_fanout, q:
        The {f, q} parameter pair of the figure.
    executions:
        Executions per simulation (paper: 20).
    simulations:
        Number of simulations, i.e. samples of ``X`` (paper: 100).
    required_success:
        The success requirement used for the "minimum executions" side
        calculation (paper: 0.999).
    mode:
        Success-count mode; ``"per_member"`` reproduces the paper's Binomial
        comparison (see :mod:`repro.simulation.rounds`).
    condition_on_spread:
        Condition each trial on the gossip taking off, matching the paper's
        use of the analytical reliability as the Bernoulli success
        probability (see DESIGN.md's numerical conventions).
    engine:
        Simulation engine: ``"batch"`` (default) runs all
        ``simulations × executions`` trials as one replica batch;
        ``"scalar"`` keeps the per-trial reference loop.
    """

    n: int = 2000
    mean_fanout: float = 4.0
    q: float = 0.9
    executions: int = 20
    simulations: int = 100
    required_success: float = 0.999
    mode: str = "per_member"
    condition_on_spread: bool = True
    seed: int = 20080156
    engine: str = "batch"

    def __post_init__(self) -> None:
        check_integer("n", self.n, minimum=2)
        check_integer("executions", self.executions, minimum=1)
        check_integer("simulations", self.simulations, minimum=1)
        check_probability("q", self.q)
        check_probability("required_success", self.required_success, allow_one=False)
        check_choice("engine", self.engine, ("batch", "scalar"))

    def scaled(self, *, n: int | None = None, simulations: int | None = None) -> "SuccessFigureConfig":
        """Return a copy with a smaller group / fewer simulations (for quick runs)."""
        return SuccessFigureConfig(
            n=n if n is not None else self.n,
            mean_fanout=self.mean_fanout,
            q=self.q,
            executions=self.executions,
            simulations=simulations if simulations is not None else self.simulations,
            required_success=self.required_success,
            mode=self.mode,
            condition_on_spread=self.condition_on_spread,
            seed=self.seed,
            engine=self.engine,
        )


@dataclass(frozen=True)
class SuccessFigureResult:
    """Result of a success-count figure.

    Bundles the empirical/Binomial PMFs, the MLE fit of the success
    probability, the chi-square goodness of fit, and the Eq. 6 minimum
    executions derived from the analytical reliability.
    """

    config: SuccessFigureConfig
    counts: SuccessCountResult
    fit: BinomialFit
    chi_square: ChiSquareResult
    required_executions: int

    def to_table(self, *, precision: int = 4) -> str:
        """Render the Pr(X = k) table (the figure's bars and line)."""
        return pmf_to_table(self.counts, precision=precision)

    def check_shape(self, *, probability_tolerance: float = 0.05, tv_tolerance: float = 0.35) -> list[str]:
        """Check the qualitative Figs. 6-7 claims.

        * The empirical success probability matches the analytical
          reliability within ``probability_tolerance``.
        * The empirical PMF is close to the Binomial reference in total
          variation distance.
        * The distribution concentrates near ``X = t`` (its mode is in the
          top quarter of the support), as both figures show.
        """
        problems: list[str] = []
        if self.fit.absolute_difference > probability_tolerance:
            problems.append(
                "empirical success probability "
                f"{self.fit.estimated_probability:.3f} differs from analytical "
                f"{self.fit.reference_probability:.3f} by more than {probability_tolerance}"
            )
        tv = self.counts.total_variation_distance()
        if tv > tv_tolerance:
            problems.append(f"total variation distance {tv:.3f} exceeds {tv_tolerance}")
        mode = int(np.argmax(self.counts.empirical_pmf))
        if mode < int(0.75 * self.config.executions):
            problems.append(
                f"empirical mode {mode} is not concentrated near t={self.config.executions}"
            )
        return problems


def run_success_figure(config: SuccessFigureConfig) -> SuccessFigureResult:
    """Run one success-count experiment and its goodness-of-fit analysis."""
    counts = simulate_success_counts(
        config.n,
        PoissonFanout(config.mean_fanout),
        config.q,
        executions=config.executions,
        simulations=config.simulations,
        mode=config.mode,
        condition_on_spread=config.condition_on_spread,
        seed=config.seed,
        engine=config.engine,
    )
    fit = fit_binomial(counts.counts, config.executions, counts.analytical_reliability)
    chi_square = chi_square_binomial_test(
        counts.counts, config.executions, counts.analytical_reliability
    )
    required = min_executions(config.required_success, counts.analytical_reliability)
    return SuccessFigureResult(
        config=config,
        counts=counts,
        fit=fit,
        chi_square=chi_square,
        required_executions=required,
    )

"""Shared machinery for the reliability-vs-fanout figures (Figs. 4 and 5).

Both figures use the same protocol — sweep the mean fanout from 1.1 to 6.7 in
steps of 0.4, sweep the nonfailed ratio over two panels of four values, run
20 executions per (fanout, q) pair, and overlay the analytical curve from
Eq. 11 — and differ only in the group size (1000 vs 5000).  The per-figure
modules configure :class:`ReliabilityFigureConfig` accordingly.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.analysis.compare import SeriesComparison, compare_sweep
from repro.analysis.tables import comparison_to_table, sweep_to_table
from repro.core.poisson_case import poisson_critical_fanout
from repro.simulation.runner import SweepResult, reliability_sweep
from repro.utils.validation import check_choice, check_integer

__all__ = ["ReliabilityFigureConfig", "ReliabilityFigureResult", "run_reliability_figure", "paper_fanout_grid"]


def paper_fanout_grid() -> tuple:
    """Return the paper's fanout grid: 1.1 to 6.7 in increments of 0.4."""
    return tuple(np.round(np.arange(1.1, 6.7 + 1e-9, 0.4), 2))


@dataclass(frozen=True)
class ReliabilityFigureConfig:
    """Configuration of a reliability-vs-fanout figure.

    Attributes
    ----------
    n:
        Group size (1000 for Fig. 4, 5000 for Fig. 5).
    fanouts:
        Mean fanout grid (paper: 1.1 .. 6.7 step 0.4).
    qs_panel_a, qs_panel_b:
        The two panels of nonfailed ratios the paper splits each figure into.
    repetitions:
        Executions per (fanout, q) pair (paper: 20).
    conditional_on_spread:
        Average only over executions whose dissemination took off.  Enabled
        by default because the paper's analytical reliability (the
        giant-component size) corresponds to that conditional branch; see
        :func:`repro.simulation.runner.estimate_reliability`.
    seed:
        Base seed for reproducibility.
    engine:
        Simulation engine: ``"batch"`` (default, replica-parallel) or
        ``"scalar"`` (per-replica reference).
    processes:
        Worker processes for chunked replica batches (1 = serial,
        deterministic; ``None`` = auto).
    """

    n: int
    fanouts: tuple = field(default_factory=paper_fanout_grid)
    qs_panel_a: tuple = (0.1, 0.3, 0.5, 1.0)
    qs_panel_b: tuple = (0.4, 0.6, 0.8, 1.0)
    repetitions: int = 20
    conditional_on_spread: bool = True
    seed: int = 20080149
    engine: str = "batch"
    processes: int | None = 1

    def __post_init__(self) -> None:
        check_integer("n", self.n, minimum=2)
        check_integer("repetitions", self.repetitions, minimum=1)
        check_choice("engine", self.engine, ("batch", "scalar"))

    def all_qs(self) -> tuple:
        """Return the union of both panels' ratios, sorted and de-duplicated."""
        return tuple(sorted(set(self.qs_panel_a) | set(self.qs_panel_b)))

    def scaled(self, *, n: int | None = None, repetitions: int | None = None) -> "ReliabilityFigureConfig":
        """Return a copy with a smaller group / fewer repetitions (for quick runs)."""
        return ReliabilityFigureConfig(
            n=n if n is not None else self.n,
            fanouts=self.fanouts,
            qs_panel_a=self.qs_panel_a,
            qs_panel_b=self.qs_panel_b,
            repetitions=repetitions if repetitions is not None else self.repetitions,
            conditional_on_spread=self.conditional_on_spread,
            seed=self.seed,
            engine=self.engine,
            processes=self.processes,
        )


@dataclass(frozen=True)
class ReliabilityFigureResult:
    """Result of a reliability figure: the sweep plus per-``q`` comparison metrics."""

    config: ReliabilityFigureConfig
    sweep: SweepResult
    comparisons: dict

    def to_table(self, *, precision: int = 4) -> str:
        """Render the full sweep (the figure's data points) as a table."""
        return sweep_to_table(self.sweep, precision=precision)

    def comparison_table(self, *, precision: int = 4) -> str:
        """Render the per-``q`` analysis-vs-simulation error metrics."""
        return comparison_to_table(self.comparisons, precision=precision)

    def series(self, q: float) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Return (fanouts, simulated, analytical) for one ``q`` curve."""
        points = self.sweep.series_for_q(q)
        return (
            np.array([p.mean_fanout for p in points]),
            np.array([p.simulated for p in points]),
            np.array([p.analytical for p in points]),
        )

    def check_shape(self, *, tolerance: float = 0.12) -> list[str]:
        """Check the qualitative properties the paper reports for Figs. 4-5.

        1. The percolation condition holds: reliability stays near zero while
           the mean fanout is below ``1/q`` and becomes substantial above it.
        2. Simulation tallies with the analytical curve (mean absolute error
           below ``tolerance`` per ``q`` series).
        3. Reliability is (noise-tolerantly) non-decreasing in the fanout and
           in ``q``.
        """
        problems: list[str] = []
        for q, comparison in self.comparisons.items():
            if comparison.mean_absolute_error > tolerance:
                problems.append(
                    f"q={q}: mean |simulation − analysis| = "
                    f"{comparison.mean_absolute_error:.3f} exceeds {tolerance}"
                )
        for q in self.sweep.qs:
            fanouts, simulated, analytical = self.series(q)
            critical = poisson_critical_fanout(q) if q > 0 else float("inf")
            below = simulated[fanouts < critical * 0.8]
            well_above = simulated[fanouts > critical * 1.8]
            if below.size and below.max() > 0.35:
                problems.append(
                    f"q={q}: reliability {below.max():.2f} well below the critical fanout"
                )
            if well_above.size and well_above.min() < 0.3:
                problems.append(
                    f"q={q}: reliability {well_above.min():.2f} well above the critical fanout"
                )
            diffs = np.diff(simulated)
            # The non-decreasing claim only holds where a giant component
            # exists: in the deep-subcritical tail (analytical reliability
            # ~0 on both sides) the conditional average is occasionally
            # spiked by a rare large finite component, which the MAE and
            # below-critical checks already bound.
            meaningful = (analytical[:-1] > 0.05) | (analytical[1:] > 0.05)
            if diffs[meaningful].size and diffs[meaningful].min() < -0.15:
                problems.append(f"q={q}: simulated reliability drops sharply along the fanout axis")
        # Monotonicity in q at the largest fanout.
        qs_sorted = sorted(self.sweep.qs)
        top_fanout = max(self.sweep.fanouts)
        top_values = [
            next(p.simulated for p in self.sweep.series_for_q(q) if p.mean_fanout == top_fanout)
            for q in qs_sorted
        ]
        if any(b < a - 0.15 for a, b in zip(top_values, top_values[1:], strict=False)):
            problems.append("reliability at the largest fanout is not non-decreasing in q")
        return problems


def run_reliability_figure(config: ReliabilityFigureConfig) -> ReliabilityFigureResult:
    """Run the reliability sweep of one figure and compute comparison metrics."""
    sweep = reliability_sweep(
        config.n,
        config.fanouts,
        config.all_qs(),
        repetitions=config.repetitions,
        seed=config.seed,
        conditional_on_spread=config.conditional_on_spread,
        engine=config.engine,
        processes=config.processes,
    )
    comparisons: dict[float, SeriesComparison] = compare_sweep(sweep)
    return ReliabilityFigureResult(config=config, sweep=sweep, comparisons=comparisons)

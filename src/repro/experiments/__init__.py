"""Experiment drivers — one module per figure of the paper's evaluation.

Each driver exposes a ``*Config`` dataclass whose defaults match the paper's
parameters, a ``run(config)`` function returning a structured result, and the
result object knows how to render itself as the table/series the paper
reports (``to_table()``) and how to check the qualitative shape the paper
claims (``check_shape()``).  The benchmark harness in ``benchmarks/`` is a
thin wrapper around these drivers.

Use :func:`repro.experiments.registry.get_experiment` to look drivers up by
their experiment id (``"fig2"`` … ``"fig7"``, plus the graph-side
``"sec4_percolation_validation"``).
"""

from repro.experiments.churn_resilience import (
    ChurnPoint,
    ChurnResilienceConfig,
    ChurnResilienceResult,
    run_churn_resilience,
)
from repro.experiments.dimensioning import (
    DimensioningConfig,
    DimensioningExperimentResult,
    DimensioningPoint,
    run_dimensioning,
)
from repro.experiments.fig2_mean_fanout import Fig2Config, Fig2Result, run_fig2
from repro.experiments.fig3_min_executions import Fig3Config, Fig3Result, run_fig3
from repro.experiments.fig4_reliability_1000 import Fig4Config, Fig4Result, run_fig4
from repro.experiments.fig5_reliability_5000 import Fig5Config, Fig5Result, run_fig5
from repro.experiments.fig6_success_f4_q09 import Fig6Config, Fig6Result, run_fig6
from repro.experiments.fig7_success_f6_q06 import Fig7Config, Fig7Result, run_fig7
from repro.experiments.latency_profile import (
    LatencyPoint,
    LatencyProfileConfig,
    LatencyProfileResult,
    run_latency_profile,
)
from repro.experiments.loss_resilience import (
    LossPoint,
    LossResilienceConfig,
    LossResilienceResult,
    run_loss_resilience,
)
from repro.experiments.recovery_resilience import (
    RecoveryPoint,
    RecoveryResilienceConfig,
    RecoveryResilienceResult,
    run_recovery_resilience,
)
from repro.experiments.sec4_percolation_validation import Sec4Config, Sec4Result, run_sec4
from repro.experiments.surface_dimensioning import (
    ServingComparisonPoint,
    SurfaceDimensioningConfig,
    SurfaceDimensioningResult,
    run_surface_dimensioning,
)
from repro.experiments.registry import get_experiment, list_experiments

__all__ = [
    "Fig2Config",
    "Fig2Result",
    "run_fig2",
    "Fig3Config",
    "Fig3Result",
    "run_fig3",
    "Fig4Config",
    "Fig4Result",
    "run_fig4",
    "Fig5Config",
    "Fig5Result",
    "run_fig5",
    "Fig6Config",
    "Fig6Result",
    "run_fig6",
    "Fig7Config",
    "Fig7Result",
    "run_fig7",
    "Sec4Config",
    "Sec4Result",
    "run_sec4",
    "LatencyPoint",
    "LatencyProfileConfig",
    "LatencyProfileResult",
    "run_latency_profile",
    "LossPoint",
    "LossResilienceConfig",
    "LossResilienceResult",
    "run_loss_resilience",
    "DimensioningConfig",
    "DimensioningExperimentResult",
    "DimensioningPoint",
    "run_dimensioning",
    "ChurnPoint",
    "ChurnResilienceConfig",
    "ChurnResilienceResult",
    "run_churn_resilience",
    "RecoveryPoint",
    "RecoveryResilienceConfig",
    "RecoveryResilienceResult",
    "run_recovery_resilience",
    "ServingComparisonPoint",
    "SurfaceDimensioningConfig",
    "SurfaceDimensioningResult",
    "run_surface_dimensioning",
    "get_experiment",
    "list_experiments",
]

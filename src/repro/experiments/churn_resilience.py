"""Churn resilience — the protocol zoo under dynamic membership.

The paper's reliability analysis (and every static experiment in this
repository) fixes the group before dissemination starts: members may crash,
but nobody joins and nobody leaves.  Production gossip systems run under
**churn** — nodes enter and depart *while* a message is disseminating — and
gossip over bounded partial views maintained by a peer-sampling service.
This experiment sweeps the whole protocol zoo (plus the HyParView-style
peer-sampling protocol) over a grid of per-round churn rates crossed with
the nonfailed ratio ``q``, through the **batched churn plane**
(:func:`repro.simulation.protocol_batch.simulate_protocol_batch` with a
:class:`~repro.simulation.churn.PoissonChurnModel`), and reports per
``(protocol, q, churn_rate)`` cell:

* mean/std **reliability among survivors** — of the members still nonfailed
  *and present* when dissemination ended, the fraction holding the message
  (the only meaningful denominator once members leave mid-run),
* the mean survivor fraction (how much of the nonfailed group the churn
  schedule kept),
* mean message cost per member and the atomic-among-survivors rate,
* for the peer-sampling protocol: mean **view staleness** (fraction of
  active-view slots pointing at departed peers, per round before repair),
  total link **repairs**, and the mean **repair latency** in rounds.

Two rows anchor the comparison: ``lpbcast-frozen`` is fixed-fanout gossip
over a *static* partial view of exactly the peer-sampling protocol's
active-view size, so the ``hyparview`` vs ``lpbcast-frozen`` gap isolates
what view repair buys at equal view budget.  The expected shape — checked by
:meth:`ChurnResilienceResult.check_shape` — is graceful degradation:
reliability falls monotonically in the churn rate for every protocol, and
the self-repairing view degrades no faster than the frozen one.

At ``churn_rate = 0`` the churn model draws no randomness, so every cell is
bit-identical to the static path (the same discipline the loss plane
established); the test suite pins exactly that for all protocols.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace

import numpy as np

from repro.experiments.protocol_comparison import protocol_zoo
from repro.simulation.churn import PoissonChurnModel
from repro.simulation.protocol_batch import simulate_protocol_batch
from repro.utils.parallel import parallel_map
from repro.utils.rng import spawn_seeds
from repro.utils.tables import format_table
from repro.utils.validation import check_integer, check_probability

__all__ = [
    "ChurnResilienceConfig",
    "ChurnPoint",
    "ChurnResilienceResult",
    "run_churn_resilience",
]

EXPERIMENT_ID = "churn_resilience"
PAPER_REFERENCE = (
    "Sec. 3 model assumption lifted — protocol-zoo reliability among survivors "
    "under dynamic membership (churn_rate x q grid, batched churn plane, "
    "HyParView-style peer sampling vs frozen partial views)"
)

#: Replicas per worker task when the sweep fans out over processes (same
#: convention as ``protocol_comparison`` so fixed seeds reproduce anywhere).
_CHUNK_REPETITIONS = 8

#: Active-view size of the peer-sampling row and view size of its frozen
#: static anchor (``lpbcast-frozen``) — matched so the comparison isolates
#: view *repair*, not view budget.
_PEER_VIEW_SIZE = 8


@dataclass(frozen=True)
class ChurnResilienceConfig:
    """Configuration of the churn-resilience sweep.

    Attributes
    ----------
    n:
        Group size.
    qs:
        Nonfailed-ratio grid (supercritical regimes — churn is the axis under
        study, crashes are the nuisance dimension).
    churn_rates:
        Per-round leave hazards to sweep.  Each nonzero rate builds a
        :class:`~repro.simulation.churn.PoissonChurnModel` with
        ``leave_rate = join_rate = rate`` and ``initially_absent`` as below;
        rate 0 is the all-zero model (static membership, no randomness).
    initially_absent:
        Join-pool fraction of the nonzero-churn models: members starting
        outside the group that trickle in at ``join_rate``.
    mean_fanout:
        Per-member effort budget (push fanout / overlay degree).
    rounds:
        Round horizon of the periodic protocols.
    repetitions:
        Independent executions per ``(protocol, q, churn_rate)`` cell.
    seed:
        Base seed; every cell derives an independent stream.
    processes:
        Worker processes; 1 keeps execution serial and deterministic.
    """

    n: int = 1000
    qs: tuple = (0.9, 1.0)
    churn_rates: tuple = (0.0, 0.02, 0.05, 0.1, 0.15)
    initially_absent: float = 0.1
    mean_fanout: int = 4
    rounds: int = 8
    repetitions: int = 40
    seed: int = 20082010
    processes: int | None = 1

    def __post_init__(self) -> None:
        check_integer("n", self.n, minimum=2)
        if not self.qs:
            raise ValueError("qs must be non-empty")
        for q in self.qs:
            check_probability("q", q)
        if not self.churn_rates:
            raise ValueError("churn_rates must be non-empty")
        for rate in self.churn_rates:
            check_probability("churn_rate", rate, allow_one=False)
        check_probability("initially_absent", self.initially_absent)
        check_integer("mean_fanout", self.mean_fanout, minimum=1)
        check_integer("rounds", self.rounds, minimum=1)
        check_integer("repetitions", self.repetitions, minimum=1)

    def protocols(self) -> tuple:
        """Return the ``(protocol_id, Protocol)`` rows of the churn sweep.

        The full zoo with the peer-sampling protocol appended, plus the
        ``lpbcast-frozen`` anchor: the same push gossip over a *static*
        partial view of the peer-sampling protocol's active-view size.
        """
        from repro.protocols import LpbcastProtocol

        rows = protocol_zoo(self.mean_fanout, self.rounds, include_peer_sampling=True)
        frozen = LpbcastProtocol(
            fanout=self.mean_fanout, rounds=self.rounds, view_size=_PEER_VIEW_SIZE
        )
        frozen.name = "lpbcast-frozen"
        return rows + (("lpbcast-frozen", frozen),)

    def churn_model(self, rate: float) -> PoissonChurnModel:
        """Return the churn model of one grid rate (all-zero at rate 0)."""
        if rate == 0.0:
            return PoissonChurnModel()
        return PoissonChurnModel(
            leave_rate=rate, join_rate=rate, initially_absent=self.initially_absent
        )

    def with_scale(self, factor: float) -> "ChurnResilienceConfig":
        """Return a shrunken copy for quick runs (CLI ``--scale``)."""
        if not 0.0 < factor <= 1.0:
            raise ValueError(f"scale factor must be in (0, 1], got {factor}")
        if factor >= 0.999:
            return self
        return replace(
            self,
            n=max(200, int(self.n * factor)),
            repetitions=max(8, int(self.repetitions * factor)),
        )


@dataclass(frozen=True)
class ChurnPoint:
    """Measurements of one ``(protocol, q, churn_rate)`` cell.

    ``view_staleness``/``repairs``/``repair_latency`` describe the
    peer-sampling membership service and are ``NaN``/0 for every other
    protocol (their views have no repair machinery to measure).
    """

    protocol: str
    q: float
    churn_rate: float
    repetitions: int
    reliability: float
    reliability_std: float
    survivor_fraction: float
    messages_per_member: float
    atomic_rate: float
    view_staleness: float = float("nan")
    repairs: int = 0
    repair_latency: float = float("nan")


@dataclass(frozen=True)
class ChurnResilienceResult:
    """Result of the churn-resilience sweep."""

    config: ChurnResilienceConfig
    points: tuple

    def protocols(self) -> list[str]:
        """Return the protocol ids in run order (deduplicated)."""
        seen: dict[str, None] = {}
        for p in self.points:
            seen.setdefault(p.protocol, None)
        return list(seen)

    def series_for(self, protocol: str, q: float) -> list[ChurnPoint]:
        """Return one ``(protocol, q)`` churn series, ordered by rate."""
        return sorted(
            (
                p
                for p in self.points
                if p.protocol == protocol and abs(p.q - q) < 1e-12
            ),
            key=lambda p: p.churn_rate,
        )

    def point(self, protocol: str, q: float, churn_rate: float) -> ChurnPoint:
        """Return one cell; raise ``KeyError`` if absent."""
        for p in self.points:
            if (
                p.protocol == protocol
                and abs(p.q - q) < 1e-12
                and abs(p.churn_rate - churn_rate) < 1e-12
            ):
                return p
        raise KeyError(
            f"no point for protocol={protocol!r}, q={q!r}, churn_rate={churn_rate!r}"
        )

    def to_table(self, *, precision: int = 4) -> str:
        """Render the full grid as an aligned text table."""
        headers = [
            "protocol",
            "q",
            "churn",
            "reps",
            "reliability",
            "std",
            "survivors",
            "msgs/member",
            "atomic",
            "staleness",
            "repairs",
            "repair lat",
        ]
        rows = [
            [
                p.protocol,
                p.q,
                p.churn_rate,
                p.repetitions,
                p.reliability,
                p.reliability_std,
                p.survivor_fraction,
                p.messages_per_member,
                p.atomic_rate,
                p.view_staleness,
                p.repairs,
                p.repair_latency,
            ]
            for p in self.points
        ]
        return format_table(headers, rows, precision=precision)

    def check_shape(self, *, tolerance: float = 0.05) -> list[str]:
        """Check the qualitative churn-resilience claims.

        1. At ``churn_rate = 0`` every nonfailed member survives (the churn
           plane is inert) and reliability-among-survivors is supercritical.
        2. Per ``(protocol, q)``, reliability does not *increase* with the
           churn rate (beyond Monte-Carlo slack) and the survivor fraction
           falls as members leave — graceful degradation, no cliffs upward.
        3. At every nonzero churn rate, the peer-sampling protocol is at
           least as reliable as fixed-fanout gossip over a frozen partial
           view of the same size (view repair pays), and its total
           degradation from rate 0 is no steeper.
        4. Under churn the peer-sampling service actually works: staleness
           is observed and repairs happen.
        """
        problems: list[str] = []
        for p in self.points:
            if p.churn_rate == 0.0 and p.survivor_fraction != 1.0:
                problems.append(
                    f"{p.protocol} q={p.q}: survivor fraction "
                    f"{p.survivor_fraction:.4f} != 1 at churn rate 0"
                )
        for protocol in self.protocols():
            for q in self.config.qs:
                series = self.series_for(protocol, q)
                for lo, hi in zip(series, series[1:], strict=False):
                    if hi.reliability > lo.reliability + 2 * tolerance:
                        problems.append(
                            f"{protocol} q={q}: reliability rises from "
                            f"{lo.reliability:.4f} (rate={lo.churn_rate}) to "
                            f"{hi.reliability:.4f} (rate={hi.churn_rate})"
                        )
                    if hi.survivor_fraction > lo.survivor_fraction + tolerance:
                        problems.append(
                            f"{protocol} q={q}: survivor fraction rises from "
                            f"{lo.survivor_fraction:.4f} (rate={lo.churn_rate}) to "
                            f"{hi.survivor_fraction:.4f} (rate={hi.churn_rate})"
                        )
        for q in self.config.qs:
            for rate in self.config.churn_rates:
                if rate == 0.0:
                    continue
                try:
                    peer = self.point("hyparview", q, rate)
                    frozen = self.point("lpbcast-frozen", q, rate)
                except KeyError:
                    continue
                if peer.reliability < frozen.reliability - tolerance:
                    problems.append(
                        f"q={q} rate={rate}: hyparview {peer.reliability:.4f} below "
                        f"frozen-view anchor {frozen.reliability:.4f}"
                    )
                if peer.view_staleness <= 0.0 or math.isnan(peer.view_staleness):
                    problems.append(
                        f"q={q} rate={rate}: no view staleness observed under churn"
                    )
                if peer.repairs <= 0:
                    problems.append(
                        f"q={q} rate={rate}: peer-sampling service repaired nothing"
                    )
            rate_top = max(self.config.churn_rates)
            if rate_top > 0.0:
                try:
                    peer0 = self.point("hyparview", q, 0.0)
                    peer1 = self.point("hyparview", q, rate_top)
                    frozen0 = self.point("lpbcast-frozen", q, 0.0)
                    frozen1 = self.point("lpbcast-frozen", q, rate_top)
                except KeyError:
                    continue
                peer_drop = peer0.reliability - peer1.reliability
                frozen_drop = frozen0.reliability - frozen1.reliability
                if peer_drop > frozen_drop + tolerance:
                    problems.append(
                        f"q={q}: hyparview degrades by {peer_drop:.4f} to rate "
                        f"{rate_top}, faster than the frozen view's {frozen_drop:.4f}"
                    )
        return problems


def _run_cell_batch(args: tuple) -> tuple:
    """Process-pool worker: one chunk of replicas through the churn-aware engine.

    The :class:`~repro.simulation.churn.PoissonChurnModel` is built inside
    the worker from plain floats, mirroring the loss sweep's convention;
    peer-sampling service stats are read back off the protocol instance
    (each worker owns its own unpickled copy).
    """
    protocol, n, q, rate, initially_absent, seed, repetitions = args
    if rate == 0.0:
        model = PoissonChurnModel()
    else:
        model = PoissonChurnModel(
            leave_rate=rate, join_rate=rate, initially_absent=initially_absent
        )
    result = simulate_protocol_batch(
        protocol, n, q, repetitions=repetitions, seed=seed, churn=model
    )
    reliability = result.reliability_among_survivors()
    stats = getattr(protocol, "last_batch_stats", None)
    return (
        reliability.tolist(),
        result.survivor_fraction().tolist(),
        result.messages_per_member().tolist(),
        (reliability >= 1.0 - 1e-12).tolist(),
        stats,
    )


def run_churn_resilience(
    config: ChurnResilienceConfig | None = None,
) -> ChurnResilienceResult:
    """Run the sweep over the full ``(protocol, q, churn_rate)`` grid."""
    config = config or ChurnResilienceConfig()
    serial = config.processes is not None and config.processes <= 1
    n_chunks = 1 if serial else max(1, -(-config.repetitions // _CHUNK_REPETITIONS))
    chunk_sizes = [len(c) for c in np.array_split(np.arange(config.repetitions), n_chunks)]

    points: list[ChurnPoint] = []
    protocols = config.protocols()
    n_cells = len(protocols) * len(config.qs) * len(config.churn_rates)
    cell_seeds = iter(spawn_seeds(n_cells, config.seed))
    for protocol_id, protocol in protocols:
        for q in config.qs:
            for rate in config.churn_rates:
                seeds = spawn_seeds(n_chunks, next(cell_seeds))
                work = [
                    (protocol, config.n, q, rate, config.initially_absent, seed, size)
                    for seed, size in zip(seeds, chunk_sizes, strict=True)
                    if size > 0
                ]
                chunks = parallel_map(
                    _run_cell_batch, work, processes=config.processes, serial_threshold=1
                )
                reliability = np.concatenate([np.asarray(c[0], dtype=float) for c in chunks])
                survivors = np.concatenate([np.asarray(c[1], dtype=float) for c in chunks])
                messages = np.concatenate([np.asarray(c[2], dtype=float) for c in chunks])
                atomic = np.concatenate([np.asarray(c[3], dtype=bool) for c in chunks])
                stats = [c[4] for c in chunks if c[4] is not None]
                staleness = float("nan")
                repairs = 0
                repair_latency = float("nan")
                if stats:
                    staleness = float(np.mean([s["view_staleness"] for s in stats]))
                    repairs = int(sum(s["repairs"] for s in stats))
                    if repairs:
                        # Repair latencies are averaged weighted by how many
                        # repairs each chunk actually performed.
                        repair_latency = float(
                            sum(s["repair_latency"] * s["repairs"] for s in stats) / repairs
                        )
                points.append(
                    ChurnPoint(
                        protocol=protocol_id,
                        q=float(q),
                        churn_rate=float(rate),
                        repetitions=config.repetitions,
                        reliability=float(reliability.mean()),
                        reliability_std=(
                            float(reliability.std(ddof=1)) if reliability.size > 1 else 0.0
                        ),
                        survivor_fraction=float(survivors.mean()),
                        messages_per_member=float(messages.mean()),
                        atomic_rate=float(atomic.mean()),
                        view_staleness=staleness,
                        repairs=repairs,
                        repair_latency=repair_latency,
                    )
                )
    return ChurnResilienceResult(config=config, points=tuple(points))

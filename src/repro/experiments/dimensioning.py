"""Auto-dimensioning — minimal fanout/rounds for a target reliability.

The paper's design-oriented result is Eq. 12: the Poisson mean fanout needed
for a target reliability under a crash budget.  This experiment generalises
that inverse to the whole baseline protocol zoo *and* to lossy networks: for
every cell of a ``(target reliability × q × loss × protocol)`` grid it runs
the loss-aware auto-dimensioning solver
(:func:`repro.analysis.dimensioning.dimension_fanout` in protocol mode) and
reports the minimal integer fanout — and, for the round-based protocols
(pbcast, lpbcast, RDG), the minimal round horizon — whose Wilson lower
confidence bound on the mean replica reliability clears the target.

Each cell also reports the analytic Eq. 12 seed (loss folded in as
effective-fanout thinning), the achieved reliability with its confidence
interval, and the Monte-Carlo replicas the solve consumed, so the table
doubles as a cost ledger for the solver itself.

Expected shape: the required fanout grows with the target, grows with the
loss budget, and shrinks as ``q`` rises; flooding (which re-uses every
member's links) never needs a larger degree than plain fixed-fanout push
gossip needs fanout.  Cells the solver cannot certify below its fanout cap
are reported with ``feasible=False`` and excluded from the shape checks.

This is the first workload that consumes the batched engines as an *inner
loop* of an outer parameter search (the cluster-method Monte-Carlo pattern),
which is why it leans on the engines' determinism guarantees: at a fixed
seed the whole grid reproduces bit-for-bit, serial or process-parallel.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable

from repro.analysis.dimensioning import dimension_fanout
from repro.protocols.base import Protocol
from repro.analysis.tables import dimensioning_to_table
from repro.experiments.protocol_comparison import protocol_zoo
from repro.utils.parallel import parallel_map
from repro.utils.rng import spawn_seeds
from repro.utils.validation import check_integer, check_probability

__all__ = [
    "DimensioningConfig",
    "DimensioningPoint",
    "DimensioningExperimentResult",
    "run_dimensioning",
    "ROUND_BASED_PROTOCOLS",
]

EXPERIMENT_ID = "dimensioning"
PAPER_REFERENCE = (
    "Sec. 4.3 Eq. 12 generalised — loss-aware auto-dimensioning: minimal fanout "
    "(and rounds) for a target reliability, per protocol, under crash + loss budgets"
)

#: Protocols whose behaviour depends on the round horizon: for these the
#: solver also reports the minimal number of rounds at the solved fanout.
ROUND_BASED_PROTOCOLS = ("pbcast", "lpbcast", "rdg")

#: The full zoo, in the canonical order of ``protocol_zoo``.
_ALL_PROTOCOLS = (
    "flooding",
    "pbcast",
    "lpbcast",
    "rdg",
    "fixed-fanout",
    "random-fanout",
)


@dataclass(frozen=True)
class DimensioningConfig:
    """Configuration of the auto-dimensioning sweep.

    Attributes
    ----------
    n:
        Group size being dimensioned.
    targets:
        Reliability targets to dimension for (each in (0, 1)).
    qs:
        Nonfailed-ratio grid (the crash budgets).
    losses:
        Per-message loss probabilities (the loss budgets).
    protocols:
        Protocol ids to dimension (subset of the zoo).
    rounds:
        Round horizon the round-based protocols are solved *within*; the
        minimal sufficient rounds are then searched below it.
    confidence:
        Coverage of the Wilson feasibility certificates.
    initial_replicas, max_replicas:
        Per-decision replica budget of the solver (the cap is lifted to the
        Wilson feasibility floor of the highest target automatically).
    max_fanout:
        Fanout cap; cells needing more are reported infeasible.
    seed:
        Base seed; every cell derives an independent stream.
    processes:
        Worker processes for fanning the grid cells out; 1 runs serially
        (identical numbers either way — cell seeds are pre-spawned).
    """

    n: int = 1000
    targets: tuple = (0.9, 0.99)
    qs: tuple = (0.8, 0.9, 1.0)
    losses: tuple = (0.0, 0.1)
    protocols: tuple = _ALL_PROTOCOLS
    rounds: int = 8
    confidence: float = 0.95
    initial_replicas: int = 16
    max_replicas: int = 96
    max_fanout: int = 32
    seed: int = 20082010
    processes: int | None = 1

    def __post_init__(self) -> None:
        check_integer("n", self.n, minimum=2)
        for name, values in (("targets", self.targets), ("qs", self.qs), ("losses", self.losses)):
            if not values:
                raise ValueError(f"{name} must be non-empty")
        for target in self.targets:
            check_probability("target", target, allow_zero=False, allow_one=False)
        for q in self.qs:
            check_probability("q", q, allow_zero=False)
        for loss in self.losses:
            check_probability("loss", loss, allow_one=False)
        if not self.protocols:
            raise ValueError("protocols must be non-empty")
        unknown = set(self.protocols) - set(_ALL_PROTOCOLS)
        if unknown:
            raise ValueError(f"unknown protocols {sorted(unknown)}; choose from {_ALL_PROTOCOLS}")
        check_integer("rounds", self.rounds, minimum=1)
        check_integer("initial_replicas", self.initial_replicas, minimum=2)
        check_integer("max_replicas", self.max_replicas, minimum=self.initial_replicas)
        check_integer("max_fanout", self.max_fanout, minimum=1)

    def with_scale(self, factor: float) -> "DimensioningConfig":
        """Return a shrunken copy for quick runs (CLI ``--scale``).

        The group size shrinks; the replica budgets do *not* — they encode
        the statistical contract (a Wilson certificate at ``confidence``),
        which a quick run must not silently weaken.  Small scales also trim
        the grid to its corner cells so smoke runs finish in seconds.
        """
        if not 0.0 < factor <= 1.0:
            raise ValueError(f"scale factor must be in (0, 1], got {factor}")
        if factor >= 0.999:
            return self
        trimmed: dict = {"n": max(200, int(self.n * factor))}
        if factor <= 0.25:
            trimmed["qs"] = self.qs[-2:] if len(self.qs) > 2 else self.qs
            trimmed["losses"] = (
                (self.losses[0], self.losses[-1]) if len(self.losses) > 2 else self.losses
            )
        return replace(self, **trimmed)


@dataclass(frozen=True)
class DimensioningPoint:
    """One solved cell of the auto-dimensioning grid."""

    protocol: str
    target_reliability: float
    q: float
    loss: float
    fanout: float
    rounds: int | None
    analytical_fanout: float
    achieved_reliability: float
    ci_low: float
    ci_high: float
    replicas_used: int
    evaluations: int
    feasible: bool
    certified: bool


@dataclass(frozen=True)
class DimensioningExperimentResult:
    """Result of the auto-dimensioning sweep."""

    config: DimensioningConfig
    points: tuple

    def protocols(self) -> list[str]:
        """Return the protocol ids in run order (deduplicated)."""
        seen: dict[str, None] = {}
        for p in self.points:
            seen.setdefault(p.protocol, None)
        return list(seen)

    def point(
        self, protocol: str, target: float, q: float, loss: float
    ) -> DimensioningPoint:
        """Return one cell; raise ``KeyError`` if absent."""
        for p in self.points:
            if (
                p.protocol == protocol
                and abs(p.target_reliability - target) < 1e-12
                and abs(p.q - q) < 1e-12
                and abs(p.loss - loss) < 1e-12
            ):
                return p
        raise KeyError(
            f"no point for protocol={protocol!r}, target={target!r}, q={q!r}, loss={loss!r}"
        )

    def total_replicas(self) -> int:
        """Return the Monte-Carlo replicas the whole grid consumed."""
        return int(sum(p.replicas_used for p in self.points))

    def to_table(self, *, precision: int = 4) -> str:
        """Render the full grid as an aligned text table."""
        return dimensioning_to_table(self.points, precision=precision)

    def check_shape(self, *, tolerance: int = 1) -> list[str]:
        """Check the qualitative dimensioning claims.

        1. Every feasible cell carries its certificate: the Wilson lower
           bound at the solved fanout clears the target.
        2. At fixed (protocol, q, loss) the solved fanout does not *drop* as
           the target rises (beyond integer-granularity slack).
        3. At fixed (protocol, target, q) the solved fanout does not drop as
           the loss budget grows.
        4. At fixed (protocol, target, loss) the solved fanout does not grow
           as ``q`` rises.
        5. Flooding never needs more than ``tolerance`` extra degree over
           plain fixed-fanout push gossip in the same cell (its redundancy
           can only help).
        """
        problems: list[str] = []
        feasible = [p for p in self.points if p.feasible]
        for p in feasible:
            if p.ci_low < p.target_reliability:
                problems.append(
                    f"{p.protocol} target={p.target_reliability} q={p.q} "
                    f"loss={p.loss}: ci_low {p.ci_low:.4f} below target"
                )

        def solved(protocol: str, target: float, q: float, loss: float) -> DimensioningPoint | None:
            try:
                p = self.point(protocol, target, q, loss)
            except KeyError:
                return None
            return p if p.feasible else None

        for protocol in self.protocols():
            for q in self.config.qs:
                for loss in self.config.losses:
                    cells = [solved(protocol, t, q, loss) for t in sorted(self.config.targets)]
                    pairs = zip(cells, cells[1:], strict=False)
                    for lo, hi in pairs:
                        if lo and hi and hi.fanout < lo.fanout - tolerance:
                            problems.append(
                                f"{protocol} q={q} loss={loss}: fanout falls from "
                                f"{lo.fanout} to {hi.fanout} as the target rises"
                            )
            for target in self.config.targets:
                for q in self.config.qs:
                    cells = [solved(protocol, target, q, el) for el in sorted(self.config.losses)]
                    for lo, hi in zip(cells, cells[1:], strict=False):
                        if lo and hi and hi.fanout < lo.fanout - tolerance:
                            problems.append(
                                f"{protocol} target={target} q={q}: fanout falls from "
                                f"{lo.fanout} to {hi.fanout} as loss grows"
                            )
                for loss in self.config.losses:
                    cells = [solved(protocol, target, q, loss) for q in sorted(self.config.qs)]
                    for lo, hi in zip(cells, cells[1:], strict=False):
                        if lo and hi and hi.fanout > lo.fanout + tolerance:
                            problems.append(
                                f"{protocol} target={target} loss={loss}: fanout rises "
                                f"from {lo.fanout} to {hi.fanout} as q rises"
                            )
        if "flooding" in self.protocols() and "fixed-fanout" in self.protocols():
            for target in self.config.targets:
                for q in self.config.qs:
                    for loss in self.config.losses:
                        flood = solved("flooding", target, q, loss)
                        fixed = solved("fixed-fanout", target, q, loss)
                        if flood and fixed and flood.fanout > fixed.fanout + tolerance:
                            problems.append(
                                f"target={target} q={q} loss={loss}: flooding degree "
                                f"{flood.fanout} above fixed-fanout {fixed.fanout}"
                            )
        return problems


def _protocol_factory(protocol_id: str) -> Callable[[int, int], Protocol]:
    """Return a picklable ``(fanout, rounds) -> Protocol`` builder for one id."""

    def build(fanout: int, rounds: int) -> Protocol:
        return dict(protocol_zoo(fanout, rounds))[protocol_id]

    return build


def _solve_cell(args: tuple) -> tuple:
    """Process-pool worker: run the solver on one grid cell.

    The protocol is rebuilt inside the worker from its id (the solver needs
    a *factory*, not an instance — it probes many fanouts), so nothing but
    plain scalars crosses the process boundary.
    """
    (
        protocol_id,
        n,
        q,
        loss,
        target,
        rounds,
        confidence,
        initial_replicas,
        max_replicas,
        max_fanout,
        seed,
    ) = args
    result = dimension_fanout(
        n,
        q,
        target,
        loss=loss,
        protocol_factory=_protocol_factory(protocol_id),
        rounds=rounds,
        solve_rounds=protocol_id in ROUND_BASED_PROTOCOLS,
        confidence=confidence,
        initial_replicas=initial_replicas,
        max_replicas=max_replicas,
        max_fanout=float(max_fanout),
        seed=seed,
    )
    return (
        protocol_id,
        target,
        q,
        loss,
        result.fanout,
        result.rounds,
        result.analytical_fanout,
        result.achieved_reliability,
        result.ci_low,
        result.ci_high,
        result.replicas_used,
        result.evaluations,
        result.feasible,
        result.certified,
    )


def run_dimensioning(config: DimensioningConfig | None = None) -> DimensioningExperimentResult:
    """Run the solver over the full ``(protocol, target, q, loss)`` grid."""
    config = config or DimensioningConfig()
    cells = [
        (protocol_id, target, q, loss)
        for protocol_id in config.protocols
        for target in config.targets
        for q in config.qs
        for loss in config.losses
    ]
    seeds = spawn_seeds(len(cells), config.seed)
    work = [
        (
            protocol_id,
            config.n,
            q,
            loss,
            target,
            config.rounds,
            config.confidence,
            config.initial_replicas,
            config.max_replicas,
            config.max_fanout,
            seed,
        )
        for (protocol_id, target, q, loss), seed in zip(cells, seeds, strict=True)
    ]
    rows = parallel_map(_solve_cell, work, processes=config.processes, serial_threshold=1)
    points = tuple(
        DimensioningPoint(
            protocol=row[0],
            target_reliability=float(row[1]),
            q=float(row[2]),
            loss=float(row[3]),
            fanout=float(row[4]),
            rounds=row[5],
            analytical_fanout=float(row[6]),
            achieved_reliability=float(row[7]),
            ci_low=float(row[8]),
            ci_high=float(row[9]),
            replicas_used=int(row[10]),
            evaluations=int(row[11]),
            feasible=bool(row[12]),
            certified=bool(row[13]),
        )
        for row in rows
    )
    return DimensioningExperimentResult(config=config, points=points)

"""Surface dimensioning — served answers vs live solves, head to head.

The serving subsystem (:mod:`repro.serving`) claims that a precomputed
reliability surface can answer dimensioning queries **in microseconds
without giving up the Wilson certificate**.  This experiment is the
evidence, in four sections:

1. **Surface build.**  A ``(q, loss, fanout)`` grid over the batched gossip
   engine (Poisson fanout, the paper's favourite family) is precomputed with
   per-cell Wilson intervals via :func:`repro.serving.surface.build_surface`.
2. **Served vs live.**  For a *held-out* query grid — targets, ``q`` values
   and loss budgets deliberately strictly between the surface knots — every
   query is answered twice: served
   (:func:`repro.serving.query.dimension_from_surface`, no live fallback)
   and live (:func:`repro.analysis.dimensioning.dimension_fanout`, the
   seconds-per-query bisection).  The table reports both fanouts, both
   certificates, the agreement verdict (within one grid spacing plus the
   live solver's tolerance) and the measured speedup; the headline claim is
   a **median speedup >= 10^3** with served answers that remain certified.
3. **Joint Pareto dimensioning.**  One live
   :func:`~repro.analysis.dimensioning.dimension_pareto` solve (pbcast)
   exhibits the joint ``(fanout, rounds)`` frontier and the cost-aware pick
   that replace the old lexicographic answer.
4. **Targeted-crash dimensioning.**  The solver's ``failure_model=`` plumbing
   is exercised end-to-end: the same cell is dimensioned under the uniform
   crash draw and under a :class:`~repro.simulation.failures.TargetedCrashModel`
   failing exactly the same *number* of members.  With exchangeable members
   the two must agree closely — a regression canary for the failure plane.

Expected shape: every served answer carries ``ci_low >= target``, agrees
with its live twin, and arrives >= 10^3 times faster at the median; the
Pareto frontier is mutually non-dominated and fully certified; targeted and
uniform fanouts differ by at most the integer-granularity slack.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Callable

from repro.analysis.dimensioning import (
    ParetoCandidate,
    dimension_fanout,
    dimension_pareto,
)
from repro.utils.rng import spawn_seeds
from repro.utils.tables import format_table
from repro.utils.validation import check_integer, check_probability

if TYPE_CHECKING:
    from repro.protocols.base import Protocol

__all__ = [
    "SurfaceDimensioningConfig",
    "ServingComparisonPoint",
    "SurfaceDimensioningResult",
    "run_surface_dimensioning",
]

EXPERIMENT_ID = "surface_dimensioning"
PAPER_REFERENCE = (
    "Sec. 4.3 Eq. 12 as a service — precomputed certified reliability surfaces: "
    "served (interpolated, cached) vs live (re-simulated) dimensioning answers"
)


@dataclass(frozen=True)
class SurfaceDimensioningConfig:
    """Configuration of the served-vs-live comparison.

    Attributes
    ----------
    n:
        Group size of the surface and of every query.
    grid_qs, grid_losses, grid_fanouts:
        The surface knots (the held-out queries must avoid them).
    repetitions:
        Monte-Carlo replicas per surface cell.  Must clear the Wilson
        feasibility floor of the highest target (``z^2 t / (1 - t)``),
        otherwise no cell could ever certify that target.
    confidence:
        Per-cell Wilson coverage.
    targets:
        Reliability targets of the held-out queries.
    held_out_qs, held_out_losses:
        The query grid; every value must lie strictly between surface knots
        so the comparison actually exercises interpolation.
    query_repeats:
        Served-path timing repeats per query (the median over these is the
        served latency; one-shot timing would measure cache warmup).
    pareto_protocol, pareto_n, pareto_max_rounds:
        The joint ``(fanout, rounds)`` Pareto solve (section 3).
    targeted_n, targeted_q, targeted_target:
        The targeted-vs-uniform crash cell (section 4); the targeted model
        fails exactly ``round((1 - targeted_q) * targeted_n)`` members.
    seed:
        Base seed; the surface build, every live solve, and the Pareto /
        targeted sections each derive independent streams.
    processes:
        Worker processes for the surface build (1 = serial; identical
        numbers either way).
    """

    n: int = 1000
    grid_qs: tuple = (0.75, 0.85, 0.95)
    grid_losses: tuple = (0.0, 0.1, 0.2)
    grid_fanouts: tuple = (2.0, 3.0, 4.0, 6.0, 8.0, 11.0, 15.0)
    repetitions: int = 96
    confidence: float = 0.95
    targets: tuple = (0.8, 0.9)
    held_out_qs: tuple = (0.8, 0.9)
    held_out_losses: tuple = (0.05, 0.15)
    query_repeats: int = 50
    pareto_protocol: str = "pbcast"
    pareto_n: int = 400
    pareto_max_rounds: int = 6
    targeted_n: int = 400
    targeted_q: float = 0.9
    targeted_target: float = 0.9
    seed: int = 20082012
    processes: int | None = 1

    def __post_init__(self) -> None:
        check_integer("n", self.n, minimum=2)
        check_integer("repetitions", self.repetitions, minimum=2)
        check_probability("confidence", self.confidence, allow_zero=False, allow_one=False)
        check_integer("query_repeats", self.query_repeats, minimum=1)
        check_integer("pareto_n", self.pareto_n, minimum=2)
        check_integer("pareto_max_rounds", self.pareto_max_rounds, minimum=1)
        check_integer("targeted_n", self.targeted_n, minimum=2)
        check_probability("targeted_q", self.targeted_q, allow_zero=False)
        check_probability(
            "targeted_target", self.targeted_target, allow_zero=False, allow_one=False
        )
        for name, values in (
            ("grid_qs", self.grid_qs),
            ("grid_losses", self.grid_losses),
            ("grid_fanouts", self.grid_fanouts),
            ("targets", self.targets),
            ("held_out_qs", self.held_out_qs),
            ("held_out_losses", self.held_out_losses),
        ):
            if not values:
                raise ValueError(f"{name} must be non-empty")
        for target in self.targets:
            check_probability("target", target, allow_zero=False, allow_one=False)
        from math import ceil

        from scipy import stats

        z = float(stats.norm.ppf(0.5 + self.confidence / 2.0))
        top = max(self.targets + (self.targeted_target,))
        floor = int(ceil(z * z * top / (1.0 - top)))
        if self.repetitions < floor:
            raise ValueError(
                f"repetitions={self.repetitions} cannot certify target {top} at "
                f"confidence {self.confidence} (Wilson feasibility floor: {floor} "
                "replicas per cell)"
            )
        for q in self.held_out_qs:
            if not self.grid_qs[0] <= q <= self.grid_qs[-1]:
                raise ValueError(f"held-out q={q} outside the surface span {self.grid_qs}")
        for loss in self.held_out_losses:
            if not self.grid_losses[0] <= loss <= self.grid_losses[-1]:
                raise ValueError(
                    f"held-out loss={loss} outside the surface span {self.grid_losses}"
                )

    def with_scale(self, factor: float) -> "SurfaceDimensioningConfig":
        """Return a shrunken copy for quick runs (CLI ``--scale``).

        Group sizes shrink and small scales trim the held-out query grid to
        its corner cells; the per-cell replica budget does **not** shrink —
        it encodes the Wilson-certificate contract a smoke run must not
        silently weaken.
        """
        if not 0.0 < factor <= 1.0:
            raise ValueError(f"scale factor must be in (0, 1], got {factor}")
        if factor >= 0.999:
            return self
        trimmed: dict = {
            "n": max(250, int(self.n * factor)),
            "pareto_n": max(200, int(self.pareto_n * factor)),
            "targeted_n": max(200, int(self.targeted_n * factor)),
            "query_repeats": max(5, int(self.query_repeats * factor)),
        }
        if factor <= 0.25:
            trimmed["targets"] = self.targets[-1:]
            trimmed["held_out_qs"] = self.held_out_qs[-1:]
            trimmed["held_out_losses"] = self.held_out_losses[:1]
            last = self.grid_fanouts[-1]
            trimmed["grid_fanouts"] = tuple(
                f for i, f in enumerate(self.grid_fanouts) if i % 2 == 0 or f == last
            )
        return replace(self, **trimmed)


@dataclass(frozen=True)
class ServingComparisonPoint:
    """One held-out query answered both ways.

    ``tolerance`` is the agreement budget: the fanout-axis spacing around
    the live answer plus the live solver's ``fanout_tol``; ``agree`` is
    ``|served_fanout - live_fanout| <= tolerance``.  ``speedup`` is
    ``live_seconds / served_seconds`` (served latency is the median over
    the configured timing repeats).
    """

    target_reliability: float
    q: float
    loss: float
    served_fanout: float
    live_fanout: float
    served_ci_low: float
    live_ci_low: float
    served_cost: float
    served_source: str
    tolerance: float
    agree: bool
    served_seconds: float
    live_seconds: float
    speedup: float


@dataclass(frozen=True)
class SurfaceDimensioningResult:
    """Result of the served-vs-live comparison plus the solver-upgrade sections."""

    config: SurfaceDimensioningConfig
    points: tuple
    surface_cells: int
    surface_build_seconds: float
    pareto_frontier: tuple
    pareto_best_cost: ParetoCandidate | None
    pareto_replicas: int
    targeted_fanout: float
    uniform_fanout: float

    def median_speedup(self) -> float:
        """Return the median served-vs-live speedup over the held-out grid."""
        speedups = sorted(p.speedup for p in self.points)
        mid = len(speedups) // 2
        if len(speedups) % 2:
            return speedups[mid]
        return 0.5 * (speedups[mid - 1] + speedups[mid])

    def to_table(self, *, precision: int = 4) -> str:
        """Render the held-out comparison plus the Pareto / targeted sections."""
        comparison = format_table(
            [
                "target", "q", "loss", "served_f", "live_f", "served_ci_low",
                "live_ci_low", "agree", "served_us", "live_s", "speedup",
            ],
            [
                (
                    p.target_reliability, p.q, p.loss, p.served_fanout, p.live_fanout,
                    p.served_ci_low, p.live_ci_low, p.agree,
                    p.served_seconds * 1e6, p.live_seconds, p.speedup,
                )
                for p in self.points
            ],
            precision=precision,
        )
        lines = [
            f"surface: {self.surface_cells} cells x {self.config.repetitions} replicas, "
            f"built in {self.surface_build_seconds:.2f}s",
            comparison,
            f"median served-vs-live speedup: {self.median_speedup():.0f}x",
            "",
            f"joint (fanout, rounds) Pareto frontier — {self.config.pareto_protocol}, "
            f"n={self.config.pareto_n}, target={self.config.targets[-1]}:",
            format_table(
                ["fanout", "rounds", "ci_low", "msgs/member"],
                [
                    (c.fanout, c.rounds, c.ci_low, c.messages_per_member)
                    for c in self.pareto_frontier
                ],
                precision=precision,
            ),
        ]
        if self.pareto_best_cost is not None:
            lines.append(
                f"cost-aware pick: fanout={self.pareto_best_cost.fanout:.0f} "
                f"rounds={self.pareto_best_cost.rounds} "
                f"({self.pareto_best_cost.messages_per_member:.2f} msgs/member)"
            )
        lines.append("")
        lines.append(
            f"targeted-crash vs uniform dimensioning (n={self.config.targeted_n}, "
            f"q={self.config.targeted_q}, target={self.config.targeted_target}): "
            f"uniform f={self.uniform_fanout:.0f}, targeted f={self.targeted_fanout:.0f}"
        )
        return "\n".join(lines)

    def check_shape(self, *, fanout_slack: float = 2.0) -> list[str]:
        """Check the serving claims.

        1. Every served answer came from the surface (no silent fallback)
           and carries its certificate (``ci_low >= target``).
        2. Served and live fanouts agree within the per-point tolerance.
        3. The median speedup is at least 10^3.
        4. The Pareto frontier is non-empty, fully certified, and mutually
           non-dominated.
        5. Targeted-crash and uniform dimensioning agree within
           ``fanout_slack`` (members are exchangeable, so failing *which*
           members cannot matter beyond integer granularity).
        """
        problems: list[str] = []
        for p in self.points:
            label = f"target={p.target_reliability} q={p.q} loss={p.loss}"
            if p.served_source != "surface":
                problems.append(f"{label}: served answer fell back to {p.served_source}")
            if p.served_ci_low < p.target_reliability:
                problems.append(
                    f"{label}: served ci_low {p.served_ci_low:.4f} below target"
                )
            if not p.agree:
                problems.append(
                    f"{label}: served fanout {p.served_fanout} vs live {p.live_fanout} "
                    f"disagree beyond tolerance {p.tolerance:.2f}"
                )
        if self.median_speedup() < 1e3:
            problems.append(
                f"median served-vs-live speedup {self.median_speedup():.0f}x below 1000x"
            )
        if not self.pareto_frontier:
            problems.append("Pareto frontier is empty")
        for c in self.pareto_frontier:
            if c.ci_low < self.config.targets[-1]:
                problems.append(
                    f"frontier point (f={c.fanout}, r={c.rounds}) lacks its certificate"
                )
            for other in self.pareto_frontier:
                if other is c:
                    continue
                if (
                    other.fanout <= c.fanout
                    and other.rounds <= c.rounds
                    and (other.fanout, other.rounds) != (c.fanout, c.rounds)
                ):
                    problems.append(
                        f"frontier point (f={c.fanout}, r={c.rounds}) is dominated by "
                        f"(f={other.fanout}, r={other.rounds})"
                    )
        if abs(self.targeted_fanout - self.uniform_fanout) > fanout_slack:
            problems.append(
                f"targeted-crash fanout {self.targeted_fanout} vs uniform "
                f"{self.uniform_fanout} differ beyond slack {fanout_slack}"
            )
        return problems


def _fixed_fanout_factory(fanout: int, rounds: int) -> Protocol:
    """Picklable fixed-fanout builder for the targeted-crash section."""
    from repro.experiments.protocol_comparison import protocol_zoo

    return dict(protocol_zoo(fanout, rounds))["fixed-fanout"]


def run_surface_dimensioning(
    config: SurfaceDimensioningConfig | None = None,
) -> SurfaceDimensioningResult:
    """Run the full served-vs-live comparison (build, query, Pareto, targeted)."""
    from repro.serving.query import SurfaceQueryEngine, dimension_from_surface
    from repro.serving.surface import SurfaceGrid, build_surface
    from repro.simulation.failures import TargetedCrashModel

    config = config or SurfaceDimensioningConfig()
    queries = [
        (target, q, loss)
        for target in config.targets
        for q in config.held_out_qs
        for loss in config.held_out_losses
    ]
    seeds = spawn_seeds(len(queries) + 4, config.seed)
    live_seeds, aux_seeds = seeds[: len(queries)], seeds[len(queries):]

    grid = SurfaceGrid(
        ns=(config.n,),
        qs=config.grid_qs,
        losses=config.grid_losses,
        fanouts=config.grid_fanouts,
    )
    build_start = time.perf_counter()
    surface = build_surface(
        grid,
        repetitions=config.repetitions,
        confidence=config.confidence,
        conditional_on_spread=True,
        seed=int(aux_seeds[0]),
        processes=config.processes,
    )
    build_seconds = time.perf_counter() - build_start
    engine = SurfaceQueryEngine(surface)

    fanout_axis = config.grid_fanouts
    points = []
    for (target, q, loss), live_seed in zip(queries, live_seeds, strict=True):
        served_start = time.perf_counter()
        served = dimension_from_surface(
            engine, n=config.n, q=q, target_reliability=target, loss=loss,
            allow_live_fallback=False,
        )
        first = time.perf_counter() - served_start
        timings = [first]
        for _ in range(config.query_repeats - 1):
            tick = time.perf_counter()
            dimension_from_surface(
                engine, n=config.n, q=q, target_reliability=target, loss=loss,
                allow_live_fallback=False,
            )
            timings.append(time.perf_counter() - tick)
        timings.sort()
        served_seconds = timings[len(timings) // 2]

        live_start = time.perf_counter()
        live = dimension_fanout(
            config.n, q, target, loss=loss, conditional_on_spread=True,
            seed=int(live_seed),
        )
        live_seconds = time.perf_counter() - live_start

        spacing = max(
            (hi - lo for lo, hi in zip(fanout_axis, fanout_axis[1:], strict=False)
             if lo - 1e-9 <= live.fanout <= hi + 1e-9),
            default=fanout_axis[-1] - fanout_axis[-2] if len(fanout_axis) > 1 else 1.0,
        )
        tolerance = spacing + 0.25  # one grid cell + the live solver's fanout_tol
        points.append(
            ServingComparisonPoint(
                target_reliability=target,
                q=q,
                loss=loss,
                served_fanout=served.fanout,
                live_fanout=live.fanout,
                served_ci_low=served.ci_low,
                live_ci_low=live.ci_low,
                served_cost=served.cost,
                served_source=served.source,
                tolerance=tolerance,
                agree=bool(
                    served.feasible
                    and live.feasible
                    and abs(served.fanout - live.fanout) <= tolerance
                ),
                served_seconds=served_seconds,
                live_seconds=live_seconds,
                speedup=live_seconds / max(served_seconds, 1e-9),
            )
        )

    pareto = dimension_pareto(
        config.pareto_n,
        0.9,
        config.targets[-1],
        protocol_factory=_fixed_fanout_factory
        if config.pareto_protocol == "fixed-fanout"
        else _pareto_factory(config.pareto_protocol),
        max_rounds=config.pareto_max_rounds,
        seed=int(aux_seeds[1]),
    )

    crash_count = int(round((1.0 - config.targeted_q) * config.targeted_n))
    targeted_model = TargetedCrashModel(failed=tuple(range(1, crash_count + 1)))
    uniform = dimension_fanout(
        config.targeted_n,
        config.targeted_q,
        config.targeted_target,
        protocol_factory=_fixed_fanout_factory,
        rounds=config.pareto_max_rounds,
        seed=int(aux_seeds[2]),
    )
    targeted = dimension_fanout(
        config.targeted_n,
        config.targeted_q,
        config.targeted_target,
        protocol_factory=_fixed_fanout_factory,
        rounds=config.pareto_max_rounds,
        failure_model=targeted_model,
        seed=int(aux_seeds[3]),
    )

    return SurfaceDimensioningResult(
        config=config,
        points=tuple(points),
        surface_cells=surface.cells,
        surface_build_seconds=build_seconds,
        pareto_frontier=pareto.frontier,
        pareto_best_cost=pareto.best_cost,
        pareto_replicas=pareto.replicas_used,
        targeted_fanout=targeted.fanout,
        uniform_fanout=uniform.fanout,
    )


def _pareto_factory(protocol_id: str) -> Callable[[int, int], Protocol]:
    """Picklable ``(fanout, rounds) -> Protocol`` builder for one zoo id."""

    def build(fanout: int, rounds: int) -> Protocol:
        from repro.experiments.protocol_comparison import protocol_zoo

        return dict(protocol_zoo(fanout, rounds))[protocol_id]

    return build

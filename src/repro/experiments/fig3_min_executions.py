"""Fig. 3 — minimum number of executions for a required success probability.

The paper evaluates Eq. 6 with the success-of-gossiping requirement
``p_s = 0.999``: for a per-execution reliability ``S`` (the giant-component
size), the minimum number of executions is ``t = ⌈lg(1 − p_s)/lg(1 − S)⌉``.
The curve falls steeply: ~19-20 executions suffice at ``S ≈ 0.3`` while 1-3
executions are enough once ``S ≥ 0.9``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.success import min_executions, success_probability
from repro.utils.tables import format_table
from repro.utils.validation import check_probability

__all__ = ["Fig3Config", "Fig3Result", "run_fig3"]

EXPERIMENT_ID = "fig3"
PAPER_REFERENCE = (
    "Fig. 3 — Minimum times of executions for the required probability of gossiping success"
)


@dataclass(frozen=True)
class Fig3Config:
    """Parameters of the Fig. 3 curve (defaults match the paper).

    The paper plots reliabilities from roughly 0.2 to just above 1.0 with the
    success requirement fixed at 0.999.
    """

    required_success: float = 0.999
    reliability_min: float = 0.2
    reliability_max: float = 0.995
    points: int = 60

    def __post_init__(self) -> None:
        check_probability("required_success", self.required_success, allow_one=False)


@dataclass(frozen=True)
class Fig3Result:
    """The Fig. 3 series: minimum executions for each per-execution reliability."""

    config: Fig3Config
    reliabilities: np.ndarray
    min_executions: np.ndarray

    def to_table(self, *, precision: int = 3) -> str:
        """Render the (S, t_min) series."""
        headers = ["reliability_S", "min_executions_t"]
        rows = list(zip(self.reliabilities.tolist(), self.min_executions.tolist(), strict=True))
        return format_table(headers, rows, precision=precision)

    def check_shape(self) -> list[str]:
        """Check the qualitative Fig. 3 shape.

        The required number of executions must be non-increasing in the
        reliability, must reach 1-3 once the reliability exceeds 0.9, and
        every returned ``t`` must actually satisfy Eq. 5 while ``t − 1`` must
        not.
        """
        problems: list[str] = []
        if not np.all(np.diff(self.min_executions) <= 0):
            problems.append("minimum executions should be non-increasing in reliability")
        high = self.min_executions[self.reliabilities >= 0.9]
        if high.size and high.max() > 3:
            problems.append("for reliability >= 0.9 the paper expects at most ~3 executions")
        for s, t in zip(self.reliabilities, self.min_executions, strict=True):
            t = int(t)
            if success_probability(float(s), t) < self.config.required_success - 1e-12:
                problems.append(f"t={t} does not meet the requirement at S={s:.3f}")
            if t > 1 and success_probability(float(s), t - 1) >= self.config.required_success:
                problems.append(f"t={t} is not minimal at S={s:.3f}")
        return problems


def run_fig3(config: Fig3Config | None = None) -> Fig3Result:
    """Compute the Fig. 3 curve (pure analysis, Eq. 6)."""
    config = config or Fig3Config()
    reliabilities = np.linspace(config.reliability_min, config.reliability_max, config.points)
    executions = np.array(
        [min_executions(config.required_success, float(s)) for s in reliabilities],
        dtype=np.int64,
    )
    return Fig3Result(config=config, reliabilities=reliabilities, min_executions=executions)

"""Fig. 4a/4b — reliability of gossiping in a 1000-member group.

Simulation protocol (Section 5.1 of the paper): group size 1000, Poisson
fanout with mean swept from 1.1 to 6.7 in steps of 0.4, nonfailed ratios
{0.1, 0.3, 0.5, 1.0} (panel a) and {0.4, 0.6, 0.8, 1.0} (panel b), 20
executions per pair, averaged; the analytical curve is Eq. 11.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.reliability_figures import (
    ReliabilityFigureConfig,
    ReliabilityFigureResult,
    run_reliability_figure,
)

__all__ = ["Fig4Config", "Fig4Result", "run_fig4"]

EXPERIMENT_ID = "fig4"
PAPER_REFERENCE = "Figs. 4a/4b — Reliability in a 1000 nodes group"


@dataclass(frozen=True)
class Fig4Config(ReliabilityFigureConfig):
    """Fig. 4 configuration: the shared protocol at group size 1000."""

    n: int = 1000


class Fig4Result(ReliabilityFigureResult):
    """Fig. 4 result type (alias of the shared reliability-figure result)."""


def run_fig4(config: Fig4Config | None = None) -> ReliabilityFigureResult:
    """Run the Fig. 4 experiment (simulation + analysis, 1000 members)."""
    return run_reliability_figure(config or Fig4Config())

"""Fig. 5a/5b — reliability of gossiping in a 5000-member group.

Same protocol as Fig. 4 but with 5000 members; the paper notes the simulation
matches the analysis even better at this size (finite-size effects shrink).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.reliability_figures import (
    ReliabilityFigureConfig,
    ReliabilityFigureResult,
    run_reliability_figure,
)

__all__ = ["Fig5Config", "Fig5Result", "run_fig5"]

EXPERIMENT_ID = "fig5"
PAPER_REFERENCE = "Figs. 5a/5b — Reliability in a 5000 nodes group"


@dataclass(frozen=True)
class Fig5Config(ReliabilityFigureConfig):
    """Fig. 5 configuration: the shared protocol at group size 5000."""

    n: int = 5000


class Fig5Result(ReliabilityFigureResult):
    """Fig. 5 result type (alias of the shared reliability-figure result)."""


def run_fig5(config: Fig5Config | None = None) -> ReliabilityFigureResult:
    """Run the Fig. 5 experiment (simulation + analysis, 5000 members)."""
    return run_reliability_figure(config or Fig5Config())

"""Sec. 4 — large-``n`` empirical validation of the percolation formulas.

The paper derives reliability analytically: the gossip graph is a generalized
random graph, the critical nonfailed ratio is ``q_c = 1 / G1'(1)`` (Eq. 3),
and the reliability is the giant-component size solved from the generating
functions (Eq. 4).  Sections 5-6 only validate this indirectly, through round
simulations at ``n ≤ 5000``.  This experiment checks the percolation claims
*graph-side* at ``n`` up to ``10⁶`` — two orders of magnitude beyond the
paper — using the batched ensemble engine (:mod:`repro.graphs.ensemble`):

* the **undirected configuration-model** giant fraction under site
  percolation, measured on the ensemble the formulas are derived on, must
  converge to Eq. 4 for every supercritical ``q`` in the grid;
* the **directed gossip graph's** source-reachability reliability
  (conditional on take-off) must match the same curve — for Poisson fanouts
  the out-component equation coincides with Eq. 4, which is exactly the
  approximation the paper leans on; and
* the pooled empirical degree moments give ``1 / G1'(1)``, pinning the
  critical ratio of Eq. 3 per group size.

Subcritical points must stay near zero and near-critical points are reported
but not gated (finite-size effects peak at ``q_c``).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro.core.distributions import PoissonFanout
from repro.core.percolation import critical_ratio, giant_component_size
from repro.graphs.ensemble import GossipGraphEnsemble, percolation_ensemble
from repro.utils.rng import spawn_seeds
from repro.utils.tables import format_table
from repro.utils.validation import check_integer, check_probability

__all__ = [
    "Sec4Config",
    "Sec4Point",
    "Sec4CriticalEstimate",
    "Sec4Result",
    "run_sec4",
]

EXPERIMENT_ID = "sec4_percolation_validation"
PAPER_REFERENCE = (
    "Sec. 4 — percolation validation: giant components vs Eqs. 3-4 at n up to 1e6"
)


@dataclass(frozen=True)
class Sec4Config:
    """Configuration of the large-``n`` percolation validation.

    Attributes
    ----------
    ns:
        Group sizes; the default spans 10⁴ … 10⁶ (the round simulator's
        practical ceiling is ~5·10³ per execution).
    qs:
        Nonfailed-ratio grid.  With the default Poisson mean fanout 4 the
        critical ratio (Eq. 3) is 0.25, so the grid brackets the transition.
    mean_fanout:
        Mean of the Poisson fanout distribution ``P``.
    replicas:
        Graph replicas per ``(n, q)`` point.
    replicas_large / large_n_threshold:
        Replica count used once ``n >= large_n_threshold`` (million-node
        replicas are seconds each; a handful suffices because the
        per-replica variance shrinks with ``n``).
    seed:
        Base seed; every ``(n, q)`` point derives an independent stream.
    """

    ns: tuple = (10_000, 100_000, 1_000_000)
    qs: tuple = (0.15, 0.3, 0.45, 0.6, 0.8, 1.0)
    mean_fanout: float = 4.0
    replicas: int = 8
    replicas_large: int = 3
    large_n_threshold: int = 500_000
    seed: int = 20080408

    def __post_init__(self) -> None:
        if not self.ns or not self.qs:
            raise ValueError("ns and qs must be non-empty")
        for n in self.ns:
            check_integer("n", n, minimum=2)
        for q in self.qs:
            check_probability("q", q)
        check_integer("replicas", self.replicas, minimum=1)
        check_integer("replicas_large", self.replicas_large, minimum=1)

    def distribution(self) -> PoissonFanout:
        """Return the fanout distribution ``P`` of the configuration."""
        return PoissonFanout(self.mean_fanout)

    def replicas_for(self, n: int) -> int:
        """Return the replica count for group size ``n``."""
        return self.replicas_large if n >= self.large_n_threshold else self.replicas

    def with_scale(self, factor: float) -> "Sec4Config":
        """Return a shrunken copy for quick runs (CLI ``--scale``)."""
        if not 0.0 < factor <= 1.0:
            raise ValueError(f"scale factor must be in (0, 1], got {factor}")
        ns = tuple(sorted({max(2000, int(n * factor)) for n in self.ns}))
        return replace(self, ns=ns, replicas=max(2, int(self.replicas * factor)))


@dataclass(frozen=True)
class Sec4Point:
    """Measurements of one ``(n, q)`` grid point.

    ``giant_empirical`` is the configuration-model ensemble's mean giant
    fraction (the direct Eq. 4 check); ``gossip_reliability`` is the directed
    gossip ensemble's conditional reachability (NaN when no replica took
    off, expected deep in the subcritical phase).
    """

    n: int
    q: float
    replicas: int
    analytical: float
    giant_empirical: float
    giant_std: float
    gossip_reliability: float
    gossip_std: float

    def giant_error(self) -> float:
        """Absolute error of the configuration-model giant fraction vs Eq. 4."""
        return abs(self.giant_empirical - self.analytical)

    def reliability_error(self) -> float:
        """Absolute error of the gossip reachability vs Eq. 4 (NaN-safe)."""
        if np.isnan(self.gossip_reliability):
            return 0.0 if self.analytical == 0.0 else float("nan")
        return abs(self.gossip_reliability - self.analytical)


@dataclass(frozen=True)
class Sec4CriticalEstimate:
    """Empirical vs analytical critical ratio (Eq. 3) for one group size."""

    n: int
    empirical: float
    analytical: float

    def error(self) -> float:
        """Absolute error of the empirical critical ratio."""
        return abs(self.empirical - self.analytical)


@dataclass(frozen=True)
class Sec4Result:
    """Result of the percolation validation experiment."""

    config: Sec4Config
    points: tuple
    critical: tuple

    def points_for_n(self, n: int) -> list[Sec4Point]:
        """Return the ``q`` series of one group size."""
        return [p for p in self.points if p.n == n]

    def to_table(self, *, precision: int = 4) -> str:
        """Render the grid and the per-``n`` critical-ratio estimates."""
        headers = ["n", "q", "replicas", "eq4", "giant_emp", "giant_std", "gossip_rel", "err_giant"]
        rows = [
            [
                p.n,
                p.q,
                p.replicas,
                p.analytical,
                p.giant_empirical,
                p.giant_std,
                p.gossip_reliability,
                p.giant_error(),
            ]
            for p in self.points
        ]
        grid = format_table(headers, rows, precision=precision)
        crit_rows = [[c.n, c.empirical, c.analytical, c.error()] for c in self.critical]
        crit = format_table(
            ["n", "qc_empirical", "qc_eq3", "err"], crit_rows, precision=precision
        )
        return f"{grid}\n\ncritical ratio (Eq. 3):\n{crit}"

    def check_shape(self, *, tolerance: float = 0.04) -> list[str]:
        """Check the convergence claims of the validation.

        1. Supercritical points (``q >= q_c + 0.1``): the configuration-model
           giant fraction and the gossip reachability both sit within
           ``tolerance`` (plus Monte-Carlo slack) of Eq. 4.
        2. Subcritical points (``q <= q_c - 0.05``): the giant fraction is
           vanishing.
        3. The empirical critical ratio matches Eq. 3 per group size.
        4. Convergence in ``n``: the worst supercritical error does not grow
           from the smallest to the largest group size.
        """
        problems: list[str] = []
        qc = critical_ratio(self.config.distribution())
        worst: dict[int, float] = {}
        for p in self.points:
            if p.q >= qc + 0.1:
                slack = 4.0 * p.giant_std / np.sqrt(p.replicas)
                if p.giant_error() > tolerance + slack:
                    problems.append(
                        f"n={p.n} q={p.q}: giant fraction {p.giant_empirical:.4f} "
                        f"deviates from Eq. 4 {p.analytical:.4f} by {p.giant_error():.4f}"
                    )
                # The gossip estimate averages only the take-off replicas (a
                # smaller, noisier sample than the percolation ensemble), so
                # it gets its own Monte-Carlo slack.
                gossip_slack = 4.0 * p.gossip_std / np.sqrt(p.replicas)
                if not np.isnan(p.gossip_reliability) and p.reliability_error() > tolerance + gossip_slack:
                    problems.append(
                        f"n={p.n} q={p.q}: gossip reachability {p.gossip_reliability:.4f} "
                        f"deviates from Eq. 4 {p.analytical:.4f}"
                    )
                worst[p.n] = max(worst.get(p.n, 0.0), p.giant_error())
            elif p.q <= qc - 0.05:
                if p.giant_empirical > 0.1:
                    problems.append(
                        f"n={p.n} q={p.q}: subcritical giant fraction {p.giant_empirical:.4f} "
                        "is not vanishing"
                    )
        for c in self.critical:
            if c.error() > 0.05:
                problems.append(
                    f"n={c.n}: empirical critical ratio {c.empirical:.4f} "
                    f"misses Eq. 3 {c.analytical:.4f}"
                )
        if len(worst) >= 2:
            ns_sorted = sorted(worst)
            if worst[ns_sorted[-1]] > worst[ns_sorted[0]] + 0.01:
                problems.append(
                    "supercritical error grows with n "
                    f"({worst[ns_sorted[0]]:.4f} at n={ns_sorted[0]} vs "
                    f"{worst[ns_sorted[-1]]:.4f} at n={ns_sorted[-1]})"
                )
        return problems


def run_sec4(config: Sec4Config | None = None) -> Sec4Result:
    """Run the percolation validation over the full ``(n, q)`` grid."""
    config = config or Sec4Config()
    dist = config.distribution()
    qc = critical_ratio(dist)
    points: list[Sec4Point] = []
    critical: list[Sec4CriticalEstimate] = []
    seeds = iter(spawn_seeds(2 * len(config.ns) * len(config.qs), config.seed))
    for n in config.ns:
        replicas = config.replicas_for(n)
        moments_estimate: float | None = None
        for q in config.qs:
            analytical = giant_component_size(dist, q)
            gossip = GossipGraphEnsemble(n, dist, q).realise(replicas, seed=next(seeds))
            perc = percolation_ensemble(dist, n, q, repetitions=replicas, seed=next(seeds))
            spread = gossip.spread_occurred()
            gossip_std = (
                float(gossip.reliability[spread].std(ddof=1)) if spread.sum() > 1 else 0.0
            )
            points.append(
                Sec4Point(
                    n=n,
                    q=q,
                    replicas=replicas,
                    analytical=analytical,
                    giant_empirical=perc.mean_fraction(),
                    giant_std=perc.std_fraction(),
                    gossip_reliability=gossip.conditional_reliability(),
                    gossip_std=gossip_std,
                )
            )
            # The pooled degree moments of the largest-q ensemble give the
            # cleanest Eq. 3 estimate (most alive members to pool over).
            if q == max(config.qs):
                moments_estimate = gossip.empirical_critical_ratio()
        critical.append(
            Sec4CriticalEstimate(
                n=n,
                empirical=moments_estimate if moments_estimate is not None else float("inf"),
                analytical=qc,
            )
        )
    return Sec4Result(config=config, points=tuple(points), critical=tuple(critical))

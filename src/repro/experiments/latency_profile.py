"""Latency profile — delivery-time percentiles of the zoo under timed networks.

The paper's evaluation counts rounds; deployments care about *time*.  This
experiment runs the whole protocol zoo plus the two-phase recovery
protocols through the batched engines with the per-message **latency
plane** enabled (:class:`~repro.simulation.latency.DeliveryTimePlane`):
every transmission draws its own delay from the configured latency law,
slow messages mature in later rounds via discretised time-buckets, and the
engines report per-member delivery times.  The sweep crosses

* the protocol rows (``protocol_zoo(..., include_peer_sampling=True,
  include_recovery=True)``),
* a latency law per column — constant, uniform and exponential at the
  same one-round mean, so the columns isolate *variance* (the constant
  column is the latency-free round clock, reproduced bit-identically by
  the plane's fast path), and
* an i.i.d. loss grid (loss stretches tails by forcing recovery rounds),

and reports per cell the reliability, the message cost, and the delivery
percentiles ``p50 / p99 / p999`` over delivered members — the tail metrics
a broadcast SLA is written against.

Expected shape (:meth:`LatencyProfileResult.check_shape`): percentiles are
ordered within every cell; under the one-round constant law every delivery
lands exactly on the round grid (the plane is the round clock); the exponential
column's tail dominates the constant column's at equal mean (per-hop
variance compounds); and loss never improves reliability.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable

import numpy as np

from repro.experiments.protocol_comparison import protocol_zoo
from repro.simulation.latency import percentile_label
from repro.simulation.network import (
    NetworkModel,
    latency_constant,
    latency_exponential,
    latency_uniform,
)
from repro.simulation.protocol_batch import simulate_protocol_batch
from repro.utils.parallel import parallel_map
from repro.utils.rng import spawn_seeds
from repro.utils.tables import format_table
from repro.utils.validation import check_integer, check_probability

__all__ = [
    "LatencyProfileConfig",
    "LatencyPoint",
    "LatencyProfileResult",
    "run_latency_profile",
]

EXPERIMENT_ID = "latency_profile"
PAPER_REFERENCE = (
    "Sec. 5 beyond the paper — delivery-time percentiles (p50/p99/p999) of the "
    "protocol zoo + recovery protocols under constant/uniform/exponential "
    "per-message latency x i.i.d. loss, batched latency plane"
)

#: Replicas per worker task when the sweep fans out over processes (same
#: convention as ``protocol_comparison`` so fixed seeds reproduce anywhere).
_CHUNK_REPETITIONS = 8


def _build_latency(spec: tuple) -> Callable[[np.random.Generator], float]:
    """Instantiate the latency sampler of one ``(kind, *params)`` column spec."""
    kind = spec[0]
    if kind == "constant":
        return latency_constant(spec[1])
    if kind == "uniform":
        return latency_uniform(spec[1], spec[2])
    if kind == "exponential":
        return latency_exponential(spec[1])
    raise ValueError(f"unknown latency kind {kind!r}")


def _latency_label(spec: tuple) -> str:
    """Render a latency spec as a compact column label."""
    return f"{spec[0]}({', '.join('%g' % v for v in spec[1:])})"


@dataclass(frozen=True)
class LatencyProfileConfig:
    """Configuration of the latency-profile sweep.

    Attributes
    ----------
    n:
        Group size.
    q:
        Nonfailed ratio (single supercritical value — latency is the axis
        under study, failures are the nuisance dimension).
    latencies:
        Latency-law column specs: ``("constant", value)``,
        ``("uniform", low, high)`` or ``("exponential", mean)``.  The
        defaults share a mean of one round period, so the columns compare
        latency *variance* at equal per-hop cost.
    loss_probabilities:
        Independent per-message drop probabilities to cross with the
        latency columns.
    round_period:
        Gossip period the plane discretises against (the time axis unit).
    percentiles:
        Delivery percentiles to report (over delivered members).
    mean_fanout:
        Per-member effort budget (push fanout / overlay degree).
    rounds:
        Round horizon of the periodic protocols.
    repetitions:
        Independent executions per ``(protocol, latency, loss)`` cell.
    seed:
        Base seed; every cell derives an independent stream.
    processes:
        Worker processes; 1 keeps execution serial and deterministic.
    """

    n: int = 1000
    q: float = 0.9
    latencies: tuple = (
        ("constant", 1.0),
        ("uniform", 0.5, 1.5),
        ("exponential", 1.0),
    )
    loss_probabilities: tuple = (0.0, 0.15)
    round_period: float = 1.0
    percentiles: tuple = (50.0, 99.0, 99.9)
    mean_fanout: int = 4
    rounds: int = 12
    repetitions: int = 40
    seed: int = 20082013
    processes: int | None = 1

    def __post_init__(self) -> None:
        check_integer("n", self.n, minimum=2)
        check_probability("q", self.q)
        if not self.latencies:
            raise ValueError("latencies must be non-empty")
        for spec in self.latencies:
            _build_latency(spec)  # validates kind and parameters
        if not self.loss_probabilities:
            raise ValueError("loss_probabilities must be non-empty")
        for loss in self.loss_probabilities:
            check_probability("loss_probability", loss)
        if self.round_period <= 0.0:
            raise ValueError(f"round_period must be > 0, got {self.round_period!r}")
        if not self.percentiles:
            raise ValueError("percentiles must be non-empty")
        for p in self.percentiles:
            if not 0.0 < p < 100.0:
                raise ValueError(f"percentiles must be in (0, 100), got {p!r}")
        check_integer("mean_fanout", self.mean_fanout, minimum=1)
        check_integer("rounds", self.rounds, minimum=1)
        check_integer("repetitions", self.repetitions, minimum=1)

    def protocols(self) -> tuple:
        """Return the full zoo (peer sampling + recovery rows included)."""
        return protocol_zoo(
            self.mean_fanout,
            self.rounds,
            include_peer_sampling=True,
            include_recovery=True,
        )

    def with_scale(self, factor: float) -> "LatencyProfileConfig":
        """Return a shrunken copy for quick runs (CLI ``--scale``)."""
        if not 0.0 < factor <= 1.0:
            raise ValueError(f"scale factor must be in (0, 1], got {factor}")
        if factor >= 0.999:
            return self
        return replace(
            self,
            n=max(200, int(self.n * factor)),
            repetitions=max(8, int(self.repetitions * factor)),
        )


@dataclass(frozen=True)
class LatencyPoint:
    """Measurements of one ``(protocol, latency, loss_probability)`` cell."""

    protocol: str
    latency: str
    loss_probability: float
    repetitions: int
    reliability: float
    reliability_std: float
    messages_per_member: float
    #: percentile label ("p50", ...) -> delivery time over delivered members;
    #: ``nan`` when no member beyond the source was ever delivered.
    delivery_percentiles: tuple
    #: Only set for constant-latency columns whose value equals the round
    #: period: True iff every raw delivery time is an exact multiple of the
    #: round period (the plane's fast path is the round clock); None for
    #: every other latency law.
    round_aligned: bool | None = None

    def percentile(self, p: float) -> float:
        """Return one reported percentile by value (e.g. ``99.9``)."""
        label = percentile_label(p)
        for key, value in self.delivery_percentiles:
            if key == label:
                return value
        raise KeyError(f"percentile {p!r} ({label}) not reported for this cell")


@dataclass(frozen=True)
class LatencyProfileResult:
    """Result of the latency-profile sweep."""

    config: LatencyProfileConfig
    points: tuple

    def protocols(self) -> list[str]:
        """Return the protocol ids in run order (deduplicated)."""
        seen: dict[str, None] = {}
        for p in self.points:
            seen.setdefault(p.protocol, None)
        return list(seen)

    def point(self, protocol: str, latency: str, loss_probability: float) -> LatencyPoint:
        """Return one cell; raise ``KeyError`` if absent."""
        for p in self.points:
            if (
                p.protocol == protocol
                and p.latency == latency
                and abs(p.loss_probability - loss_probability) < 1e-12
            ):
                return p
        raise KeyError(
            f"no point for protocol={protocol!r}, latency={latency!r}, "
            f"loss_probability={loss_probability!r}"
        )

    def to_table(self, *, precision: int = 4) -> str:
        """Render the full grid as an aligned text table."""
        labels = [percentile_label(p) for p in self.config.percentiles]
        headers = ["protocol", "latency", "loss", "reps", "reliability", "std"] + labels + [
            "msgs/member"
        ]
        rows = []
        for p in self.points:
            values = dict(p.delivery_percentiles)
            rows.append(
                [
                    p.protocol,
                    p.latency,
                    p.loss_probability,
                    p.repetitions,
                    p.reliability,
                    p.reliability_std,
                ]
                + [values[label] for label in labels]
                + [p.messages_per_member]
            )
        return format_table(headers, rows, precision=precision)

    def check_shape(self, *, tolerance: float = 0.05) -> list[str]:
        """Check the qualitative latency-profile claims.

        1. Within every cell the reported percentiles are ordered
           (``p50 <= p99 <= p999`` for the default set).
        2. Under the one-round constant law every raw delivery time is an
           exact multiple of the round period: the plane's fast path
           degenerates to the round clock.
        3. Per ``(protocol, loss)``, the exponential column's extreme tail
           dominates the constant column's at equal mean — per-hop variance
           compounds along gossip paths.
        4. Per ``(protocol, latency)``, reliability does not *increase*
           with loss (beyond Monte-Carlo slack).
        """
        problems: list[str] = []
        labels = [percentile_label(p) for p in sorted(self.config.percentiles)]
        for p in self.points:
            values = dict(p.delivery_percentiles)
            ordered = [values[label] for label in labels]
            finite = [v for v in ordered if np.isfinite(v)]
            if any(hi < lo - 1e-9 for lo, hi in zip(finite, finite[1:], strict=False)):
                problems.append(
                    f"{p.protocol} {p.latency} loss={p.loss_probability}: "
                    f"percentiles not ordered: {ordered}"
                )
            if p.round_aligned is False:
                problems.append(
                    f"{p.protocol} {p.latency} loss={p.loss_probability}: "
                    "constant-law delivery times are off the round grid"
                )
        top_label = labels[-1]
        constant = _latency_label(self.config.latencies[0])
        exponential = next(
            (_latency_label(s) for s in self.config.latencies if s[0] == "exponential"),
            None,
        )
        if exponential is not None:
            for protocol in self.protocols():
                for loss in self.config.loss_probabilities:
                    try:
                        const_cell = self.point(protocol, constant, loss)
                        exp_cell = self.point(protocol, exponential, loss)
                    except KeyError:
                        continue
                    const_tail = dict(const_cell.delivery_percentiles)[top_label]
                    exp_tail = dict(exp_cell.delivery_percentiles)[top_label]
                    if np.isfinite(const_tail) and np.isfinite(exp_tail):
                        if exp_tail < const_tail - tolerance:
                            problems.append(
                                f"{protocol} loss={loss}: exponential {top_label} "
                                f"{exp_tail:.3f} below constant {const_tail:.3f}"
                            )
        for protocol in self.protocols():
            for spec in self.config.latencies:
                label = _latency_label(spec)
                series = sorted(
                    (p for p in self.points if p.protocol == protocol and p.latency == label),
                    key=lambda p: p.loss_probability,
                )
                for lo, hi in zip(series, series[1:], strict=False):
                    if hi.reliability > lo.reliability + 2 * tolerance:
                        problems.append(
                            f"{protocol} {label}: reliability rises from "
                            f"{lo.reliability:.4f} (loss={lo.loss_probability}) to "
                            f"{hi.reliability:.4f} (loss={hi.loss_probability})"
                        )
        return problems


def _run_cell(args: tuple) -> tuple:
    """Process-pool worker: one chunk of replicas through the timed engine.

    The :class:`NetworkModel` crosses the process boundary whole — the
    latency samplers are frozen dataclasses, so the model pickles.
    Returns the finite (delivered) delivery times raw; the parent pools
    them across chunks before taking percentiles.
    """
    protocol, n, q, network, seed, repetitions, round_period = args
    result = simulate_protocol_batch(
        protocol,
        n,
        q,
        repetitions=repetitions,
        seed=seed,
        network=network,
        round_period=round_period,
    )
    if result.delivery_times is None:
        raise RuntimeError(
            f"protocol {protocol.name!r} reported no delivery times — its "
            "batched hook does not accept the latency plane"
        )
    finite = result.delivery_times[np.isfinite(result.delivery_times)]
    return (
        result.reliability().tolist(),
        result.messages_per_member().tolist(),
        finite.tolist(),
    )


def run_latency_profile(config: LatencyProfileConfig | None = None) -> LatencyProfileResult:
    """Run the sweep over the full ``(protocol, latency, loss)`` grid."""
    config = config or LatencyProfileConfig()
    serial = config.processes is not None and config.processes <= 1
    n_chunks = 1 if serial else max(1, -(-config.repetitions // _CHUNK_REPETITIONS))
    chunk_sizes = [len(c) for c in np.array_split(np.arange(config.repetitions), n_chunks)]

    points: list[LatencyPoint] = []
    protocols = config.protocols()
    n_cells = len(protocols) * len(config.latencies) * len(config.loss_probabilities)
    cell_seeds = iter(spawn_seeds(n_cells, config.seed))
    for protocol_id, protocol in protocols:
        for spec in config.latencies:
            for loss in config.loss_probabilities:
                seeds = spawn_seeds(n_chunks, next(cell_seeds))
                work = [
                    (
                        protocol,
                        config.n,
                        config.q,
                        NetworkModel(
                            latency=_build_latency(spec), loss_probability=loss
                        ),
                        seed,
                        size,
                        config.round_period,
                    )
                    for seed, size in zip(seeds, chunk_sizes, strict=True)
                    if size > 0
                ]
                chunks = parallel_map(
                    _run_cell, work, processes=config.processes, serial_threshold=1
                )
                reliability = np.concatenate([np.asarray(c[0], dtype=float) for c in chunks])
                messages = np.concatenate([np.asarray(c[1], dtype=float) for c in chunks])
                times = np.concatenate([np.asarray(c[2], dtype=float) for c in chunks])
                percentile_pairs = tuple(
                    (
                        percentile_label(p),
                        float(np.percentile(times, p)) if times.size else float("nan"),
                    )
                    for p in config.percentiles
                )
                round_aligned = None
                if spec[0] == "constant" and abs(spec[1] - config.round_period) < 1e-12:
                    grid = times / config.round_period
                    round_aligned = bool(
                        times.size == 0 or np.allclose(grid, np.round(grid), atol=1e-9)
                    )
                points.append(
                    LatencyPoint(
                        protocol=protocol_id,
                        latency=_latency_label(spec),
                        loss_probability=float(loss),
                        repetitions=config.repetitions,
                        reliability=float(reliability.mean()),
                        reliability_std=(
                            float(reliability.std(ddof=1)) if reliability.size > 1 else 0.0
                        ),
                        messages_per_member=float(messages.mean()),
                        delivery_percentiles=percentile_pairs,
                        round_aligned=round_aligned,
                    )
                )
    return LatencyProfileResult(config=config, points=tuple(points))

"""Fig. 7 — distribution of gossiping success with {f = 6.0, q = 0.6}.

Same protocol as Fig. 6 with the parameter pair {f = 6.0, q = 0.6}.  The
product ``f·q`` equals Fig. 6's, so the analytical single-execution
reliability is identical, but — as the paper points out — the realised
success-count distributions are not exactly the same because the fanout and
the nonfailed ratio influence the gossip dynamics differently.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.success_figures import (
    SuccessFigureConfig,
    SuccessFigureResult,
    run_success_figure,
)

__all__ = ["Fig7Config", "Fig7Result", "run_fig7"]

EXPERIMENT_ID = "fig7"
PAPER_REFERENCE = "Fig. 7 — The distribution of Gossiping Success with f=6.0, q=0.6"


@dataclass(frozen=True)
class Fig7Config(SuccessFigureConfig):
    """Fig. 7 configuration: {f = 6.0, q = 0.6} in a 2000-member group."""

    mean_fanout: float = 6.0
    q: float = 0.6


class Fig7Result(SuccessFigureResult):
    """Fig. 7 result type (alias of the shared success-figure result)."""


def run_fig7(config: Fig7Config | None = None) -> SuccessFigureResult:
    """Run the Fig. 7 experiment."""
    return run_success_figure(config or Fig7Config())

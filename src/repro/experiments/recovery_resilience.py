"""Recovery resilience — two-phase recovery vs pure push under loss and churn.

The zoo is push-dominated, so every protocol degrades the same way under
adversity: a dropped payload is gone forever, and the paper's only remedy
is "push harder" (a bigger fanout).  The two-phase recovery protocols —
:class:`~repro.protocols.lazy_push.LazyPushProtocol` (eager push, then
IHAVE/IWANT repair) and
:class:`~repro.protocols.anti_entropy.AntiEntropyProtocol` (push-pull
reconciliation) — detect gaps and repair them instead.  This experiment
makes the headline claim measurable: it sweeps the zoo **plus** both
recovery protocols over a grid of loss channels × per-round churn rates
through the batched engines, and reports per cell:

* mean/std **reliability among survivors** (the churn-safe denominator;
  identical to plain reliability for churn-free cells),
* the **payload / control message split** per member — the accounting that
  makes the cost comparison honest: digests, IHAVEs, IWANTs and pull
  requests are control traffic, and only ``messages - control`` carried
  the payload,
* the realised drop rate and the atomic-among-survivors rate.

The loss axis mixes two channels: i.i.d. Bernoulli columns
(:class:`~repro.simulation.network.NetworkModel`) and one **bursty**
Gilbert–Elliott column
(:class:`~repro.simulation.network.GilbertElliottNetworkModel`, a two-state
good/bad Markov chain) whose stationary mean drop rate sits between the
i.i.d. columns — correlated bursts are the regime where recovery should
shine hardest, because a burst wipes out whole push waves while a later
digest still finds the gap.  One extra **targeted-crash** row per protocol
runs the highest i.i.d. loss column under
:class:`~repro.simulation.failures.TargetedCrashModel` (an engineered
block of crashed members instead of uniform draws), exercising the batched
targeted-failure path end-to-end.

:meth:`RecoveryResilienceResult.check_shape` pins the claims: at the
highest i.i.d. loss column, **both recovery protocols are at least as
reliable as every pure-push protocol while sending fewer payload messages
per member**; drop rates are calibrated (the bursty column against its
stationary mean); and reliability never improves with churn.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro.experiments.protocol_comparison import protocol_zoo
from repro.simulation.churn import PoissonChurnModel
from repro.simulation.failures import TargetedCrashModel
from repro.simulation.network import GilbertElliottNetworkModel, NetworkModel
from repro.simulation.protocol_batch import simulate_protocol_batch
from repro.utils.parallel import parallel_map
from repro.utils.rng import spawn_seeds
from repro.utils.tables import format_table
from repro.utils.validation import check_integer, check_probability

__all__ = [
    "RecoveryResilienceConfig",
    "RecoveryPoint",
    "RecoveryResilienceResult",
    "run_recovery_resilience",
    "PURE_PUSH_PROTOCOLS",
    "RECOVERY_PROTOCOLS",
]

EXPERIMENT_ID = "recovery_resilience"
PAPER_REFERENCE = (
    "Sec. 2/3 beyond the paper — two-phase recovery (lazy-push IHAVE/IWANT, "
    "anti-entropy) vs the pure-push zoo under i.i.d. + bursty loss, churn and "
    "targeted crashes, with payload/control cost accounting"
)

#: Replicas per worker task when the sweep fans out over processes (same
#: convention as ``protocol_comparison`` so fixed seeds reproduce anywhere).
_CHUNK_REPETITIONS = 8

#: Protocols with no repair leg whatsoever: every payload transmission is a
#: blind push, so a dropped message is lost for good.  The headline claim is
#: checked against exactly this set.
PURE_PUSH_PROTOCOLS = ("flooding", "lpbcast", "fixed-fanout", "random-fanout")

#: The two-phase recovery rows under test.
RECOVERY_PROTOCOLS = ("lazy-push", "anti-entropy")


@dataclass(frozen=True)
class RecoveryResilienceConfig:
    """Configuration of the recovery-resilience sweep.

    Attributes
    ----------
    n:
        Group size.
    q:
        Nonfailed ratio of the uniform-crash rows (single value — loss and
        churn are the axes under study).
    loss_probabilities:
        I.i.d. per-message drop probabilities to sweep (the ``"iid"``
        channel columns).  The headline comparison is pinned at the highest.
    burst_loss_good, burst_loss_bad, burst_good_to_bad, burst_bad_to_good:
        Parameters of the single ``"burst"`` Gilbert–Elliott column: drop
        rates of the good/bad states and the Markov transition
        probabilities.  The defaults give a stationary mean drop rate of
        0.2375 with pronounced bursts (bad state loses 80% of messages).
    churn_rates:
        Per-round leave hazards to sweep; each nonzero rate builds a
        :class:`~repro.simulation.churn.PoissonChurnModel` with
        ``leave_rate = join_rate = rate``.
    initially_absent:
        Join-pool fraction of the nonzero-churn models.
    targeted_fraction:
        Fraction of the group crashed as one engineered block (members
        ``1..k``) in the targeted-crash rows, which run the highest i.i.d.
        loss column at churn 0.
    mean_fanout:
        Per-member effort budget (push fanout / overlay degree / lazy-push
        eager+IHAVE fanout; anti-entropy reconciles with half of it).
    rounds:
        Round horizon of the periodic protocols.  Recovery needs rounds to
        act in, so this sweep defaults higher than the push-only sweeps.
    repetitions:
        Independent executions per grid cell.
    seed:
        Base seed; every cell derives an independent stream.
    processes:
        Worker processes; 1 keeps execution serial and deterministic.
    """

    n: int = 1000
    q: float = 0.9
    loss_probabilities: tuple = (0.0, 0.15, 0.4)
    burst_loss_good: float = 0.05
    burst_loss_bad: float = 0.8
    burst_good_to_bad: float = 0.1
    burst_bad_to_good: float = 0.3
    churn_rates: tuple = (0.0, 0.05)
    initially_absent: float = 0.1
    targeted_fraction: float = 0.1
    mean_fanout: int = 4
    rounds: int = 16
    repetitions: int = 48
    seed: int = 20082011
    processes: int | None = 1

    def __post_init__(self) -> None:
        check_integer("n", self.n, minimum=2)
        check_probability("q", self.q)
        if not self.loss_probabilities:
            raise ValueError("loss_probabilities must be non-empty")
        for loss in self.loss_probabilities:
            check_probability("loss_probability", loss)
        check_probability("burst_loss_good", self.burst_loss_good)
        check_probability("burst_loss_bad", self.burst_loss_bad)
        check_probability("burst_good_to_bad", self.burst_good_to_bad)
        check_probability("burst_bad_to_good", self.burst_bad_to_good)
        if not self.churn_rates:
            raise ValueError("churn_rates must be non-empty")
        for rate in self.churn_rates:
            check_probability("churn_rate", rate, allow_one=False)
        check_probability("initially_absent", self.initially_absent)
        check_probability("targeted_fraction", self.targeted_fraction, allow_one=False)
        check_integer("mean_fanout", self.mean_fanout, minimum=1)
        check_integer("rounds", self.rounds, minimum=1)
        check_integer("repetitions", self.repetitions, minimum=1)

    def protocols(self) -> tuple:
        """Return the zoo plus the two recovery rows at equal fanout budget."""
        return protocol_zoo(self.mean_fanout, self.rounds, include_recovery=True)

    def channels(self) -> tuple:
        """Return the loss-channel columns as plain-value specs.

        Each spec is ``("iid", p)`` or
        ``("burst", good, bad, good_to_bad, bad_to_good)`` — tuples of
        floats so they cross process boundaries without pickling a stateful
        network model.
        """
        columns = tuple(("iid", float(p)) for p in self.loss_probabilities)
        columns += (
            (
                "burst",
                float(self.burst_loss_good),
                float(self.burst_loss_bad),
                float(self.burst_good_to_bad),
                float(self.burst_bad_to_good),
            ),
        )
        return columns

    def burst_mean_loss(self) -> float:
        """Return the stationary mean drop rate of the bursty column."""
        return GilbertElliottNetworkModel(
            loss_probability=self.burst_loss_good,
            bad_loss_probability=self.burst_loss_bad,
            p_good_to_bad=self.burst_good_to_bad,
            p_bad_to_good=self.burst_bad_to_good,
        ).mean_loss_probability()

    def with_scale(self, factor: float) -> "RecoveryResilienceConfig":
        """Return a shrunken copy for quick runs (CLI ``--scale``)."""
        if not 0.0 < factor <= 1.0:
            raise ValueError(f"scale factor must be in (0, 1], got {factor}")
        if factor >= 0.999:
            return self
        return replace(
            self,
            n=max(200, int(self.n * factor)),
            repetitions=max(24, int(self.repetitions * factor)),
        )


def _channel_nominal_loss(channel: tuple) -> float:
    """Return the nominal (mean) drop rate of a channel spec."""
    if channel[0] == "iid":
        return float(channel[1])
    _, good, bad, good_to_bad, bad_to_good = channel
    return GilbertElliottNetworkModel(
        loss_probability=good,
        bad_loss_probability=bad,
        p_good_to_bad=good_to_bad,
        p_bad_to_good=bad_to_good,
    ).mean_loss_probability()


def _build_network(channel: tuple) -> NetworkModel:
    """Instantiate the network model of one channel spec (inside the worker)."""
    if channel[0] == "iid":
        return NetworkModel(loss_probability=channel[1])
    _, good, bad, good_to_bad, bad_to_good = channel
    return GilbertElliottNetworkModel(
        loss_probability=good,
        bad_loss_probability=bad,
        p_good_to_bad=good_to_bad,
        p_bad_to_good=bad_to_good,
    )


@dataclass(frozen=True)
class RecoveryPoint:
    """Measurements of one ``(protocol, channel, churn_rate, failure)`` cell."""

    protocol: str
    channel: str
    loss: float
    churn_rate: float
    failure: str
    repetitions: int
    reliability: float
    reliability_std: float
    survivor_fraction: float
    messages_per_member: float
    payload_per_member: float
    control_per_member: float
    drop_rate: float
    atomic_rate: float


@dataclass(frozen=True)
class RecoveryResilienceResult:
    """Result of the recovery-resilience sweep."""

    config: RecoveryResilienceConfig
    points: tuple

    def protocols(self) -> list[str]:
        """Return the protocol ids in run order (deduplicated)."""
        seen: dict[str, None] = {}
        for p in self.points:
            seen.setdefault(p.protocol, None)
        return list(seen)

    def point(
        self,
        protocol: str,
        channel: str,
        loss: float,
        churn_rate: float,
        failure: str = "uniform",
    ) -> RecoveryPoint:
        """Return one cell; raise ``KeyError`` if absent."""
        for p in self.points:
            if (
                p.protocol == protocol
                and p.channel == channel
                and abs(p.loss - loss) < 1e-9
                and abs(p.churn_rate - churn_rate) < 1e-12
                and p.failure == failure
            ):
                return p
        raise KeyError(
            f"no point for protocol={protocol!r}, channel={channel!r}, "
            f"loss={loss!r}, churn_rate={churn_rate!r}, failure={failure!r}"
        )

    def series_for(self, protocol: str, channel: str, loss: float) -> list[RecoveryPoint]:
        """Return one uniform-failure churn series of a column, ordered by rate."""
        return sorted(
            (
                p
                for p in self.points
                if p.protocol == protocol
                and p.channel == channel
                and abs(p.loss - loss) < 1e-9
                and p.failure == "uniform"
            ),
            key=lambda p: p.churn_rate,
        )

    def to_table(self, *, precision: int = 4) -> str:
        """Render the full grid as an aligned text table."""
        headers = [
            "protocol",
            "channel",
            "loss",
            "churn",
            "failure",
            "reps",
            "reliability",
            "std",
            "survivors",
            "payload/member",
            "control/member",
            "drop rate",
            "atomic",
        ]
        rows = [
            [
                p.protocol,
                p.channel,
                p.loss,
                p.churn_rate,
                p.failure,
                p.repetitions,
                p.reliability,
                p.reliability_std,
                p.survivor_fraction,
                p.payload_per_member,
                p.control_per_member,
                p.drop_rate,
                p.atomic_rate,
            ]
            for p in self.points
        ]
        return format_table(headers, rows, precision=precision)

    def check_shape(
        self, *, tolerance: float = 0.03, payload_slack: float = 1.05
    ) -> list[str]:
        """Check the qualitative recovery-resilience claims.

        1. **The headline**: at the highest i.i.d. loss column (churn-free
           and targeted-crash rows), every recovery protocol is at least as
           reliable (within Monte-Carlo ``tolerance``) as every pure-push
           protocol while sending no more payload messages per member
           (within ``payload_slack``).  Churned cells are excluded: a
           subcritical push protocol that dies early *appears* cheap, so the
           payload comparison only means something between runs that
           actually disseminated.
        2. Drop rates are calibrated: i.i.d. columns track their requested
           probability exactly; the bursty column is only bounded by its
           good/bad state rates — the realised average is legitimately
           state-weighted (replicas whose chain lingers in the good state
           deliver, and therefore send, more messages).
        3. Reliability never *increases* with churn beyond slack, on the
           i.i.d. columns (the bursty column is bimodal and too noisy for a
           monotonicity pin at experiment scale).
        4. On the bursty column both recovery protocols stay supercritical.
        """
        problems: list[str] = []
        top_loss = max(self.config.loss_probabilities)

        def compare(recovery: RecoveryPoint, push: RecoveryPoint, label: str) -> None:
            if recovery.reliability < push.reliability - tolerance:
                problems.append(
                    f"{label}: {recovery.protocol} reliability "
                    f"{recovery.reliability:.4f} below pure-push {push.protocol} "
                    f"{push.reliability:.4f}"
                )
            if recovery.payload_per_member > push.payload_per_member * payload_slack:
                problems.append(
                    f"{label}: {recovery.protocol} payload cost "
                    f"{recovery.payload_per_member:.2f}/member exceeds pure-push "
                    f"{push.protocol} {push.payload_per_member:.2f}/member"
                )

        for recovery_id in RECOVERY_PROTOCOLS:
            for push_id in PURE_PUSH_PROTOCOLS:
                for failure in ("uniform", "targeted"):
                    try:
                        recovery = self.point(recovery_id, "iid", top_loss, 0.0, failure)
                        push = self.point(push_id, "iid", top_loss, 0.0, failure)
                    except KeyError:
                        continue
                    compare(recovery, push, f"loss={top_loss} {failure}")

        burst_mean = self.config.burst_mean_loss()
        for p in self.points:
            if p.channel == "burst":
                lo = min(self.config.burst_loss_good, self.config.burst_loss_bad)
                hi = max(self.config.burst_loss_good, self.config.burst_loss_bad)
                if not lo - 0.03 <= p.drop_rate <= hi + 0.03:
                    problems.append(
                        f"{p.protocol} burst churn={p.churn_rate}: realised drop "
                        f"rate {p.drop_rate:.4f} outside the state rates "
                        f"[{lo:.2f}, {hi:.2f}]"
                    )
                continue
            if p.loss == 0.0:
                if p.drop_rate != 0.0:
                    problems.append(
                        f"{p.protocol} churn={p.churn_rate}: drops at loss 0 "
                        f"(drop rate {p.drop_rate:.4f})"
                    )
                continue
            slack = max(0.03, 0.25 * p.loss)
            if abs(p.drop_rate - p.loss) > slack:
                problems.append(
                    f"{p.protocol} iid loss={p.loss} churn={p.churn_rate} "
                    f"failure={p.failure}: realised drop rate {p.drop_rate:.4f} "
                    f"off the nominal {p.loss:.4f}"
                )

        for protocol in self.protocols():
            for loss in self.config.loss_probabilities:
                series = self.series_for(protocol, "iid", loss)
                for lo, hi in zip(series, series[1:], strict=False):
                    if hi.reliability > lo.reliability + 2 * tolerance:
                        problems.append(
                            f"{protocol} iid loss={loss:.4f}: reliability rises "
                            f"from {lo.reliability:.4f} (rate={lo.churn_rate}) "
                            f"to {hi.reliability:.4f} (rate={hi.churn_rate})"
                        )

        for recovery_id in RECOVERY_PROTOCOLS:
            for churn_rate in self.config.churn_rates:
                try:
                    p = self.point(recovery_id, "burst", burst_mean, churn_rate)
                except KeyError:
                    continue
                if p.reliability < 0.9:
                    problems.append(
                        f"{recovery_id} burst churn={churn_rate}: reliability "
                        f"{p.reliability:.4f} not supercritical on the bursty column"
                    )
        return problems


def _run_cell_batch(args: tuple) -> tuple:
    """Process-pool worker: one chunk of replicas through the batched engines.

    Network, churn and failure models are all built inside the worker from
    plain values (floats / tuples), mirroring the loss and churn sweeps'
    convention so nothing stateful crosses the process boundary.
    """
    protocol, n, q, channel, churn_rate, initially_absent, targeted, seed, repetitions = args
    network = _build_network(channel)
    if churn_rate == 0.0:
        churn = PoissonChurnModel()
    else:
        churn = PoissonChurnModel(
            leave_rate=churn_rate,
            join_rate=churn_rate,
            initially_absent=initially_absent,
        )
    failure_model = None
    if targeted > 0.0:
        # An engineered block crash: members 1..k fail (the source never
        # does), drawn through the batched targeted path.
        failure_model = TargetedCrashModel(
            failed=tuple(range(1, 1 + int(round(targeted * n))))
        )
    result = simulate_protocol_batch(
        protocol,
        n,
        q,
        repetitions=repetitions,
        seed=seed,
        failure_model=failure_model,
        network=network,
        churn=churn,
    )
    reliability = result.reliability_among_survivors()
    return (
        reliability.tolist(),
        result.survivor_fraction().tolist(),
        result.messages_per_member().tolist(),
        result.payload_messages_per_member().tolist(),
        result.control_messages_per_member().tolist(),
        result.messages_sent.tolist(),
        result.messages_dropped.tolist(),
        (reliability >= 1.0 - 1e-12).tolist(),
    )


def run_recovery_resilience(
    config: RecoveryResilienceConfig | None = None,
) -> RecoveryResilienceResult:
    """Run the sweep over the ``(protocol, channel, churn_rate [, targeted])`` grid."""
    config = config or RecoveryResilienceConfig()
    serial = config.processes is not None and config.processes <= 1
    n_chunks = 1 if serial else max(1, -(-config.repetitions // _CHUNK_REPETITIONS))
    chunk_sizes = [len(c) for c in np.array_split(np.arange(config.repetitions), n_chunks)]

    protocols = config.protocols()
    channels = config.channels()
    top_loss = max(config.loss_probabilities)
    # Grid rows: uniform crashes over every (channel, churn_rate) cell, plus
    # one targeted-crash row per protocol at the highest i.i.d. loss column.
    cells: list[tuple] = []
    for protocol_id, protocol in protocols:
        for channel in channels:
            for rate in config.churn_rates:
                cells.append((protocol_id, protocol, channel, rate, 0.0))
        cells.append((protocol_id, protocol, ("iid", top_loss), 0.0, config.targeted_fraction))

    points: list[RecoveryPoint] = []
    cell_seeds = iter(spawn_seeds(len(cells), config.seed))
    for protocol_id, protocol, channel, rate, targeted in cells:
        seeds = spawn_seeds(n_chunks, next(cell_seeds))
        work = [
            (
                protocol,
                config.n,
                config.q,
                channel,
                rate,
                config.initially_absent,
                targeted,
                seed,
                size,
            )
            for seed, size in zip(seeds, chunk_sizes, strict=True)
            if size > 0
        ]
        chunks = parallel_map(
            _run_cell_batch, work, processes=config.processes, serial_threshold=1
        )
        reliability = np.concatenate([np.asarray(c[0], dtype=float) for c in chunks])
        survivors = np.concatenate([np.asarray(c[1], dtype=float) for c in chunks])
        messages = np.concatenate([np.asarray(c[2], dtype=float) for c in chunks])
        payload = np.concatenate([np.asarray(c[3], dtype=float) for c in chunks])
        control = np.concatenate([np.asarray(c[4], dtype=float) for c in chunks])
        sent = np.concatenate([np.asarray(c[5], dtype=float) for c in chunks])
        dropped = np.concatenate([np.asarray(c[6], dtype=float) for c in chunks])
        atomic = np.concatenate([np.asarray(c[7], dtype=bool) for c in chunks])
        points.append(
            RecoveryPoint(
                protocol=protocol_id,
                channel=channel[0],
                loss=_channel_nominal_loss(channel),
                churn_rate=float(rate),
                failure="targeted" if targeted > 0.0 else "uniform",
                repetitions=config.repetitions,
                reliability=float(reliability.mean()),
                reliability_std=(
                    float(reliability.std(ddof=1)) if reliability.size > 1 else 0.0
                ),
                survivor_fraction=float(survivors.mean()),
                messages_per_member=float(messages.mean()),
                payload_per_member=float(payload.mean()),
                control_per_member=float(control.mean()),
                drop_rate=float(dropped.sum() / max(sent.sum(), 1.0)),
                atomic_rate=float(atomic.mean()),
            )
        )
    return RecoveryResilienceResult(config=config, points=tuple(points))

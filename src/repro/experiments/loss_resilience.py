"""Loss resilience — the protocol zoo under a lossy network plane.

The paper's reliability analysis assumes perfect point-to-point delivery:
a gossip arc either exists or it does not, and every sent message arrives.
Real deployments drop messages.  This experiment sweeps the whole baseline
protocol zoo over a grid of independent per-message loss probabilities
(crossed with the nonfailed ratio ``q``) through the **vectorised loss
plane** of the batched multi-protocol engine
(:func:`repro.simulation.protocol_batch.simulate_protocol_batch` with a
:class:`~repro.simulation.network.NetworkModel`), and reports per
``(protocol, q, loss)`` cell:

* mean/std reliability (delivered nonfailed members / nonfailed members),
* mean message cost per member,
* the realised drop rate (``messages_dropped / messages_sent`` — a direct
  check that the engine thins with the requested Bernoulli law), and
* the atomicity rate.

The expected shape: push-only gossip (fixed/random fanout) degrades first —
a lost push is never retried, so loss eats directly into the effective
fanout (``f_eff = f · (1 - loss)``) and pushes the process toward its
percolation threshold; the redundant and pull-based protocols (flooding's
link redundancy, pbcast's anti-entropy digests, RDG's NACK pulls) buy back
reliability at extra message cost.  At ``loss = 0`` every cell must be
statistically indistinguishable from the loss-free ``protocol_comparison``
numbers — the CI smoke run and the test suite pin exactly that through the
shared statistical harness.

Replicas are fanned out in chunked batches over
:func:`repro.utils.parallel.parallel_map` exactly like
``protocol_comparison``; ``engine="scalar"`` replays the per-execution
reference protocols with the same :class:`NetworkModel` loss law (slow —
kept for head-to-head benchmarks and equivalence pinning).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro.experiments.protocol_comparison import protocol_zoo
from repro.simulation.network import NetworkModel
from repro.simulation.protocol_batch import simulate_protocol_batch
from repro.utils.parallel import parallel_map
from repro.utils.rng import as_generator, spawn_seeds
from repro.utils.tables import format_table
from repro.utils.validation import check_choice, check_integer, check_probability

__all__ = [
    "LossResilienceConfig",
    "LossPoint",
    "LossResilienceResult",
    "run_loss_resilience",
]

EXPERIMENT_ID = "loss_resilience"
PAPER_REFERENCE = (
    "Sec. 3 model assumption lifted — protocol-zoo reliability under independent "
    "per-message loss (loss_probability x q grid, batched lossy engine)"
)

#: Replicas per worker task when the sweep fans out over processes (same
#: convention as ``protocol_comparison`` so fixed seeds reproduce anywhere).
_CHUNK_REPETITIONS = 8


@dataclass(frozen=True)
class LossResilienceConfig:
    """Configuration of the loss-resilience sweep.

    Attributes
    ----------
    n:
        Group size.
    qs:
        Nonfailed-ratio grid (supercritical regimes — loss is the axis under
        study, failures are the nuisance dimension).
    loss_probabilities:
        Independent per-message drop probabilities to sweep.
    mean_fanout:
        Per-member effort budget (push fanout / overlay degree).
    rounds:
        Round horizon of the periodic protocols (pbcast, lpbcast, RDG).
    repetitions:
        Independent executions per ``(protocol, q, loss)`` cell.
    seed:
        Base seed; every cell derives an independent stream.
    engine:
        ``"batch"`` (default) or ``"scalar"`` (per-execution reference).
    processes:
        Worker processes; 1 keeps execution serial and deterministic.
    """

    n: int = 1000
    qs: tuple = (0.9, 1.0)
    loss_probabilities: tuple = (0.0, 0.05, 0.1, 0.2, 0.4)
    mean_fanout: int = 4
    rounds: int = 8
    repetitions: int = 40
    seed: int = 20082009
    engine: str = "batch"
    processes: int | None = 1

    def __post_init__(self) -> None:
        check_integer("n", self.n, minimum=2)
        if not self.qs:
            raise ValueError("qs must be non-empty")
        for q in self.qs:
            check_probability("q", q)
        if not self.loss_probabilities:
            raise ValueError("loss_probabilities must be non-empty")
        for loss in self.loss_probabilities:
            check_probability("loss_probability", loss)
        check_integer("mean_fanout", self.mean_fanout, minimum=1)
        check_integer("rounds", self.rounds, minimum=1)
        check_integer("repetitions", self.repetitions, minimum=1)
        check_choice("engine", self.engine, ("batch", "scalar"))

    def protocols(self) -> tuple:
        """Return the six ``(protocol_id, Protocol)`` rows at equal effort."""
        return protocol_zoo(self.mean_fanout, self.rounds)

    def with_scale(self, factor: float) -> "LossResilienceConfig":
        """Return a shrunken copy for quick runs (CLI ``--scale``)."""
        if not 0.0 < factor <= 1.0:
            raise ValueError(f"scale factor must be in (0, 1], got {factor}")
        if factor >= 0.999:
            return self
        return replace(
            self,
            n=max(200, int(self.n * factor)),
            repetitions=max(8, int(self.repetitions * factor)),
        )


@dataclass(frozen=True)
class LossPoint:
    """Measurements of one ``(protocol, q, loss_probability)`` cell."""

    protocol: str
    q: float
    loss_probability: float
    repetitions: int
    reliability: float
    reliability_std: float
    messages_per_member: float
    drop_rate: float
    atomic_rate: float


@dataclass(frozen=True)
class LossResilienceResult:
    """Result of the loss-resilience sweep."""

    config: LossResilienceConfig
    points: tuple

    def protocols(self) -> list[str]:
        """Return the protocol ids in run order (deduplicated)."""
        seen: dict[str, None] = {}
        for p in self.points:
            seen.setdefault(p.protocol, None)
        return list(seen)

    def series_for(self, protocol: str, q: float) -> list[LossPoint]:
        """Return one ``(protocol, q)`` loss series, ordered by loss."""
        return sorted(
            (
                p
                for p in self.points
                if p.protocol == protocol and abs(p.q - q) < 1e-12
            ),
            key=lambda p: p.loss_probability,
        )

    def point(self, protocol: str, q: float, loss_probability: float) -> LossPoint:
        """Return one cell; raise ``KeyError`` if absent."""
        for p in self.points:
            if (
                p.protocol == protocol
                and abs(p.q - q) < 1e-12
                and abs(p.loss_probability - loss_probability) < 1e-12
            ):
                return p
        raise KeyError(
            f"no point for protocol={protocol!r}, q={q!r}, "
            f"loss_probability={loss_probability!r}"
        )

    def to_table(self, *, precision: int = 4) -> str:
        """Render the full grid as an aligned text table."""
        headers = [
            "protocol",
            "q",
            "loss",
            "reps",
            "reliability",
            "std",
            "msgs/member",
            "drop rate",
            "atomic",
        ]
        rows = [
            [
                p.protocol,
                p.q,
                p.loss_probability,
                p.repetitions,
                p.reliability,
                p.reliability_std,
                p.messages_per_member,
                p.drop_rate,
                p.atomic_rate,
            ]
            for p in self.points
        ]
        return format_table(headers, rows, precision=precision)

    def check_shape(self, *, tolerance: float = 0.05) -> list[str]:
        """Check the qualitative loss-resilience claims.

        1. The realised drop rate tracks the requested loss probability
           (the Bernoulli thinning is calibrated).
        2. Per ``(protocol, q)``, reliability does not *increase* with loss
           (beyond Monte-Carlo slack) — dropping messages never helps.
        3. At the highest loss on the grid, flooding stays at least as
           reliable as plain fixed-fanout push gossip (redundancy pays).
        4. At ``loss = 0`` (when on the grid) no messages are dropped at all.
        """
        problems: list[str] = []
        for p in self.points:
            if abs(p.drop_rate - p.loss_probability) > max(0.03, 0.25 * p.loss_probability):
                problems.append(
                    f"{p.protocol} q={p.q} loss={p.loss_probability}: realised drop "
                    f"rate {p.drop_rate:.4f} is off the requested probability"
                )
            if p.loss_probability == 0.0 and p.drop_rate != 0.0:
                problems.append(
                    f"{p.protocol} q={p.q}: drops at loss_probability=0 "
                    f"(drop rate {p.drop_rate:.4f})"
                )
        for protocol in self.protocols():
            for q in self.config.qs:
                series = self.series_for(protocol, q)
                for lo, hi in zip(series, series[1:], strict=False):
                    if hi.reliability > lo.reliability + 2 * tolerance:
                        problems.append(
                            f"{protocol} q={q}: reliability rises from "
                            f"{lo.reliability:.4f} (loss={lo.loss_probability}) to "
                            f"{hi.reliability:.4f} (loss={hi.loss_probability})"
                        )
        top_loss = max(self.config.loss_probabilities)
        for q in self.config.qs:
            try:
                flood = self.point("flooding", q, top_loss)
                fixed = self.point("fixed-fanout", q, top_loss)
            except KeyError:
                continue
            if flood.reliability < fixed.reliability - tolerance:
                problems.append(
                    f"q={q} loss={top_loss}: flooding {flood.reliability:.4f} below "
                    f"fixed-fanout {fixed.reliability:.4f}"
                )
        return problems


def _run_cell_batch(args: tuple) -> tuple:
    """Process-pool worker: one chunk of replicas through the lossy batched engine.

    The :class:`NetworkModel` crosses the process boundary directly — the
    latency samplers are frozen dataclasses, so the model pickles whole.
    """
    protocol, n, q, network, seed, repetitions = args
    result = simulate_protocol_batch(
        protocol,
        n,
        q,
        repetitions=repetitions,
        seed=seed,
        network=network,
    )
    return (
        result.reliability().tolist(),
        result.messages_per_member().tolist(),
        result.messages_sent.tolist(),
        result.messages_dropped.tolist(),
        result.is_atomic().tolist(),
    )


def _run_cell_scalar(args: tuple) -> tuple:
    """Process-pool worker: one chunk of replicas through the scalar reference."""
    protocol, n, q, network, seed, repetitions = args
    rng = as_generator(seed)
    reliability, messages, sent, dropped, atomic = [], [], [], [], []
    for _ in range(repetitions):
        result = protocol.run(n, q, seed=rng, network=network)
        reliability.append(result.reliability())
        messages.append(result.messages_per_member())
        sent.append(result.messages_sent)
        dropped.append(result.messages_dropped)
        atomic.append(result.is_atomic())
    return reliability, messages, sent, dropped, atomic


def run_loss_resilience(config: LossResilienceConfig | None = None) -> LossResilienceResult:
    """Run the sweep over the full ``(protocol, q, loss_probability)`` grid."""
    config = config or LossResilienceConfig()
    worker = _run_cell_batch if config.engine == "batch" else _run_cell_scalar
    serial = config.processes is not None and config.processes <= 1
    n_chunks = 1 if serial else max(1, -(-config.repetitions // _CHUNK_REPETITIONS))
    chunk_sizes = [len(c) for c in np.array_split(np.arange(config.repetitions), n_chunks)]

    points: list[LossPoint] = []
    protocols = config.protocols()
    n_cells = len(protocols) * len(config.qs) * len(config.loss_probabilities)
    cell_seeds = iter(spawn_seeds(n_cells, config.seed))
    for protocol_id, protocol in protocols:
        for q in config.qs:
            for loss in config.loss_probabilities:
                seeds = spawn_seeds(n_chunks, next(cell_seeds))
                work = [
                    (protocol, config.n, q, NetworkModel(loss_probability=loss), seed, size)
                    for seed, size in zip(seeds, chunk_sizes, strict=True)
                    if size > 0
                ]
                chunks = parallel_map(
                    worker, work, processes=config.processes, serial_threshold=1
                )
                reliability = np.concatenate([np.asarray(c[0], dtype=float) for c in chunks])
                messages = np.concatenate([np.asarray(c[1], dtype=float) for c in chunks])
                sent = np.concatenate([np.asarray(c[2], dtype=np.int64) for c in chunks])
                dropped = np.concatenate([np.asarray(c[3], dtype=np.int64) for c in chunks])
                atomic = np.concatenate([np.asarray(c[4], dtype=bool) for c in chunks])
                points.append(
                    LossPoint(
                        protocol=protocol_id,
                        q=float(q),
                        loss_probability=float(loss),
                        repetitions=config.repetitions,
                        reliability=float(reliability.mean()),
                        reliability_std=(
                            float(reliability.std(ddof=1)) if reliability.size > 1 else 0.0
                        ),
                        messages_per_member=float(messages.mean()),
                        drop_rate=float(dropped.sum() / max(1, sent.sum())),
                        atomic_rate=float(atomic.mean()),
                    )
                )
    return LossResilienceResult(config=config, points=tuple(points))

"""Registry of the paper's experiments, keyed by figure id.

The registry gives benchmarks, examples, and documentation a single place to
enumerate what can be reproduced and with which default configuration.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.experiments import (
    churn_resilience,
    dimensioning,
    fig2_mean_fanout,
    fig3_min_executions,
    fig4_reliability_1000,
    fig5_reliability_5000,
    fig6_success_f4_q09,
    fig7_success_f6_q06,
    latency_profile,
    loss_resilience,
    protocol_comparison,
    recovery_resilience,
    sec4_percolation_validation,
    surface_dimensioning,
)

__all__ = ["ExperimentSpec", "get_experiment", "list_experiments"]


@dataclass(frozen=True)
class ExperimentSpec:
    """Metadata and entry points of one reproducible experiment.

    Attributes
    ----------
    experiment_id:
        Short id, e.g. ``"fig4"``.
    paper_reference:
        The figure caption as the paper gives it.
    config_factory:
        Callable returning the default (paper-parameter) configuration.
    runner:
        Callable taking a configuration and returning the result object.
    analytical_only:
        True when the experiment involves no simulation (Figs. 2-3).
    """

    experiment_id: str
    paper_reference: str
    config_factory: Callable
    runner: Callable
    analytical_only: bool


_REGISTRY: dict[str, ExperimentSpec] = {
    "fig2": ExperimentSpec(
        experiment_id="fig2",
        paper_reference=fig2_mean_fanout.PAPER_REFERENCE,
        config_factory=fig2_mean_fanout.Fig2Config,
        runner=fig2_mean_fanout.run_fig2,
        analytical_only=True,
    ),
    "fig3": ExperimentSpec(
        experiment_id="fig3",
        paper_reference=fig3_min_executions.PAPER_REFERENCE,
        config_factory=fig3_min_executions.Fig3Config,
        runner=fig3_min_executions.run_fig3,
        analytical_only=True,
    ),
    "fig4": ExperimentSpec(
        experiment_id="fig4",
        paper_reference=fig4_reliability_1000.PAPER_REFERENCE,
        config_factory=fig4_reliability_1000.Fig4Config,
        runner=fig4_reliability_1000.run_fig4,
        analytical_only=False,
    ),
    "fig5": ExperimentSpec(
        experiment_id="fig5",
        paper_reference=fig5_reliability_5000.PAPER_REFERENCE,
        config_factory=fig5_reliability_5000.Fig5Config,
        runner=fig5_reliability_5000.run_fig5,
        analytical_only=False,
    ),
    "fig6": ExperimentSpec(
        experiment_id="fig6",
        paper_reference=fig6_success_f4_q09.PAPER_REFERENCE,
        config_factory=fig6_success_f4_q09.Fig6Config,
        runner=fig6_success_f4_q09.run_fig6,
        analytical_only=False,
    ),
    "fig7": ExperimentSpec(
        experiment_id="fig7",
        paper_reference=fig7_success_f6_q06.PAPER_REFERENCE,
        config_factory=fig7_success_f6_q06.Fig7Config,
        runner=fig7_success_f6_q06.run_fig7,
        analytical_only=False,
    ),
    "sec4_percolation_validation": ExperimentSpec(
        experiment_id="sec4_percolation_validation",
        paper_reference=sec4_percolation_validation.PAPER_REFERENCE,
        config_factory=sec4_percolation_validation.Sec4Config,
        runner=sec4_percolation_validation.run_sec4,
        analytical_only=False,
    ),
    "protocol_comparison": ExperimentSpec(
        experiment_id="protocol_comparison",
        paper_reference=protocol_comparison.PAPER_REFERENCE,
        config_factory=protocol_comparison.ProtocolComparisonConfig,
        runner=protocol_comparison.run_protocol_comparison,
        analytical_only=False,
    ),
    "loss_resilience": ExperimentSpec(
        experiment_id="loss_resilience",
        paper_reference=loss_resilience.PAPER_REFERENCE,
        config_factory=loss_resilience.LossResilienceConfig,
        runner=loss_resilience.run_loss_resilience,
        analytical_only=False,
    ),
    "dimensioning": ExperimentSpec(
        experiment_id="dimensioning",
        paper_reference=dimensioning.PAPER_REFERENCE,
        config_factory=dimensioning.DimensioningConfig,
        runner=dimensioning.run_dimensioning,
        analytical_only=False,
    ),
    "churn_resilience": ExperimentSpec(
        experiment_id="churn_resilience",
        paper_reference=churn_resilience.PAPER_REFERENCE,
        config_factory=churn_resilience.ChurnResilienceConfig,
        runner=churn_resilience.run_churn_resilience,
        analytical_only=False,
    ),
    "latency_profile": ExperimentSpec(
        experiment_id="latency_profile",
        paper_reference=latency_profile.PAPER_REFERENCE,
        config_factory=latency_profile.LatencyProfileConfig,
        runner=latency_profile.run_latency_profile,
        analytical_only=False,
    ),
    "recovery_resilience": ExperimentSpec(
        experiment_id="recovery_resilience",
        paper_reference=recovery_resilience.PAPER_REFERENCE,
        config_factory=recovery_resilience.RecoveryResilienceConfig,
        runner=recovery_resilience.run_recovery_resilience,
        analytical_only=False,
    ),
    "surface_dimensioning": ExperimentSpec(
        experiment_id="surface_dimensioning",
        paper_reference=surface_dimensioning.PAPER_REFERENCE,
        config_factory=surface_dimensioning.SurfaceDimensioningConfig,
        runner=surface_dimensioning.run_surface_dimensioning,
        analytical_only=False,
    ),
}


def get_experiment(experiment_id: str) -> ExperimentSpec:
    """Return the spec of one experiment; raise ``KeyError`` with choices otherwise."""
    try:
        return _REGISTRY[experiment_id]
    except KeyError:
        raise KeyError(
            f"unknown experiment {experiment_id!r}; available: {sorted(_REGISTRY)}"
        ) from None


def list_experiments() -> list[ExperimentSpec]:
    """Return all registered experiments in figure order."""
    return [_REGISTRY[key] for key in sorted(_REGISTRY)]

"""Fig. 2 — mean fanout vs. reliability of gossiping under various nonfailed ratios.

The paper evaluates Eq. 12, ``z = −ln(1 − S) / (qS)``, for reliabilities
``S`` ranging from 0.1111 to 0.9999 and nonfailed ratios ``q`` in
{0.2, 0.4, 0.6, 0.8, 1.0}.  The curves answer the design question "how large
must the mean fanout be to reach a target reliability when a fraction
``1 − q`` of the group has failed?" and rise steeply as ``S → 1`` and as
``q`` falls.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.poisson_case import mean_fanout_for_reliability, poisson_reliability
from repro.utils.tables import format_table

__all__ = ["Fig2Config", "Fig2Result", "run_fig2"]

EXPERIMENT_ID = "fig2"
PAPER_REFERENCE = "Fig. 2 — Mean fanout vs. Reliability of Gossiping under various nonfailed node ratio"


@dataclass(frozen=True)
class Fig2Config:
    """Parameters of the Fig. 2 series (defaults match the paper).

    Attributes
    ----------
    reliability_min, reliability_max:
        Range of the reliability axis; the paper states it "ranges from
        0.1111 to 0.9999".
    points:
        Number of reliability samples per curve.
    qs:
        The nonfailed-member ratios, one curve each.
    """

    reliability_min: float = 0.1111
    reliability_max: float = 0.9999
    points: int = 60
    qs: tuple = (0.2, 0.4, 0.6, 0.8, 1.0)


@dataclass(frozen=True)
class Fig2Result:
    """The Fig. 2 series: for every ``q`` a (reliability, mean fanout) curve."""

    config: Fig2Config
    reliabilities: np.ndarray
    fanouts_by_q: dict = field(default_factory=dict)

    def to_table(self, *, precision: int = 3) -> str:
        """Render the curves as one table with a column per ``q``."""
        headers = ["S"] + [f"z(q={q})" for q in self.config.qs]
        rows = []
        for i, s in enumerate(self.reliabilities):
            rows.append(
                [float(s)] + [float(self.fanouts_by_q[q][i]) for q in self.config.qs]
            )
        return format_table(headers, rows, precision=precision)

    def check_shape(self) -> list[str]:
        """Return a list of violated qualitative properties (empty = all hold).

        The paper's Fig. 2 shape: every curve is increasing in ``S``, curves
        for smaller ``q`` lie above curves for larger ``q``, and plugging the
        computed fanout back into Eq. 11 recovers the target reliability.
        """
        problems: list[str] = []
        for q in self.config.qs:
            curve = self.fanouts_by_q[q]
            if not np.all(np.diff(curve) > -1e-9):
                problems.append(f"fanout curve for q={q} is not non-decreasing in S")
        for q_small, q_large in zip(self.config.qs, self.config.qs[1:], strict=False):
            if not np.all(
                np.asarray(self.fanouts_by_q[q_small]) >= np.asarray(self.fanouts_by_q[q_large]) - 1e-9
            ):
                problems.append(
                    f"curve for q={q_small} should dominate curve for q={q_large}"
                )
        # Round-trip: Eq. 12 then Eq. 11 must recover S (checked on a few points).
        for q in self.config.qs:
            for idx in (0, len(self.reliabilities) // 2, len(self.reliabilities) - 1):
                s_target = float(self.reliabilities[idx])
                z = float(self.fanouts_by_q[q][idx])
                s_back = poisson_reliability(z, q)
                if abs(s_back - s_target) > 1e-6:
                    problems.append(
                        f"round-trip failed at q={q}, S={s_target:.4f}: got {s_back:.4f}"
                    )
        return problems


def run_fig2(config: Fig2Config | None = None) -> Fig2Result:
    """Compute the Fig. 2 curves (pure analysis, Eq. 12)."""
    config = config or Fig2Config()
    reliabilities = np.linspace(config.reliability_min, config.reliability_max, config.points)
    fanouts_by_q = {
        q: np.array([mean_fanout_for_reliability(float(s), q) for s in reliabilities])
        for q in config.qs
    }
    return Fig2Result(config=config, reliabilities=reliabilities, fanouts_by_q=fanouts_by_q)

"""Protocol comparison — the related-work zoo as a first-class workload.

The paper positions its general gossip algorithm against the protocols of
its related-work section (flooding, Bimodal Multicast / pbcast, lpbcast,
Route Driven Gossip, traditional fixed-fanout gossip) but never evaluates
them head-to-head.  This experiment runs all six protocol families through
the **batched multi-protocol engine**
(:func:`repro.simulation.protocol_batch.simulate_protocol_batch`) over a
grid of nonfailed ratios ``q`` and reports, per ``(protocol, q)`` cell:

* mean/std reliability (delivered nonfailed members / nonfailed members),
* mean rounds to delivery (how many protocol rounds the dissemination ran),
* mean message cost per member, and
* the atomicity rate (fraction of replicas that reached *every* nonfailed
  member).

All protocols are dimensioned at **equal effort** (the same per-member
fanout budget), so the comparison isolates the dissemination *strategy*:
flooding is the reliability upper bound, the paper's push gossip is the
cheap baseline, and the buffered/pull protocols (pbcast, lpbcast, RDG)
trade control traffic for the last few percent of reliability.  Replicas
are fanned out in chunked batches over :func:`repro.utils.parallel.parallel_map`
exactly like :func:`repro.simulation.runner.estimate_reliability`;
``engine="scalar"`` replays the per-execution reference protocols instead
(slow — kept for head-to-head benchmarks and equivalence pinning).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro.core.distributions import PoissonFanout
from repro.simulation.protocol_batch import simulate_protocol_batch
from repro.utils.parallel import parallel_map
from repro.utils.rng import as_generator, spawn_seeds
from repro.utils.tables import format_table
from repro.utils.validation import check_choice, check_integer, check_probability

__all__ = [
    "ProtocolComparisonConfig",
    "ProtocolPoint",
    "ProtocolComparisonResult",
    "protocol_zoo",
    "run_protocol_comparison",
]

EXPERIMENT_ID = "protocol_comparison"
PAPER_REFERENCE = (
    "Sec. 2 related work — reliability/cost comparison of the protocol zoo "
    "(flooding, pbcast, lpbcast, RDG, fixed/random fanout) under fail-stop crashes"
)

#: Replicas per worker task when the comparison fans out over processes.
#: A function of ``repetitions`` alone so a fixed seed reproduces the same
#: numbers on any machine (same convention as the reliability runner).
_CHUNK_REPETITIONS = 8


def protocol_zoo(
    mean_fanout: int,
    rounds: int,
    *,
    include_peer_sampling: bool = False,
    include_recovery: bool = False,
) -> tuple:
    """Return the ``(protocol_id, Protocol)`` rows at equal per-member effort.

    The single place the protocol-level experiments (``protocol_comparison``,
    ``loss_resilience``, ``churn_resilience``, ``recovery_resilience``) and
    benchmarks instantiate the
    zoo, so every workload compares exactly the same dimensioning:
    ``mean_fanout`` is the push fanout of every gossip protocol and the
    overlay degree of flooding; ``rounds`` bounds the periodic protocols
    (pbcast, lpbcast, RDG).  ``include_peer_sampling`` appends the
    HyParView-style peer-sampling protocol (a small self-repairing active
    view backed by a passive reservoir) — off by default so the static
    experiments keep their historical six-row grid.  ``include_recovery``
    appends the two-phase recovery protocols (lazy-push with IHAVE/IWANT
    repair, anti-entropy reconciliation) at the same fanout budget; their
    recovery knobs (retry budget, eager threshold, reconciliation fanout)
    are fixed here so every workload measures one dimensioning.
    """
    from repro.protocols import (
        AntiEntropyProtocol,
        FixedFanoutGossip,
        FloodingProtocol,
        HyParViewProtocol,
        LazyPushProtocol,
        LpbcastProtocol,
        PbcastProtocol,
        RandomFanoutGossip,
        RouteDrivenGossip,
    )

    f = int(mean_fanout)
    rows = (
        ("flooding", FloodingProtocol(degree=f)),
        ("pbcast", PbcastProtocol(fanout=f, rounds=rounds, broadcast_reach=0.8)),
        ("lpbcast", LpbcastProtocol(fanout=f, rounds=rounds, view_size=30)),
        ("rdg", RouteDrivenGossip(fanout=f, rounds=rounds, pull_fanout=1)),
        ("fixed-fanout", FixedFanoutGossip(f)),
        ("random-fanout", RandomFanoutGossip(PoissonFanout(float(f)))),
    )
    if include_peer_sampling:
        rows += (
            (
                "hyparview",
                HyParViewProtocol(
                    fanout=f,
                    rounds=rounds,
                    active_size=8,
                    passive_size=30,
                    shuffle_interval=1,
                ),
            ),
        )
    if include_recovery:
        rows += (
            (
                "lazy-push",
                LazyPushProtocol(
                    fanout=f,
                    rounds=rounds,
                    eager_threshold=0.4,
                    retry_budget=10,
                ),
            ),
            ("anti-entropy", AntiEntropyProtocol(fanout=max(1, f // 2), rounds=rounds)),
        )
    return rows


@dataclass(frozen=True)
class ProtocolComparisonConfig:
    """Configuration of the cross-protocol comparison.

    Attributes
    ----------
    n:
        Group size.
    qs:
        Nonfailed-ratio grid (brackets the regimes of the paper's Figs. 4-5).
    mean_fanout:
        Per-member effort budget: the push fanout of every gossip protocol,
        the overlay degree of flooding.
    rounds:
        Round horizon of the periodic protocols (pbcast, lpbcast, RDG).
    repetitions:
        Independent executions per ``(protocol, q)`` cell.
    seed:
        Base seed; every cell derives an independent stream.
    engine:
        ``"batch"`` (default) or ``"scalar"`` (per-execution reference).
    processes:
        Worker processes; 1 keeps execution serial and deterministic.
    """

    n: int = 1000
    qs: tuple = (0.5, 0.6, 0.7, 0.8, 0.9, 0.95, 1.0)
    mean_fanout: int = 4
    rounds: int = 8
    repetitions: int = 40
    seed: int = 20082008
    engine: str = "batch"
    processes: int | None = 1

    def __post_init__(self) -> None:
        check_integer("n", self.n, minimum=2)
        if not self.qs:
            raise ValueError("qs must be non-empty")
        for q in self.qs:
            check_probability("q", q)
        check_integer("mean_fanout", self.mean_fanout, minimum=1)
        check_integer("rounds", self.rounds, minimum=1)
        check_integer("repetitions", self.repetitions, minimum=1)
        check_choice("engine", self.engine, ("batch", "scalar"))

    def protocols(self) -> tuple:
        """Return the six ``(protocol_id, Protocol)`` rows at equal effort."""
        return protocol_zoo(self.mean_fanout, self.rounds)

    def with_scale(self, factor: float) -> "ProtocolComparisonConfig":
        """Return a shrunken copy for quick runs (CLI ``--scale``)."""
        if not 0.0 < factor <= 1.0:
            raise ValueError(f"scale factor must be in (0, 1], got {factor}")
        if factor >= 0.999:
            return self
        return replace(
            self,
            n=max(200, int(self.n * factor)),
            repetitions=max(8, int(self.repetitions * factor)),
        )


@dataclass(frozen=True)
class ProtocolPoint:
    """Measurements of one ``(protocol, q)`` cell."""

    protocol: str
    q: float
    repetitions: int
    reliability: float
    reliability_std: float
    mean_rounds: float
    messages_per_member: float
    atomic_rate: float


@dataclass(frozen=True)
class ProtocolComparisonResult:
    """Result of the cross-protocol comparison."""

    config: ProtocolComparisonConfig
    points: tuple

    def protocols(self) -> list[str]:
        """Return the protocol ids in run order (deduplicated)."""
        seen: dict[str, None] = {}
        for p in self.points:
            seen.setdefault(p.protocol, None)
        return list(seen)

    def series_for(self, protocol: str) -> list[ProtocolPoint]:
        """Return one protocol's ``q`` series, ordered by ``q``."""
        return sorted(
            (p for p in self.points if p.protocol == protocol), key=lambda p: p.q
        )

    def point(self, protocol: str, q: float) -> ProtocolPoint:
        """Return one cell; raise ``KeyError`` if absent."""
        for p in self.points:
            if p.protocol == protocol and abs(p.q - q) < 1e-12:
                return p
        raise KeyError(f"no point for protocol={protocol!r}, q={q!r}")

    def to_table(self, *, precision: int = 4) -> str:
        """Render the full grid as an aligned text table."""
        headers = ["protocol", "q", "reps", "reliability", "std", "rounds", "msgs/member", "atomic"]
        rows = [
            [
                p.protocol,
                p.q,
                p.repetitions,
                p.reliability,
                p.reliability_std,
                p.mean_rounds,
                p.messages_per_member,
                p.atomic_rate,
            ]
            for p in self.points
        ]
        return format_table(headers, rows, precision=precision)

    def check_shape(self, *, tolerance: float = 0.05) -> list[str]:
        """Check the qualitative cross-protocol claims.

        1. Per protocol, reliability does not *decrease* with ``q`` (beyond
           Monte-Carlo slack).
        2. At every supercritical ``q`` (>= 0.8): flooding >= pbcast >=
           fixed-fanout reliability — the strategy ordering at equal effort.
        3. Flooding at ``q = 1`` is essentially atomic.
        4. Every buffered/pull protocol pays more messages per member than
           plain push gossip at ``q = max(qs)`` (control traffic is not free).
        """
        problems: list[str] = []
        for protocol in self.protocols():
            series = self.series_for(protocol)
            for lo, hi in zip(series, series[1:], strict=False):
                if hi.reliability < lo.reliability - 2 * tolerance:
                    problems.append(
                        f"{protocol}: reliability drops from {lo.reliability:.4f} "
                        f"(q={lo.q}) to {hi.reliability:.4f} (q={hi.q})"
                    )
        for q in self.config.qs:
            if q < 0.8:
                continue
            try:
                flood = self.point("flooding", q)
                pb = self.point("pbcast", q)
                fixed = self.point("fixed-fanout", q)
            except KeyError:
                continue
            if flood.reliability < pb.reliability - tolerance:
                problems.append(
                    f"q={q}: flooding {flood.reliability:.4f} below pbcast {pb.reliability:.4f}"
                )
            if pb.reliability < fixed.reliability - tolerance:
                problems.append(
                    f"q={q}: pbcast {pb.reliability:.4f} below fixed-fanout {fixed.reliability:.4f}"
                )
        if 1.0 in self.config.qs:
            flood = self.point("flooding", 1.0)
            if flood.reliability < 1.0 - tolerance:
                problems.append(
                    f"flooding at q=1 is not atomic: reliability {flood.reliability:.4f}"
                )
        q_top = max(self.config.qs)
        push_cost = self.point("fixed-fanout", q_top).messages_per_member
        for protocol in ("pbcast", "lpbcast", "rdg"):
            if self.point(protocol, q_top).messages_per_member < push_cost:
                problems.append(
                    f"{protocol} at q={q_top} is cheaper than plain push gossip"
                )
        return problems


def _run_cell_batch(args: tuple) -> tuple:
    """Process-pool worker: one chunk of replicas through the batched engine."""
    protocol, n, q, seed, repetitions = args
    result = simulate_protocol_batch(protocol, n, q, repetitions=repetitions, seed=seed)
    return (
        result.reliability().tolist(),
        result.rounds.tolist(),
        result.messages_per_member().tolist(),
        result.is_atomic().tolist(),
    )


def _run_cell_scalar(args: tuple) -> tuple:
    """Process-pool worker: one chunk of replicas through the scalar reference."""
    protocol, n, q, seed, repetitions = args
    rng = as_generator(seed)
    reliability, rounds, messages, atomic = [], [], [], []
    for _ in range(repetitions):
        result = protocol.run(n, q, seed=rng)
        reliability.append(result.reliability())
        rounds.append(result.rounds)
        messages.append(result.messages_per_member())
        atomic.append(result.is_atomic())
    return reliability, rounds, messages, atomic


def run_protocol_comparison(
    config: ProtocolComparisonConfig | None = None,
) -> ProtocolComparisonResult:
    """Run the comparison over the full ``(protocol, q)`` grid."""
    config = config or ProtocolComparisonConfig()
    worker = _run_cell_batch if config.engine == "batch" else _run_cell_scalar
    serial = config.processes is not None and config.processes <= 1
    n_chunks = 1 if serial else max(1, -(-config.repetitions // _CHUNK_REPETITIONS))
    chunk_sizes = [len(c) for c in np.array_split(np.arange(config.repetitions), n_chunks)]

    points: list[ProtocolPoint] = []
    protocols = config.protocols()
    cell_seeds = iter(spawn_seeds(len(protocols) * len(config.qs), config.seed))
    for protocol_id, protocol in protocols:
        for q in config.qs:
            seeds = spawn_seeds(n_chunks, next(cell_seeds))
            work = [
                (protocol, config.n, q, seed, size)
                for seed, size in zip(seeds, chunk_sizes, strict=True)
                if size > 0
            ]
            chunks = parallel_map(
                worker, work, processes=config.processes, serial_threshold=1
            )
            reliability = np.concatenate([np.asarray(c[0], dtype=float) for c in chunks])
            rounds = np.concatenate([np.asarray(c[1], dtype=float) for c in chunks])
            messages = np.concatenate([np.asarray(c[2], dtype=float) for c in chunks])
            atomic = np.concatenate([np.asarray(c[3], dtype=bool) for c in chunks])
            points.append(
                ProtocolPoint(
                    protocol=protocol_id,
                    q=float(q),
                    repetitions=config.repetitions,
                    reliability=float(reliability.mean()),
                    reliability_std=(
                        float(reliability.std(ddof=1)) if reliability.size > 1 else 0.0
                    ),
                    mean_rounds=float(rounds.mean()),
                    messages_per_member=float(messages.mean()),
                    atomic_rate=float(atomic.mean()),
                )
            )
    return ProtocolComparisonResult(config=config, points=tuple(points))

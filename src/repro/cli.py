"""Command-line interface for the gossip fault-tolerance toolkit.

Four sub-commands cover the workflows the library supports:

* ``repro analyze``    — analytical model of one ``Gossip(n, P, q)`` configuration
  (reliability, critical point, success of gossiping, Eq. 12 inverse).
* ``repro simulate``   — Monte-Carlo estimate of the same configuration.
* ``repro design``     — dimension a deployment: given a reliability target and
  a failure budget, compute the required mean fanout and repeat count.
* ``repro experiment`` — regenerate one of the paper's figures (fig2 … fig7).
* ``repro run``        — run any registered experiment workload with a named
  scale preset (``--scale small|medium|full`` or a float factor), e.g.
  ``repro run protocol_comparison --scale small``.
* ``repro build-surface`` — precompute a certified reliability surface
  artifact (``.npz`` + manifest) for the serving layer.
* ``repro query``      — answer one reliability or dimensioning question from
  a surface artifact (microseconds instead of a fresh simulation).
* ``repro serve``      — long-running JSON-lines loop over stdin/stdout
  answering queries from a surface artifact.

The CLI is intentionally a thin shell over the public API; every number it
prints can be obtained programmatically from :mod:`repro`.
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Sequence, TypeVar

_T = TypeVar("_T")

from repro.core.distributions import FanoutDistribution, PoissonFanout
from repro.core.model import GossipModel
from repro.core.poisson_case import mean_fanout_for_reliability
from repro.core.success import min_executions
from repro.experiments.registry import get_experiment, list_experiments

__all__ = ["main", "build_parser"]

#: Named ``--scale`` presets of the ``run`` sub-command.
_SCALE_PRESETS = {"small": 0.1, "medium": 0.5, "full": 1.0}


def _parse_scale(raw: str) -> float:
    """Parse a ``--scale`` value: a named preset or a float factor in (0, 1]."""
    try:
        scale = _SCALE_PRESETS.get(raw.lower()) if isinstance(raw, str) else None
        if scale is None:
            scale = float(raw)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"scale must be one of {sorted(_SCALE_PRESETS)} or a float, got {raw!r}"
        ) from None
    if not 0.0 < scale <= 1.0:
        raise argparse.ArgumentTypeError(f"scale must be in (0, 1], got {scale}")
    return scale


def _make_distribution(name: str, mean_fanout: float) -> FanoutDistribution:
    """Build a fanout distribution of the requested family at the given mean.

    Delegates to :func:`repro.analysis.sweep.default_distribution_families`
    so the CLI and the distribution ablation construct exactly the same
    instances (one clip rule, one rounding rule) at a requested mean.
    """
    from repro.analysis.sweep import default_distribution_families

    try:
        return default_distribution_families(mean_fanout)[name.lower()]
    except KeyError:
        raise ValueError(f"unknown fanout family {name!r}") from None


def build_parser() -> argparse.ArgumentParser:
    """Build the top-level argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Fault-tolerance analysis of gossip-based reliable multicast (Fan et al., ICPP 2008).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_model_arguments(p: argparse.ArgumentParser) -> None:
        p.add_argument("--members", "-n", type=int, default=1000, help="group size n")
        p.add_argument("--fanout", "-f", type=float, default=4.0, help="mean fanout")
        p.add_argument(
            "--family",
            choices=["poisson", "fixed", "geometric", "uniform"],
            default="poisson",
            help="fanout distribution family",
        )
        p.add_argument("--alive-ratio", "-q", type=float, default=0.9, help="nonfailed member ratio q")

    analyze = sub.add_parser("analyze", help="analytical model of one configuration")
    add_model_arguments(analyze)
    analyze.add_argument(
        "--success-target", type=float, default=0.999, help="required success probability (Eq. 6)"
    )

    simulate = sub.add_parser("simulate", help="Monte-Carlo estimate of one configuration")
    add_model_arguments(simulate)
    simulate.add_argument("--repetitions", type=int, default=20, help="independent executions")
    simulate.add_argument("--seed", type=int, default=None, help="RNG seed")
    simulate.add_argument(
        "--conditional",
        action="store_true",
        help="average only over executions whose dissemination took off",
    )

    design = sub.add_parser("design", help="dimension fanout and repeats for a target")
    design.add_argument("--members", "-n", type=int, default=1000, help="group size n")
    design.add_argument(
        "--reliability", type=float, default=0.99, help="per-execution reliability target"
    )
    design.add_argument(
        "--max-failed", type=float, default=0.2, help="worst-case failed fraction to tolerate"
    )
    design.add_argument(
        "--success-target", type=float, default=0.999, help="per-member delivery target after repeats"
    )

    experiment = sub.add_parser("experiment", help="regenerate one of the paper's figures")
    experiment.add_argument(
        "figure",
        choices=[spec.experiment_id for spec in list_experiments()],
        help=(
            "experiment id (fig2 .. fig7, sec4_percolation_validation, "
            "protocol_comparison, loss_resilience, dimensioning, "
            "churn_resilience, recovery_resilience, latency_profile, "
            "surface_dimensioning)"
        ),
    )
    experiment.add_argument(
        "--scale",
        type=float,
        default=1.0,
        help="shrink group size / repetitions for a quick run (default: paper scale)",
    )

    run = sub.add_parser(
        "run", help="run a registered experiment workload (named scale presets)"
    )
    run.add_argument(
        "experiment",
        choices=[spec.experiment_id for spec in list_experiments()],
        help=(
            "experiment id (fig2 .. fig7, sec4_percolation_validation, "
            "protocol_comparison, loss_resilience, dimensioning, "
            "churn_resilience, recovery_resilience, latency_profile, "
            "surface_dimensioning)"
        ),
    )
    run.add_argument(
        "--scale",
        type=_parse_scale,
        default="full",
        help="small (0.1), medium (0.5), full (1.0), or a float factor in (0, 1]",
    )

    def _csv(cast: Callable[[str], _T]) -> Callable[[str], tuple[_T, ...]]:
        def parse(raw: str) -> tuple[_T, ...]:
            return tuple(cast(item) for item in raw.split(",") if item.strip())

        return parse

    build_surface = sub.add_parser(
        "build-surface", help="precompute a certified reliability surface artifact"
    )
    build_surface.add_argument("output", help="artifact path (writes <output>.npz + manifest)")
    build_surface.add_argument(
        "--protocol",
        default="gossip-poisson",
        help="surface protocol: gossip-<family> (horizon-free) or a protocol-zoo id",
    )
    build_surface.add_argument(
        "--members", "-n", type=_csv(int), default=(1000,), help="group sizes, comma-separated"
    )
    build_surface.add_argument(
        "--alive-ratios", "-q", type=_csv(float), default=(0.7, 0.8, 0.9, 1.0),
        help="nonfailed ratios q, comma-separated",
    )
    build_surface.add_argument(
        "--losses", type=_csv(float), default=(0.0, 0.1, 0.2),
        help="per-message loss probabilities, comma-separated",
    )
    build_surface.add_argument(
        "--fanouts", type=_csv(float), default=(1.5, 2.5, 4.0, 6.0, 9.0),
        help="mean fanouts, comma-separated",
    )
    build_surface.add_argument(
        "--rounds", type=_csv(int), default=None,
        help="round horizons for protocol surfaces (omit for horizon-free gossip)",
    )
    build_surface.add_argument(
        "--repetitions", type=int, default=96, help="Monte-Carlo replicas per cell"
    )
    build_surface.add_argument(
        "--confidence", type=float, default=0.95, help="per-cell Wilson coverage"
    )
    build_surface.add_argument("--seed", type=int, default=0, help="RNG seed")
    build_surface.add_argument(
        "--processes", type=int, default=1, help="worker processes (0 = all cores)"
    )

    query = sub.add_parser(
        "query", help="answer one question from a surface artifact (one-shot)"
    )
    query.add_argument("surface", help="surface artifact path (as given to build-surface)")
    query.add_argument(
        "--op", choices=["reliability", "dimension", "pareto", "info"],
        default="reliability", help="question to ask",
    )
    query.add_argument("--members", "-n", type=int, default=None, help="group size n")
    query.add_argument("--alive-ratio", "-q", type=float, default=None, help="nonfailed ratio q")
    query.add_argument("--loss", type=float, default=0.0, help="per-message loss probability")
    query.add_argument(
        "--fanout", "-f", type=float, default=None, help="mean fanout (reliability op)"
    )
    query.add_argument("--rounds", type=int, default=None, help="round horizon (protocol surfaces)")
    query.add_argument(
        "--target", type=float, default=None, help="reliability target (dimension / pareto ops)"
    )
    query.add_argument(
        "--objective", choices=["min_fanout", "min_cost"], default="min_fanout",
        help="dimension objective",
    )
    query.add_argument(
        "--live-fallback", action="store_true",
        help="fall back to a live solve when the query is off-grid (dimension op)",
    )

    serve = sub.add_parser(
        "serve", help="JSON-lines query loop over stdin/stdout (see repro.serving.serve)"
    )
    serve.add_argument("surface", help="surface artifact path (as given to build-surface)")
    serve.add_argument(
        "--cache-size", type=int, default=4096, help="LRU query-cache capacity"
    )

    return parser


def _cmd_analyze(args: argparse.Namespace) -> int:
    dist = _make_distribution(args.family, args.fanout)
    model = GossipModel(n=args.members, distribution=dist, q=args.alive_ratio)
    reliability = model.reliability()
    print(f"configuration            : Gossip(n={args.members}, {args.family}({args.fanout}), q={args.alive_ratio})")
    print(f"critical nonfailed ratio : {model.critical_ratio():.4f}")
    print(f"supercritical            : {model.is_supercritical()}")
    print(f"reliability R(q, P)      : {reliability:.4f}")
    if reliability > 0:
        print(f"executions for {args.success_target}: {model.min_executions(args.success_target)}")
    else:
        print("executions for target    : unreachable (reliability is 0 below the critical point)")
    return 0


def _cmd_simulate(args: argparse.Namespace) -> int:
    dist = _make_distribution(args.family, args.fanout)
    model = GossipModel(n=args.members, distribution=dist, q=args.alive_ratio)
    from repro.simulation.runner import estimate_reliability

    estimate = estimate_reliability(
        args.members,
        dist,
        args.alive_ratio,
        repetitions=args.repetitions,
        seed=args.seed,
        conditional_on_spread=args.conditional,
    )
    print(f"analytical reliability  : {model.reliability():.4f}")
    print(f"simulated reliability   : {estimate.mean_reliability:.4f}  (std {estimate.std_reliability:.4f})")
    print(f"take-off rate           : {estimate.spread_rate:.2f}")
    print(f"mean gossip hops        : {estimate.mean_rounds:.1f}")
    print(f"mean messages           : {estimate.mean_messages:.0f}")
    return 0


def _cmd_design(args: argparse.Namespace) -> int:
    q = 1.0 - args.max_failed
    fanout = mean_fanout_for_reliability(args.reliability, q)
    repeats = min_executions(args.success_target, args.reliability)
    model = GossipModel(n=args.members, distribution=PoissonFanout(fanout), q=q)
    print(f"failure budget           : {args.max_failed:.0%} failed (q = {q})")
    print(f"required mean fanout (Eq. 12) : {fanout:.2f}")
    print(f"required executions (Eq. 6)   : {repeats}")
    print(f"resulting reliability         : {model.reliability():.4f}")
    print(
        "max tolerable failed fraction : "
        f"{model.max_tolerable_failure_ratio(args.reliability):.1%}"
    )
    return 0


def _run_experiment(experiment_id: str, scale: float) -> int:
    """Shared driver of the ``experiment`` and ``run`` sub-commands."""
    spec = get_experiment(experiment_id)
    config = spec.config_factory()
    if not spec.analytical_only and scale < 0.999:
        if hasattr(config, "with_scale"):
            config = config.with_scale(scale)
        elif hasattr(config, "repetitions"):
            config = config.scaled(
                n=max(100, int(config.n * scale)),
                repetitions=max(4, int(config.repetitions * scale)),
            )
        else:
            config = config.scaled(
                n=max(200, int(config.n * scale)),
                simulations=max(15, int(config.simulations * scale)),
            )
    print(f"{spec.experiment_id}: {spec.paper_reference}")
    result = spec.runner(config)
    print(result.to_table())
    problems = result.check_shape() if (spec.analytical_only or scale >= 0.999) else []
    if problems:
        print("\nSHAPE VIOLATIONS:")
        for problem in problems:
            print(f"  - {problem}")
        return 1
    print("\nqualitative shape: OK")
    return 0


def _cmd_build_surface(args: argparse.Namespace) -> int:
    from repro.serving.surface import SurfaceGrid, build_surface

    grid = SurfaceGrid(
        ns=args.members,
        qs=args.alive_ratios,
        losses=args.losses,
        fanouts=args.fanouts,
        rounds=args.rounds if args.rounds else (0,),
    )
    surface = build_surface(
        grid,
        protocol=args.protocol,
        repetitions=args.repetitions,
        confidence=args.confidence,
        seed=args.seed,
        processes=args.processes or None,
    )
    npz_path, manifest_path = surface.save(args.output)
    print(f"surface  : {surface.cells} cells x {args.repetitions} replicas ({args.protocol})")
    print(f"arrays   : {npz_path}")
    print(f"manifest : {manifest_path}")
    return 0


def _cmd_query(args: argparse.Namespace) -> int:
    import json

    from repro.serving.query import SurfaceQueryEngine
    from repro.serving.serve import handle_request
    from repro.serving.surface import load_surface

    engine = SurfaceQueryEngine(load_surface(args.surface))
    request: dict = {"op": args.op, "loss": args.loss}
    if args.members is not None:
        request["n"] = args.members
    if args.alive_ratio is not None:
        request["q"] = args.alive_ratio
    if args.fanout is not None:
        request["fanout"] = args.fanout
    if args.rounds is not None:
        request["rounds"] = args.rounds
    if args.target is not None:
        request["target"] = args.target
    if args.op == "dimension":
        request["objective"] = args.objective
        request["live_fallback"] = args.live_fallback
    response = handle_request(engine, request)
    print(json.dumps(response, indent=2, sort_keys=True))
    return 0 if response.get("ok") else 1


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.serving.serve import serve_loop
    from repro.serving.surface import load_surface

    surface = load_surface(args.surface)
    served = serve_loop(surface, sys.stdin, sys.stdout, cache_size=args.cache_size)
    print(f"served {served} requests", file=sys.stderr)
    return 0


def _cmd_experiment(args: argparse.Namespace) -> int:
    return _run_experiment(args.figure, args.scale)


def _cmd_run(args: argparse.Namespace) -> int:
    return _run_experiment(args.experiment, args.scale)


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    handlers = {
        "analyze": _cmd_analyze,
        "simulate": _cmd_simulate,
        "design": _cmd_design,
        "experiment": _cmd_experiment,
        "run": _cmd_run,
        "build-surface": _cmd_build_surface,
        "query": _cmd_query,
        "serve": _cmd_serve,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())

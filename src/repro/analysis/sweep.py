"""Distribution ablation sweeps.

The paper's third claimed advantage over prior models is that analysis "can
be performed for various fanout distributions, rather than only the Poisson
distribution".  :func:`distribution_ablation` exercises that claim: it holds
the *mean* fanout fixed, swaps the distribution family, and reports the
analytical and simulated reliabilities side by side.  The corresponding
benchmark is ``benchmarks/bench_ablation_distributions.py``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

from repro.core.distributions import (
    FanoutDistribution,
    FixedFanout,
    GeometricFanout,
    PoissonFanout,
    UniformFanout,
)
from repro.core.percolation import critical_ratio
from repro.core.reliability import reliability as analytical_reliability
from repro.simulation.runner import estimate_reliability
from repro.utils.rng import SeedLike, as_generator
from repro.utils.validation import check_integer, check_probability

__all__ = ["DistributionSweep", "distribution_ablation", "default_distribution_families"]


def default_distribution_families(mean_fanout: float) -> dict[str, FanoutDistribution]:
    """Return the standard set of distribution families at a common mean fanout.

    The fixed and uniform families require integer parameters, so the mean is
    rounded for them.  The uniform support is clipped *symmetrically* around
    the rounded mean (half-width ``min(2, rounded)``) so its realised mean is
    exactly the rounded target: the former one-sided clip
    ``U(max(0, rounded - 2), rounded + 2)`` silently inflated the mean once
    ``rounded < 2`` (e.g. a requested mean of 1 became ``U(0, 3)`` with
    realised mean 1.5 — a 50% bias that broke the "mean held fixed" contract
    of the ablation).  Residual integer rounding is surfaced per row as
    ``realised_mean`` so comparisons are made at the mean each family
    actually runs with.
    """
    rounded = max(1, int(round(mean_fanout)))
    half_width = min(2, rounded)
    return {
        "poisson": PoissonFanout(mean_fanout),
        "fixed": FixedFanout(rounded),
        "geometric": GeometricFanout.from_mean(mean_fanout),
        "uniform": UniformFanout(rounded - half_width, rounded + half_width),
    }


@dataclass(frozen=True)
class DistributionSweepRow:
    """One row of the distribution ablation: a (family, q) cell.

    ``mean_fanout`` is the *requested* common mean of the ablation;
    ``realised_mean`` is the mean the family's (integer-parameter) instance
    actually has.  The analytical column is always evaluated at the realised
    mean — the same distribution object the simulator draws from — so the
    analysis-vs-simulation comparison stays apples-to-apples even when the
    two means differ by integer rounding.
    """

    family: str
    mean_fanout: float
    realised_mean: float
    q: float
    critical_ratio: float
    analytical: float
    simulated: float
    simulated_std: float

    def absolute_error(self) -> float:
        """Return the analysis-vs-simulation gap for this cell."""
        return abs(self.analytical - self.simulated)

    def mean_bias(self) -> float:
        """Return ``realised_mean - mean_fanout`` (integer-rounding residue)."""
        return self.realised_mean - self.mean_fanout


@dataclass
class DistributionSweep:
    """Results of a distribution-family ablation."""

    n: int
    qs: tuple
    rows: list = field(default_factory=list)

    def families(self) -> list[str]:
        """Return the distribution family names present, in first-seen order."""
        seen: list[str] = []
        for row in self.rows:
            if row.family not in seen:
                seen.append(row.family)
        return seen

    def rows_for_family(self, family: str) -> list[DistributionSweepRow]:
        """Return the rows of one family, ordered by q."""
        return sorted((r for r in self.rows if r.family == family), key=lambda r: r.q)

    def max_absolute_error(self) -> float:
        """Return the worst analysis-vs-simulation gap in the ablation."""
        return max((r.absolute_error() for r in self.rows), default=0.0)


def distribution_ablation(
    n: int,
    mean_fanout: float,
    qs: Sequence[float],
    *,
    families: Mapping[str, FanoutDistribution] | None = None,
    repetitions: int = 10,
    seed: SeedLike = None,
) -> DistributionSweep:
    """Compare reliability across distribution families at a common mean fanout.

    Parameters
    ----------
    n:
        Group size for the simulated column.
    mean_fanout:
        Target mean fanout shared by every family.
    qs:
        Nonfailed ratios to evaluate.
    families:
        Mapping of name → distribution; defaults to
        :func:`default_distribution_families`.
    repetitions:
        Simulation repetitions per cell.
    """
    n = check_integer("n", n, minimum=2)
    qs = tuple(float(check_probability("q", q)) for q in qs)
    if families is None:
        families = default_distribution_families(mean_fanout)
    rng = as_generator(seed)

    sweep = DistributionSweep(n=n, qs=qs)
    for name, dist in families.items():
        qc = critical_ratio(dist)
        for q in qs:
            estimate = estimate_reliability(n, dist, q, repetitions=repetitions, seed=rng)
            sweep.rows.append(
                DistributionSweepRow(
                    family=name,
                    mean_fanout=float(mean_fanout),
                    realised_mean=dist.mean(),
                    q=q,
                    critical_ratio=qc,
                    analytical=analytical_reliability(dist, q),
                    simulated=estimate.mean_reliability,
                    simulated_std=estimate.std_reliability,
                )
            )
    return sweep

"""Goodness of fit of success counts against the Binomial model (Figs. 6-7).

The paper validates Eq. 6 by checking that the simulated success counts
"approximately follow a binomial distribution B(20, R(q, Po(z)))".  These
helpers make that check quantitative:

* :func:`fit_binomial` — the maximum-likelihood estimate of the success
  probability from observed counts, with comparison against the analytical
  reliability,
* :func:`chi_square_binomial_test` — Pearson chi-square test of the observed
  count histogram against the Binomial PMF (with low-expectation bins pooled,
  the standard remedy for sparse tails), and
* total-variation distance via
  :meth:`repro.simulation.metrics.SuccessCountResult.total_variation_distance`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import numpy.typing as npt
from scipy import stats

from repro.core.success import success_count_pmf
from repro.utils.validation import check_integer, check_probability

__all__ = ["BinomialFit", "fit_binomial", "chi_square_binomial_test", "ChiSquareResult"]


@dataclass(frozen=True)
class BinomialFit:
    """Maximum-likelihood Binomial fit of observed success counts.

    Attributes
    ----------
    executions:
        The number of trials ``t`` per observation.
    estimated_probability:
        MLE ``p̂ = mean(counts) / t``.
    reference_probability:
        The analytical reliability the counts are expected to follow.
    absolute_difference:
        ``|p̂ − reference|``.
    """

    executions: int
    estimated_probability: float
    reference_probability: float
    absolute_difference: float


def fit_binomial(
    counts: npt.ArrayLike, executions: int, reference_probability: float
) -> BinomialFit:
    """Fit a Binomial success probability to observed counts and compare to a reference."""
    executions = check_integer("executions", executions, minimum=1)
    reference_probability = check_probability("reference_probability", reference_probability)
    counts = np.asarray(counts, dtype=float)
    if counts.size == 0:
        raise ValueError("counts must be non-empty")
    if np.any((counts < 0) | (counts > executions)):
        raise ValueError("counts must lie in [0, executions]")
    p_hat = float(counts.mean() / executions)
    return BinomialFit(
        executions=executions,
        estimated_probability=p_hat,
        reference_probability=reference_probability,
        absolute_difference=abs(p_hat - reference_probability),
    )


@dataclass(frozen=True)
class ChiSquareResult:
    """Result of the pooled Pearson chi-square test.

    ``pooled_bins`` is the number of bins actually used after pooling the
    low-expectation tail; ``degrees_of_freedom = pooled_bins − 1``.
    """

    statistic: float
    p_value: float
    pooled_bins: int
    degrees_of_freedom: int

    def rejects_at(self, alpha: float = 0.05) -> bool:
        """Return True if the Binomial hypothesis is rejected at level ``alpha``."""
        return self.p_value < alpha


def chi_square_binomial_test(
    counts: npt.ArrayLike,
    executions: int,
    probability: float,
    *,
    min_expected: float = 5.0,
) -> ChiSquareResult:
    """Pearson chi-square test of observed success counts against ``B(t, p)``.

    Bins (count values ``0..t``) whose expected frequency is below
    ``min_expected`` are pooled together from both tails inward, which keeps
    the chi-square approximation valid for the small sample sizes the paper
    uses (100 simulations).
    """
    executions = check_integer("executions", executions, minimum=1)
    probability = check_probability("probability", probability)
    counts = np.asarray(counts, dtype=np.int64)
    if counts.size == 0:
        raise ValueError("counts must be non-empty")
    if np.any((counts < 0) | (counts > executions)):
        raise ValueError("counts must lie in [0, executions]")

    observed = np.bincount(counts, minlength=executions + 1).astype(float)
    expected = success_count_pmf(executions, probability) * counts.size

    obs_pooled, exp_pooled = _pool_bins(observed, expected, min_expected)
    if len(obs_pooled) < 2:
        # Everything pooled into one bin: the test is degenerate; report a
        # perfect fit (statistic 0) rather than dividing by zero dof.
        return ChiSquareResult(statistic=0.0, p_value=1.0, pooled_bins=1, degrees_of_freedom=0)
    # Renormalise the expected bins to the observed total to guard against
    # the tiny mass lost to pooling round-off.
    exp_pooled = exp_pooled * (obs_pooled.sum() / exp_pooled.sum())
    statistic = float(np.sum((obs_pooled - exp_pooled) ** 2 / exp_pooled))
    dof = len(obs_pooled) - 1
    p_value = float(stats.chi2.sf(statistic, dof))
    return ChiSquareResult(
        statistic=statistic, p_value=p_value, pooled_bins=len(obs_pooled), degrees_of_freedom=dof
    )


def _pool_bins(
    observed: np.ndarray, expected: np.ndarray, min_expected: float
) -> tuple[np.ndarray, np.ndarray]:
    """Pool adjacent low-expectation bins from the left tail into their right neighbour."""
    obs: list[float] = []
    exp: list[float] = []
    acc_obs = 0.0
    acc_exp = 0.0
    for o, e in zip(observed, expected, strict=True):
        acc_obs += float(o)
        acc_exp += float(e)
        if acc_exp >= min_expected:
            obs.append(acc_obs)
            exp.append(acc_exp)
            acc_obs = 0.0
            acc_exp = 0.0
    if acc_exp > 0 or acc_obs > 0:
        if exp:
            obs[-1] += acc_obs
            exp[-1] += acc_exp
        else:
            obs.append(acc_obs)
            exp.append(acc_exp)
    return np.asarray(obs), np.asarray(exp)

"""Experiment-support analysis: sweeps, comparisons, goodness of fit, dimensioning."""

from repro.analysis.compare import SeriesComparison, compare_series, compare_sweep
from repro.analysis.dimensioning import (
    DimensioningResult,
    analytic_required_fanout,
    dense_grid_dimension,
    dimension_fanout,
    wilson_interval,
)
from repro.analysis.sweep import DistributionSweep, distribution_ablation
from repro.analysis.binomial_fit import BinomialFit, fit_binomial, chi_square_binomial_test
from repro.analysis.tables import (
    comparison_to_table,
    dimensioning_to_table,
    pmf_to_table,
    sweep_to_table,
)

__all__ = [
    "SeriesComparison",
    "compare_series",
    "compare_sweep",
    "DimensioningResult",
    "analytic_required_fanout",
    "dense_grid_dimension",
    "dimension_fanout",
    "wilson_interval",
    "DistributionSweep",
    "distribution_ablation",
    "BinomialFit",
    "fit_binomial",
    "chi_square_binomial_test",
    "sweep_to_table",
    "comparison_to_table",
    "pmf_to_table",
    "dimensioning_to_table",
]

"""Experiment-support analysis: sweeps, comparisons, and goodness of fit."""

from repro.analysis.compare import SeriesComparison, compare_series, compare_sweep
from repro.analysis.sweep import DistributionSweep, distribution_ablation
from repro.analysis.binomial_fit import BinomialFit, fit_binomial, chi_square_binomial_test
from repro.analysis.tables import sweep_to_table, comparison_to_table, pmf_to_table

__all__ = [
    "SeriesComparison",
    "compare_series",
    "compare_sweep",
    "DistributionSweep",
    "distribution_ablation",
    "BinomialFit",
    "fit_binomial",
    "chi_square_binomial_test",
    "sweep_to_table",
    "comparison_to_table",
    "pmf_to_table",
]

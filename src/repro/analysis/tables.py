"""Rendering experiment results as fixed-width tables.

The benchmark harness prints "the same rows/series the paper reports"; these
functions turn the structured result objects into those printable tables so
benchmarks, examples, and EXPERIMENTS.md all show identical formatting.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.compare import SeriesComparison
from repro.analysis.sweep import DistributionSweep
from repro.simulation.metrics import SuccessCountResult
from repro.simulation.runner import SweepResult
from repro.utils.tables import format_table

__all__ = ["sweep_to_table", "comparison_to_table", "pmf_to_table", "distribution_sweep_to_table"]


def sweep_to_table(sweep: SweepResult, *, precision: int = 4) -> str:
    """Render a reliability sweep as a (fanout, q, simulated, analytical, error) table."""
    headers = ["mean_fanout", "q", "simulated", "analytical", "abs_error"]
    return format_table(headers, sweep.to_rows(), precision=precision)


def comparison_to_table(comparisons: dict[float, SeriesComparison], *, precision: int = 4) -> str:
    """Render per-q comparison metrics (MAE / max error / RMSE / thresholds)."""
    headers = ["q", "mae", "max_error", "rmse", "sim_threshold", "ana_threshold"]
    rows = []
    for q in sorted(comparisons):
        c = comparisons[q]
        rows.append(
            (
                q,
                c.mean_absolute_error,
                c.max_absolute_error,
                c.rmse,
                c.simulated_threshold,
                c.analytical_threshold,
            )
        )
    return format_table(headers, rows, precision=precision)


def pmf_to_table(result: SuccessCountResult, *, precision: int = 4) -> str:
    """Render a success-count distribution as (k, simulated, analytical) rows."""
    headers = ["k", "simulated_Pr(X=k)", "binomial_Pr(X=k)"]
    rows = [
        (int(k), float(result.empirical_pmf[k]), float(result.analytical_pmf[k]))
        for k in np.arange(result.executions + 1)
    ]
    return format_table(headers, rows, precision=precision)


def distribution_sweep_to_table(sweep: DistributionSweep, *, precision: int = 4) -> str:
    """Render the distribution ablation as one row per (family, q) cell."""
    headers = ["family", "mean_fanout", "q", "q_c", "analytical", "simulated", "abs_error"]
    rows = [
        (
            r.family,
            r.mean_fanout,
            r.q,
            r.critical_ratio,
            r.analytical,
            r.simulated,
            r.absolute_error(),
        )
        for r in sweep.rows
    ]
    return format_table(headers, rows, precision=precision)

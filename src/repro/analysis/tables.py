"""Rendering experiment results as fixed-width tables.

The benchmark harness prints "the same rows/series the paper reports"; these
functions turn the structured result objects into those printable tables so
benchmarks, examples, and EXPERIMENTS.md all show identical formatting.
"""

from __future__ import annotations

from typing import Any, Iterable

import numpy as np

from repro.analysis.compare import SeriesComparison
from repro.analysis.sweep import DistributionSweep
from repro.simulation.metrics import SuccessCountResult
from repro.simulation.runner import SweepResult
from repro.utils.tables import format_table

__all__ = [
    "sweep_to_table",
    "comparison_to_table",
    "pmf_to_table",
    "distribution_sweep_to_table",
    "dimensioning_to_table",
    "latency_to_table",
]


def sweep_to_table(sweep: SweepResult, *, precision: int = 4) -> str:
    """Render a reliability sweep as a (fanout, q, simulated, analytical, error) table."""
    headers = ["mean_fanout", "q", "simulated", "analytical", "abs_error"]
    return format_table(headers, sweep.to_rows(), precision=precision)


def comparison_to_table(comparisons: dict[float, SeriesComparison], *, precision: int = 4) -> str:
    """Render per-q comparison metrics (MAE / max error / RMSE / thresholds)."""
    headers = ["q", "mae", "max_error", "rmse", "sim_threshold", "ana_threshold"]
    rows = []
    for q in sorted(comparisons):
        c = comparisons[q]
        rows.append(
            (
                q,
                c.mean_absolute_error,
                c.max_absolute_error,
                c.rmse,
                c.simulated_threshold,
                c.analytical_threshold,
            )
        )
    return format_table(headers, rows, precision=precision)


def pmf_to_table(result: SuccessCountResult, *, precision: int = 4) -> str:
    """Render a success-count distribution as (k, simulated, analytical) rows."""
    headers = ["k", "simulated_Pr(X=k)", "binomial_Pr(X=k)"]
    rows = [
        (int(k), float(result.empirical_pmf[k]), float(result.analytical_pmf[k]))
        for k in np.arange(result.executions + 1)
    ]
    return format_table(headers, rows, precision=precision)


def distribution_sweep_to_table(sweep: DistributionSweep, *, precision: int = 4) -> str:
    """Render the distribution ablation as one row per (family, q) cell.

    Both the requested common mean and each family's realised mean are
    shown; the analytical column is evaluated at the realised mean.
    """
    headers = [
        "family",
        "mean_fanout",
        "realised_mean",
        "q",
        "q_c",
        "analytical",
        "simulated",
        "abs_error",
    ]
    rows = [
        (
            r.family,
            r.mean_fanout,
            r.realised_mean,
            r.q,
            r.critical_ratio,
            r.analytical,
            r.simulated,
            r.absolute_error(),
        )
        for r in sweep.rows
    ]
    return format_table(headers, rows, precision=precision)


def latency_to_table(points: Iterable[Any], *, precision: int = 4) -> str:
    """Render latency-profile cells as one row per ``(protocol, latency, loss)``.

    ``points`` is any iterable of objects with the
    :class:`~repro.experiments.latency_profile.LatencyPoint` field surface;
    the percentile columns are taken from each point's own
    ``delivery_percentiles`` pairs (all points are expected to report the
    same set, as one sweep produces).
    """
    points = list(points)
    labels = [label for label, _ in points[0].delivery_percentiles] if points else []
    headers = ["protocol", "latency", "loss", "reliability"] + labels + ["msgs/member"]
    rows = []
    for p in points:
        values = dict(p.delivery_percentiles)
        rows.append(
            [p.protocol, p.latency, p.loss_probability, p.reliability]
            + [values[label] for label in labels]
            + [p.messages_per_member]
        )
    return format_table(headers, rows, precision=precision)


def dimensioning_to_table(points: Iterable[Any], *, precision: int = 4) -> str:
    """Render auto-dimensioning cells as one row per solved cell.

    ``points`` is any iterable of objects with the
    :class:`~repro.experiments.dimensioning.DimensioningPoint` /
    :class:`~repro.analysis.dimensioning.DimensioningResult` field surface
    (``fanout``, ``rounds``, ``analytical_fanout``, the achieved interval,
    and the solver cost counters); the optional ``protocol`` field column is
    included when present so both the per-protocol experiment grid and bare
    distribution-mode solver results render through the same code.
    """
    points = list(points)
    with_protocol = any(getattr(p, "protocol", None) is not None for p in points)
    headers = (["protocol"] if with_protocol else []) + [
        "target",
        "q",
        "loss",
        "fanout",
        "rounds",
        "analytic_f",
        "achieved",
        "ci_low",
        "ci_high",
        "replicas",
        "feasible",
    ]
    rows = []
    for p in points:
        target = getattr(p, "target_reliability", None)
        rows.append(
            ([getattr(p, "protocol", "-")] if with_protocol else [])
            + [
                target,
                p.q,
                p.loss,
                p.fanout,
                "-" if p.rounds is None else p.rounds,
                p.analytical_fanout,
                p.achieved_reliability,
                p.ci_low,
                p.ci_high,
                p.replicas_used,
                p.feasible,
            ]
        )
    return format_table(headers, rows, precision=precision)

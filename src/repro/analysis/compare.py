"""Analysis-vs-simulation comparison utilities.

The paper's headline claim is that "the simulation results tally with our
analytic results very well".  These helpers quantify that statement for any
pair of series (simulated vs analytical reliability over a fanout sweep) with
the error metrics the integration tests and the EXPERIMENTS.md records use:
mean/max absolute error, root-mean-square error, and the location of the
empirical percolation threshold.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.simulation.runner import SweepResult

__all__ = ["SeriesComparison", "compare_series", "compare_sweep", "threshold_crossing"]


@dataclass(frozen=True)
class SeriesComparison:
    """Error metrics between a simulated series and an analytical series.

    Attributes
    ----------
    xs:
        The common abscissa (e.g. mean fanout values).
    simulated, analytical:
        The two series being compared.
    mean_absolute_error, max_absolute_error, rmse:
        The usual error summaries.
    simulated_threshold, analytical_threshold:
        First abscissa at which each series exceeds the threshold used by
        :func:`compare_series` (NaN when never exceeded).
    """

    xs: np.ndarray
    simulated: np.ndarray
    analytical: np.ndarray
    mean_absolute_error: float
    max_absolute_error: float
    rmse: float
    simulated_threshold: float
    analytical_threshold: float

    def threshold_gap(self) -> float:
        """Return the distance between the empirical and analytical thresholds."""
        if np.isnan(self.simulated_threshold) or np.isnan(self.analytical_threshold):
            return float("nan")
        return abs(self.simulated_threshold - self.analytical_threshold)


def threshold_crossing(xs: Sequence[float], ys: Sequence[float], level: float) -> float:
    """Return the first ``x`` at which ``y`` reaches ``level`` (NaN if never)."""
    xs = np.asarray(xs, dtype=float)
    ys = np.asarray(ys, dtype=float)
    if xs.shape != ys.shape:
        raise ValueError("xs and ys must have the same shape")
    above = np.flatnonzero(ys >= level)
    return float(xs[above[0]]) if above.size else float("nan")


def compare_series(
    xs: Sequence[float],
    simulated: Sequence[float],
    analytical: Sequence[float],
    *,
    threshold_level: float = 0.5,
) -> SeriesComparison:
    """Compare a simulated and an analytical series defined on the same grid."""
    xs = np.asarray(xs, dtype=float)
    simulated = np.asarray(simulated, dtype=float)
    analytical = np.asarray(analytical, dtype=float)
    if not (xs.shape == simulated.shape == analytical.shape):
        raise ValueError("xs, simulated, and analytical must have the same shape")
    if xs.size == 0:
        raise ValueError("series must be non-empty")
    errors = np.abs(simulated - analytical)
    return SeriesComparison(
        xs=xs,
        simulated=simulated,
        analytical=analytical,
        mean_absolute_error=float(errors.mean()),
        max_absolute_error=float(errors.max()),
        rmse=float(np.sqrt(np.mean(errors**2))),
        simulated_threshold=threshold_crossing(xs, simulated, threshold_level),
        analytical_threshold=threshold_crossing(xs, analytical, threshold_level),
    )


def compare_sweep(sweep: SweepResult, *, threshold_level: float = 0.5) -> dict[float, SeriesComparison]:
    """Compare analysis and simulation for every ``q`` series of a sweep."""
    comparisons: dict[float, SeriesComparison] = {}
    for q in sweep.qs:
        points = sweep.series_for_q(q)
        comparisons[q] = compare_series(
            [p.mean_fanout for p in points],
            [p.simulated for p in points],
            [p.analytical for p in points],
            threshold_level=threshold_level,
        )
    return comparisons

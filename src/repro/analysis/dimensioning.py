"""Loss-aware auto-dimensioning: invert the reliability surface.

The paper's forward direction is well covered by this repository: given a
group size ``n``, a fanout distribution ``P`` and a nonfailed ratio ``q``,
Eqs. 3-4 (and Eq. 11 for the Poisson case) predict the reliability of
gossiping, and the batched Monte-Carlo engines measure it.  The *practical*
question a deployment asks runs the other way: **given a crash budget and a
message-loss budget, how small can the mean fanout (and, for round-based
protocols, the round horizon) be while still hitting a target reliability?**

:func:`dimension_fanout` answers that question by wrapping the fast batched
estimators inside an outer monotone search (the cluster-method Monte-Carlo
precedent: a cheap ensemble estimator inside a parameter scan):

1. **Analytic bracket seeding.**  The generating-function curve is monotone
   in the mean fanout, so :func:`analytic_required_fanout` inverts it by
   bisection (closed form Eq. 12 for Poisson).  Message loss is folded in as
   *effective-fanout thinning*: a fanout-``f`` member whose messages are
   each dropped independently with probability ``p`` contributes like a
   fanout-``f(1-p)`` member, exactly for Poisson (a thinned Poisson is
   Poisson) and as a bracket-quality approximation otherwise.
2. **Confidence-aware Monte-Carlo bisection.**  Each candidate fanout is
   judged by an adaptive feasibility oracle over the batched engines
   (:func:`~repro.simulation.gossip.simulate_gossip_batch` for a fanout
   distribution, :func:`~repro.simulation.protocol_batch.simulate_protocol_batch`
   for a protocol): replicas are added in doubling blocks until a Wilson
   score interval on the mean replica reliability clears the target on
   either side — so the replica budget concentrates near the decision
   boundary instead of being burnt on clear-cut candidates.  *Feasible
   means certifiable*: a candidate passes only when the Wilson lower bound
   reaches the target, so the fanout the bisection converges to carries its
   confidence certificate by construction.  The Wilson interval is
   *conservative* here: each replica reliability lives in ``[0, 1]``, and
   among ``[0, 1]`` random variables with a given mean the Bernoulli
   maximises the variance, so a binomial interval on the replica means can
   only over-cover.
3. **Minimal rounds (protocol mode).**  Round-based protocols (pbcast,
   lpbcast, RDG) are monotone in their round horizon, so once the minimal
   fanout is known an integer bisection over rounds finds the smallest
   horizon that still meets the target.

:func:`dense_grid_dimension` is the naive reference the solver is benchmarked
against (``benchmarks/bench_dimensioning.py``): it walks a fixed fanout grid
at the full replica budget per point.  Both report the replicas they consumed
so the benchmark compares *statistical* cost, which — unlike wall-clock — is
machine-independent and therefore safe to regression-gate.

:func:`dimension_pareto` generalises the lexicographic protocol-mode answer
(minimal fanout, then minimal rounds at that fanout) to the **joint**
``(fanout, rounds)`` trade-off: it returns the full Pareto frontier of
non-dominated feasible pairs plus the cost-aware pick (minimal measured
payload messages per member subject to ``ci_low >= target``), so a deployment
that cares about latency (rounds) and one that cares about bandwidth
(messages) read their answer off the same solve.

.. _loss-semantics:

Loss semantics (the contract)
-----------------------------
``loss`` means the same thing everywhere in this module: an **independent
per-message (per-leg) Bernoulli drop probability**, applied by the engines'
:class:`~repro.simulation.network.NetworkModel` plane to every point-to-point
send.  Both :func:`dimension_fanout` and :func:`dense_grid_dimension` measure
candidates with those per-message semantics, so their answers are directly
comparable (cross-checked at ``p = 0.25`` in
``tests/analysis/test_dimensioning.py``).

*Effective-fanout thinning* — treating a fanout-``f`` member under loss ``p``
like a fanout-``f(1-p)`` member on a loss-free network — appears **only** in
the analytic bracket seed (:func:`analytic_required_fanout`).  For a Poisson
fanout the two views coincide exactly (an independently thinned Poisson is
Poisson); for every other family thinning is a bracket-quality approximation
that the Monte-Carlo refinement then corrects under the true per-message
semantics.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Iterable, Sequence, TypeAlias, TypeVar

import numpy as np
from scipy import stats

from repro.core.distributions import FanoutDistribution, PoissonFanout
from repro.core.poisson_case import mean_fanout_for_reliability
from repro.core.reliability import reliability as analytical_reliability
from repro.protocols.base import Protocol
from repro.simulation.failures import FailureModel
from repro.simulation.gossip import simulate_gossip_batch
from repro.simulation.network import NetworkModel
from repro.simulation.protocol_batch import simulate_protocol_batch
from repro.utils.rng import SeedLike, as_generator, spawn_seeds
from repro.utils.validation import check_integer, check_probability

_T = TypeVar("_T")

#: Oracle sampler: ``(fanout, rounds, repetitions, seed)`` to per-replica
#: reliabilities, optionally paired with per-replica per-member costs.
_EvaluateBatch: TypeAlias = (
    "Callable[[float, int | None, int, SeedLike], np.ndarray | tuple[np.ndarray, np.ndarray]]"
)

#: Protocol-mode candidate builder: ``(fanout, rounds)`` to a protocol.
_ProtocolFactory: TypeAlias = "Callable[[int, int], Protocol]"

__all__ = [
    "wilson_interval",
    "analytic_required_fanout",
    "DimensioningResult",
    "dimension_fanout",
    "dense_grid_dimension",
    "pareto_frontier",
    "ParetoCandidate",
    "ParetoDimensioningResult",
    "dimension_pareto",
]


def wilson_interval(successes: float, trials: int, confidence: float) -> tuple[float, float]:
    """Return the Wilson score interval for a proportion.

    Parameters
    ----------
    successes:
        Number of successes.  Fractional values are accepted: the solver
        feeds the *sum of replica reliabilities* (each in ``[0, 1]``), for
        which the binomial interval is conservative because the Bernoulli
        maximises the variance of a ``[0, 1]`` variable at fixed mean.
    trials:
        Number of independent observations.
    confidence:
        Two-sided coverage, e.g. ``0.95``.
    """
    trials = check_integer("trials", trials, minimum=1)
    confidence = check_probability("confidence", confidence, allow_zero=False, allow_one=False)
    if not 0.0 <= successes <= trials:
        raise ValueError(f"successes must be in [0, {trials}], got {successes!r}")
    z = float(stats.norm.ppf(0.5 + confidence / 2.0))
    p_hat = successes / trials
    denom = 1.0 + z * z / trials
    centre = (p_hat + z * z / (2.0 * trials)) / denom
    half = (z / denom) * math.sqrt(p_hat * (1.0 - p_hat) / trials + z * z / (4.0 * trials * trials))
    return (max(0.0, centre - half), min(1.0, centre + half))


def analytic_required_fanout(
    target_reliability: float,
    q: float,
    *,
    loss: float = 0.0,
    distribution_factory: Callable[[float], FanoutDistribution] = PoissonFanout,
    tol: float = 1e-6,
    max_fanout: float = 512.0,
) -> float:
    """Invert the analytical reliability curve: minimal mean fanout for a target.

    Message loss is folded in as effective-fanout thinning: the returned
    fanout ``f`` satisfies ``R(q, P(f · (1 - loss))) >= target_reliability``
    on the Eqs. 3-4 curve.  For :class:`~repro.core.distributions.PoissonFanout`
    this is Eq. 12 divided by ``(1 - loss)`` (thinning a Poisson is exact);
    for any other family the monotone curve is bisected numerically.  This is
    the *only* place loss enters as thinning — the Monte-Carlo solvers measure
    candidates under true per-message Bernoulli drops (see :ref:`the loss
    contract <loss-semantics>` in the module docstring).

    Raises ``ValueError`` when the target is unreachable below ``max_fanout``
    (e.g. ``q = 0`` or ``loss = 1``).
    """
    target_reliability = check_probability(
        "target_reliability", target_reliability, allow_zero=False, allow_one=False
    )
    q = check_probability("q", q)
    loss = check_probability("loss", loss)
    if q <= 0.0 or loss >= 1.0:
        raise ValueError(
            f"target reliability {target_reliability} is unreachable at q={q}, loss={loss}"
        )
    keep = 1.0 - loss
    if distribution_factory is PoissonFanout:
        return mean_fanout_for_reliability(target_reliability, q) / keep

    def achieved(f: float) -> float:
        return analytical_reliability(distribution_factory(f * keep), q)

    lo, hi = 1e-9, max(2.0 / (q * keep), 2.0)
    while achieved(hi) < target_reliability:
        hi *= 2.0
        if hi > max_fanout:
            raise ValueError(
                f"target reliability {target_reliability} not reachable below "
                f"mean fanout {max_fanout} at q={q}, loss={loss}"
            )
    while hi - lo > tol:
        mid = 0.5 * (lo + hi)
        if achieved(mid) >= target_reliability:
            hi = mid
        else:
            lo = mid
    return hi


@dataclass(frozen=True)
class DimensioningResult:
    """Output of one auto-dimensioning solve.

    Attributes
    ----------
    n, q, target_reliability, loss, confidence:
        The problem as posed.
    fanout:
        Minimal mean fanout meeting the target (the smallest candidate the
        oracle judged feasible; an upper bracket endpoint within
        ``fanout_tol`` of the true boundary).  Integer-valued in protocol
        mode.
    rounds:
        Minimal round horizon at ``fanout`` (protocol mode with
        ``solve_rounds=True``), else ``None``.
    analytical_fanout:
        The loss-thinned Eqs. 3-4 seed the Monte-Carlo search started from.
    achieved_reliability:
        Mean replica reliability measured at ``fanout`` (the accepted
        decision's estimate).
    ci_low, ci_high:
        Wilson interval of ``achieved_reliability`` at the stated confidence.
    replicas_used:
        Total Monte-Carlo replicas consumed across the whole solve — the
        statistical cost the benchmark compares against the dense grid.
    evaluations:
        Number of candidate ``(fanout, rounds)`` points simulated.
    feasible:
        False when even the largest allowed fanout missed the target; then
        ``fanout`` is that cap and the achieved fields describe it.
    certified:
        True when the final decision at ``fanout`` was settled by the Wilson
        interval itself.  Feasible results are certified by construction
        (feasibility *means* ``ci_low >= target``); an infeasible result is
        certified when the last probe's upper bound fell below the target,
        and uncertified when it merely failed to demonstrate the target
        within the replica budget.
    """

    n: int
    q: float
    target_reliability: float
    loss: float
    confidence: float
    fanout: float
    rounds: int | None
    analytical_fanout: float
    achieved_reliability: float
    ci_low: float
    ci_high: float
    replicas_used: int
    evaluations: int
    feasible: bool
    certified: bool = True

    def margin(self) -> float:
        """Return ``achieved_reliability - target_reliability`` (< 0 only when infeasible)."""
        return self.achieved_reliability - self.target_reliability


class _FeasibilityOracle:
    """Adaptive Monte-Carlo feasibility decisions with Wilson-interval stopping.

    One oracle instance serves a whole solve: it owns the replica budget
    accounting (``replicas_used`` / ``evaluations``) and a base generator
    from which every evaluation draws an independent child seed, so the
    solve is reproducible regardless of the order candidates are probed in.
    """

    def __init__(
        self,
        evaluate_batch: _EvaluateBatch,  # (fanout, rounds, repetitions, seed) -> (R,) reliabilities
        *,               # ... or ((R,) reliabilities, (R,) per-member costs)
        target: float,
        confidence: float,
        initial_replicas: int,
        max_replicas: int,
        rng: np.random.Generator,
    ) -> None:
        self._evaluate_batch = evaluate_batch
        self.target = target
        self.confidence = confidence
        self.initial_replicas = initial_replicas
        self.max_replicas = max_replicas
        self._rng = rng
        self.replicas_used = 0
        self.evaluations = 0
        #: Mean per-member payload cost observed during the most recent
        #: decision (NaN when the evaluator does not report costs).
        self.last_cost = math.nan

    def decide(self, fanout: float, rounds: int | None) -> tuple[bool, float, float, float, bool]:
        """Judge one candidate: returns ``(feasible, mean, ci_low, ci_high, decisive)``.

        Replicas are drawn in doubling blocks until the Wilson interval of
        the mean replica reliability clears the target on either side, or
        the per-candidate budget ``max_replicas`` is exhausted.  *Feasible
        means certifiable*: the candidate passes only when the Wilson lower
        bound reaches the target — so the answer the outer bisection
        converges to carries its confidence certificate by construction.  A
        candidate that exhausts the budget without certifying is judged
        infeasible with ``decisive=False`` (its true reliability may sit
        just above the target, but not far enough above to *demonstrate* at
        this confidence and budget; the solver then correctly moves to a
        larger fanout, where the margin widens and certification is cheap).

        Far-from-boundary candidates exit on the first block or two; only
        the certifiability twilight burns the full budget.
        """
        self.evaluations += 1
        samples = np.empty(0, dtype=float)
        costs = np.empty(0, dtype=float)
        self.last_cost = math.nan
        block = self.initial_replicas
        while True:
            block = min(block, self.max_replicas - samples.size)
            seed = spawn_seeds(1, self._rng)[0]
            new = self._evaluate_batch(fanout, rounds, block, seed)
            if isinstance(new, tuple):
                new, cost_block = new
                costs = np.concatenate([costs, np.asarray(cost_block, dtype=float)])
                self.last_cost = float(costs.mean())
            self.replicas_used += block
            samples = np.concatenate([samples, np.asarray(new, dtype=float)])
            mean = float(samples.mean())
            lo, hi = wilson_interval(float(samples.sum()), samples.size, self.confidence)
            if lo >= self.target:
                return True, mean, lo, hi, True
            if hi < self.target:
                return False, mean, lo, hi, True
            if samples.size >= self.max_replicas:
                return False, mean, lo, hi, False
            block = samples.size  # double the sample on the next pass


def _gossip_evaluator(
    n: int,
    q: float,
    loss: float,
    distribution_factory: Callable[[float], FanoutDistribution],
    conditional_on_spread: bool,
) -> _EvaluateBatch:
    """Return the batched-gossip-engine reliability sampler for the oracle."""

    def evaluate(
        fanout: float, rounds: int | None, repetitions: int, seed: SeedLike
    ) -> np.ndarray:
        network = NetworkModel(loss_probability=loss) if loss > 0.0 else None
        result = simulate_gossip_batch(
            n,
            distribution_factory(float(fanout)),
            q,
            repetitions=repetitions,
            seed=seed,
            network=network,
        )
        reliability = result.reliability()
        if conditional_on_spread:
            spread = result.spread_occurred()
            # A replica that never took off counts as reliability 0: the
            # conditional mean would reward die-outs by dropping them, but a
            # *dimensioned* deployment must also take off reliably, so the
            # oracle charges failures-to-spread against the target.
            reliability = np.where(spread, reliability, 0.0)
        return reliability

    return evaluate


def _protocol_evaluator(
    n: int,
    q: float,
    loss: float,
    protocol_factory: _ProtocolFactory,
    failure_model: FailureModel | None,
) -> _EvaluateBatch:
    """Return the batched-protocol-engine reliability sampler for the oracle."""

    def evaluate(
        fanout: float, rounds: int | None, repetitions: int, seed: SeedLike
    ) -> np.ndarray:
        assert rounds is not None  # protocol mode always carries a horizon
        protocol = protocol_factory(int(round(fanout)), int(rounds))
        network = NetworkModel(loss_probability=loss) if loss > 0.0 else None
        result = simulate_protocol_batch(
            protocol,
            n,
            q,
            repetitions=repetitions,
            seed=seed,
            failure_model=failure_model,
            network=network,
        )
        return result.reliability()

    return evaluate


def dimension_fanout(
    n: int,
    q: float,
    target_reliability: float,
    *,
    loss: float = 0.0,
    distribution_factory: Callable[[float], FanoutDistribution] = PoissonFanout,
    protocol_factory: _ProtocolFactory | None = None,
    rounds: int = 8,
    solve_rounds: bool = False,
    failure_model: FailureModel | None = None,
    confidence: float = 0.95,
    fanout_tol: float = 0.25,
    initial_replicas: int = 24,
    max_replicas: int = 96,
    max_fanout: float = 64.0,
    conditional_on_spread: bool = False,
    seed: SeedLike = None,
) -> DimensioningResult:
    """Return the minimal mean fanout meeting a reliability target.

    Two modes share one search:

    * **Distribution mode** (default): candidates are real-valued mean
      fanouts of ``distribution_factory`` and the oracle samples the batched
      gossip engine.  The answer is located to within ``fanout_tol``.
    * **Protocol mode** (``protocol_factory`` given): candidates are integer
      fanouts; ``protocol_factory(fanout, rounds)`` must build the protocol
      instance and the oracle samples the batched multi-protocol engine.
      With ``solve_rounds=True`` the minimal round horizon at the solved
      fanout is found afterwards by integer bisection (round-based protocols
      are monotone in their horizon).

    Parameters
    ----------
    n, q:
        Group size and nonfailed ratio of the deployment.
    target_reliability:
        Required expected fraction of nonfailed members reached, in (0, 1).
    loss:
        Independent per-message (per-leg) Bernoulli drop probability — the
        loss budget, with the semantics fixed by :ref:`the loss contract
        <loss-semantics>`: the Monte-Carlo refinement applies it to every
        send through the engines' vectorised
        :class:`~repro.simulation.network.NetworkModel` plane, while the
        analytic seed folds it in as effective-fanout thinning ``f(1-loss)``.
    failure_model:
        Optional :class:`~repro.simulation.failures.FailureModel` overriding
        the uniform-``q`` crash draw (protocol mode only).
    confidence:
        Coverage of the Wilson feasibility decisions; the returned
        ``ci_low`` at the accepted fanout is a one-sided certificate that
        the target holds at (at least) this confidence.
    fanout_tol:
        Bracket width at which the continuous bisection stops (distribution
        mode; protocol mode always resolves to an exact integer).
    initial_replicas, max_replicas:
        Replica budget per feasibility decision: the first block and the
        adaptive cap (doubling blocks in between).  The cap is raised
        automatically to the Wilson feasibility floor
        ``z² · target / (1 - target)`` — below that many replicas even a
        perfect sample cannot certify the target, so a smaller cap would
        make every candidate "infeasible".
    max_fanout:
        Search cap; if even this fanout misses the target the result is
        returned with ``feasible=False``.
    conditional_on_spread:
        When True, a gossip replica that never took off is charged as
        reliability 0 instead of its raw (tiny) delivered fraction — the
        bimodality convention of the Figs. 4-5 reproduction, recast
        conservatively for dimensioning.
    seed:
        Seed or generator for the whole solve.
    """
    n = check_integer("n", n, minimum=2)
    q = check_probability("q", q)
    target_reliability = check_probability(
        "target_reliability", target_reliability, allow_zero=False, allow_one=False
    )
    loss = check_probability("loss", loss)
    check_integer("rounds", rounds, minimum=1)
    check_integer("initial_replicas", initial_replicas, minimum=2)
    check_integer("max_replicas", max_replicas, minimum=initial_replicas)
    if fanout_tol <= 0:
        raise ValueError(f"fanout_tol must be positive, got {fanout_tol}")
    rng = as_generator(seed)

    # Below z^2 rho / (1 - rho) replicas even a perfect sample cannot certify
    # the target (the Wilson lower bound of an all-ones sample is
    # 1 / (1 + z^2/R)), so the per-decision cap is raised to that floor.
    z = float(stats.norm.ppf(0.5 + confidence / 2.0))
    wilson_floor = int(math.ceil(z * z * target_reliability / (1.0 - target_reliability)))
    max_replicas = max(max_replicas, wilson_floor + initial_replicas)

    seed_fanout = analytic_required_fanout(
        target_reliability,
        q,
        loss=loss,
        distribution_factory=(
            distribution_factory if protocol_factory is None else PoissonFanout
        ),
        max_fanout=max(max_fanout * 8.0, 512.0),
    )

    if protocol_factory is None:
        evaluate = _gossip_evaluator(n, q, loss, distribution_factory, conditional_on_spread)
    else:
        evaluate = _protocol_evaluator(n, q, loss, protocol_factory, failure_model)
    oracle = _FeasibilityOracle(
        evaluate,
        target=target_reliability,
        confidence=confidence,
        initial_replicas=initial_replicas,
        max_replicas=max_replicas,
        rng=rng,
    )

    integer_mode = protocol_factory is not None
    min_fanout = 1.0 if integer_mode else max(1e-3, 1.0 / max(q * (1.0 - loss), 1e-9) * 0.5)

    def as_candidate(f: float) -> float:
        return float(max(1, int(math.ceil(f - 1e-9)))) if integer_mode else float(f)

    def next_down(f: float) -> float | None:
        """Return the next smaller probe below ``f``, or None at the floor."""
        if f <= min_fanout + 1e-12:
            return None
        if integer_mode:
            candidate = max(1.0, float(int(f / 1.5)))
            return candidate if candidate < f else f - 1.0
        return max(f / 1.5, min_fanout)

    # --- bracket: find a verified-feasible hi and a verified-infeasible lo.
    hi = as_candidate(min(max(seed_fanout, min_fanout), max_fanout))
    lo: float | None = None  # largest fanout verified infeasible (if any)
    hi_stats = oracle.decide(hi, rounds)
    while not hi_stats[0]:
        if hi >= max_fanout:
            return DimensioningResult(
                n=n,
                q=q,
                target_reliability=target_reliability,
                loss=loss,
                confidence=confidence,
                fanout=hi,
                rounds=rounds if (integer_mode and solve_rounds) else None,
                analytical_fanout=seed_fanout,
                achieved_reliability=hi_stats[1],
                ci_low=hi_stats[2],
                ci_high=hi_stats[3],
                replicas_used=oracle.replicas_used,
                evaluations=oracle.evaluations,
                feasible=False,
                certified=hi_stats[4],
            )
        lo = hi
        hi = as_candidate(min(max(hi * 1.5, hi + 1.0), max_fanout))
        hi_stats = oracle.decide(hi, rounds)

    if lo is None:
        # The analytic seed itself is feasible: walk down geometrically
        # towards the (sub)critical floor until an infeasible lower bracket
        # appears (or the floor is reached, which needs no verification —
        # the answer is simply the smallest feasible candidate found).
        lo = min_fanout
        probe = next_down(hi)
        while probe is not None:
            probe_stats = oracle.decide(probe, rounds)
            if probe_stats[0]:
                hi, hi_stats = probe, probe_stats
                probe = next_down(probe)
            else:
                lo = probe
                break

    # --- bisection on the verified bracket (lo infeasible or floor, hi feasible).
    while (hi - lo) > (1.0 if integer_mode else fanout_tol) + 1e-12:
        mid = as_candidate(0.5 * (lo + hi))
        if mid >= hi or mid <= lo:
            break
        mid_stats = oracle.decide(mid, rounds)
        if mid_stats[0]:
            hi, hi_stats = mid, mid_stats
        else:
            lo = mid

    solved_rounds: int | None = None
    if integer_mode and solve_rounds:
        solved_rounds = rounds
        r_lo, r_hi = 1, rounds
        if r_hi > 1:
            one_stats = oracle.decide(hi, 1)
            if one_stats[0]:
                solved_rounds, hi_stats = 1, one_stats
            else:
                while r_hi - r_lo > 1:
                    r_mid = (r_lo + r_hi) // 2
                    mid_stats = oracle.decide(hi, r_mid)
                    if mid_stats[0]:
                        r_hi, hi_stats = r_mid, mid_stats
                    else:
                        r_lo = r_mid
                solved_rounds = r_hi
        else:
            solved_rounds = 1

    return DimensioningResult(
        n=n,
        q=q,
        target_reliability=target_reliability,
        loss=loss,
        confidence=confidence,
        fanout=hi,
        rounds=solved_rounds,
        analytical_fanout=seed_fanout,
        achieved_reliability=hi_stats[1],
        ci_low=hi_stats[2],
        ci_high=hi_stats[3],
        replicas_used=oracle.replicas_used,
        evaluations=oracle.evaluations,
        feasible=True,
        certified=True,
    )


def dense_grid_dimension(
    n: int,
    q: float,
    target_reliability: float,
    *,
    loss: float = 0.0,
    distribution_factory: Callable[[float], FanoutDistribution] = PoissonFanout,
    confidence: float = 0.95,
    fanout_step: float = 0.25,
    replicas_per_point: int = 192,
    max_fanout: float = 64.0,
    conditional_on_spread: bool = False,
    seed: SeedLike = None,
) -> DimensioningResult:
    """Naive dense-grid inverse: the benchmark reference for the solver.

    Walks the fanout grid ``min, min+step, ...`` upward, spending the *full*
    replica budget at every point (a fixed-grid sweep cannot know in advance
    which points sit on the decision boundary), and returns the first grid
    point whose Wilson lower bound clears the target.  Same decision rule,
    same engines, and the same per-message loss semantics
    (:ref:`the loss contract <loss-semantics>`) as :func:`dimension_fanout`,
    so the comparison in ``BENCH_dimensioning.json`` isolates the search
    strategy.
    """
    n = check_integer("n", n, minimum=2)
    q = check_probability("q", q)
    target_reliability = check_probability(
        "target_reliability", target_reliability, allow_zero=False, allow_one=False
    )
    loss = check_probability("loss", loss)
    if fanout_step <= 0:
        raise ValueError(f"fanout_step must be positive, got {fanout_step}")
    rng = as_generator(seed)
    evaluate = _gossip_evaluator(n, q, loss, distribution_factory, conditional_on_spread)

    # A point can only ever certify if its budget clears the Wilson floor
    # z^2 rho / (1 - rho) (the perfect-sample bound) — otherwise the grid
    # degenerates into scanning to max_fanout without ever stopping.
    z = float(stats.norm.ppf(0.5 + confidence / 2.0))
    replicas_per_point = max(
        replicas_per_point,
        int(math.ceil(z * z * target_reliability / (1.0 - target_reliability))) + 1,
    )
    start = max(1e-3, 0.5 / max(q * (1.0 - loss), 1e-9))
    replicas_used = 0
    evaluations = 0
    mean, ci_lo, ci_hi = 0.0, 0.0, 1.0
    fanout = start
    while fanout <= max_fanout:
        evaluations += 1
        samples = evaluate(fanout, None, replicas_per_point, spawn_seeds(1, rng)[0])
        replicas_used += replicas_per_point
        mean = float(np.mean(samples))
        ci_lo, ci_hi = wilson_interval(float(np.sum(samples)), len(samples), confidence)
        if ci_lo >= target_reliability:
            return DimensioningResult(
                n=n,
                q=q,
                target_reliability=target_reliability,
                loss=loss,
                confidence=confidence,
                fanout=float(fanout),
                rounds=None,
                analytical_fanout=analytic_required_fanout(
                    target_reliability,
                    q,
                    loss=loss,
                    distribution_factory=distribution_factory,
                ),
                achieved_reliability=mean,
                ci_low=ci_lo,
                ci_high=ci_hi,
                replicas_used=replicas_used,
                evaluations=evaluations,
                feasible=True,
            )
        fanout += fanout_step
    return DimensioningResult(
        n=n,
        q=q,
        target_reliability=target_reliability,
        loss=loss,
        confidence=confidence,
        fanout=float(max_fanout),
        rounds=None,
        analytical_fanout=analytic_required_fanout(
            target_reliability, q, loss=loss, distribution_factory=distribution_factory
        ),
        achieved_reliability=mean,
        ci_low=ci_lo,
        ci_high=ci_hi,
        replicas_used=replicas_used,
        evaluations=evaluations,
        feasible=False,
        certified=bool(ci_hi < target_reliability),
    )


def _protocol_cost_evaluator(
    n: int,
    q: float,
    loss: float,
    protocol_factory: _ProtocolFactory,
    failure_model: FailureModel | None,
) -> _EvaluateBatch:
    """Return a batched-protocol sampler reporting ``(reliabilities, costs)``.

    ``costs`` are per-replica payload messages per member, so the oracle's
    ``last_cost`` after a decision is the measured bandwidth price of the
    candidate — the objective :func:`dimension_pareto` minimises.
    """

    def evaluate(
        fanout: float, rounds: int | None, repetitions: int, seed: SeedLike
    ) -> tuple[np.ndarray, np.ndarray]:
        assert rounds is not None  # Pareto solves always carry a horizon
        protocol = protocol_factory(int(round(fanout)), int(rounds))
        network = NetworkModel(loss_probability=loss) if loss > 0.0 else None
        result = simulate_protocol_batch(
            protocol,
            n,
            q,
            repetitions=repetitions,
            seed=seed,
            failure_model=failure_model,
            network=network,
        )
        return result.reliability(), result.payload_messages_per_member()

    return evaluate


def pareto_frontier(items: Iterable[_T], *, keys: Callable[[_T], Sequence[float]]) -> list[_T]:
    """Return the non-dominated subset of ``items``, minimising every key.

    Parameters
    ----------
    items:
        Any iterable of candidates.
    keys:
        Callable mapping a candidate to a tuple of objectives, **all to be
        minimised**.  A candidate is dominated when some other candidate is
        no worse on every objective and strictly better on at least one.

    Returns
    -------
    list
        The non-dominated candidates, sorted by their objective tuples (so
        the output order is deterministic regardless of input order).
        Duplicate objective tuples are kept once (first occurrence wins).

    Examples
    --------
    >>> pareto_frontier([(4, 8), (5, 6), (5, 8), (6, 5)], keys=lambda p: p)
    [(4, 8), (5, 6), (6, 5)]
    """
    items = list(items)
    scored = [(tuple(keys(item)), item) for item in items]
    frontier: list[_T] = []
    seen: set[tuple[float, ...]] = set()
    for score, item in sorted(scored, key=lambda pair: pair[0]):
        if score in seen:
            continue
        dominated = any(
            all(o <= s for o, s in zip(other, score, strict=True)) and other != score
            for other, _ in scored
        )
        if not dominated:
            frontier.append(item)
            seen.add(score)
    return frontier


@dataclass(frozen=True)
class ParetoCandidate:
    """One evaluated ``(fanout, rounds)`` candidate of a Pareto solve.

    Attributes
    ----------
    fanout:
        Integer per-member fanout of the candidate (stored as float for
        uniformity with :class:`DimensioningResult`).
    rounds:
        Round horizon of the candidate.
    feasible:
        Whether the Wilson lower bound cleared the target (*feasible means
        certifiable*, exactly as in :func:`dimension_fanout`).
    certified:
        Whether the decision was settled by the interval itself rather than
        by budget exhaustion.
    achieved_reliability, ci_low, ci_high:
        Mean replica reliability at the decision and its Wilson interval.
    messages_per_member:
        Measured mean payload messages per member — the bandwidth cost the
        cost-aware objective minimises.
    """

    fanout: float
    rounds: int
    feasible: bool
    certified: bool
    achieved_reliability: float
    ci_low: float
    ci_high: float
    messages_per_member: float


@dataclass(frozen=True)
class ParetoDimensioningResult:
    """Joint ``(fanout, rounds)`` dimensioning: frontier + cost-aware pick.

    Attributes
    ----------
    n, q, target_reliability, loss, confidence:
        The problem as posed (``loss`` under :ref:`the loss contract
        <loss-semantics>`).
    frontier:
        Feasible candidates non-dominated in ``(fanout, rounds)``, sorted by
        rising fanout (hence falling rounds).  Every entry carries its
        Wilson certificate (``ci_low >= target_reliability``).
    best_cost:
        The frontier candidate with the smallest measured payload messages
        per member — the *cost-aware objective* (minimise bandwidth subject
        to ``ci_low >= target``); ``None`` when nothing was feasible.
    candidates:
        Every candidate evaluated during the solve, in evaluation order
        (the frontier is a subset of these).
    replicas_used, evaluations:
        Total Monte-Carlo cost of the whole solve.
    feasible:
        False when no ``(fanout, rounds)`` pair under the caps met the
        target; then ``frontier`` is empty.
    """

    n: int
    q: float
    target_reliability: float
    loss: float
    confidence: float
    frontier: tuple
    best_cost: ParetoCandidate | None
    candidates: tuple
    replicas_used: int
    evaluations: int
    feasible: bool

    def lexicographic(self) -> ParetoCandidate | None:
        """Return the pre-Pareto answer: minimal fanout, then minimal rounds.

        This is the corner of the frontier :func:`dimension_fanout` with
        ``solve_rounds=True`` used to return, recovered for comparison.
        """
        if not self.frontier:
            return None
        return min(self.frontier, key=lambda c: (c.fanout, c.rounds))


def dimension_pareto(
    n: int,
    q: float,
    target_reliability: float,
    *,
    protocol_factory: _ProtocolFactory,
    max_rounds: int = 8,
    loss: float = 0.0,
    failure_model: FailureModel | None = None,
    confidence: float = 0.95,
    initial_replicas: int = 24,
    max_replicas: int = 96,
    max_fanout: float = 64.0,
    seed: SeedLike = None,
) -> ParetoDimensioningResult:
    """Solve the joint ``(fanout, rounds)`` dimensioning problem for a protocol.

    The lexicographic answer of :func:`dimension_fanout` (minimal fanout,
    then minimal rounds at that fanout) hides a real trade-off: a deployment
    may prefer one extra unit of fanout to two extra rounds of latency.
    This solver sweeps the horizon from ``max_rounds`` down to 1, finds the
    minimal certifiable integer fanout at each horizon by bisection, and
    returns the Pareto frontier of non-dominated feasible pairs together
    with the cost-aware pick (minimal measured payload messages per member).

    The sweep exploits two monotonicities to stay cheap:

    * at a fixed horizon, reliability is monotone in fanout (bisection);
    * the minimal fanout ``f*(r)`` is non-increasing in the horizon ``r``,
      so ``f*(r+1) - 1`` is a *verified-infeasible* lower bracket for the
      next horizon down, and the first horizon with no feasible fanout at
      all ends the sweep.

    Parameters
    ----------
    n, q, target_reliability, loss, confidence:
        As for :func:`dimension_fanout` (``loss`` is per-message Bernoulli,
        see :ref:`the loss contract <loss-semantics>`).
    protocol_factory:
        ``(fanout, rounds) -> Protocol`` builder, as in protocol mode of
        :func:`dimension_fanout`.
    max_rounds:
        Largest round horizon considered (the latency cap).
    failure_model:
        Optional :class:`~repro.simulation.failures.FailureModel` overriding
        the uniform-``q`` crash draw — e.g.
        :class:`~repro.simulation.failures.TargetedCrashModel` for
        worst-case targeted-crash dimensioning.
    initial_replicas, max_replicas:
        Per-decision replica budget (the cap is lifted to the Wilson
        feasibility floor automatically, as in :func:`dimension_fanout`).
    max_fanout:
        Fanout cap per horizon.
    seed:
        Seed or generator for the whole solve.
    """
    n = check_integer("n", n, minimum=2)
    q = check_probability("q", q)
    target_reliability = check_probability(
        "target_reliability", target_reliability, allow_zero=False, allow_one=False
    )
    loss = check_probability("loss", loss)
    check_integer("max_rounds", max_rounds, minimum=1)
    check_integer("initial_replicas", initial_replicas, minimum=2)
    check_integer("max_replicas", max_replicas, minimum=initial_replicas)
    rng = as_generator(seed)

    z = float(stats.norm.ppf(0.5 + confidence / 2.0))
    wilson_floor = int(math.ceil(z * z * target_reliability / (1.0 - target_reliability)))
    max_replicas = max(max_replicas, wilson_floor + initial_replicas)

    oracle = _FeasibilityOracle(
        _protocol_cost_evaluator(n, q, loss, protocol_factory, failure_model),
        target=target_reliability,
        confidence=confidence,
        initial_replicas=initial_replicas,
        max_replicas=max_replicas,
        rng=rng,
    )

    candidates: list[ParetoCandidate] = []
    minimal: list[ParetoCandidate] = []  # minimal feasible fanout per horizon

    def probe(fanout: int, rounds: int) -> ParetoCandidate:
        feasible, mean, lo, hi, decisive = oracle.decide(float(fanout), rounds)
        candidate = ParetoCandidate(
            fanout=float(fanout),
            rounds=int(rounds),
            feasible=feasible,
            certified=bool(decisive or feasible),
            achieved_reliability=mean,
            ci_low=lo,
            ci_high=hi,
            messages_per_member=oracle.last_cost,
        )
        candidates.append(candidate)
        return candidate

    cap = max(1, int(max_fanout))
    lower = 0  # largest fanout verified (or implied) infeasible at the previous horizon
    for rounds in range(max_rounds, 0, -1):
        # Find a feasible upper bracket at this horizon, starting from the
        # previous horizon's answer (fanouts below it stay infeasible here).
        hi_fanout = max(lower + 1, 1)
        best = probe(hi_fanout, rounds)
        while not best.feasible:
            if hi_fanout >= cap:
                best = None
                break
            lower = hi_fanout
            hi_fanout = min(cap, max(hi_fanout + 1, int(hi_fanout * 1.5)))
            best = probe(hi_fanout, rounds)
        if best is None:
            break  # shorter horizons can only need more fanout than the cap
        lo_fanout = lower
        while hi_fanout - lo_fanout > 1:
            mid = (lo_fanout + hi_fanout) // 2
            candidate = probe(mid, rounds)
            if candidate.feasible:
                hi_fanout, best = mid, candidate
            else:
                lo_fanout = mid
        minimal.append(best)
        lower = hi_fanout - 1  # f*(r) is non-increasing in r: carry the bracket down

    frontier = tuple(
        pareto_frontier(minimal, keys=lambda c: (c.fanout, c.rounds))
    )
    best_cost = None
    if frontier:
        best_cost = min(frontier, key=lambda c: (c.messages_per_member, c.fanout, c.rounds))
    return ParetoDimensioningResult(
        n=n,
        q=q,
        target_reliability=target_reliability,
        loss=loss,
        confidence=confidence,
        frontier=frontier,
        best_cost=best_cost,
        candidates=tuple(candidates),
        replicas_used=oracle.replicas_used,
        evaluations=oracle.evaluations,
        feasible=bool(frontier),
    )

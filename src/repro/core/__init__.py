"""Core analytical model from Fan et al. (ICPP 2008).

This subpackage contains the paper's primary contribution: a generalized
random graph model of the gossip process, used to derive

* the reliability of gossiping ``R(q, P)`` as the size of the giant
  component of the gossip-induced random graph (Section 4.2),
* the critical nonfailed-member ratio ``q_c = 1 / G1'(1)`` (Eq. 3),
* the success of gossiping over ``t`` repeated executions (Eqs. 5-6), and
* the closed-form Poisson-fanout case study (Section 4.3, Eqs. 7-12).
"""

from repro.core.distributions import (
    FanoutDistribution,
    PoissonFanout,
    FixedFanout,
    BinomialFanout,
    GeometricFanout,
    UniformFanout,
    ZipfFanout,
    EmpiricalFanout,
    MixtureFanout,
)
from repro.core.generating import GeneratingFunction, build_generating_functions
from repro.core.percolation import (
    PercolationResult,
    critical_ratio,
    critical_mean_fanout,
    giant_component_size,
    mean_component_size,
    percolation_analysis,
)
from repro.core.reliability import (
    ReliabilityModel,
    reliability,
    reliability_curve,
    required_fanout_poisson,
)
from repro.core.success import (
    success_probability,
    min_executions,
    success_count_pmf,
    SuccessModel,
)
from repro.core.poisson_case import (
    poisson_reliability,
    poisson_critical_ratio,
    poisson_critical_fanout,
    mean_fanout_for_reliability,
)
from repro.core.model import GossipModel

__all__ = [
    "FanoutDistribution",
    "PoissonFanout",
    "FixedFanout",
    "BinomialFanout",
    "GeometricFanout",
    "UniformFanout",
    "ZipfFanout",
    "EmpiricalFanout",
    "MixtureFanout",
    "GeneratingFunction",
    "build_generating_functions",
    "PercolationResult",
    "critical_ratio",
    "critical_mean_fanout",
    "giant_component_size",
    "mean_component_size",
    "percolation_analysis",
    "ReliabilityModel",
    "reliability",
    "reliability_curve",
    "required_fanout_poisson",
    "success_probability",
    "min_executions",
    "success_count_pmf",
    "SuccessModel",
    "poisson_reliability",
    "poisson_critical_ratio",
    "poisson_critical_fanout",
    "mean_fanout_for_reliability",
    "GossipModel",
]

"""Fanout distributions for the general gossiping algorithm.

The paper's algorithm (its Figure 1) lets every member draw a *random* fanout
``f_i`` from a probability distribution ``P`` when it first receives the
message.  The analytical model (Section 4) is built directly on top of that
distribution through its probability generating function

.. math::

    G_0(x) = \\sum_{k \\ge 0} p_k x^k .

Each distribution class therefore exposes three views of the same object:

* a probability mass function (:meth:`FanoutDistribution.pmf` /
  :meth:`FanoutDistribution.pmf_array`),
* a sampler used by the simulator (:meth:`FanoutDistribution.sample`), and
* the generating function and its derivatives used by the percolation
  analysis (:meth:`FanoutDistribution.g0`, :meth:`FanoutDistribution.g0_prime`,
  :meth:`FanoutDistribution.g1`, ...).

The Poisson distribution is the paper's case study (Section 4.3); the other
distributions exercise the paper's claim that the model applies to *arbitrary*
fanout distributions and are used by the ablation benchmarks.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from typing import Sequence

import numpy as np
from scipy import stats

from repro.utils.rng import SeedLike, as_generator
from repro.utils.validation import (
    check_integer,
    check_non_negative,
    check_positive,
    check_probability,
    check_sample_shape,
)

__all__ = [
    "FanoutDistribution",
    "PoissonFanout",
    "FixedFanout",
    "BinomialFanout",
    "GeometricFanout",
    "UniformFanout",
    "ZipfFanout",
    "EmpiricalFanout",
    "MixtureFanout",
]

#: Probability mass below which the numerical truncation of an infinite
#: support is considered negligible.
_TRUNCATION_TOL = 1e-12


class FanoutDistribution(ABC):
    """Abstract base class for fanout distributions.

    Subclasses must implement :meth:`pmf_array`, :meth:`mean`, and
    :meth:`sample`; the generating-function machinery is provided generically
    on top of the truncated PMF but may be overridden with closed forms
    (as :class:`PoissonFanout` does).
    """

    #: short machine-readable identifier used in tables and experiment output
    name: str = "fanout"

    # ------------------------------------------------------------------ PMF
    @abstractmethod
    def pmf_array(self, k_max: int | None = None) -> np.ndarray:
        """Return ``[P(F=0), P(F=1), ..., P(F=k_max)]``.

        When ``k_max`` is ``None`` the distribution chooses a truncation point
        that captures all but ``~1e-12`` of the probability mass.
        """

    def pmf(self, k: int) -> float:
        """Return ``P(F = k)``."""
        k = check_integer("k", k, minimum=0)
        arr = self.pmf_array(k_max=k)
        return float(arr[k]) if k < len(arr) else 0.0

    def cdf(self, k: int) -> float:
        """Return ``P(F <= k)``."""
        k = check_integer("k", k, minimum=0)
        arr = self.pmf_array(k_max=k)
        return float(np.sum(arr[: k + 1]))

    def support_upper(self) -> int:
        """Return the truncation point used for numerical summations."""
        return len(self.pmf_array()) - 1

    # ------------------------------------------------------------- moments
    @abstractmethod
    def mean(self) -> float:
        """Return ``E[F]`` — the mean fanout (the paper's ``f`` / ``z``)."""

    def variance(self) -> float:
        """Return ``Var[F]``; generic implementation via the truncated PMF."""
        pmf = self.pmf_array()
        k = np.arange(len(pmf))
        mean = float(np.sum(k * pmf))
        return float(np.sum((k - mean) ** 2 * pmf))

    def second_factorial_moment(self) -> float:
        """Return ``E[F(F-1)] = G0''(1)``, used by the critical-point formula."""
        pmf = self.pmf_array()
        k = np.arange(len(pmf))
        return float(np.sum(k * (k - 1) * pmf))

    # ----------------------------------------------------------- sampling
    @abstractmethod
    def sample(self, size: int | tuple[int, ...], seed: SeedLike = None) -> np.ndarray:
        """Draw fanout values as an ``int64`` array of shape ``size``.

        ``size`` may be a scalar count (the batched engine draws one flat
        vector per gossip round, covering every active replica member) or a
        shape tuple for ensemble workloads that want e.g. a
        ``(replicas, members)`` matrix in one call.
        """

    # ----------------------------------------------- generating functions
    def g0(self, x: float | np.ndarray) -> np.ndarray | float:
        """Evaluate the degree generating function ``G0(x) = Σ p_k x^k``."""
        pmf = self.pmf_array()
        return _poly_eval(pmf, x)

    def g0_prime(self, x: float | np.ndarray) -> np.ndarray | float:
        """Evaluate ``G0'(x) = Σ k p_k x^{k-1}``."""
        pmf = self.pmf_array()
        k = np.arange(len(pmf))
        coeffs = (k * pmf)[1:]  # coefficient of x^{k-1}
        return _poly_eval(coeffs, x)

    def g0_double_prime(self, x: float | np.ndarray) -> np.ndarray | float:
        """Evaluate ``G0''(x) = Σ k(k-1) p_k x^{k-2}``."""
        pmf = self.pmf_array()
        k = np.arange(len(pmf))
        coeffs = (k * (k - 1) * pmf)[2:]
        return _poly_eval(coeffs, x)

    def g1(self, x: float | np.ndarray) -> np.ndarray | float:
        """Evaluate ``G1(x) = G0'(x) / G0'(1)`` (excess-degree GF).

        ``G1`` is the generating function of the number of outgoing edges of
        a node reached by following a random edge, central to Eqs. 2-4.
        """
        norm = self.g0_prime(1.0)
        if norm <= 0:
            raise ValueError(
                f"{self.name}: G1 undefined because the mean fanout is zero"
            )
        return self.g0_prime(x) / norm

    def g1_prime(self, x: float | np.ndarray) -> np.ndarray | float:
        """Evaluate ``G1'(x) = G0''(x) / G0'(1)``."""
        norm = self.g0_prime(1.0)
        if norm <= 0:
            raise ValueError(
                f"{self.name}: G1 undefined because the mean fanout is zero"
            )
        return self.g0_double_prime(x) / norm

    # -------------------------------------------------------------- misc
    def describe(self) -> dict:
        """Return a plain-dict description used in experiment metadata."""
        return {
            "name": self.name,
            "mean": self.mean(),
            "variance": self.variance(),
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        params = ", ".join(
            f"{key}={value!r}" for key, value in self.describe().items() if key != "name"
        )
        return f"{type(self).__name__}({params})"


def _poly_eval(coeffs: np.ndarray, x: float | np.ndarray) -> np.ndarray | float:
    """Evaluate ``Σ coeffs[k] x^k`` for scalar or array ``x`` (ascending order)."""
    coeffs = np.asarray(coeffs, dtype=float)
    x_arr = np.asarray(x, dtype=float)
    if coeffs.size == 0:
        result = np.zeros_like(x_arr, dtype=float)
    else:
        # polynomial.polyval expects ascending coefficients.
        result = np.polynomial.polynomial.polyval(x_arr, coeffs)
    if np.isscalar(x) or x_arr.ndim == 0:
        return float(result)
    return result


class PoissonFanout(FanoutDistribution):
    """Poisson fanout ``Po(z)`` — the paper's case-study distribution.

    Parameters
    ----------
    mean_fanout:
        The Poisson mean ``z``; also the average fanout (paper notation ``f``).

    Notes
    -----
    The generating functions have closed forms (Eqs. 8-9)::

        G0(x) = G1(x) = exp(z (x - 1))
    """

    name = "poisson"

    def __init__(self, mean_fanout: float) -> None:
        self.mean_fanout = check_positive("mean_fanout", mean_fanout)

    def pmf_array(self, k_max: int | None = None) -> np.ndarray:
        if k_max is None:
            k_max = _poisson_truncation(self.mean_fanout)
        k = np.arange(k_max + 1)
        return stats.poisson.pmf(k, self.mean_fanout)

    def mean(self) -> float:
        return self.mean_fanout

    def variance(self) -> float:
        return self.mean_fanout

    def second_factorial_moment(self) -> float:
        return self.mean_fanout**2

    def sample(self, size: int, seed: SeedLike = None) -> np.ndarray:
        size = check_sample_shape("size", size)
        rng = as_generator(seed)
        return rng.poisson(self.mean_fanout, size=size).astype(np.int64)

    # Closed forms (Eqs. 8-9 of the paper).
    def g0(self, x: float | np.ndarray) -> np.ndarray | float:
        x_arr = np.asarray(x, dtype=float)
        result = np.exp(self.mean_fanout * (x_arr - 1.0))
        return float(result) if np.isscalar(x) or x_arr.ndim == 0 else result

    def g0_prime(self, x: float | np.ndarray) -> np.ndarray | float:
        x_arr = np.asarray(x, dtype=float)
        result = self.mean_fanout * np.exp(self.mean_fanout * (x_arr - 1.0))
        return float(result) if np.isscalar(x) or x_arr.ndim == 0 else result

    def g0_double_prime(self, x: float | np.ndarray) -> np.ndarray | float:
        x_arr = np.asarray(x, dtype=float)
        result = self.mean_fanout**2 * np.exp(self.mean_fanout * (x_arr - 1.0))
        return float(result) if np.isscalar(x) or x_arr.ndim == 0 else result

    def g1(self, x: float | np.ndarray) -> np.ndarray | float:
        return self.g0(x)

    def g1_prime(self, x: float | np.ndarray) -> np.ndarray | float:
        return self.g0_prime(x)

    def describe(self) -> dict:
        d = super().describe()
        d["mean_fanout"] = self.mean_fanout
        return d


def _poisson_truncation(z: float) -> int:
    """Truncation point capturing all but ``_TRUNCATION_TOL`` of Po(z) mass."""
    k = int(math.ceil(z + 12.0 * math.sqrt(z) + 12.0))
    while stats.poisson.sf(k, z) > _TRUNCATION_TOL:
        k *= 2
    return k


class FixedFanout(FanoutDistribution):
    """Degenerate distribution: every member gossips to exactly ``fanout`` targets.

    This is the traditional gossip setting the paper contrasts against; it is
    also the configuration used by the :mod:`repro.protocols.fixed_fanout`
    baseline.
    """

    name = "fixed"

    def __init__(self, fanout: int) -> None:
        self.fanout = check_integer("fanout", fanout, minimum=0)

    def pmf_array(self, k_max: int | None = None) -> np.ndarray:
        if k_max is None:
            k_max = self.fanout
        arr = np.zeros(max(k_max, self.fanout) + 1)
        arr[self.fanout] = 1.0
        return arr[: k_max + 1] if k_max >= self.fanout else arr[: k_max + 1]

    def mean(self) -> float:
        return float(self.fanout)

    def variance(self) -> float:
        return 0.0

    def second_factorial_moment(self) -> float:
        return float(self.fanout * (self.fanout - 1))

    def sample(self, size: int, seed: SeedLike = None) -> np.ndarray:
        size = check_sample_shape("size", size)
        return np.full(size, self.fanout, dtype=np.int64)

    def describe(self) -> dict:
        d = super().describe()
        d["fanout"] = self.fanout
        return d


class BinomialFanout(FanoutDistribution):
    """Binomial fanout ``B(n, p)``.

    Models a member that considers ``n`` candidate targets and forwards to
    each independently with probability ``p`` (the classical "infect-and-die"
    epidemic setting).
    """

    name = "binomial"

    def __init__(self, trials: int, prob: float) -> None:
        self.trials = check_integer("trials", trials, minimum=0)
        self.prob = check_probability("prob", prob)

    def pmf_array(self, k_max: int | None = None) -> np.ndarray:
        if k_max is None:
            k_max = self.trials
        k = np.arange(k_max + 1)
        return stats.binom.pmf(k, self.trials, self.prob)

    def mean(self) -> float:
        return self.trials * self.prob

    def variance(self) -> float:
        return self.trials * self.prob * (1.0 - self.prob)

    def sample(self, size: int, seed: SeedLike = None) -> np.ndarray:
        size = check_sample_shape("size", size)
        rng = as_generator(seed)
        return rng.binomial(self.trials, self.prob, size=size).astype(np.int64)

    def describe(self) -> dict:
        d = super().describe()
        d["trials"] = self.trials
        d["prob"] = self.prob
        return d


class GeometricFanout(FanoutDistribution):
    """Geometric fanout supported on ``{0, 1, 2, ...}`` with success probability ``p``.

    ``P(F = k) = p (1-p)^k`` and ``E[F] = (1-p)/p``.  A heavy-tailed-ish
    alternative to Poisson at equal mean, used in the distribution ablation.
    """

    name = "geometric"

    def __init__(self, prob: float) -> None:
        self.prob = check_probability("prob", prob, allow_zero=False)

    @classmethod
    def from_mean(cls, mean_fanout: float) -> "GeometricFanout":
        """Construct the geometric distribution with ``E[F] = mean_fanout``."""
        mean_fanout = check_non_negative("mean_fanout", mean_fanout)
        return cls(1.0 / (1.0 + mean_fanout))

    def pmf_array(self, k_max: int | None = None) -> np.ndarray:
        if k_max is None:
            if self.prob >= 1.0:
                k_max = 0
            else:
                k_max = int(math.ceil(math.log(_TRUNCATION_TOL) / math.log(1.0 - self.prob))) + 1
        k = np.arange(k_max + 1)
        return self.prob * (1.0 - self.prob) ** k

    def mean(self) -> float:
        return (1.0 - self.prob) / self.prob

    def variance(self) -> float:
        return (1.0 - self.prob) / self.prob**2

    def sample(self, size: int, seed: SeedLike = None) -> np.ndarray:
        size = check_sample_shape("size", size)
        rng = as_generator(seed)
        # numpy's geometric counts trials until first success (support >= 1);
        # shift to the number of failures to get support {0, 1, ...}.
        return (rng.geometric(self.prob, size=size) - 1).astype(np.int64)

    def describe(self) -> dict:
        d = super().describe()
        d["prob"] = self.prob
        return d


class UniformFanout(FanoutDistribution):
    """Discrete uniform fanout on the integer range ``[low, high]`` inclusive.

    Each member gossips to ``k`` targets with ``k`` drawn uniformly from
    ``{low, ..., high}`` (``0 <= low <= high``); mean ``(low + high) / 2``.
    The bounded-variance counterpoint to the heavy-tailed families in the
    distribution ablations.
    """

    name = "uniform"

    def __init__(self, low: int, high: int) -> None:
        self.low = check_integer("low", low, minimum=0)
        self.high = check_integer("high", high, minimum=self.low)

    def pmf_array(self, k_max: int | None = None) -> np.ndarray:
        if k_max is None:
            k_max = self.high
        arr = np.zeros(k_max + 1)
        hi = min(k_max, self.high)
        if hi >= self.low:
            arr[self.low : hi + 1] = 1.0 / (self.high - self.low + 1)
        return arr

    def mean(self) -> float:
        return (self.low + self.high) / 2.0

    def variance(self) -> float:
        width = self.high - self.low + 1
        return (width**2 - 1) / 12.0

    def sample(self, size: int, seed: SeedLike = None) -> np.ndarray:
        size = check_sample_shape("size", size)
        rng = as_generator(seed)
        return rng.integers(self.low, self.high + 1, size=size, dtype=np.int64)

    def describe(self) -> dict:
        d = super().describe()
        d["low"] = self.low
        d["high"] = self.high
        return d


class ZipfFanout(FanoutDistribution):
    """Truncated power-law (Zipf) fanout on ``{1, ..., k_max}``.

    ``P(F = k) ∝ k^{-alpha}``.  Heavy-tailed fanouts arise when gossip targets
    are drawn from skewed overlay views (hub-like members forward to many
    peers while most members forward to few).
    """

    name = "zipf"

    def __init__(self, alpha: float, k_max: int) -> None:
        self.alpha = check_positive("alpha", alpha)
        self.k_max = check_integer("k_max", k_max, minimum=1)
        k = np.arange(1, self.k_max + 1, dtype=float)
        weights = k**-self.alpha
        self._pmf_tail = weights / weights.sum()

    def pmf_array(self, k_max: int | None = None) -> np.ndarray:
        if k_max is None:
            k_max = self.k_max
        arr = np.zeros(k_max + 1)
        hi = min(k_max, self.k_max)
        arr[1 : hi + 1] = self._pmf_tail[:hi]
        return arr

    def mean(self) -> float:
        k = np.arange(1, self.k_max + 1, dtype=float)
        return float(np.sum(k * self._pmf_tail))

    def sample(self, size: int, seed: SeedLike = None) -> np.ndarray:
        size = check_sample_shape("size", size)
        rng = as_generator(seed)
        return rng.choice(
            np.arange(1, self.k_max + 1, dtype=np.int64), size=size, p=self._pmf_tail
        )

    def describe(self) -> dict:
        d = super().describe()
        d["alpha"] = self.alpha
        d["k_max"] = self.k_max
        return d


class EmpiricalFanout(FanoutDistribution):
    """Fanout distribution given explicitly as a PMF vector.

    Useful for plugging in measured fanout histograms (e.g. from a deployed
    overlay) or for property-based testing with arbitrary distributions.
    """

    name = "empirical"

    def __init__(self, pmf: Sequence[float]) -> None:
        arr = np.asarray(pmf, dtype=float)
        if arr.ndim != 1 or arr.size == 0:
            raise ValueError("pmf must be a non-empty 1-D sequence")
        if np.any(arr < 0):
            raise ValueError("pmf entries must be non-negative")
        total = arr.sum()
        if not math.isclose(total, 1.0, rel_tol=0, abs_tol=1e-6):
            raise ValueError(f"pmf must sum to 1 (got {total!r})")
        self._pmf = arr / total

    @classmethod
    def from_samples(cls, samples: Sequence[int]) -> "EmpiricalFanout":
        """Build the empirical PMF of observed integer fanout samples."""
        samples = np.asarray(samples, dtype=np.int64)
        if samples.size == 0:
            raise ValueError("samples must be non-empty")
        if np.any(samples < 0):
            raise ValueError("samples must be non-negative")
        counts = np.bincount(samples)
        return cls(counts / counts.sum())

    def pmf_array(self, k_max: int | None = None) -> np.ndarray:
        if k_max is None:
            k_max = len(self._pmf) - 1
        arr = np.zeros(k_max + 1)
        hi = min(k_max + 1, len(self._pmf))
        arr[:hi] = self._pmf[:hi]
        return arr

    def mean(self) -> float:
        k = np.arange(len(self._pmf))
        return float(np.sum(k * self._pmf))

    def sample(self, size: int, seed: SeedLike = None) -> np.ndarray:
        size = check_sample_shape("size", size)
        rng = as_generator(seed)
        return rng.choice(np.arange(len(self._pmf), dtype=np.int64), size=size, p=self._pmf)

    def describe(self) -> dict:
        d = super().describe()
        d["support"] = len(self._pmf) - 1
        return d


class MixtureFanout(FanoutDistribution):
    """Finite mixture of fanout distributions.

    Models heterogeneous populations, e.g. a fraction of well-connected
    members with a large fanout and a fraction of constrained members with a
    small fanout.
    """

    name = "mixture"

    def __init__(self, components: Sequence[FanoutDistribution], weights: Sequence[float]) -> None:
        if len(components) == 0:
            raise ValueError("mixture needs at least one component")
        if len(components) != len(weights):
            raise ValueError("components and weights must have the same length")
        weights_arr = np.asarray(weights, dtype=float)
        if np.any(weights_arr < 0):
            raise ValueError("weights must be non-negative")
        total = weights_arr.sum()
        if total <= 0:
            raise ValueError("weights must not all be zero")
        self.components = list(components)
        self.weights = weights_arr / total

    def pmf_array(self, k_max: int | None = None) -> np.ndarray:
        if k_max is None:
            k_max = max(c.support_upper() for c in self.components)
        out = np.zeros(k_max + 1)
        for weight, comp in zip(self.weights, self.components, strict=True):
            out += weight * comp.pmf_array(k_max=k_max)
        return out

    def mean(self) -> float:
        return float(sum(w * c.mean() for w, c in zip(self.weights, self.components, strict=True)))

    def sample(self, size: int, seed: SeedLike = None) -> np.ndarray:
        size = check_sample_shape("size", size)
        rng = as_generator(seed)
        choices = rng.choice(len(self.components), size=size, p=self.weights)
        out = np.zeros(size, dtype=np.int64)
        for idx, comp in enumerate(self.components):
            mask = choices == idx
            count = int(mask.sum())
            if count:
                out[mask] = comp.sample(count, seed=rng)
        return out

    def describe(self) -> dict:
        d = super().describe()
        d["components"] = [c.describe() for c in self.components]
        d["weights"] = self.weights.tolist()
        return d

"""Probability generating functions for the gossip random-graph model.

The analytical machinery of the paper (Section 4) is expressed through four
generating functions:

* ``G0(x) = Σ p_k x^k`` — fanout (degree) distribution of members,
* ``G1(x) = G0'(x) / G0'(1)`` — outgoing-edge distribution of a member
  reached by following a random gossip edge,
* ``F0(x) = Σ p_k q_k x^k`` — degree distribution weighted by the probability
  ``q_k`` that a degree-``k`` member has *not* failed (Eq. 1), and
* ``F1(x) = F0'(x) / G0'(1)`` — the failure-weighted excess distribution.

The paper (like Callaway et al., Phys. Rev. Lett. 85, 2000) specialises to a
uniform non-failure probability ``q_k = q``, giving ``F0 = q G0`` and
``F1 = q G1``.  :class:`GeneratingFunction` is a small numerical wrapper that
keeps evaluation, differentiation, and fixed-point solving in one place; the
uniform-``q`` specialisation used everywhere else in the library is produced
by :func:`build_generating_functions`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np
import numpy.typing as npt
from scipy import optimize

from repro.core.distributions import FanoutDistribution
from repro.utils.validation import check_probability

__all__ = ["GeneratingFunction", "GossipGeneratingFunctions", "build_generating_functions"]


class GeneratingFunction:
    """A probability generating function ``G(x) = Σ_k c_k x^k``.

    The function may be backed either by an explicit (possibly truncated)
    coefficient vector or by closed-form callables for the function and its
    first two derivatives.  Instances are immutable.
    """

    def __init__(
        self,
        *,
        coefficients: np.ndarray | None = None,
        func: Callable[[np.ndarray], np.ndarray] | None = None,
        derivative: Callable[[np.ndarray], np.ndarray] | None = None,
        second_derivative: Callable[[np.ndarray], np.ndarray] | None = None,
        name: str = "G",
    ) -> None:
        if coefficients is None and func is None:
            raise ValueError("either coefficients or func must be given")
        self.name = name
        self._coeffs = None if coefficients is None else np.asarray(coefficients, dtype=float)
        self._func = func
        self._derivative = derivative
        self._second_derivative = second_derivative

    # ---------------------------------------------------------------- API
    @classmethod
    def from_pmf(cls, pmf: npt.ArrayLike, name: str = "G") -> "GeneratingFunction":
        """Build a generating function from an explicit PMF vector."""
        pmf = np.asarray(pmf, dtype=float)
        if pmf.ndim != 1 or pmf.size == 0:
            raise ValueError("pmf must be a non-empty 1-D array")
        if np.any(pmf < 0):
            raise ValueError("pmf entries must be non-negative")
        return cls(coefficients=pmf, name=name)

    @classmethod
    def from_distribution(cls, dist: FanoutDistribution, name: str = "G0") -> "GeneratingFunction":
        """Build ``G0`` for a fanout distribution, using its closed forms."""
        return cls(
            func=dist.g0,
            derivative=dist.g0_prime,
            second_derivative=dist.g0_double_prime,
            name=name,
        )

    def __call__(self, x: float | np.ndarray) -> np.ndarray | float:
        """Evaluate ``G(x)`` for scalar or array ``x``."""
        if self._func is not None:
            return self._func(x)
        assert self._coeffs is not None  # constructor invariant: coeffs or func
        return _poly(self._coeffs, x)

    def prime(self, x: float | np.ndarray) -> np.ndarray | float:
        """Evaluate ``G'(x)``."""
        if self._derivative is not None:
            return self._derivative(x)
        if self._func is not None:
            return _numeric_derivative(self._func, x)
        assert self._coeffs is not None  # constructor invariant: coeffs or func
        k = np.arange(len(self._coeffs))
        return _poly((k * self._coeffs)[1:], x)

    def double_prime(self, x: float | np.ndarray) -> np.ndarray | float:
        """Evaluate ``G''(x)``."""
        if self._second_derivative is not None:
            return self._second_derivative(x)
        if self._func is not None:
            return _numeric_derivative(self.prime, x)
        assert self._coeffs is not None  # constructor invariant: coeffs or func
        k = np.arange(len(self._coeffs))
        return _poly((k * (k - 1) * self._coeffs)[2:], x)

    def mean(self) -> float:
        """Return ``G'(1)`` — the mean of the encoded distribution."""
        return float(self.prime(1.0))

    def normalisation(self) -> float:
        """Return ``G(1)`` — the total probability mass encoded."""
        return float(self(1.0))

    def scaled(self, factor: float, name: str | None = None) -> "GeneratingFunction":
        """Return ``factor * G`` (used to form ``F0 = q G0`` / ``F1 = q G1``)."""
        factor = float(factor)
        if self._coeffs is not None and self._func is None:
            return GeneratingFunction(
                coefficients=factor * self._coeffs, name=name or f"{factor}*{self.name}"
            )
        return GeneratingFunction(
            func=lambda x, f=self._func: factor * f(x),
            derivative=None if self._derivative is None else (
                lambda x, d=self._derivative: factor * d(x)
            ),
            second_derivative=None if self._second_derivative is None else (
                lambda x, d2=self._second_derivative: factor * d2(x)
            ),
            name=name or f"{factor}*{self.name}",
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        backing = "coeffs" if self._coeffs is not None and self._func is None else "callable"
        return f"GeneratingFunction(name={self.name!r}, backing={backing})"


def _poly(coeffs: np.ndarray, x: float | np.ndarray) -> np.ndarray | float:
    coeffs = np.asarray(coeffs, dtype=float)
    x_arr = np.asarray(x, dtype=float)
    if coeffs.size == 0:
        result = np.zeros_like(x_arr)
    else:
        result = np.polynomial.polynomial.polyval(x_arr, coeffs)
    if np.isscalar(x) or x_arr.ndim == 0:
        return float(result)
    return result


def _numeric_derivative(
    func: Callable[[np.ndarray], np.ndarray | float],
    x: float | np.ndarray,
    h: float = 1e-6,
) -> np.ndarray | float:
    """Central-difference derivative; only used when no closed form exists."""
    x_arr = np.asarray(x, dtype=float)
    result = (np.asarray(func(x_arr + h)) - np.asarray(func(x_arr - h))) / (2.0 * h)
    if np.isscalar(x) or x_arr.ndim == 0:
        return float(result)
    return result


@dataclass(frozen=True)
class GossipGeneratingFunctions:
    """The four generating functions of the fault-tolerant gossip model.

    Attributes
    ----------
    g0, g1:
        Fanout and excess-fanout generating functions of the *ideal*
        (failure-free) gossip graph.
    f0, f1:
        The failure-weighted functions ``F0 = q G0`` and ``F1 = q G1`` for a
        uniform non-failure probability ``q`` (Eq. 1 with ``q_k = q``).
    q:
        The nonfailed-member ratio.
    mean_fanout:
        ``G0'(1)`` — the mean fanout of the underlying distribution.
    """

    g0: GeneratingFunction
    g1: GeneratingFunction
    f0: GeneratingFunction
    f1: GeneratingFunction
    q: float
    mean_fanout: float

    def self_consistent_u(self, *, tol: float = 1e-12, max_iter: int = 10_000) -> float:
        """Solve the self-consistency condition for ``u``.

        ``u`` is the probability that a member reached by following a random
        gossip edge does *not* belong to the giant component.  With uniform
        failures it satisfies (Callaway et al., Eq. 4 of the paper)::

            u = 1 - F1(1) + F1(u) = 1 - q + q * G1(u)

        The trivial solution ``u = 1`` always exists; below the percolation
        threshold it is the only one.  We use damped fixed-point iteration
        from ``u = 0`` (which converges to the smallest root) and polish the
        result with Brent's method when a bracket exists.
        """
        q = self.q
        if q == 0.0:
            return 1.0

        def step(u: float) -> float:
            return 1.0 - q + q * float(self.g1(u))

        u = 0.0
        for _ in range(max_iter):
            u_next = step(u)
            if not np.isfinite(u_next):
                raise ArithmeticError("fixed-point iteration diverged")
            u_next = min(max(u_next, 0.0), 1.0)
            if abs(u_next - u) < tol:
                u = u_next
                break
            u = u_next

        # Polish with a bracketed root find on h(u) = u - step(u) when the
        # non-trivial root is separated from u = 1.
        def h(v: float) -> float:
            return v - step(v)

        if u < 1.0 - 1e-9:
            lo, hi = 0.0, 1.0 - 1e-12
            try:
                if h(lo) * h(hi) < 0:
                    u = float(optimize.brentq(h, lo, hi, xtol=1e-14))
            except ValueError:
                pass
        return float(min(max(u, 0.0), 1.0))


def build_generating_functions(
    dist: FanoutDistribution, q: float
) -> GossipGeneratingFunctions:
    """Construct the G0/G1/F0/F1 quadruple for a fanout distribution and ratio ``q``.

    Parameters
    ----------
    dist:
        The fanout distribution ``P`` of the gossip algorithm.
    q:
        The nonfailed-member ratio (uniform across degrees, per Section 4.1).
    """
    q = check_probability("q", q)
    mean_fanout = dist.mean()
    g0 = GeneratingFunction(
        func=dist.g0,
        derivative=dist.g0_prime,
        second_derivative=dist.g0_double_prime,
        name="G0",
    )
    g1 = GeneratingFunction(
        func=dist.g1,
        derivative=dist.g1_prime,
        name="G1",
    )
    f0 = g0.scaled(q, name="F0")
    f1 = g1.scaled(q, name="F1")
    return GossipGeneratingFunctions(
        g0=g0, g1=g1, f0=f0, f1=f1, q=q, mean_fanout=mean_fanout
    )

"""Site percolation on generalized random graphs (Section 4.2 of the paper).

The gossip graph of one execution is a generalized random graph whose degree
distribution is the fanout distribution ``P``; node failures remove a uniform
fraction ``1 - q`` of members (site percolation with uniform occupation
probability ``q``).  The quantities of interest are:

* the **mean component size** ``<s>`` (Eq. 2), which diverges at the
  percolation threshold,
* the **critical nonfailed-member ratio** ``q_c = 1 / G1'(1)`` (Eq. 3), the
  smallest ``q`` for which a giant component — and hence non-vanishing
  reliability — exists, and
* the **giant-component size** (Eq. 4), which the paper uses as the
  reliability of gossiping ``R(q, P)``.

Two normalisations of the giant-component size appear in the literature.  In
Callaway et al. the size is measured as a fraction of *all* nodes,
``S_all = F0(1) − F0(u) = q (1 − G0(u))``.  The paper's reliability is the
fraction of *nonfailed* nodes reached, ``R = S_all / q = 1 − G0(u)``, which
for the Poisson case reduces to the paper's Eq. 11 ``S = 1 − e^{−zqS}``.
Both are exposed here; :func:`giant_component_size` returns the paper's
(nonfailed-relative) definition.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.distributions import FanoutDistribution
from repro.core.generating import build_generating_functions
from repro.utils.validation import check_positive, check_probability

__all__ = [
    "PercolationResult",
    "critical_ratio",
    "critical_mean_fanout",
    "mean_component_size",
    "giant_component_size",
    "giant_component_size_all_nodes",
    "percolation_analysis",
]


@dataclass(frozen=True)
class PercolationResult:
    """Complete percolation analysis of a ``Gossip(n, P, q)`` model.

    Attributes
    ----------
    q:
        Nonfailed-member ratio used in the analysis.
    mean_fanout:
        Mean of the fanout distribution (``G0'(1)``).
    critical_ratio:
        ``q_c = 1 / G1'(1)`` (Eq. 3); reliability vanishes for ``q < q_c``.
    supercritical:
        ``True`` iff ``q > critical_ratio`` (a giant component exists).
    u:
        Solution of the self-consistency condition (Eq. 4).
    giant_component_size:
        The paper's reliability ``R(q, P) = 1 − G0(u)`` — the expected
        fraction of nonfailed members in the giant component.
    giant_component_size_all:
        Callaway normalisation ``q (1 − G0(u))`` — fraction of all members.
    mean_component_size:
        ``<s>`` from Eq. 2 (``math.inf`` at or above the transition point
        where the formula diverges).
    """

    q: float
    mean_fanout: float
    critical_ratio: float
    supercritical: bool
    u: float
    giant_component_size: float
    giant_component_size_all: float
    mean_component_size: float


def critical_ratio(dist: FanoutDistribution) -> float:
    """Return the critical nonfailed-member ratio ``q_c = 1 / G1'(1)`` (Eq. 3).

    ``G1'(1) = G0''(1) / G0'(1) = E[F(F−1)] / E[F]`` is the mean excess
    degree.  For a Poisson fanout with mean ``z`` this gives ``q_c = 1/z``
    (Eq. 10).  Values larger than 1 mean no amount of non-failure can produce
    a giant component (the fanout distribution itself is subcritical);
    ``math.inf`` is returned when ``G1'(1) = 0``.
    """
    mean = dist.mean()
    if mean <= 0:
        return math.inf
    excess = dist.second_factorial_moment() / mean
    if excess <= 0:
        return math.inf
    return 1.0 / excess


def critical_mean_fanout(q: float) -> float:
    """Return the critical Poisson mean fanout ``z_c = 1/q`` for ratio ``q``.

    This is the contrapositive reading of Eq. 10 (``q > 1/z``): for the giant
    component to exist at nonfailed ratio ``q`` the mean fanout must exceed
    ``1/q``.
    """
    q = check_probability("q", q, allow_zero=False)
    return 1.0 / q


def mean_component_size(dist: FanoutDistribution, q: float) -> float:
    """Return the mean component size ``<s>`` (Eq. 2).

    .. math::

        \\langle s \\rangle = q \\left[ 1 + \\frac{q G_0'(1)}{1 - q G_1'(1)} \\right]

    The formula is only meaningful in the subcritical regime; at or above the
    critical point it diverges and ``math.inf`` is returned.
    """
    q = check_probability("q", q)
    if q == 0.0:
        return 0.0
    g0_prime_1 = dist.g0_prime(1.0)
    if g0_prime_1 <= 0:
        return q
    g1_prime_1 = dist.g1_prime(1.0)
    denom = 1.0 - q * g1_prime_1
    if denom <= 0:
        return math.inf
    return q * (1.0 + q * g0_prime_1 / denom)


def _solve_u(dist: FanoutDistribution, q: float) -> float:
    gfs = build_generating_functions(dist, q)
    return gfs.self_consistent_u()


def giant_component_size(dist: FanoutDistribution, q: float) -> float:
    """Return the paper's reliability ``R(q, P) = 1 − G0(u)`` (Eq. 4 normalised).

    ``u`` solves ``u = 1 − q + q G1(u)``.  Below the critical point the only
    solution is ``u = 1`` and the size is 0.
    """
    q = check_probability("q", q)
    if q == 0.0 or dist.mean() <= 0:
        return 0.0
    u = _solve_u(dist, q)
    size = 1.0 - float(dist.g0(u))
    return float(min(max(size, 0.0), 1.0))


def giant_component_size_all_nodes(dist: FanoutDistribution, q: float) -> float:
    """Return the giant-component size as a fraction of *all* members.

    This is ``F0(1) − F0(u) = q (1 − G0(u))`` — the normalisation used by
    Callaway et al. and by the paper's Eq. 4 before dividing by ``q``.
    """
    q = check_probability("q", q)
    return q * giant_component_size(dist, q)


def percolation_analysis(dist: FanoutDistribution, q: float) -> PercolationResult:
    """Run the full percolation analysis for ``Gossip(n, P, q)``.

    Bundles every Sec. 4 quantity into one :class:`PercolationResult`:
    the critical ratio (Eq. 3), whether ``(dist, q)`` is supercritical,
    the self-consistent root ``u`` of ``u = 1 − q + q G1(u)``, the giant
    component under both normalisations (Eq. 4: among nonfailed members
    and among all members), and the subcritical mean component size
    (Eq. 2, ``inf`` at or above the critical point).

    Parameters
    ----------
    dist:
        The fanout distribution ``P``.
    q:
        Nonfailed-member ratio, a probability in ``[0, 1]``.
    """
    q = check_probability("q", q)
    qc = critical_ratio(dist)
    mean_fanout = dist.mean()
    if q == 0.0 or mean_fanout <= 0:
        return PercolationResult(
            q=q,
            mean_fanout=mean_fanout,
            critical_ratio=qc,
            supercritical=False,
            u=1.0,
            giant_component_size=0.0,
            giant_component_size_all=0.0,
            mean_component_size=0.0 if q == 0.0 else q,
        )
    u = _solve_u(dist, q)
    size = float(min(max(1.0 - float(dist.g0(u)), 0.0), 1.0))
    return PercolationResult(
        q=q,
        mean_fanout=mean_fanout,
        critical_ratio=qc,
        supercritical=bool(q > qc),
        u=u,
        giant_component_size=size,
        giant_component_size_all=q * size,
        mean_component_size=mean_component_size(dist, q),
    )


def spanning_fanout_condition(dist: FanoutDistribution, q: float) -> bool:
    """Return ``True`` if the pair ``(P, q)`` is above the percolation threshold.

    Equivalent to checking the paper's Eq. 10 generalised to arbitrary fanout
    distributions: ``q * G1'(1) > 1``.
    """
    q = check_probability("q", q)
    mean = dist.mean()
    if mean <= 0:
        return False
    return q * dist.g1_prime(1.0) > 1.0


def critical_fanout_scale(dist: FanoutDistribution, q: float) -> float:
    """Return the factor by which the mean excess degree exceeds criticality.

    Values > 1 indicate a supercritical configuration; exactly 1 is the phase
    transition.  Useful for plotting distance-to-threshold in ablations.
    """
    q = check_probability("q", q, allow_zero=False)
    mean = dist.mean()
    if mean <= 0:
        return 0.0
    return q * dist.g1_prime(1.0)


def check_positive_mean(dist: FanoutDistribution) -> float:
    """Validate and return the mean fanout of ``dist`` (must be > 0)."""
    return check_positive("mean fanout", dist.mean())

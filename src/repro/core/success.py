"""Success of gossiping over repeated executions (Section 4.2, case (2)).

The paper defines the *success of gossiping* ``S(q, P, t)`` as the event that
every nonfailed member has received the message at least once after ``t``
executions of the gossip algorithm.  Each execution is treated as an
independent Bernoulli trial whose success probability is the reliability
``p_r = R(q, P)`` of a single execution, giving

* ``Pr(S(q, P, t)) = 1 − (1 − p_r)^t`` (Eq. 5), and
* the minimum number of executions for a required success probability
  ``p_s``: ``t ≥ lg(1 − p_s) / lg(1 − p_r)`` (Eq. 6).

The number of successes ``X`` among ``t`` executions follows a Binomial
``B(t, p_r)`` distribution; the paper's Figs. 6-7 compare this analytical
distribution with simulation for two parameter pairs.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np
from scipy import stats

from repro.utils.validation import check_integer, check_probability

__all__ = [
    "success_probability",
    "min_executions",
    "success_count_pmf",
    "success_count_cdf",
    "SuccessModel",
]


def success_probability(per_execution_reliability: float, executions: int) -> float:
    """Return ``Pr(S(q, P, t)) = 1 − (1 − p_r)^t`` (Eq. 5).

    Parameters
    ----------
    per_execution_reliability:
        ``p_r`` — the probability that a given nonfailed member receives the
        message in a single execution (the reliability of gossiping).
    executions:
        ``t`` — the number of independent executions.
    """
    p_r = check_probability("per_execution_reliability", per_execution_reliability)
    t = check_integer("executions", executions, minimum=0)
    return 1.0 - (1.0 - p_r) ** t


def min_executions(required_success: float, per_execution_reliability: float) -> int:
    """Return the minimum ``t`` with ``1 − (1 − p_r)^t ≥ p_s`` (Eq. 6).

    ``t = ⌈ log(1 − p_s) / log(1 − p_r) ⌉``.  Edge cases: a reliability of 1
    needs a single execution; a reliability of 0 can never satisfy a positive
    requirement and raises ``ValueError``.
    """
    p_s = check_probability("required_success", required_success, allow_one=False)
    p_r = check_probability("per_execution_reliability", per_execution_reliability)
    if p_s == 0.0:
        return 0
    if p_r == 0.0:
        raise ValueError(
            "per-execution reliability is 0; no number of executions can reach the target"
        )
    if p_r == 1.0:
        return 1
    raw = math.log(1.0 - p_s) / math.log(1.0 - p_r)
    t = int(math.ceil(raw - 1e-12))
    return max(t, 1)


def success_count_pmf(executions: int, per_execution_reliability: float) -> np.ndarray:
    """Return the Binomial ``B(t, p_r)`` PMF of the success count ``X``.

    ``X`` is the number of executions (out of ``t``) in which a given
    nonfailed member receives the message — or, in the Figs. 6-7 experiment,
    the number of executions in which gossip succeeds.  Index ``k`` of the
    returned array is ``P(X = k)``.
    """
    t = check_integer("executions", executions, minimum=0)
    p_r = check_probability("per_execution_reliability", per_execution_reliability)
    k = np.arange(t + 1)
    return stats.binom.pmf(k, t, p_r)


def success_count_cdf(executions: int, per_execution_reliability: float) -> np.ndarray:
    """Return the Binomial ``B(t, p_r)`` CDF evaluated at ``0..t``."""
    t = check_integer("executions", executions, minimum=0)
    p_r = check_probability("per_execution_reliability", per_execution_reliability)
    k = np.arange(t + 1)
    return stats.binom.cdf(k, t, p_r)


@dataclass(frozen=True)
class SuccessModel:
    """Success-of-gossiping model for a fixed per-execution reliability.

    Bundles Eqs. 5-6 and the Binomial success-count distribution behind a
    small object so experiment code reads naturally::

        model = SuccessModel(per_execution_reliability=0.967)
        model.min_executions(0.999)     # -> 3
        model.success_probability(3)    # -> 0.999964...
    """

    per_execution_reliability: float

    def __post_init__(self) -> None:
        check_probability("per_execution_reliability", self.per_execution_reliability)

    def success_probability(self, executions: int) -> float:
        """Return ``Pr(S(q, P, t))`` for ``t = executions`` (Eq. 5)."""
        return success_probability(self.per_execution_reliability, executions)

    def min_executions(self, required_success: float) -> int:
        """Return the minimum number of executions for ``required_success`` (Eq. 6)."""
        return min_executions(required_success, self.per_execution_reliability)

    def success_count_pmf(self, executions: int) -> np.ndarray:
        """Return the ``B(t, p_r)`` PMF of the number of successful executions."""
        return success_count_pmf(executions, self.per_execution_reliability)

    def expected_successes(self, executions: int) -> float:
        """Return ``E[X] = t · p_r``."""
        t = check_integer("executions", executions, minimum=0)
        return t * self.per_execution_reliability

"""Reliability of gossiping ``R(q, P)`` (Section 4.2, case (1)).

The paper defines the reliability of gossiping as the expected fraction of
nonfailed members that receive the message in one execution of the general
gossip algorithm, and identifies it with the size of the giant component of
the gossip-induced generalized random graph.  This module wraps the
percolation machinery into the reliability-centric API used by experiments
and benchmarks:

* :func:`reliability` — point evaluation of ``R(q, P)``,
* :func:`reliability_curve` — the analytical series of Figs. 4/5
  (reliability vs mean fanout for a family of Poisson distributions),
* :func:`required_fanout_poisson` — Eq. 12, the design-oriented inverse, and
* :class:`ReliabilityModel` — an object-style wrapper bundling a fanout
  distribution with failure information.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from repro.core.distributions import FanoutDistribution, PoissonFanout
from repro.core.percolation import (
    PercolationResult,
    critical_ratio,
    giant_component_size,
    percolation_analysis,
)
from repro.core.poisson_case import (
    mean_fanout_for_reliability,
    poisson_reliability,
)
from repro.utils.validation import check_probability

__all__ = [
    "reliability",
    "reliability_curve",
    "required_fanout_poisson",
    "ReliabilityModel",
]


def reliability(dist: FanoutDistribution, q: float) -> float:
    """Return the analytical reliability ``R(q, P)`` for one execution.

    For a :class:`~repro.core.distributions.PoissonFanout` the closed form of
    Eq. 11 is used; any other distribution goes through the generic
    generating-function solver.
    """
    q = check_probability("q", q)
    if isinstance(dist, PoissonFanout):
        return poisson_reliability(dist.mean_fanout, q)
    return giant_component_size(dist, q)


def reliability_curve(
    mean_fanouts: Sequence[float],
    q: float,
    *,
    distribution_factory: Callable[[float], FanoutDistribution] = PoissonFanout,
) -> np.ndarray:
    """Return ``R(q, P(z))`` for each mean fanout ``z`` in ``mean_fanouts``.

    ``distribution_factory`` maps a mean fanout to a distribution instance;
    the default (Poisson) reproduces the analytical curves of Figs. 4 and 5.
    Passing e.g. ``lambda z: GeometricFanout.from_mean(z)`` produces the
    ablation curves for other distribution families.
    """
    q = check_probability("q", q)
    values = []
    for z in mean_fanouts:
        if z <= 0:
            values.append(0.0)
            continue
        values.append(reliability(distribution_factory(float(z)), q))
    return np.asarray(values, dtype=float)


def required_fanout_poisson(target_reliability: float, q: float) -> float:
    """Return the Poisson mean fanout achieving ``target_reliability`` (Eq. 12).

    Alias of :func:`~repro.core.poisson_case.mean_fanout_for_reliability`
    kept under the paper's "required fanout" phrasing: inverts Eq. 11 in
    closed form, ``z = −ln(1 − R) / (q R)``, for a target reliability in
    ``(0, 1)`` at nonfailed ratio ``q``.  For the loss-aware and
    Monte-Carlo-certified inverses see
    :func:`repro.analysis.dimensioning.analytic_required_fanout` and
    :func:`repro.analysis.dimensioning.dimension_fanout`.
    """
    return mean_fanout_for_reliability(target_reliability, q)


@dataclass
class ReliabilityModel:
    """Reliability analysis of a fixed fanout distribution across failure levels.

    This is the object-oriented face of the reliability equations, convenient
    when a single distribution is probed at many nonfailed ratios (the way
    the paper's Figs. 4-5 sweep ``q``).

    Parameters
    ----------
    distribution:
        Fanout distribution ``P`` of the gossip algorithm.
    """

    distribution: FanoutDistribution
    _cache: dict = field(default_factory=dict, repr=False)

    def critical_ratio(self) -> float:
        """Return ``q_c`` below which reliability is zero (Eq. 3)."""
        return critical_ratio(self.distribution)

    def reliability(self, q: float) -> float:
        """Return ``R(q, P)``; results are memoised per ``q``."""
        q = check_probability("q", q)
        if q not in self._cache:
            self._cache[q] = reliability(self.distribution, q)
        return self._cache[q]

    def reliability_profile(self, qs: Sequence[float]) -> np.ndarray:
        """Return reliability across a grid of nonfailed ratios."""
        return np.asarray([self.reliability(float(q)) for q in qs], dtype=float)

    def analysis(self, q: float) -> PercolationResult:
        """Return the full percolation record at ratio ``q``."""
        return percolation_analysis(self.distribution, q)

    def tolerable_failure_ratio(self, min_reliability: float, *, tol: float = 1e-6) -> float:
        """Return the maximum failed-node ratio keeping reliability >= target.

        This is the quantity the paper's abstract promises: "the maximum
        ratio of failed nodes that can be tolerated without reducing the
        required degree of reliability".  Computed by bisection on ``q``
        (reliability is monotone non-decreasing in ``q``); returns 0.0 when
        even a failure-free group cannot reach the target.
        """
        min_reliability = check_probability(
            "min_reliability", min_reliability, allow_zero=False, allow_one=False
        )
        if self.reliability(1.0) < min_reliability:
            return 0.0
        lo, hi = 0.0, 1.0  # reliability(hi) >= target, reliability(lo) < target (usually)
        if self.reliability(1e-9) >= min_reliability:
            return 1.0
        while hi - lo > tol:
            mid = 0.5 * (lo + hi)
            if self.reliability(mid) >= min_reliability:
                hi = mid
            else:
                lo = mid
        q_min = hi
        return 1.0 - q_min

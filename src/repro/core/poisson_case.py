"""Closed-form Poisson fanout case study (Section 4.3, Eqs. 7-12).

For a Poisson fanout ``Po(z)`` the generating functions collapse to
``G0(x) = G1(x) = e^{z(x-1)}`` and the model has closed forms:

* critical nonfailed-member ratio ``q_c = 1/z`` (Eq. 10),
* reliability of gossiping ``S`` solving ``S = 1 − e^{−zqS}`` (Eq. 11), and
* the mean fanout required for a target reliability
  ``z = −ln(1 − S) / (qS)`` (Eq. 12).

These functions are the analytical series plotted in the paper's Figs. 2, 4
and 5, and they are cross-validated against the generic percolation solver in
the test suite.
"""

from __future__ import annotations

import math

import numpy as np
import numpy.typing as npt
from scipy import optimize

from repro.utils.validation import check_positive, check_probability

__all__ = [
    "poisson_critical_ratio",
    "poisson_critical_fanout",
    "poisson_reliability",
    "poisson_reliability_curve",
    "mean_fanout_for_reliability",
    "nonfailed_ratio_for_reliability",
]


def poisson_critical_ratio(mean_fanout: float) -> float:
    """Return ``q_c = 1/z`` (Eq. 10): the smallest useful nonfailed ratio.

    Below this ratio a Poisson-``z`` gossip execution has no giant
    component and its reliability is exactly 0; the general-distribution
    twin is :func:`repro.core.percolation.critical_ratio` (Eq. 3).
    """
    mean_fanout = check_positive("mean_fanout", mean_fanout)
    return 1.0 / mean_fanout


def poisson_critical_fanout(q: float) -> float:
    """Return the smallest mean fanout ``z_c = 1/q`` giving non-zero reliability.

    The contrapositive reading of Eq. 10: at nonfailed ratio ``q`` (a
    probability in ``(0, 1]``), any Poisson mean fanout at or below
    ``1/q`` leaves the execution subcritical.
    """
    q = check_probability("q", q, allow_zero=False)
    return 1.0 / q


def poisson_reliability(mean_fanout: float, q: float, *, tol: float = 1e-12) -> float:
    """Solve Eq. 11, ``S = 1 − exp(−z q S)``, for the reliability ``S``.

    Returns the non-trivial root when ``z q > 1`` and 0 otherwise (the giant
    component does not exist at or below the critical point).

    Parameters
    ----------
    mean_fanout:
        Mean fanout ``z`` of the Poisson distribution.
    q:
        Nonfailed-member ratio.
    tol:
        Absolute tolerance of the root find.
    """
    mean_fanout = check_positive("mean_fanout", mean_fanout)
    q = check_probability("q", q)
    zq = mean_fanout * q
    if zq <= 1.0:
        return 0.0

    def h(s: float) -> float:
        return s - (1.0 - math.exp(-zq * s))

    # The non-trivial root lies in (0, 1]; h(1) > 0 for finite zq and
    # h(s) < 0 for small positive s in the supercritical regime, so bisection
    # is safe once we find a negative left bracket.
    lo = 1e-12
    while h(lo) > 0 and lo < 0.5:
        lo *= 10.0
    if h(lo) > 0:
        return 0.0
    s = float(optimize.brentq(h, lo, 1.0, xtol=tol))
    return float(min(max(s, 0.0), 1.0))


def poisson_reliability_curve(mean_fanouts: npt.ArrayLike, q: float) -> np.ndarray:
    """Vectorised Eq. 11: reliability for each mean fanout in ``mean_fanouts``."""
    q = check_probability("q", q)
    fanouts = np.asarray(mean_fanouts, dtype=float)
    return np.array([poisson_reliability(float(z), q) if z > 0 else 0.0 for z in fanouts])


def mean_fanout_for_reliability(reliability: float, q: float) -> float:
    """Return the mean fanout needed for a target reliability (Eq. 12).

    .. math::

        z = \\frac{-\\ln(1 - S)}{q S}

    The paper plots this relationship in Fig. 2 for ``S`` from 0.1111 to
    0.9999 and ``q`` in {0.2, 0.4, 0.6, 0.8, 1.0}.
    """
    reliability = check_probability(
        "reliability", reliability, allow_zero=False, allow_one=False
    )
    q = check_probability("q", q, allow_zero=False)
    return -math.log(1.0 - reliability) / (q * reliability)


def nonfailed_ratio_for_reliability(reliability: float, mean_fanout: float) -> float:
    """Return the nonfailed ratio ``q`` needed for a target reliability.

    Inverse reading of Eq. 12: ``q = −ln(1 − S) / (z S)``.  Values above 1
    mean the target is unreachable at that fanout no matter how few members
    fail; ``math.inf`` is never returned, the raw ratio is, so callers can
    compare it against 1 themselves.
    """
    reliability = check_probability(
        "reliability", reliability, allow_zero=False, allow_one=False
    )
    mean_fanout = check_positive("mean_fanout", mean_fanout)
    return -math.log(1.0 - reliability) / (mean_fanout * reliability)

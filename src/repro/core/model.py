"""``GossipModel`` — the ``Gossip(n, P, q)`` façade (Section 4.1).

A :class:`GossipModel` ties together the three ingredients of the paper's
model definition — the group size ``n``, the fanout distribution ``P``, and
the nonfailed-member ratio ``q`` — and exposes both faces of the study:

* the **analytical** quantities (reliability, critical point, success of
  gossiping, required executions), computed with the generating-function
  machinery of this subpackage, and
* the **simulated** quantities, delegated to :mod:`repro.simulation` (the
  Monte-Carlo counterpart of the paper's MATLAB experiments).

The simulation imports are performed lazily inside the methods so the
analytical core has no dependency on the simulator.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.core.distributions import FanoutDistribution, PoissonFanout
from repro.core.percolation import PercolationResult, percolation_analysis
from repro.core.reliability import reliability as analytical_reliability
from repro.core.success import min_executions, success_probability
from repro.utils.rng import SeedLike
from repro.utils.validation import check_integer, check_probability

if TYPE_CHECKING:
    from repro.simulation.membership import MembershipView
    from repro.simulation.metrics import ReliabilityEstimate, SuccessCountResult

__all__ = ["GossipModel"]


@dataclass
class GossipModel:
    """The paper's ``Gossip(n, P, q)`` model.

    Parameters
    ----------
    n:
        Number of members in the multicast group ``G`` (the source node is
        member 0 and is assumed never to fail, per Section 3).
    distribution:
        Fanout distribution ``P``; every member draws its fanout from it
        independently when it first receives the message.
    q:
        Nonfailed-member ratio: the expected fraction of members that do not
        crash during gossiping.

    Examples
    --------
    >>> from repro import GossipModel, PoissonFanout
    >>> model = GossipModel(n=1000, distribution=PoissonFanout(4.0), q=0.9)
    >>> round(model.reliability(), 3)
    0.97
    >>> model.min_executions(0.999)
    2
    """

    n: int
    distribution: FanoutDistribution
    q: float
    _analysis_cache: dict = field(default_factory=dict, repr=False)

    def __post_init__(self) -> None:
        self.n = check_integer("n", self.n, minimum=2)
        if not isinstance(self.distribution, FanoutDistribution):
            raise TypeError(
                "distribution must be a FanoutDistribution, got "
                f"{type(self.distribution).__name__}"
            )
        self.q = check_probability("q", self.q)

    # ------------------------------------------------------------ analysis
    @classmethod
    def poisson(cls, n: int, mean_fanout: float, q: float) -> "GossipModel":
        """Convenience constructor for the Poisson case study ``Gossip(n, Po(z), q)``."""
        return cls(n=n, distribution=PoissonFanout(mean_fanout), q=q)

    def nonfailed_members(self) -> int:
        """Return ``n_nonfailed = [n·q]`` (at least 1: the source never fails)."""
        return max(1, int(round(self.n * self.q)))

    def analysis(self) -> PercolationResult:
        """Return the full percolation analysis (cached)."""
        if "analysis" not in self._analysis_cache:
            self._analysis_cache["analysis"] = percolation_analysis(self.distribution, self.q)
        return self._analysis_cache["analysis"]

    def reliability(self) -> float:
        """Return the analytical reliability ``R(q, P)`` of one execution."""
        return analytical_reliability(self.distribution, self.q)

    def critical_ratio(self) -> float:
        """Return ``q_c``, the smallest nonfailed ratio with non-zero reliability."""
        return self.analysis().critical_ratio

    def is_supercritical(self) -> bool:
        """Return ``True`` when ``q > q_c`` (a giant component exists)."""
        return self.analysis().supercritical

    def success_probability(self, executions: int) -> float:
        """Return ``Pr(S(q, P, t))`` using the analytical reliability (Eq. 5)."""
        return success_probability(self.reliability(), executions)

    def min_executions(self, required_success: float) -> int:
        """Return the minimum executions to reach ``required_success`` (Eq. 6)."""
        return min_executions(required_success, self.reliability())

    def max_tolerable_failure_ratio(self, min_reliability: float) -> float:
        """Return the largest failed-node ratio keeping reliability above target."""
        from repro.core.reliability import ReliabilityModel

        return ReliabilityModel(self.distribution).tolerable_failure_ratio(min_reliability)

    # ---------------------------------------------------------- simulation
    def simulate_reliability(
        self,
        *,
        repetitions: int = 20,
        seed: SeedLike = None,
        membership: MembershipView | None = None,
        processes: int | None = 1,
    ) -> ReliabilityEstimate:
        """Estimate the reliability by Monte-Carlo simulation.

        Mirrors the paper's simulation protocol: each repetition runs one
        execution of the gossip algorithm on a fresh failure pattern and
        reports the fraction of nonfailed members reached; the returned
        record aggregates the repetitions.  See
        :func:`repro.simulation.runner.estimate_reliability`.
        """
        from repro.simulation.runner import estimate_reliability

        return estimate_reliability(
            n=self.n,
            distribution=self.distribution,
            q=self.q,
            repetitions=repetitions,
            seed=seed,
            membership=membership,
            processes=processes,
        )

    def simulate_success(
        self,
        *,
        executions: int = 20,
        simulations: int = 100,
        success_threshold: float = 1.0,
        seed: SeedLike = None,
    ) -> SuccessCountResult:
        """Estimate the distribution of the success count ``X`` by simulation.

        Mirrors the Figs. 6-7 protocol: run ``executions`` independent
        executions per simulation, count how many reach all (or a fraction
        ``success_threshold`` of) nonfailed members, and repeat the whole
        experiment ``simulations`` times.  See
        :func:`repro.simulation.rounds.simulate_success_counts`.
        """
        from repro.simulation.rounds import simulate_success_counts

        return simulate_success_counts(
            n=self.n,
            distribution=self.distribution,
            q=self.q,
            executions=executions,
            simulations=simulations,
            success_threshold=success_threshold,
            seed=seed,
        )

    # ----------------------------------------------------------- metadata
    def describe(self) -> dict:
        """Return a metadata dict (used in experiment records and tables)."""
        return {
            "n": self.n,
            "q": self.q,
            "distribution": self.distribution.describe(),
            "mean_fanout": self.distribution.mean(),
            "critical_ratio": self.critical_ratio(),
            "analytical_reliability": self.reliability(),
        }

"""Baseline reliable-multicast protocols.

The paper positions its general gossip algorithm against the protocols of the
related-work section (pbcast/Bimodal Multicast, lpbcast, Route Driven Gossip,
and traditional fixed-fanout gossip) but never evaluates them directly.  To
make the benchmark harness able to compare reliability/fault-tolerance across
protocol families, this subpackage re-implements the *dissemination cores* of
those protocols on top of the same simulation substrate:

* :class:`~repro.protocols.fixed_fanout.FixedFanoutGossip` — push gossip with
  a constant fanout (the traditional algorithm the paper generalises).
* :class:`~repro.protocols.random_fanout.RandomFanoutGossip` — the paper's
  general algorithm wrapped in the common protocol interface.
* :class:`~repro.protocols.pbcast.PbcastProtocol` — Bimodal-Multicast style:
  an unreliable best-effort broadcast followed by anti-entropy gossip rounds.
* :class:`~repro.protocols.lpbcast.LpbcastProtocol` — lightweight
  probabilistic broadcast: rounds of push gossip from a bounded event buffer.
* :class:`~repro.protocols.rdg.RouteDrivenGossip` — RDG style push/pull:
  periodic digest exchange with pull-based recovery of missing messages.
* :class:`~repro.protocols.flooding.FloodingProtocol` — deterministic
  flooding over a random overlay, an upper-bound (and message-cost extreme)
  baseline.
* :class:`~repro.protocols.hyparview.HyParViewProtocol` — HyParView-style
  peer sampling: push gossip over a bounded active view that self-repairs
  from a passive view under churn, with a periodic shuffle.
* :class:`~repro.protocols.lazy_push.LazyPushProtocol` — two-phase
  lazy push: eager payload push below an infection threshold, then
  IHAVE/IWANT digest-driven recovery with per-member retry budgets.
* :class:`~repro.protocols.anti_entropy.AntiEntropyProtocol` — classic
  anti-entropy: periodic push-pull reconciliation by every member, the
  epidemic-repair backstop.

All protocols implement the :class:`~repro.protocols.base.Protocol` interface
and return :class:`~repro.protocols.base.ProtocolResult`.
"""

from repro.protocols.base import Protocol, ProtocolResult
from repro.protocols.fixed_fanout import FixedFanoutGossip
from repro.protocols.random_fanout import RandomFanoutGossip
from repro.protocols.pbcast import PbcastProtocol
from repro.protocols.lpbcast import LpbcastProtocol
from repro.protocols.rdg import RouteDrivenGossip
from repro.protocols.flooding import FloodingProtocol
from repro.protocols.hyparview import HyParViewProtocol
from repro.protocols.lazy_push import LazyPushProtocol
from repro.protocols.anti_entropy import AntiEntropyProtocol

__all__ = [
    "Protocol",
    "ProtocolResult",
    "FixedFanoutGossip",
    "RandomFanoutGossip",
    "PbcastProtocol",
    "LpbcastProtocol",
    "RouteDrivenGossip",
    "FloodingProtocol",
    "HyParViewProtocol",
    "LazyPushProtocol",
    "AntiEntropyProtocol",
]

"""Common interface and result record for baseline multicast protocols.

Every protocol disseminates a single message from a source member through a
group of ``n`` members, a fraction ``1 - q`` of which crash (fail-stop, source
excluded), and reports which nonfailed members ended up with the message and
how many point-to-point messages the protocol spent doing so.  Keeping the
interface this narrow is what makes the cross-protocol reliability/cost
comparison (``repro run protocol_comparison`` and
``benchmarks/bench_baseline_protocols.py``) meaningful.

Protocols execute at two granularities:

* :meth:`Protocol.run` — one execution (the exact behavioural reference);
* :meth:`Protocol.run_batch` — ``R`` independent executions propagated as
  ``(R, n)`` array programs through
  :func:`repro.simulation.protocol_batch.simulate_protocol_batch`.  Bundled
  protocols override the :meth:`Protocol._disseminate_batch` hook with
  vectorised implementations; the base class falls back to replaying the
  scalar ``_disseminate`` per replica, so any subclass works (just without
  the speedup).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import TYPE_CHECKING, TypeAlias

import numpy as np

from repro.simulation.failures import FailureModel, FailurePattern, UniformCrashModel
from repro.simulation.network import NetworkModel
from repro.utils.rng import SeedLike, as_generator
from repro.utils.validation import check_integer, check_probability

if TYPE_CHECKING:
    from repro.simulation.churn import ChurnModel, ChurnScheduleBatch
    from repro.simulation.protocol_batch import BatchProtocolResult

__all__ = ["DisseminateResult", "Protocol", "ProtocolResult"]

#: What a scalar ``_disseminate`` hook returns: ``(delivered, messages,
#: rounds)``, optionally extended with a trailing ``control_messages`` count
#: by protocols that split control traffic from payload.
DisseminateResult: TypeAlias = "tuple[np.ndarray, int, int] | tuple[np.ndarray, int, int, int]"


@dataclass(frozen=True)
class ProtocolResult:
    """Outcome of one protocol run.

    Attributes
    ----------
    protocol:
        Protocol name.
    n:
        Group size.
    alive:
        Boolean mask of nonfailed members.
    delivered:
        Boolean mask of nonfailed members holding the message at the end.
    messages_sent:
        Total point-to-point messages (data + control) sent by the protocol.
    rounds:
        Number of protocol rounds / gossip hops executed.
    messages_dropped:
        Messages lost in transit (0 unless the run used a lossy
        :class:`~repro.simulation.network.NetworkModel`).
    control_messages_sent:
        The subset of ``messages_sent`` that carried no payload — digests,
        IHAVE advertisements, IWANT/pull requests.  Protocols that only ever
        push payload report 0, so ``messages_sent - control_messages_sent``
        is always the number of payload-carrying transmissions and cost
        comparisons across push and recovery protocols stay honest.
    """

    protocol: str
    n: int
    alive: np.ndarray
    delivered: np.ndarray
    messages_sent: int
    rounds: int
    messages_dropped: int = 0
    control_messages_sent: int = 0

    def n_alive(self) -> int:
        """Return the number of nonfailed members."""
        return int(self.alive.sum())

    def reliability(self) -> float:
        """Return delivered nonfailed members / nonfailed members."""
        alive = self.n_alive()
        return float((self.delivered & self.alive).sum()) / alive if alive else 0.0

    def is_atomic(self) -> bool:
        """Return True iff every nonfailed member received the message."""
        return bool(np.all(self.delivered[self.alive]))

    def messages_per_member(self) -> float:
        """Return the message cost normalised by group size."""
        return self.messages_sent / self.n if self.n else 0.0

    def payload_messages_sent(self) -> int:
        """Return the number of payload-carrying messages (total minus control)."""
        return self.messages_sent - self.control_messages_sent

    def payload_messages_per_member(self) -> float:
        """Return the payload-only message cost normalised by group size."""
        return self.payload_messages_sent() / self.n if self.n else 0.0


class Protocol(ABC):
    """Abstract baseline protocol.

    Subclasses implement :meth:`_disseminate`, which receives the failure
    pattern and an RNG and returns ``(delivered, messages_sent, rounds)``.
    The shared :meth:`run` method handles failure drawing and bookkeeping so
    every protocol is evaluated under exactly the same fault model as the
    paper's algorithm.  Batched execution goes through
    :meth:`_disseminate_batch` (same contract with a leading replica axis).
    """

    #: human-readable protocol name (overridden by subclasses)
    name: str = "protocol"

    def run(
        self,
        n: int,
        q: float,
        *,
        source: int = 0,
        seed: SeedLike = None,
        failure_pattern: FailurePattern | None = None,
        failure_model: FailureModel | None = None,
        network: NetworkModel | None = None,
    ) -> ProtocolResult:
        """Disseminate one message through a group with fail-stop failures.

        Failures come from ``failure_pattern`` when supplied, else from one
        draw of ``failure_model`` (default: the paper's uniform-``q`` crash
        model) — the same pluggable layer the batched engine uses.  An
        optional ``network`` drops each point-to-point message independently
        with ``network.loss_probability``; the model is reset on entry so its
        counters (``messages_sent``, ``messages_dropped``, ``total_latency``)
        describe exactly this execution and never leak across runs.
        """
        n = check_integer("n", n, minimum=2)
        q = check_probability("q", q)
        source = check_integer("source", source, minimum=0, maximum=n - 1)
        rng = as_generator(seed)
        if failure_pattern is None:
            model = failure_model if failure_model is not None else UniformCrashModel(q)
            failure_pattern = model.draw(n, rng, source=source)
        alive = failure_pattern.alive.copy()
        alive[source] = True
        if network is None:
            # Legacy contract: external subclasses may implement the
            # loss-free 4-argument ``_disseminate`` signature.
            out = self._disseminate(n, alive, source, rng)
            dropped = 0
        else:
            network.reset()
            out = self._disseminate(n, alive, source, rng, network=network)
            dropped = network.messages_dropped
        if len(out) == 4:
            delivered, messages, rounds, control = out
        else:
            delivered, messages, rounds = out
            control = 0
        delivered = np.asarray(delivered, dtype=bool)
        delivered &= alive  # failed members never count as delivered
        delivered[source] = True
        return ProtocolResult(
            protocol=self.name,
            n=n,
            alive=alive,
            delivered=delivered,
            messages_sent=int(messages),
            rounds=int(rounds),
            messages_dropped=int(dropped),
            control_messages_sent=int(control),
        )

    def run_batch(
        self,
        n: int,
        q: float,
        *,
        repetitions: int = 20,
        source: int = 0,
        seed: SeedLike = None,
        failure_model: FailureModel | None = None,
        network: NetworkModel | None = None,
        churn: ChurnModel | ChurnScheduleBatch | None = None,
        round_period: float = 1.0,
    ) -> BatchProtocolResult:
        """Run ``repetitions`` independent executions as one ``(R, n)`` array program.

        Convenience wrapper around
        :func:`repro.simulation.protocol_batch.simulate_protocol_batch`;
        returns a :class:`~repro.simulation.protocol_batch.BatchProtocolResult`.
        ``churn`` optionally supplies the dynamic-membership plane (a
        :class:`~repro.simulation.churn.ChurnModel` or a pre-drawn
        :class:`~repro.simulation.churn.ChurnScheduleBatch`); ``round_period``
        sets the round duration of the delivery-time plane enabled by a
        ``network`` with a latency-capable batched hook.
        """
        from repro.simulation.protocol_batch import simulate_protocol_batch

        return simulate_protocol_batch(
            self,
            n,
            q,
            repetitions=repetitions,
            source=source,
            seed=seed,
            failure_model=failure_model,
            network=network,
            churn=churn,
            round_period=round_period,
        )

    @abstractmethod
    def _disseminate(
        self,
        n: int,
        alive: np.ndarray,
        source: int,
        rng: np.random.Generator,
        network: NetworkModel | None = None,
    ) -> DisseminateResult:
        """Protocol-specific dissemination; returns (delivered mask, messages, rounds).

        ``network`` (when not ``None``) supplies the independent message-loss
        law via :meth:`~repro.simulation.network.NetworkModel.draw_loss`; the
        engine only passes it when a lossy run was requested, so legacy
        4-argument implementations keep working loss-free.  Protocols that
        distinguish control traffic append a fourth element: ``(delivered,
        messages, rounds, control_messages)``.
        """

    # The scalar-replay fallback tracks no time, so it deliberately opts out
    # of the latency keyword: results built on it honestly report
    # ``delivery_times=None`` (see the docstring below).
    def _disseminate_batch(  # repro-lint: disable=RL002
        self,
        n: int,
        alive: np.ndarray,
        source: int,
        rng: np.random.Generator,
        network: NetworkModel | None = None,
        churn: ChurnScheduleBatch | None = None,
    ) -> tuple[np.ndarray, ...]:
        """Batched dissemination hook: ``(R, n)`` alive masks in, per-replica results out.

        Returns ``(delivered (R, n), messages_sent (R,), messages_dropped
        (R,), rounds (R,))`` — the engine also accepts the legacy 3-tuple
        without the drop counts from external subclasses, and a 5-tuple with
        a trailing per-replica ``control_messages_sent (R,)`` from protocols
        that split control traffic from payload.  ``churn`` (a
        :class:`~repro.simulation.churn.ChurnScheduleBatch`) is threaded
        through only for churn-aware runs, mirroring the ``network``
        contract, so legacy signatures keep working.  Hooks that accept a
        ``latency`` keyword additionally receive the batch's
        :class:`~repro.simulation.latency.DeliveryTimePlane` when a network
        is present; this base signature deliberately omits it — the scalar
        replay below tracks no time, so results built on it honestly report
        ``delivery_times=None``.  The base implementation replays the scalar
        :meth:`_disseminate` once per replica — correct for any
        static-membership protocol; every bundled protocol overrides it with
        a vectorised, churn- and latency-capable array program.
        """
        if churn is not None:
            raise NotImplementedError(
                f"protocol {self.name!r} has no batched churn-aware hook; the "
                "scalar-replay fallback cannot apply per-round join/leave events"
            )
        repetitions = int(alive.shape[0])
        delivered = np.zeros((repetitions, n), dtype=bool)
        messages = np.zeros(repetitions, dtype=np.int64)
        dropped = np.zeros(repetitions, dtype=np.int64)
        rounds = np.zeros(repetitions, dtype=np.int64)
        control = np.zeros(repetitions, dtype=np.int64)
        for replica in range(repetitions):
            if network is None:
                out = self._disseminate(n, alive[replica], source, rng)
            else:
                dropped_before = network.messages_dropped
                out = self._disseminate(n, alive[replica], source, rng, network=network)
                dropped[replica] = network.messages_dropped - dropped_before
            if len(out) == 4:
                replica_delivered, replica_messages, replica_rounds, replica_control = out
                control[replica] = int(replica_control)
            else:
                replica_delivered, replica_messages, replica_rounds = out
            delivered[replica] = np.asarray(replica_delivered, dtype=bool)
            messages[replica] = int(replica_messages)
            rounds[replica] = int(replica_rounds)
        return delivered, messages, dropped, rounds, control

"""Common interface and result record for baseline multicast protocols.

Every protocol disseminates a single message from a source member through a
group of ``n`` members, a fraction ``1 - q`` of which crash (fail-stop, source
excluded), and reports which nonfailed members ended up with the message and
how many point-to-point messages the protocol spent doing so.  Keeping the
interface this narrow is what makes the cross-protocol reliability/cost
comparison in ``benchmarks/bench_baseline_protocols.py`` meaningful.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

import numpy as np

from repro.simulation.failures import FailurePattern, UniformCrashModel
from repro.utils.rng import as_generator
from repro.utils.validation import check_integer, check_probability

__all__ = ["Protocol", "ProtocolResult"]


@dataclass(frozen=True)
class ProtocolResult:
    """Outcome of one protocol run.

    Attributes
    ----------
    protocol:
        Protocol name.
    n:
        Group size.
    alive:
        Boolean mask of nonfailed members.
    delivered:
        Boolean mask of nonfailed members holding the message at the end.
    messages_sent:
        Total point-to-point messages (data + control) sent by the protocol.
    rounds:
        Number of protocol rounds / gossip hops executed.
    """

    protocol: str
    n: int
    alive: np.ndarray
    delivered: np.ndarray
    messages_sent: int
    rounds: int

    def n_alive(self) -> int:
        """Return the number of nonfailed members."""
        return int(self.alive.sum())

    def reliability(self) -> float:
        """Return delivered nonfailed members / nonfailed members."""
        alive = self.n_alive()
        return float((self.delivered & self.alive).sum()) / alive if alive else 0.0

    def is_atomic(self) -> bool:
        """Return True iff every nonfailed member received the message."""
        return bool(np.all(self.delivered[self.alive]))

    def messages_per_member(self) -> float:
        """Return the message cost normalised by group size."""
        return self.messages_sent / self.n if self.n else 0.0


class Protocol(ABC):
    """Abstract baseline protocol.

    Subclasses implement :meth:`_disseminate`, which receives the failure
    pattern and an RNG and returns ``(delivered, messages_sent, rounds)``.
    The shared :meth:`run` method handles failure drawing and bookkeeping so
    every protocol is evaluated under exactly the same fault model as the
    paper's algorithm.
    """

    #: human-readable protocol name (overridden by subclasses)
    name: str = "protocol"

    def run(
        self,
        n: int,
        q: float,
        *,
        source: int = 0,
        seed=None,
        failure_pattern: FailurePattern | None = None,
    ) -> ProtocolResult:
        """Disseminate one message through a group with fail-stop failures."""
        n = check_integer("n", n, minimum=2)
        q = check_probability("q", q)
        source = check_integer("source", source, minimum=0, maximum=n - 1)
        rng = as_generator(seed)
        if failure_pattern is None:
            failure_pattern = UniformCrashModel(q).draw(n, rng, source=source)
        alive = failure_pattern.alive.copy()
        alive[source] = True
        delivered, messages, rounds = self._disseminate(n, alive, source, rng)
        delivered = np.asarray(delivered, dtype=bool)
        delivered &= alive  # failed members never count as delivered
        delivered[source] = True
        return ProtocolResult(
            protocol=self.name,
            n=n,
            alive=alive,
            delivered=delivered,
            messages_sent=int(messages),
            rounds=int(rounds),
        )

    @abstractmethod
    def _disseminate(
        self, n: int, alive: np.ndarray, source: int, rng: np.random.Generator
    ) -> tuple[np.ndarray, int, int]:
        """Protocol-specific dissemination; returns (delivered mask, messages, rounds)."""

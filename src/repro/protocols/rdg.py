"""Route Driven Gossip (RDG) style protocol.

Luo, Eugster and Hubaux's RDG targets mobile ad-hoc networks: data packets,
negative acknowledgments and membership information are all gossiped
uniformly, and missing packets are recovered with a pull ("gossiper-pull")
step driven by packet identifiers seen in gossip headers.  Stripped of the
routing specifics, the dissemination core alternates:

* **push**: every nonfailed member holding the message forwards it to
  ``fanout`` random peers,
* **pull**: every nonfailed member *without* the message asks ``pull_fanout``
  random peers; any queried peer that has it responds (one request plus one
  response message each).

The pull phase is what distinguishes RDG-style protocols from pure push and
lets them patch the last few percent of members at modest extra cost.
"""

from __future__ import annotations

import numpy as np

from repro.protocols.base import Protocol
from repro.simulation.churn import ChurnScheduleBatch
from repro.simulation.latency import DeliveryTimePlane
from repro.simulation.membership import sample_distinct
from repro.simulation.network import NetworkModel
from repro.simulation.protocol_batch import sample_group_targets_batch
from repro.utils.validation import check_integer

__all__ = ["RouteDrivenGossip"]


class RouteDrivenGossip(Protocol):
    """Push/pull gossip with NACK-style recovery rounds."""

    name = "rdg"

    def __init__(self, fanout: int = 2, rounds: int = 6, pull_fanout: int = 1) -> None:
        self.fanout = check_integer("fanout", fanout, minimum=1)
        self.rounds = check_integer("rounds", rounds, minimum=1)
        self.pull_fanout = check_integer("pull_fanout", pull_fanout, minimum=0)

    def _disseminate(
        self,
        n: int,
        alive: np.ndarray,
        source: int,
        rng: np.random.Generator,
        network: NetworkModel | None = None,
    ) -> tuple[np.ndarray, int, int, int]:
        has_message = np.zeros(n, dtype=bool)
        has_message[source] = True
        messages = 0
        control = 0
        rounds_executed = 0
        for _ in range(self.rounds):
            rounds_executed += 1
            # -------------------------------------------------------- push
            holders = np.flatnonzero(has_message & alive)
            if holders.size == 0:
                break
            newly: list[int] = []
            for member in holders:
                targets = sample_distinct(rng, n, self.fanout, exclude=int(member))
                messages += int(targets.size)
                if network is not None:
                    targets = targets[network.draw_loss(rng, targets.size)]
                for target in targets:
                    target = int(target)
                    if alive[target] and not has_message[target]:
                        newly.append(target)
            if newly:
                has_message[np.array(newly, dtype=np.int64)] = True
            # -------------------------------------------------------- pull
            if self.pull_fanout > 0:
                missing = np.flatnonzero(alive & ~has_message)
                recovered: list[int] = []
                for member in missing:
                    peers = sample_distinct(rng, n, self.pull_fanout, exclude=int(member))
                    messages += int(peers.size)  # pull requests
                    control += int(peers.size)  # requests carry no payload
                    if network is not None:
                        # A lost request never reaches its peer.
                        peers = peers[network.draw_loss(rng, peers.size)]
                    hit = peers[has_message[peers] & alive[peers]]
                    if hit.size:
                        messages += 1  # one response carrying the payload
                        if network is None or network.draw_loss(rng, 1)[0]:
                            recovered.append(int(member))
                if recovered:
                    has_message[np.array(recovered, dtype=np.int64)] = True
            if bool(np.all(has_message[alive])):
                break
        return has_message, messages, rounds_executed, control

    def _disseminate_batch(
        self,
        n: int,
        alive: np.ndarray,
        source: int,
        rng: np.random.Generator,
        network: NetworkModel | None = None,
        churn: ChurnScheduleBatch | None = None,
        latency: DeliveryTimePlane | None = None,
    ) -> tuple[np.ndarray, ...]:
        repetitions = int(alive.shape[0])
        has_message = np.zeros((repetitions, n), dtype=bool)
        has_message[:, source] = True
        has_flat = has_message.ravel()
        alive_flat = alive.ravel()
        messages = np.zeros(repetitions, dtype=np.int64)
        dropped = np.zeros(repetitions, dtype=np.int64)
        rounds = np.zeros(repetitions, dtype=np.int64)
        control = np.zeros(repetitions, dtype=np.int64)

        active = np.ones(repetitions, dtype=bool)
        pull_fanout = min(self.pull_fanout, n - 1)
        round_index = 0
        for _ in range(self.rounds):
            if latency is not None:
                active = active | latency.pending_mask()
            if not active.any():
                break
            round_index += 1
            present = present_flat = None
            if churn is not None:
                # Absent members neither push, pull, nor answer pulls.
                present = churn.present_at(round_index)
                present_flat = present.ravel()
            rounds += active
            # ---------------------------------------------------------- push
            holders = has_message & alive & active[:, None]
            if present is not None:
                holders &= present
            active &= holders.any(axis=1)
            rep_idx, mem_idx = np.nonzero(holders & active[:, None])
            cells = np.empty(0, dtype=np.int64)
            if rep_idx.size:
                cells, target_replica = sample_group_targets_batch(
                    n, rep_idx, mem_idx, self.fanout, rng
                )
                messages += np.bincount(target_replica, minlength=repetitions)
                if network is not None:
                    keep, dropped_round = network.draw_loss_batch(
                        rng, target_replica, repetitions
                    )
                    dropped += dropped_round
                    cells = cells[keep]
                if present_flat is not None:
                    cells = cells[present_flat[cells]]
            if latency is not None or cells.size:
                if latency is not None:
                    # Per-push latency draws; slow pushes land in the round
                    # they mature (re-checked against that round's churn).
                    cells, push_times, _ = latency.schedule(round_index - 1, cells, rng)
                    if present_flat is not None and cells.size:
                        keep = present_flat[cells]
                        cells = cells[keep]
                        push_times = push_times[keep]
                    fresh_mask = alive_flat[cells] & ~has_flat[cells]
                    latency.record(cells[fresh_mask], push_times[fresh_mask])
                fresh = np.unique(cells[alive_flat[cells] & ~has_flat[cells]])
                has_flat[fresh] = True
                if latency is not None:
                    # A matured push can revive a replica whose holders had
                    # all departed.
                    active = active | (np.bincount(fresh // n, minlength=repetitions) > 0)
            # ---------------------------------------------------------- pull
            if pull_fanout > 0:
                missing = alive & ~has_message & active[:, None]
                if present is not None:
                    missing &= present
                miss_rep, miss_mem = np.nonzero(missing)
                if miss_rep.size:
                    peer_cells, peer_replica = sample_group_targets_batch(
                        n, miss_rep, miss_mem, pull_fanout, rng
                    )
                    request_counts = np.bincount(peer_replica, minlength=repetitions)
                    messages += request_counts  # requests
                    control += request_counts  # requests carry no payload
                    # One response per missing member whose *surviving*
                    # requests include at least one nonfailed holder; the
                    # response itself is one more lossy message.
                    hit = has_flat[peer_cells] & alive_flat[peer_cells]
                    if present_flat is not None:
                        hit &= present_flat[peer_cells]
                    if network is not None:
                        keep, dropped_round = network.draw_loss_batch(
                            rng, peer_replica, repetitions
                        )
                        dropped += dropped_round
                        hit &= keep
                    puller = np.repeat(np.arange(miss_rep.size), pull_fanout)
                    responding = np.bincount(puller[hit], minlength=miss_rep.size) > 0
                    messages += np.bincount(miss_rep[responding], minlength=repetitions)
                    recovered = responding
                    if network is not None:
                        keep, dropped_round = network.draw_loss_batch(
                            rng, miss_rep[responding], repetitions
                        )
                        dropped += dropped_round
                        recovered = responding.copy()
                        recovered[np.flatnonzero(responding)[~keep]] = False
                    recovered_cells = miss_rep[recovered] * n + miss_mem[recovered]
                    has_flat[recovered_cells] = True
                    if latency is not None:
                        # The pull is an intra-round round trip: the payload
                        # lands a request leg plus a response leg after the
                        # round's send instant.
                        latency.record(
                            recovered_cells,
                            latency.send_time(round_index - 1)
                            + latency.draw(rng, recovered_cells.size)
                            + latency.draw(rng, recovered_cells.size),
                        )
            active &= np.any(alive & ~has_message, axis=1)
        if latency is not None:
            # Pushes still in flight at the horizon arrive anyway.
            cells, times, _ = latency.drain()
            fresh_mask = alive_flat[cells] & ~has_flat[cells]
            latency.record(cells[fresh_mask], times[fresh_mask])
            has_flat[cells[fresh_mask]] = True
        return has_message, messages, dropped, rounds, control

"""Traditional push gossip with a constant fanout.

This is the algorithm the paper's "general gossiping algorithm" generalises:
instead of drawing the fanout from a distribution, every member forwards the
message to exactly ``fanout`` targets chosen uniformly at random the first
time it receives it.  Analytically it corresponds to the
:class:`~repro.core.distributions.FixedFanout` degree distribution.
"""

from __future__ import annotations

import numpy as np

from repro.core.distributions import FixedFanout
from repro.protocols.base import Protocol
from repro.simulation.churn import ChurnScheduleBatch
from repro.simulation.gossip import simulate_gossip_batch
from repro.simulation.latency import DeliveryTimePlane
from repro.simulation.membership import sample_distinct
from repro.simulation.network import NetworkModel
from repro.utils.validation import check_integer

__all__ = ["FixedFanoutGossip"]


class FixedFanoutGossip(Protocol):
    """Push gossip where every infected member forwards to ``fanout`` peers once."""

    name = "fixed-fanout"

    def __init__(self, fanout: int) -> None:
        self.fanout = check_integer("fanout", fanout, minimum=0)

    def _disseminate(
        self,
        n: int,
        alive: np.ndarray,
        source: int,
        rng: np.random.Generator,
        network: NetworkModel | None = None,
    ) -> tuple[np.ndarray, int, int]:
        received = np.zeros(n, dtype=bool)
        delivered = np.zeros(n, dtype=bool)
        received[source] = True
        delivered[source] = True
        messages = 0
        rounds = 0
        frontier = np.array([source], dtype=np.int64)
        while frontier.size:
            rounds += 1
            batches = [
                sample_distinct(rng, n, self.fanout, exclude=int(member))
                for member in frontier
            ]
            batches = [b for b in batches if b.size]
            if not batches:
                break
            targets = np.concatenate(batches)
            messages += int(targets.size)
            if network is not None:
                targets = targets[network.draw_loss(rng, targets.size)]
            unique_targets = np.unique(targets)
            fresh = unique_targets[~received[unique_targets]]
            received[fresh] = True
            newly_alive = fresh[alive[fresh]]
            delivered[newly_alive] = True
            frontier = newly_alive
        return delivered, messages, rounds

    def _disseminate_batch(
        self,
        n: int,
        alive: np.ndarray,
        source: int,
        rng: np.random.Generator,
        network: NetworkModel | None = None,
        churn: ChurnScheduleBatch | None = None,
        latency: DeliveryTimePlane | None = None,
    ) -> tuple[np.ndarray, ...]:
        # The constant-fanout push process IS the paper's algorithm with a
        # degenerate distribution, so the batched gossip engine does all the
        # work; failures arrive through the pre-drawn alive masks, message
        # loss through the shared network hook, and join/leave events through
        # the churn plane.
        result = simulate_gossip_batch(
            n,
            FixedFanout(self.fanout),
            1.0,  # failures are supplied through the explicit masks
            repetitions=int(alive.shape[0]),
            source=source,
            seed=rng,
            alive=alive,
            network=network,
            churn=churn,
            latency=latency,
        )
        return result.delivered, result.messages_sent, result.messages_dropped, result.rounds

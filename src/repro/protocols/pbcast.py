"""Bimodal-Multicast (pbcast) style protocol.

Birman et al.'s Bimodal Multicast has two phases: an unreliable best-effort
broadcast (e.g. IP multicast) that reaches most members, followed by rounds
of anti-entropy gossip in which every member summarises the messages it has
seen to a few random peers and peers that discover they are missing a message
request a retransmission.  The dissemination core modelled here keeps exactly
that structure:

1. the source's best-effort broadcast reaches each member independently with
   probability ``broadcast_reach`` (losses model the unreliable transport),
2. for ``rounds`` anti-entropy rounds, every nonfailed member that has the
   message gossips a digest to ``fanout`` random peers; a nonfailed peer that
   is missing the message pulls it back (costing one extra message).

The bimodal character — runs either reach almost everyone or almost no one —
emerges from the same percolation effect the paper analyses.
"""

from __future__ import annotations

import numpy as np

from repro.protocols.base import Protocol
from repro.simulation.churn import ChurnScheduleBatch
from repro.simulation.latency import DeliveryTimePlane
from repro.simulation.membership import sample_distinct
from repro.simulation.network import NetworkModel
from repro.simulation.protocol_batch import sample_group_targets_batch
from repro.utils.validation import check_integer, check_probability

__all__ = ["PbcastProtocol"]


class PbcastProtocol(Protocol):
    """Unreliable broadcast followed by anti-entropy gossip rounds."""

    name = "pbcast"

    def __init__(self, fanout: int = 2, rounds: int = 5, broadcast_reach: float = 0.8) -> None:
        self.fanout = check_integer("fanout", fanout, minimum=1)
        self.rounds = check_integer("rounds", rounds, minimum=0)
        self.broadcast_reach = check_probability("broadcast_reach", broadcast_reach)

    def _disseminate(
        self,
        n: int,
        alive: np.ndarray,
        source: int,
        rng: np.random.Generator,
        network: NetworkModel | None = None,
    ) -> tuple[np.ndarray, int, int, int]:
        has_message = np.zeros(n, dtype=bool)
        has_message[source] = True
        messages = 0
        control = 0

        # Phase 1: unreliable best-effort broadcast from the source.
        reached = rng.random(n) < self.broadcast_reach
        reached[source] = True
        messages += n - 1  # the broadcast costs one transmission per member
        if network is not None:
            # Each broadcast leg is additionally dropped by the transport
            # (the source never broadcasts to itself).
            keep = np.ones(n, dtype=bool)
            others = np.flatnonzero(np.arange(n) != source)
            keep[others] = network.draw_loss(rng, n - 1)
            reached &= keep
        # Only members that are up can buffer the message.
        has_message |= reached & alive

        # Phase 2: anti-entropy gossip of digests with pull-based recovery.
        rounds_executed = 0
        for _ in range(self.rounds):
            rounds_executed += 1
            holders = np.flatnonzero(has_message & alive)
            if holders.size == 0:
                break
            newly = []
            for member in holders:
                targets = sample_distinct(rng, n, self.fanout, exclude=int(member))
                messages += int(targets.size)  # digest messages
                control += int(targets.size)  # digests carry no payload
                if network is not None:
                    targets = targets[network.draw_loss(rng, targets.size)]
                for target in targets:
                    target = int(target)
                    if alive[target] and not has_message[target]:
                        # The peer notices the gap and pulls the payload
                        # (round trip modelled as one lossy message).
                        messages += 1
                        if network is None or network.draw_loss(rng, 1)[0]:
                            newly.append(target)
            if not newly:
                # Converged: every digest found an up-to-date peer.
                break
            has_message[np.array(newly, dtype=np.int64)] = True
        return has_message, messages, rounds_executed, control

    def _disseminate_batch(
        self,
        n: int,
        alive: np.ndarray,
        source: int,
        rng: np.random.Generator,
        network: NetworkModel | None = None,
        churn: ChurnScheduleBatch | None = None,
        latency: DeliveryTimePlane | None = None,
    ) -> tuple[np.ndarray, ...]:
        repetitions = int(alive.shape[0])
        has_message = np.zeros((repetitions, n), dtype=bool)
        has_message[:, source] = True
        messages = np.zeros(repetitions, dtype=np.int64)
        dropped = np.zeros(repetitions, dtype=np.int64)
        rounds = np.zeros(repetitions, dtype=np.int64)
        control = np.zeros(repetitions, dtype=np.int64)

        # Phase 1: one (R, n) draw realises every replica's unreliable
        # broadcast; only members that are up can buffer the message.
        reached = rng.random((repetitions, n)) < self.broadcast_reach
        reached[:, source] = True
        messages += n - 1
        if network is not None:
            # Every replica's n-1 broadcast legs thinned in one flat draw.
            keep, dropped_bcast = network.draw_loss_batch(
                rng,
                np.repeat(np.arange(repetitions, dtype=np.int64), n - 1),
                repetitions,
            )
            dropped += dropped_bcast
            keep_matrix = np.ones((repetitions, n), dtype=bool)
            keep_matrix[:, np.arange(n) != source] = keep.reshape(repetitions, n - 1)
            reached &= keep_matrix
        if churn is not None:
            # Members not yet (or no longer) in the group at broadcast time
            # cannot buffer the message.
            reached &= churn.present_at(0)
        has_flat = has_message.ravel()
        alive_flat = alive.ravel()
        if latency is None:
            has_message |= reached & alive
        else:
            # The broadcast departs at time 0; each surviving leg draws its
            # own latency, so slow legs buffer during (not before) the
            # anti-entropy phase.
            arrived = reached.copy()
            arrived[:, source] = False
            due, due_times, _ = latency.schedule(
                0, np.flatnonzero(arrived.ravel()), rng, channel="payload"
            )
            fresh = alive_flat[due] & ~has_flat[due]
            latency.record(due[fresh], due_times[fresh])
            has_flat[due[fresh]] = True

        # Phase 2: anti-entropy rounds advance all replicas in lock-step;
        # a replica leaves the batch once a round produces no recovery
        # (converged), exactly the scalar engine's break — unless messages
        # are still in flight for it, which can seed later recoveries.
        active = np.ones(repetitions, dtype=bool)
        round_index = 0
        for _ in range(self.rounds):
            if latency is not None:
                active = active | latency.pending_mask()
            if not active.any():
                break
            round_index += 1
            present_flat = None
            rounds += active
            holders = has_message & alive & active[:, None]
            if churn is not None:
                # Departed holders stop gossiping digests; absent peers
                # cannot receive them either (filtered below).
                present = churn.present_at(round_index)
                present_flat = present.ravel()
                holders &= present
            active &= holders.any(axis=1)
            rep_idx, mem_idx = np.nonzero(holders & active[:, None])
            if rep_idx.size == 0 and latency is None:
                continue
            if rep_idx.size:
                cells, target_replica = sample_group_targets_batch(
                    n, rep_idx, mem_idx, self.fanout, rng
                )
                digest_counts = np.bincount(target_replica, minlength=repetitions)
                messages += digest_counts  # digests
                control += digest_counts  # digests carry no payload
                if network is not None:
                    keep, dropped_round = network.draw_loss_batch(
                        rng, target_replica, repetitions
                    )
                    dropped += dropped_round
                    cells = cells[keep]
                    target_replica = target_replica[keep]
                if present_flat is not None:
                    # Digests to absent peers are wasted sends (counted
                    # above), not network drops.
                    keep = present_flat[cells]
                    cells = cells[keep]
                    target_replica = target_replica[keep]
            else:
                cells = np.empty(0, dtype=np.int64)
                target_replica = np.empty(0, dtype=np.int64)
            digest_times = None
            if latency is not None:
                # Digests ride the latency plane too: a slow digest triggers
                # its pull in the round it lands, not the round it was sent.
                cells, digest_times, _ = latency.schedule(
                    round_index - 1, cells, rng, channel="digest"
                )
                if present_flat is not None and cells.size:
                    keep = present_flat[cells]
                    cells = cells[keep]
                    digest_times = digest_times[keep]
                target_replica = cells // n
            # A digest landing on a nonfailed peer that misses the message
            # triggers one pull each (duplicates within the round included,
            # as in the scalar engine); the pull round trip is one lossy
            # message — only surviving pulls recover the payload, a pull
            # latency draw after the digest's arrival instant.
            pulling = alive_flat[cells] & ~has_flat[cells]
            messages += np.bincount(target_replica[pulling], minlength=repetitions)
            pull_cells = cells[pulling]
            pull_times = digest_times[pulling] if latency is not None else None
            if network is not None:
                keep, dropped_round = network.draw_loss_batch(
                    rng, target_replica[pulling], repetitions
                )
                dropped += dropped_round
                pull_cells = pull_cells[keep]
                if latency is not None:
                    pull_times = pull_times[keep]
            if latency is not None:
                latency.record(pull_cells, pull_times + latency.draw(rng, pull_cells.size))
            fresh = np.unique(pull_cells)
            recovered = np.bincount(fresh // n, minlength=repetitions) > 0
            if latency is None:
                active &= recovered
            else:
                # A matured digest can recover a member in a replica that had
                # already converged; the recovery itself is what keeps (or
                # makes) a replica active.  Without in-flight messages this
                # reduces to the `active &= recovered` of the plane-off path.
                active = recovered
            has_flat[fresh] = True
        if latency is not None:
            # Broadcast legs still in flight at the horizon arrive anyway —
            # the round budget bounds gossiping, not physics.  In-flight
            # digests die with the protocol (nobody answers them).
            cells, times, _ = latency.drain(channel="payload")
            fresh = alive_flat[cells] & ~has_flat[cells]
            latency.record(cells[fresh], times[fresh])
            has_flat[cells[fresh]] = True
        return has_message, messages, dropped, rounds, control

"""Lightweight probabilistic broadcast (lpbcast) style protocol.

Eugster et al.'s lpbcast piggybacks event notifications and membership
information on periodic gossip messages sent to a small random subset of a
*partial* view.  The dissemination core modelled here captures the parts that
matter for reliability under crash failures:

* members keep the message in a bounded event buffer once they learn it,
* every round, each nonfailed member holding the message gossips it to
  ``fanout`` members of its partial view (size ``view_size``),
* gossiping stops after ``rounds`` rounds (lpbcast is periodic, not
  quiescent, so the horizon is a parameter).

Compared with the paper's algorithm the key differences are the bounded view
and the fixed number of rounds, which is exactly what the membership ablation
benchmark explores.
"""

from __future__ import annotations

import numpy as np

from repro.protocols.base import Protocol
from repro.simulation.churn import ChurnScheduleBatch
from repro.simulation.latency import DeliveryTimePlane
from repro.simulation.membership import UniformPartialView, sample_distinct
from repro.simulation.network import NetworkModel
from repro.utils.sampling import sample_distinct_rows, sample_distinct_rows_excluding
from repro.utils.validation import check_integer

__all__ = ["LpbcastProtocol"]


class LpbcastProtocol(Protocol):
    """Round-based push gossip over bounded partial views."""

    name = "lpbcast"

    def __init__(self, fanout: int = 3, rounds: int = 8, view_size: int = 30) -> None:
        self.fanout = check_integer("fanout", fanout, minimum=1)
        self.rounds = check_integer("rounds", rounds, minimum=1)
        self.view_size = check_integer("view_size", view_size, minimum=1)

    def _disseminate(
        self,
        n: int,
        alive: np.ndarray,
        source: int,
        rng: np.random.Generator,
        network: NetworkModel | None = None,
    ) -> tuple[np.ndarray, int, int]:
        view = UniformPartialView(n, min(self.view_size, n - 1), seed=rng)
        has_message = np.zeros(n, dtype=bool)
        has_message[source] = True
        messages = 0
        rounds_executed = 0
        for _ in range(self.rounds):
            rounds_executed += 1
            holders = np.flatnonzero(has_message & alive)
            if holders.size == 0:
                break
            newly: list[int] = []
            for member in holders:
                member_view = view.view_of(int(member))
                if member_view.size == 0:
                    continue
                k = min(self.fanout, member_view.size)
                idx = sample_distinct(rng, member_view.size, k)
                targets = member_view[idx]
                messages += int(targets.size)
                if network is not None:
                    targets = targets[network.draw_loss(rng, targets.size)]
                for target in targets:
                    target = int(target)
                    if alive[target] and not has_message[target]:
                        newly.append(target)
            if newly:
                has_message[np.array(newly, dtype=np.int64)] = True
        return has_message, messages, rounds_executed

    def _disseminate_batch(
        self,
        n: int,
        alive: np.ndarray,
        source: int,
        rng: np.random.Generator,
        network: NetworkModel | None = None,
        churn: ChurnScheduleBatch | None = None,
        latency: DeliveryTimePlane | None = None,
    ) -> tuple[np.ndarray, ...]:
        repetitions = int(alive.shape[0])
        size = min(self.view_size, n - 1)
        # Every replica gets its own fresh partial-view assignment, drawn for
        # all R·n members in one batched pass (the batched analogue of one
        # UniformPartialView per execution).
        cells_total = repetitions * n
        members = np.tile(np.arange(n, dtype=np.int64), repetitions)
        picks, _ = sample_distinct_rows_excluding(
            rng, n, np.full(cells_total, size, dtype=np.int64), members
        )
        views = picks.reshape(repetitions, n, size)

        fanout = min(self.fanout, size)
        has_message = np.zeros((repetitions, n), dtype=bool)
        has_message[:, source] = True
        has_flat = has_message.ravel()
        alive_flat = alive.ravel()
        messages = np.zeros(repetitions, dtype=np.int64)
        dropped = np.zeros(repetitions, dtype=np.int64)
        rounds = np.zeros(repetitions, dtype=np.int64)

        # lpbcast is periodic: every replica gossips for the full round
        # budget (digest traffic continues even after everyone has the
        # message), so no convergence exit — only the holders-empty guard.
        active = np.ones(repetitions, dtype=bool)
        round_index = 0
        for _ in range(self.rounds):
            if latency is not None:
                active = active | latency.pending_mask()
            if not active.any():
                break
            round_index += 1
            present_flat = None
            rounds += active
            holders = has_message & alive & active[:, None]
            if churn is not None:
                # Departed holders stop gossiping; the static views go stale,
                # so sends into absent peers are wasted (filtered below) —
                # exactly the degradation the peer-sampling protocol repairs.
                present = churn.present_at(round_index)
                present_flat = present.ravel()
                holders &= present
            active &= holders.any(axis=1)
            rep_idx, mem_idx = np.nonzero(holders & active[:, None])
            if rep_idx.size == 0 and latency is None:
                continue
            cells = np.empty(0, dtype=np.int64)
            if rep_idx.size:
                # Batched view sampling: per holder, `fanout` distinct slots
                # of its own view row, gathered in one fancy-indexed pass.
                slot_idx, _ = sample_distinct_rows(
                    rng, size, np.full(rep_idx.size, fanout, dtype=np.int64)
                )
                targets = np.take_along_axis(
                    views[rep_idx, mem_idx], slot_idx.astype(np.int64, copy=False), axis=1
                ).ravel()
                target_replica = np.repeat(rep_idx, fanout)
                messages += np.bincount(target_replica, minlength=repetitions)
                cells = target_replica * n + targets.astype(np.int64, copy=False)
                if network is not None:
                    keep, dropped_round = network.draw_loss_batch(
                        rng, target_replica, repetitions
                    )
                    dropped += dropped_round
                    cells = cells[keep]
                if present_flat is not None:
                    cells = cells[present_flat[cells]]
            if latency is not None:
                # Per-push latency draws; slow pushes land (and are booked)
                # in the round they mature, re-checked against that round's
                # churn view.
                cells, times, _ = latency.schedule(round_index - 1, cells, rng)
                if present_flat is not None and cells.size:
                    keep = present_flat[cells]
                    cells = cells[keep]
                    times = times[keep]
                fresh_mask = alive_flat[cells] & ~has_flat[cells]
                latency.record(cells[fresh_mask], times[fresh_mask])
            fresh = np.unique(cells[alive_flat[cells] & ~has_flat[cells]])
            has_flat[fresh] = True
            if latency is not None:
                # A matured push can hand the message to a replica whose
                # holders had all departed; the new holder re-activates it.
                active = active | (np.bincount(fresh // n, minlength=repetitions) > 0)
        if latency is not None:
            # Pushes still in flight at the horizon arrive anyway.
            cells, times, _ = latency.drain()
            fresh_mask = alive_flat[cells] & ~has_flat[cells]
            latency.record(cells[fresh_mask], times[fresh_mask])
            has_flat[cells[fresh_mask]] = True
        return has_message, messages, dropped, rounds

"""Lazy-push (IHAVE/IWANT) two-phase recovery protocol.

Pure push gossip has a hard failure mode under message loss: a dropped
payload is gone forever, so the only remedy the paper's dimensioning can
offer is "push harder" (bigger fanout).  The lazy-push design — the
Plumtree idea, also the stage-8 IHAVE/IWANT scheme in the related repos —
replaces late-phase payload pushes with cheap digests and lets the
*receivers* repair their own gaps:

1. **Eager phase** — while the infected fraction of a run is below
   ``eager_threshold``, every member holding the payload pushes it to
   ``fanout`` random peers per round (ordinary push gossip; this is what
   builds the bulk of the coverage quickly).
2. **Lazy phase** — once the threshold is crossed, holders stop pushing
   payload and instead advertise it with IHAVE digests to ``ihave_fanout``
   random peers per round.  A nonfailed member that is still missing the
   payload and receives at least one digest picks one advertiser uniformly
   at random and answers with an IWANT in the **next** round; the
   advertiser then returns the payload.  Each of the three legs (digest,
   IWANT, payload answer) is an independently lossy message.

Recovery degrades gracefully instead of hanging: every member has a
``retry_budget`` of IWANTs (an unanswered IWANT costs one budget unit and
the member simply re-arms from the next digest that arrives), and an armed
advertisement times out after one round.  Under churn the repair leg is
honest — a departed holder stops answering IWANTs and digests to absent
members are wasted sends — which is exactly the adversity the
``recovery_resilience`` experiment measures.

Digests and IWANTs are **control messages**: they are counted in
``messages_sent`` but also reported via the ``control_messages_sent``
split, so the payload cost of recovery can be compared honestly against
pure push.
"""

from __future__ import annotations

import numpy as np

from repro.protocols.base import Protocol
from repro.simulation.churn import ChurnScheduleBatch
from repro.simulation.latency import DeliveryTimePlane
from repro.simulation.membership import sample_distinct
from repro.simulation.network import NetworkModel
from repro.simulation.protocol_batch import sample_group_targets_batch
from repro.utils.validation import check_integer, check_probability

__all__ = ["LazyPushProtocol"]


class LazyPushProtocol(Protocol):
    """Eager push below an infection threshold, IHAVE/IWANT recovery above it."""

    name = "lazy-push"

    def __init__(
        self,
        fanout: int = 2,
        rounds: int = 8,
        eager_threshold: float = 0.5,
        ihave_fanout: int | None = None,
        retry_budget: int = 5,
    ) -> None:
        self.fanout = check_integer("fanout", fanout, minimum=1)
        self.rounds = check_integer("rounds", rounds, minimum=0)
        self.eager_threshold = check_probability("eager_threshold", eager_threshold)
        self.ihave_fanout = check_integer(
            "ihave_fanout", self.fanout if ihave_fanout is None else ihave_fanout, minimum=1
        )
        self.retry_budget = check_integer("retry_budget", retry_budget, minimum=0)
        #: populated by ``_disseminate_batch``: recovery-plane bookkeeping of
        #: the last batched run ({"iwants_sent", "recoveries",
        #: "budget_exhausted"}), for tests and experiment harvesting.
        self.last_batch_stats: dict | None = None

    def _disseminate(
        self,
        n: int,
        alive: np.ndarray,
        source: int,
        rng: np.random.Generator,
        network: NetworkModel | None = None,
    ) -> tuple[np.ndarray, int, int, int]:
        has_message = np.zeros(n, dtype=bool)
        has_message[source] = True
        budget = np.full(n, self.retry_budget, dtype=np.int64)
        advertiser = np.full(n, -1, dtype=np.int64)
        messages = 0
        control = 0
        rounds_executed = 0
        for _ in range(self.rounds):
            if bool(np.all(has_message[alive])):
                break
            rounds_executed += 1
            # ---------------------------------------------- recovery leg
            # Members armed by last round's digests fire one IWANT each at
            # their chosen advertiser; the advertisement then times out
            # (re-arming requires a fresh digest).
            armed = np.flatnonzero(advertiser >= 0)
            for member in armed:
                member = int(member)
                adv = int(advertiser[member])
                advertiser[member] = -1
                if not alive[member] or has_message[member] or budget[member] <= 0:
                    continue
                budget[member] -= 1
                messages += 1  # IWANT
                control += 1
                if network is not None and not bool(network.draw_loss(rng, 1)[0]):
                    continue
                if not (alive[adv] and has_message[adv]):
                    continue
                messages += 1  # payload answer
                if network is None or bool(network.draw_loss(rng, 1)[0]):
                    has_message[member] = True
            # ----------------------------------------- dissemination leg
            holders = np.flatnonzero(has_message & alive)
            if float(has_message.sum()) / n < self.eager_threshold:
                # Eager phase: ordinary payload push from every holder.
                newly: list[int] = []
                for member in holders:
                    targets = sample_distinct(rng, n, self.fanout, exclude=int(member))
                    messages += int(targets.size)
                    if network is not None:
                        targets = targets[network.draw_loss(rng, targets.size)]
                    for target in targets:
                        target = int(target)
                        if alive[target] and not has_message[target]:
                            newly.append(target)
                if newly:
                    has_message[np.array(newly, dtype=np.int64)] = True
            else:
                # Lazy phase: IHAVE digests only; a missing member with
                # budget left arms one advertiser uniformly at random among
                # the digests that reached it this round.
                received: dict[int, list[int]] = {}
                for member in holders:
                    targets = sample_distinct(rng, n, self.ihave_fanout, exclude=int(member))
                    messages += int(targets.size)  # IHAVE digests
                    control += int(targets.size)
                    if network is not None:
                        targets = targets[network.draw_loss(rng, targets.size)]
                    for target in targets:
                        target = int(target)
                        if alive[target] and not has_message[target] and budget[target] > 0:
                            received.setdefault(target, []).append(int(member))
                for target, senders in received.items():
                    advertiser[target] = senders[int(rng.integers(len(senders)))]
        return has_message, messages, rounds_executed, control

    def _disseminate_batch(
        self,
        n: int,
        alive: np.ndarray,
        source: int,
        rng: np.random.Generator,
        network: NetworkModel | None = None,
        churn: ChurnScheduleBatch | None = None,
        latency: DeliveryTimePlane | None = None,
    ) -> tuple[np.ndarray, ...]:
        repetitions = int(alive.shape[0])
        has_message = np.zeros((repetitions, n), dtype=bool)
        has_message[:, source] = True
        has_flat = has_message.ravel()
        alive_flat = alive.ravel()
        budget = np.full((repetitions, n), self.retry_budget, dtype=np.int64)
        budget_flat = budget.ravel()
        advertiser = np.full((repetitions, n), -1, dtype=np.int64)
        adv_flat = advertiser.ravel()
        messages = np.zeros(repetitions, dtype=np.int64)
        dropped = np.zeros(repetitions, dtype=np.int64)
        rounds = np.zeros(repetitions, dtype=np.int64)
        control = np.zeros(repetitions, dtype=np.int64)
        iwants_sent = 0
        recoveries = 0

        eager_fanout = min(self.fanout, n - 1)
        ihave_fanout = min(self.ihave_fanout, n - 1)
        active = np.ones(repetitions, dtype=bool)
        round_index = 0
        for _ in range(self.rounds):
            active &= np.any(alive & ~has_message, axis=1)
            if not active.any():
                break
            round_index += 1
            rounds += active
            present = present_flat = None
            if churn is not None:
                present = churn.present_at(round_index)
                present_flat = present.ravel()
            # ---------------------------------------------- recovery leg
            pending = (advertiser >= 0) & alive & ~has_message & (budget > 0)
            pending &= active[:, None]
            if present is not None:
                # Absent members cannot send IWANTs this round.
                pending &= present
            rep_w, mem_w = np.nonzero(pending)
            adv_targets = advertiser[rep_w, mem_w]
            # Every armed advertisement times out after one round, fired or
            # not; re-arming requires a fresh digest (matches the scalar
            # reference, where churn never suspends a requester).
            adv_flat[adv_flat >= 0] = -1
            if rep_w.size:
                budget[rep_w, mem_w] -= 1
                iwant_counts = np.bincount(rep_w, minlength=repetitions)
                messages += iwant_counts  # IWANTs
                control += iwant_counts
                iwants_sent += int(rep_w.size)
                keep = np.ones(rep_w.size, dtype=bool)
                if network is not None:
                    keep, dropped_leg = network.draw_loss_batch(rng, rep_w, repetitions)
                    dropped += dropped_leg
                # A departed (or failed) holder stops answering IWANTs.
                adv_cells = rep_w * n + adv_targets
                answer = keep & alive_flat[adv_cells] & has_flat[adv_cells]
                if present_flat is not None:
                    answer &= present_flat[adv_cells]
                resp_rep = rep_w[answer]
                resp_mem = mem_w[answer]
                if resp_rep.size:
                    messages += np.bincount(resp_rep, minlength=repetitions)  # payload answers
                    keep2 = np.ones(resp_rep.size, dtype=bool)
                    if network is not None:
                        keep2, dropped_leg = network.draw_loss_batch(
                            rng, resp_rep, repetitions
                        )
                        dropped += dropped_leg
                    got_cells = resp_rep[keep2] * n + resp_mem[keep2]
                    has_flat[got_cells] = True
                    recoveries += int(got_cells.size)
                    if latency is not None:
                        # IWANT + payload answer is an intra-round round
                        # trip: the payload lands a request leg plus a
                        # response leg after the round's send instant.
                        latency.record(
                            got_cells,
                            latency.send_time(round_index - 1)
                            + latency.draw(rng, got_cells.size)
                            + latency.draw(rng, got_cells.size),
                        )
            # ----------------------------------------- dissemination leg
            fractions = has_message.sum(axis=1) / n
            eager = active & (fractions < self.eager_threshold)
            holders = has_message & alive & active[:, None]
            if present is not None:
                holders &= present
            rep_e, mem_e = np.nonzero(holders & eager[:, None])
            cells = np.empty(0, dtype=np.int64)
            if rep_e.size:
                cells, target_replica = sample_group_targets_batch(
                    n, rep_e, mem_e, eager_fanout, rng
                )
                messages += np.bincount(target_replica, minlength=repetitions)
                if network is not None:
                    keep, dropped_leg = network.draw_loss_batch(
                        rng, target_replica, repetitions
                    )
                    dropped += dropped_leg
                    cells = cells[keep]
                if present_flat is not None:
                    cells = cells[present_flat[cells]]
            if latency is not None:
                # Per-push latency draws; slow pushes land in the round
                # they mature (re-checked against that round's churn view).
                cells, push_times, _ = latency.schedule(round_index - 1, cells, rng)
                if present_flat is not None and cells.size:
                    keep = present_flat[cells]
                    cells = cells[keep]
                    push_times = push_times[keep]
                fresh_mask = alive_flat[cells] & ~has_flat[cells]
                latency.record(cells[fresh_mask], push_times[fresh_mask])
            if cells.size:
                fresh = np.unique(cells[alive_flat[cells] & ~has_flat[cells]])
                has_flat[fresh] = True
            rep_l, mem_l = np.nonzero(holders & ~eager[:, None])
            cells = np.empty(0, dtype=np.int64)
            senders = np.empty(0, dtype=np.int64)
            if rep_l.size:
                cells, target_replica = sample_group_targets_batch(
                    n, rep_l, mem_l, ihave_fanout, rng
                )
                senders = np.repeat(mem_l, ihave_fanout)
                digest_counts = np.bincount(target_replica, minlength=repetitions)
                messages += digest_counts  # IHAVE digests
                control += digest_counts
                if network is not None:
                    keep, dropped_leg = network.draw_loss_batch(
                        rng, target_replica, repetitions
                    )
                    dropped += dropped_leg
                    cells = cells[keep]
                    senders = senders[keep]
            if latency is not None:
                # IHAVE digests ride the latency plane, each carrying its
                # advertising sender; a slow digest arms its target in the
                # round it lands (so the IWANT fires the round after that).
                cells, _, senders = latency.schedule(
                    round_index - 1, cells, rng, channel="digest", aux=senders
                )
            if cells.size or latency is not None:
                if present_flat is not None:
                    # Digests to absent members are wasted sends, not drops.
                    in_group = present_flat[cells]
                    cells = cells[in_group]
                    senders = senders[in_group]
                receptive = alive_flat[cells] & ~has_flat[cells] & (budget_flat[cells] > 0)
                cells = cells[receptive]
                senders = senders[receptive]
                if cells.size:
                    # One advertiser per receiving member, uniform among the
                    # digests that arrived: random sort keys within each
                    # cell, then take the first digest per cell.
                    keys = rng.random(cells.size)
                    order = np.lexsort((keys, cells))
                    cells_sorted = cells[order]
                    senders_sorted = senders[order]
                    first = np.ones(cells_sorted.size, dtype=bool)
                    first[1:] = cells_sorted[1:] != cells_sorted[:-1]
                    adv_flat[cells_sorted[first]] = senders_sorted[first]
        if latency is not None:
            # Eager pushes still in flight at the horizon arrive anyway;
            # in-flight IHAVE digests die with the protocol (the IWANT they
            # would provoke is never sent).
            cells, times, _ = latency.drain()
            fresh_mask = alive_flat[cells] & ~has_flat[cells]
            latency.record(cells[fresh_mask], times[fresh_mask])
            has_flat[cells[fresh_mask]] = True
        self.last_batch_stats = {
            "iwants_sent": int(iwants_sent),
            "recoveries": int(recoveries),
            "budget_exhausted": int(np.count_nonzero(alive & ~has_message & (budget <= 0))),
        }
        return has_message, messages, dropped, rounds, control

"""Anti-entropy (push-pull reconciliation) recovery protocol.

The classic epidemic-repair backstop (Demers et al.'s anti-entropy): every
round, **every** member in the group — holder or not — picks ``fanout``
random peers and exchanges a state digest with each.  Whenever exactly one
side of a surviving exchange holds the payload, it is transferred to the
other side (push if the initiator holds it, pull if the peer does).  The
digest and the payload transfer are independently lossy messages, and the
digest is reported as a **control message** through the
``control_messages_sent`` accounting split.

Anti-entropy never stops trying while rounds remain, so a single surviving
copy anywhere in the group eventually repairs everyone — the property pure
push loses the moment a payload message is dropped.  The price is the flat
control overhead of ``n × fanout`` digests per round, which is exactly the
trade the ``recovery_resilience`` experiment makes visible: high control
cost, near-minimal payload cost (≈ one transfer per member), and
reliability that survives loss rates where push protocols collapse.

Under churn, absent members neither initiate nor answer exchanges, so a
digest sent to a departed peer is a wasted send (counted, not dropped) —
the same membership semantics as the rest of the zoo.
"""

from __future__ import annotations

import numpy as np

from repro.protocols.base import Protocol
from repro.simulation.churn import ChurnScheduleBatch
from repro.simulation.latency import DeliveryTimePlane
from repro.simulation.membership import sample_distinct
from repro.simulation.network import NetworkModel
from repro.simulation.protocol_batch import sample_group_targets_batch
from repro.utils.validation import check_integer

__all__ = ["AntiEntropyProtocol"]


class AntiEntropyProtocol(Protocol):
    """Periodic push-pull reconciliation across the whole group."""

    name = "anti-entropy"

    def __init__(self, fanout: int = 2, rounds: int = 8) -> None:
        self.fanout = check_integer("fanout", fanout, minimum=1)
        self.rounds = check_integer("rounds", rounds, minimum=0)

    def _disseminate(
        self,
        n: int,
        alive: np.ndarray,
        source: int,
        rng: np.random.Generator,
        network: NetworkModel | None = None,
    ) -> tuple[np.ndarray, int, int, int]:
        has_message = np.zeros(n, dtype=bool)
        has_message[source] = True
        messages = 0
        control = 0
        rounds_executed = 0
        for _ in range(self.rounds):
            if bool(np.all(has_message[alive])):
                break
            rounds_executed += 1
            # Reconciliation decisions use the round-start state, so the
            # scalar member loop and the batched array program share one law
            # (duplicate transfers to the same recipient are all counted).
            snapshot = has_message.copy()
            newly: list[int] = []
            for member in np.flatnonzero(alive):
                member = int(member)
                peers = sample_distinct(rng, n, self.fanout, exclude=member)
                messages += int(peers.size)  # digests
                control += int(peers.size)
                if network is not None:
                    peers = peers[network.draw_loss(rng, peers.size)]
                for peer in peers:
                    peer = int(peer)
                    if not alive[peer]:
                        continue
                    if snapshot[member] == snapshot[peer]:
                        continue  # nothing to reconcile
                    recipient = peer if snapshot[member] else member
                    messages += 1  # payload transfer (push or pull)
                    if network is None or bool(network.draw_loss(rng, 1)[0]):
                        newly.append(recipient)
            if newly:
                has_message[np.array(newly, dtype=np.int64)] = True
        return has_message, messages, rounds_executed, control

    def _disseminate_batch(
        self,
        n: int,
        alive: np.ndarray,
        source: int,
        rng: np.random.Generator,
        network: NetworkModel | None = None,
        churn: ChurnScheduleBatch | None = None,
        latency: DeliveryTimePlane | None = None,
    ) -> tuple[np.ndarray, ...]:
        repetitions = int(alive.shape[0])
        has_message = np.zeros((repetitions, n), dtype=bool)
        has_message[:, source] = True
        has_flat = has_message.ravel()
        alive_flat = alive.ravel()
        messages = np.zeros(repetitions, dtype=np.int64)
        dropped = np.zeros(repetitions, dtype=np.int64)
        rounds = np.zeros(repetitions, dtype=np.int64)
        control = np.zeros(repetitions, dtype=np.int64)

        fanout = min(self.fanout, n - 1)
        active = np.ones(repetitions, dtype=bool)
        round_index = 0
        for _ in range(self.rounds):
            if latency is not None:
                active = active | latency.pending_mask()
            active &= np.any(alive & ~has_message, axis=1)
            if not active.any():
                break
            round_index += 1
            rounds += active
            present = present_flat = None
            if churn is not None:
                present = churn.present_at(round_index)
                present_flat = present.ravel()
            participants = alive & active[:, None]
            if present is not None:
                participants &= present
            rep_idx, mem_idx = np.nonzero(participants)
            if rep_idx.size == 0 and latency is None:
                continue
            snapshot_flat = has_flat.copy()
            if rep_idx.size:
                cells, target_replica = sample_group_targets_batch(
                    n, rep_idx, mem_idx, fanout, rng
                )
                sender_cells = np.repeat(rep_idx * n + mem_idx, fanout)
                digest_counts = np.bincount(target_replica, minlength=repetitions)
                messages += digest_counts  # digests
                control += digest_counts
                if network is not None:
                    keep, dropped_leg = network.draw_loss_batch(
                        rng, target_replica, repetitions
                    )
                    dropped += dropped_leg
                    cells = cells[keep]
                    sender_cells = sender_cells[keep]
                    target_replica = target_replica[keep]
            else:
                cells = np.empty(0, dtype=np.int64)
                sender_cells = np.empty(0, dtype=np.int64)
            digest_times = None
            if latency is not None:
                # Digests ride the latency plane, each carrying its sender;
                # a slow digest reconciles the pair's states in the round it
                # lands (anti-entropy compares states at exchange time).
                cells, digest_times, sender_cells = latency.schedule(
                    round_index - 1, cells, rng, channel="digest", aux=sender_cells
                )
                target_replica = cells // n
            if present_flat is not None:
                # Digests to absent peers are wasted sends, not drops.
                in_group = present_flat[cells]
                cells = cells[in_group]
                sender_cells = sender_cells[in_group]
                target_replica = target_replica[in_group]
                if digest_times is not None:
                    digest_times = digest_times[in_group]
            reconciling = alive_flat[cells]
            cells = cells[reconciling]
            sender_cells = sender_cells[reconciling]
            target_replica = target_replica[reconciling]
            if digest_times is not None:
                digest_times = digest_times[reconciling]
            # Transfer whenever exactly one side held the payload at round
            # start: push to the peer, or pull back to the initiator.
            transfer = snapshot_flat[sender_cells] != snapshot_flat[cells]
            cells = cells[transfer]
            sender_cells = sender_cells[transfer]
            target_replica = target_replica[transfer]
            if digest_times is not None:
                digest_times = digest_times[transfer]
            if cells.size == 0:
                continue
            recipients = np.where(snapshot_flat[sender_cells], cells, sender_cells)
            messages += np.bincount(target_replica, minlength=repetitions)  # transfers
            if network is not None:
                keep, dropped_leg = network.draw_loss_batch(rng, target_replica, repetitions)
                dropped += dropped_leg
                recipients = recipients[keep]
                if digest_times is not None:
                    digest_times = digest_times[keep]
            if latency is not None:
                # The payload lands one transfer leg after the digest's
                # arrival instant (push and pull transfers alike).
                times = digest_times + latency.draw(rng, recipients.size)
                fresh_mask = ~has_flat[recipients]
                latency.record(recipients[fresh_mask], times[fresh_mask])
            has_flat[np.unique(recipients)] = True
        return has_message, messages, dropped, rounds, control

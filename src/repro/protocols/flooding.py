"""Deterministic flooding over a random overlay.

Flooding forwards the message on every overlay link exactly once.  On a
connected overlay it reaches every nonfailed member that remains connected to
the source, so it is the reliability upper bound for a given overlay — at the
cost of ``O(n · degree)`` messages.  It anchors the protocol comparison: the
interesting question for gossip protocols is how close they get to flooding's
reliability at a fraction of its message cost.

The overlay is a random regular-ish graph: every member links to ``degree``
uniformly chosen peers (links are used bidirectionally, as overlay links are).
"""

from __future__ import annotations

import numpy as np

from repro.protocols.base import Protocol
from repro.simulation.membership import sample_distinct
from repro.utils.validation import check_integer

__all__ = ["FloodingProtocol"]


class FloodingProtocol(Protocol):
    """Flood the message over every link of a random overlay."""

    name = "flooding"

    def __init__(self, degree: int = 4):
        self.degree = check_integer("degree", degree, minimum=1)

    def _disseminate(self, n, alive, source, rng):
        # Build the overlay: each member picks `degree` neighbours; links are
        # symmetric, so the adjacency is the union of both directions.
        neighbours: list[set[int]] = [set() for _ in range(n)]
        for member in range(n):
            picks = sample_distinct(rng, n, min(self.degree, n - 1), exclude=member)
            for peer in picks:
                neighbours[member].add(int(peer))
                neighbours[int(peer)].add(member)

        delivered = np.zeros(n, dtype=bool)
        delivered[source] = True
        messages = 0
        rounds = 0
        frontier = [source]
        while frontier:
            rounds += 1
            next_frontier: list[int] = []
            for member in frontier:
                if not alive[member] and member != source:
                    continue
                for peer in neighbours[member]:
                    messages += 1
                    if not delivered[peer]:
                        delivered[peer] = True
                        if alive[peer]:
                            next_frontier.append(peer)
            frontier = next_frontier
        return delivered, messages, rounds

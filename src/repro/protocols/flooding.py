"""Deterministic flooding over a random overlay.

Flooding forwards the message on every overlay link exactly once.  On a
connected overlay it reaches every nonfailed member that remains connected to
the source, so it is the reliability upper bound for a given overlay — at the
cost of ``O(n · degree)`` messages.  It anchors the protocol comparison: the
interesting question for gossip protocols is how close they get to flooding's
reliability at a fraction of its message cost.

The overlay is a random regular-ish graph: every member links to ``degree``
uniformly chosen peers (links are used bidirectionally, as overlay links are).

The batched hook realises all ``R`` overlays with one
:func:`repro.utils.sampling.sample_distinct_rows_excluding` draw (the same
kernel the graph-percolation ensemble uses), symmetrises them into one
block-diagonal CSR adjacency in chunk-global node ids (replica ``r``'s member
``i`` is ``r·n + i`` — components never span replicas), and floods every
replica simultaneously with vectorised frontier waves.
"""

from __future__ import annotations

import numpy as np
from scipy import sparse

from repro.protocols.base import Protocol
from repro.simulation.churn import ChurnScheduleBatch
from repro.simulation.latency import DeliveryTimePlane
from repro.simulation.membership import sample_distinct
from repro.simulation.network import NetworkModel
from repro.utils.sampling import sample_distinct_rows_excluding
from repro.utils.validation import check_integer

__all__ = ["FloodingProtocol"]


class FloodingProtocol(Protocol):
    """Flood the message over every link of a random overlay."""

    name = "flooding"

    def __init__(self, degree: int = 4) -> None:
        self.degree = check_integer("degree", degree, minimum=1)

    def _disseminate(
        self,
        n: int,
        alive: np.ndarray,
        source: int,
        rng: np.random.Generator,
        network: NetworkModel | None = None,
    ) -> tuple[np.ndarray, int, int]:
        # Build the overlay: each member picks `degree` neighbours; links are
        # symmetric, so the adjacency is the union of both directions.
        neighbours: list[set[int]] = [set() for _ in range(n)]
        for member in range(n):
            picks = sample_distinct(rng, n, min(self.degree, n - 1), exclude=member)
            for peer in picks:
                neighbours[member].add(int(peer))
                neighbours[int(peer)].add(member)

        delivered = np.zeros(n, dtype=bool)
        delivered[source] = True
        messages = 0
        rounds = 0
        frontier = [source]
        while frontier:
            rounds += 1
            next_frontier: list[int] = []
            for member in frontier:
                if not alive[member] and member != source:
                    continue
                peers = sorted(neighbours[member])
                messages += len(peers)
                if network is not None:
                    keep = network.draw_loss(rng, len(peers))
                    peers = [peer for peer, kept in zip(peers, keep, strict=True) if kept]
                for peer in peers:
                    if not delivered[peer]:
                        delivered[peer] = True
                        if alive[peer]:
                            next_frontier.append(peer)
            frontier = next_frontier
        return delivered, messages, rounds

    def _disseminate_batch(
        self,
        n: int,
        alive: np.ndarray,
        source: int,
        rng: np.random.Generator,
        network: NetworkModel | None = None,
        churn: ChurnScheduleBatch | None = None,
        latency: DeliveryTimePlane | None = None,
    ) -> tuple[np.ndarray, ...]:
        repetitions = int(alive.shape[0])
        cells = repetitions * n
        degree = min(self.degree, n - 1)

        # One batched draw realises every replica's overlay picks; the
        # chunk-global arc list is then symmetrised and deduplicated (the
        # scalar engine's neighbour *sets* collapse reciprocal picks).  The
        # COO→CSR conversion merges duplicate arcs in one C-level pass —
        # an order of magnitude cheaper than sorting 64-bit arc keys.
        members = np.tile(np.arange(n, dtype=np.int64), repetitions)
        picks, valid = sample_distinct_rows_excluding(
            rng, n, np.full(cells, degree, dtype=np.int64), members
        )
        row_ids = np.arange(cells, dtype=np.int64)
        src = np.repeat(row_ids, degree)
        dst = picks[valid].astype(np.int64, copy=False) + np.repeat(row_ids - members, degree)
        overlay = sparse.coo_matrix(
            (
                np.ones(2 * src.size, dtype=np.int8),
                (
                    np.concatenate([src, dst]).astype(np.int32, copy=False),
                    np.concatenate([dst, src]).astype(np.int32, copy=False),
                ),
            ),
            shape=(cells, cells),
        ).tocsr()
        indptr = overlay.indptr
        arc_dst = overlay.indices
        neighbour_counts = np.diff(indptr)

        delivered = np.zeros(cells, dtype=bool)
        alive_flat = alive.ravel()
        messages = np.zeros(repetitions, dtype=np.int64)
        dropped = np.zeros(repetitions, dtype=np.int64)
        rounds = np.zeros(repetitions, dtype=np.int64)

        frontier = np.arange(repetitions, dtype=np.int64) * n + source
        delivered[frontier] = True
        round_index = 0
        while frontier.size or (latency is not None and latency.has_pending()):
            round_index += 1
            present_flat = None
            if churn is not None:
                # Members that left the group stop flooding their links.
                present_flat = churn.present_at(round_index).ravel()
                frontier = frontier[present_flat[frontier]]
                if not frontier.size and (latency is None or not latency.has_pending()):
                    break
            active = np.bincount(frontier // n, minlength=repetitions) > 0
            if latency is not None:
                # Waves still in flight keep their replica's clock running.
                active |= latency.pending_mask()
            rounds += active
            targets = np.zeros(0, dtype=np.int64)
            if frontier.size:
                frontier_replica = frontier // n
                fanout = neighbour_counts[frontier].astype(np.int64, copy=False)
                messages += np.bincount(
                    frontier_replica, weights=fanout, minlength=repetitions
                ).astype(np.int64)
                total = int(fanout.sum())
                if total:
                    # Gather every frontier member's neighbour slice in one pass.
                    positions = (
                        np.arange(total, dtype=np.int64)
                        - np.repeat(np.cumsum(fanout) - fanout, fanout)
                        + np.repeat(indptr[frontier], fanout)
                    )
                    targets = arc_dst[positions].astype(np.int64, copy=False)
                    if network is not None:
                        # Thin the wave: each link transmission is dropped
                        # independently; a dropped arc is never retried
                        # (flooding forwards on every link exactly once).
                        keep, dropped_round = network.draw_loss_batch(
                            rng, targets // n, repetitions
                        )
                        dropped += dropped_round
                        targets = targets[keep]
                    if present_flat is not None:
                        # Links into currently-absent peers waste the send:
                        # counted as sent above, but never booked as drops.
                        targets = targets[present_flat[targets]]
            if latency is not None:
                # Per-link latency draws; slow links re-emerge as matured
                # arrivals in a later round (re-checked against that round's
                # churn view).
                targets, times, _ = latency.schedule(round_index - 1, targets, rng)
                if present_flat is not None and targets.size:
                    keep = present_flat[targets]
                    targets = targets[keep]
                    times = times[keep]
                fresh_mask = ~delivered[targets]
                latency.record(targets[fresh_mask], times[fresh_mask])
            fresh = np.unique(targets)
            fresh = fresh[~delivered[fresh]]
            delivered[fresh] = True
            frontier = fresh[alive_flat[fresh]]
        return delivered.reshape(repetitions, n), messages, dropped, rounds

"""HyParView-style peer sampling: gossip over a self-repairing partial view.

Leitão, Pereira and Rodrigues' HyParView maintains two bounded views per
member: a small **active view** over which all payload gossip travels, and a
larger **passive view** kept as a reservoir of backup peers.  When a send
over an active-view link fails (the peer left the group), the member promotes
a random passive-view entry into the broken slot; a periodic **shuffle**
exchanges entries between the views so the passive reservoir stays fresh.
This is the canonical answer to the failure mode :class:`UniformPartialView`
exhibits under churn — frozen views pointing at departed peers — and the
protocol this module adds is the zoo's representative of that family:

* dissemination is plain round-based push gossip (like
  :class:`~repro.protocols.lpbcast.LpbcastProtocol`) but over the *active*
  view only;
* every send to a currently-absent peer is detected (a broken TCP link, in
  HyParView terms) and repaired on the spot from the passive view;
* every ``shuffle_interval`` rounds, each group member swaps one random
  active entry for one random passive entry, at the cost of one control
  message — so the membership service has nonzero message cost even when
  nobody is churning, exactly as in the real protocol.

Under zero churn no link ever breaks, so the repair machinery never draws
randomness and the protocol degrades to "lpbcast with a smaller, slowly
shuffling view".  Under churn the repair path is what separates it from a
static partial view: the ``churn_resilience`` experiment checks it degrades
no faster than lpbcast's frozen views.

The batched hook also measures the membership service itself and stores the
results on ``last_batch_stats``:

* ``view_staleness`` — mean fraction of in-group members' active-view slots
  pointing at absent peers, per round (before repairs);
* ``repairs`` — total broken links repaired from passive views;
* ``repair_latency`` — mean rounds a broken slot stayed stale before its
  repair (stale-slot-rounds / repairs), the time-to-repair proxy.
"""

from __future__ import annotations

import numpy as np

from repro.protocols.base import Protocol
from repro.simulation.churn import ChurnScheduleBatch
from repro.simulation.latency import DeliveryTimePlane
from repro.simulation.membership import sample_distinct
from repro.simulation.network import NetworkModel
from repro.utils.sampling import sample_distinct_rows, sample_distinct_rows_excluding
from repro.utils.validation import check_integer

__all__ = ["HyParViewProtocol"]


class HyParViewProtocol(Protocol):
    """Push gossip over bounded active views with passive-view repair and shuffle."""

    name = "hyparview"

    def __init__(
        self,
        fanout: int = 3,
        rounds: int = 8,
        active_size: int = 5,
        passive_size: int = 30,
        shuffle_interval: int = 1,
    ) -> None:
        self.fanout = check_integer("fanout", fanout, minimum=1)
        self.rounds = check_integer("rounds", rounds, minimum=1)
        self.active_size = check_integer("active_size", active_size, minimum=1)
        self.passive_size = check_integer("passive_size", passive_size, minimum=1)
        self.shuffle_interval = check_integer("shuffle_interval", shuffle_interval, minimum=1)
        #: membership-service measurements of the last batched run (dict with
        #: ``view_staleness``, ``repairs``, ``repair_latency``) — ``None``
        #: until ``_disseminate_batch`` executes.
        self.last_batch_stats: dict | None = None

    def _draw_views(self, n: int, rng: np.random.Generator) -> tuple[np.ndarray, np.ndarray]:
        """Draw one member's initial (active, passive) view rows."""
        active = sample_distinct(rng, n, min(self.active_size, n - 1))
        passive = sample_distinct(rng, n, min(self.passive_size, n - 1))
        return active, passive

    def _disseminate(
        self,
        n: int,
        alive: np.ndarray,
        source: int,
        rng: np.random.Generator,
        network: NetworkModel | None = None,
    ) -> tuple[np.ndarray, int, int]:
        active_size = min(self.active_size, n - 1)
        passive_size = min(self.passive_size, n - 1)
        fanout = min(self.fanout, active_size)
        active_view = np.empty((n, active_size), dtype=np.int64)
        passive_view = np.empty((n, passive_size), dtype=np.int64)
        for member in range(n):
            active_view[member] = sample_distinct(rng, n, active_size, exclude=member)
            passive_view[member] = sample_distinct(rng, n, passive_size, exclude=member)

        has_message = np.zeros(n, dtype=bool)
        has_message[source] = True
        messages = 0
        rounds_executed = 0
        for round_index in range(1, self.rounds + 1):
            rounds_executed += 1
            holders = np.flatnonzero(has_message & alive)
            if holders.size == 0:
                break
            newly: list[int] = []
            for member in holders:
                slots = sample_distinct(rng, active_size, fanout)
                targets = active_view[member, slots]
                messages += int(targets.size)
                if network is not None:
                    targets = targets[network.draw_loss(rng, targets.size)]
                for target in targets:
                    target = int(target)
                    if alive[target] and not has_message[target]:
                        newly.append(target)
            if newly:
                has_message[np.array(newly, dtype=np.int64)] = True
            # Periodic shuffle: every nonfailed member swaps one random
            # active entry for one random passive entry (one control message
            # each) — the membership service runs group-wide, holders or not.
            if round_index % self.shuffle_interval == 0:
                for member in np.flatnonzero(alive):
                    slot = int(rng.integers(active_size))
                    pick = int(rng.integers(passive_size))
                    active_view[member, slot], passive_view[member, pick] = (
                        passive_view[member, pick],
                        active_view[member, slot],
                    )
                    messages += 1
        return has_message, messages, rounds_executed

    def _disseminate_batch(
        self,
        n: int,
        alive: np.ndarray,
        source: int,
        rng: np.random.Generator,
        network: NetworkModel | None = None,
        churn: ChurnScheduleBatch | None = None,
        latency: DeliveryTimePlane | None = None,
    ) -> tuple[np.ndarray, ...]:
        repetitions = int(alive.shape[0])
        active_size = min(self.active_size, n - 1)
        passive_size = min(self.passive_size, n - 1)
        fanout = min(self.fanout, active_size)
        cells_total = repetitions * n
        members = np.tile(np.arange(n, dtype=np.int64), repetitions)

        # One batched draw per view kind realises every replica's initial
        # assignment (the batched analogue of the scalar per-member loop).
        picks, _ = sample_distinct_rows_excluding(
            rng, n, np.full(cells_total, active_size, dtype=np.int64), members
        )
        active_view = picks.astype(np.int64, copy=False).reshape(repetitions, n, active_size)
        picks, _ = sample_distinct_rows_excluding(
            rng, n, np.full(cells_total, passive_size, dtype=np.int64), members
        )
        passive_view = picks.astype(np.int64, copy=False).reshape(
            repetitions, n, passive_size
        )

        has_message = np.zeros((repetitions, n), dtype=bool)
        has_message[:, source] = True
        has_flat = has_message.ravel()
        alive_flat = alive.ravel()
        messages = np.zeros(repetitions, dtype=np.int64)
        dropped = np.zeros(repetitions, dtype=np.int64)
        rounds = np.zeros(repetitions, dtype=np.int64)

        staleness: list[float] = []
        repairs = 0
        stale_slot_rounds = 0
        active = np.ones(repetitions, dtype=bool)
        for round_index in range(1, self.rounds + 1):
            if latency is not None:
                # Pushes still in flight keep their replica's clock running.
                active = active | latency.pending_mask()
            if not active.any():
                break
            present = present_flat = None
            if churn is not None:
                present = churn.present_at(round_index)
                present_flat = present.ravel()
                # Staleness is measured over the active-view slots of
                # in-group nonfailed members, before this round's repairs.
                rep_m, mem_m = np.nonzero(alive & present)
                if rep_m.size:
                    slots_view = active_view[rep_m, mem_m]
                    stale = ~present[rep_m[:, None], slots_view]
                    staleness.append(float(stale.mean()))
                    stale_slot_rounds += int(stale.sum())
            rounds += active
            holders = has_message & alive & active[:, None]
            if present is not None:
                holders &= present
            active &= holders.any(axis=1)
            rep_idx, mem_idx = np.nonzero(holders & active[:, None])
            landed = np.empty(0, dtype=np.int64)
            if rep_idx.size:
                slot_idx, _ = sample_distinct_rows(
                    rng, active_size, np.full(rep_idx.size, fanout, dtype=np.int64)
                )
                slot_idx = slot_idx.astype(np.int64, copy=False)
                targets = np.take_along_axis(
                    active_view[rep_idx, mem_idx], slot_idx, axis=1
                ).ravel()
                target_replica = np.repeat(rep_idx, fanout)
                messages += np.bincount(target_replica, minlength=repetitions)
                cells = target_replica * n + targets
                arrived = np.ones(cells.size, dtype=bool)
                if present_flat is not None:
                    # A send to a departed peer fails like a broken TCP link:
                    # the sender detects it (independently of message loss)
                    # and promotes a random passive entry into that slot.
                    broken = ~present_flat[cells]
                    if broken.any():
                        b_idx = np.flatnonzero(broken)
                        b_rep = target_replica[b_idx]
                        b_mem = np.repeat(mem_idx, fanout)[b_idx]
                        b_slot = slot_idx.ravel()[b_idx]
                        promoted = rng.integers(passive_size, size=b_idx.size)
                        active_view[b_rep, b_mem, b_slot] = passive_view[
                            b_rep, b_mem, promoted
                        ]
                        repairs += int(b_idx.size)
                        arrived &= ~broken
                if network is not None:
                    keep, dropped_round = network.draw_loss_batch(
                        rng, target_replica, repetitions
                    )
                    dropped += dropped_round
                    arrived &= keep
                landed = cells[arrived]
            if latency is not None:
                # Per-push latency draws; slow pushes land in the round they
                # mature (re-checked against that round's churn view).  Link
                # repair and shuffling are the membership service's local
                # bookkeeping and stay untimed.
                landed, push_times, _ = latency.schedule(round_index - 1, landed, rng)
                if present_flat is not None and landed.size:
                    keep = present_flat[landed]
                    landed = landed[keep]
                    push_times = push_times[keep]
                fresh_mask = alive_flat[landed] & ~has_flat[landed]
                latency.record(landed[fresh_mask], push_times[fresh_mask])
            if landed.size:
                fresh = np.unique(landed[alive_flat[landed] & ~has_flat[landed]])
                has_flat[fresh] = True
                if latency is not None:
                    # A matured push can hand the message to a replica whose
                    # holders had all departed; the new holder re-activates it.
                    active = active | (np.bincount(fresh // n, minlength=repetitions) > 0)
            # Periodic shuffle: every in-group nonfailed member swaps one
            # random active slot with one random passive entry, at one
            # control message each.
            if round_index % self.shuffle_interval == 0:
                participants = alive if present is None else alive & present
                rep_s, mem_s = np.nonzero(participants)
                if rep_s.size:
                    slot = rng.integers(active_size, size=rep_s.size)
                    pick = rng.integers(passive_size, size=rep_s.size)
                    swapped_out = active_view[rep_s, mem_s, slot].copy()
                    active_view[rep_s, mem_s, slot] = passive_view[rep_s, mem_s, pick]
                    passive_view[rep_s, mem_s, pick] = swapped_out
                    messages += np.bincount(rep_s, minlength=repetitions)

        if latency is not None:
            # Pushes still in flight at the horizon arrive anyway.
            cells, times, _ = latency.drain()
            fresh_mask = alive_flat[cells] & ~has_flat[cells]
            latency.record(cells[fresh_mask], times[fresh_mask])
            has_flat[cells[fresh_mask]] = True
        self.last_batch_stats = {
            "view_staleness": float(np.mean(staleness)) if staleness else 0.0,
            "repairs": int(repairs),
            "repair_latency": (stale_slot_rounds / repairs) if repairs else 0.0,
        }
        return has_message, messages, dropped, rounds

"""The paper's general gossip algorithm wrapped in the common protocol interface.

Functionally identical to :func:`repro.simulation.gossip.simulate_gossip_once`;
exposing it as a :class:`~repro.protocols.base.Protocol` lets the baseline
comparison benchmark treat "the paper's algorithm" as just another row of the
protocol table.
"""

from __future__ import annotations

from repro.core.distributions import FanoutDistribution
from repro.protocols.base import Protocol
from repro.simulation.churn import ChurnScheduleBatch
from repro.simulation.failures import FailurePattern
from repro.simulation.gossip import simulate_gossip_batch, simulate_gossip_once
from repro.simulation.latency import DeliveryTimePlane
from repro.simulation.network import NetworkModel

__all__ = ["RandomFanoutGossip"]


class RandomFanoutGossip(Protocol):
    """Push gossip with a per-member random fanout drawn from a distribution."""

    name = "random-fanout"

    def __init__(self, distribution: FanoutDistribution) -> None:
        if not isinstance(distribution, FanoutDistribution):
            raise TypeError(
                f"distribution must be a FanoutDistribution, got {type(distribution).__name__}"
            )
        self.distribution = distribution

    def _disseminate(
        self,
        n: int,
        alive: np.ndarray,
        source: int,
        rng: np.random.Generator,
        network: NetworkModel | None = None,
    ) -> tuple[np.ndarray, int, int]:
        import numpy as np

        pattern = FailurePattern(alive=alive, timing=np.full(n, None, dtype=object))
        execution = simulate_gossip_once(
            n,
            self.distribution,
            q=1.0,  # failures are supplied through the explicit pattern
            source=source,
            seed=rng,
            failure_pattern=pattern,
            network=network,
        )
        return execution.delivered, execution.messages_sent, execution.rounds

    def _disseminate_batch(
        self,
        n: int,
        alive: np.ndarray,
        source: int,
        rng: np.random.Generator,
        network: NetworkModel | None = None,
        churn: ChurnScheduleBatch | None = None,
        latency: DeliveryTimePlane | None = None,
    ) -> tuple[np.ndarray, ...]:
        result = simulate_gossip_batch(
            n,
            self.distribution,
            1.0,  # failures are supplied through the explicit masks
            repetitions=int(alive.shape[0]),
            source=source,
            seed=rng,
            alive=alive,
            network=network,
            churn=churn,
            latency=latency,
        )
        return result.delivered, result.messages_sent, result.messages_dropped, result.rounds

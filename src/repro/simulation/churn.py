"""Dynamic-membership churn: time-varying join/leave event planes.

The paper (and every engine in this repository until now) assumes a *static*
membership: the group is fixed before dissemination starts and only fail-stop
crashes remove members from the computation.  Production gossip systems run
under **churn** — nodes join and leave *while* a message is disseminating —
and gossip over bounded partial views maintained by a peer-sampling service
(the HyParView/Brahms family).  This module supplies the churn half of that
picture as a compact batched event plane, mirroring the design of
:class:`~repro.simulation.failures.FailurePatternBatch`:

* :class:`ChurnSchedule` / :class:`ChurnScheduleBatch` — realised join/leave
  schedules.  Instead of materialising an ``(R, n, T)`` per-round presence
  cube, a schedule stores two ``(R, n)`` integer planes — ``join_round`` and
  ``leave_round`` — from which the presence mask of *any* round is two
  comparisons (:meth:`ChurnScheduleBatch.present_at`).  Round indices are the
  engines' 1-based dissemination rounds; round 0 is the initial state (the
  pbcast broadcast, the gossip source's own infection).
* :class:`ChurnModel` — the abstract generator (sibling of
  :class:`~repro.simulation.failures.FailureModel`), with
  :class:`PoissonChurnModel` (independent geometric per-round join/leave
  hazards — the discrete-time Poisson process) and
  :class:`DeterministicChurnModel` (explicit event lists, for tests and
  engineered worst cases).

Churn composes with, and is orthogonal to, the crash plane: ``alive`` masks
say who *fail-stops* (receives but never forwards), presence masks say who is
*in the group at all* at a given round.  A member counts for the
churn-resilience metrics only as a **survivor** — nonfailed *and* present
when dissemination ends.

Determinism discipline (the same one PR 4 established for message loss):
**zero churn draws no randomness**.  A :class:`PoissonChurnModel` with all
rates at zero consumes nothing from the generator and returns a *trivial*
schedule, and the engines skip the churn plane entirely for trivial
schedules — so churn-aware runs at rate 0 are bit-for-bit identical to the
static-membership path at the same seed
(``tests/protocols/test_protocol_churn.py`` pins exactly that for the whole
protocol zoo).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

import numpy as np

from repro.utils.rng import as_generator
from repro.utils.validation import check_integer, check_probability

__all__ = [
    "NEVER",
    "ChurnSchedule",
    "ChurnScheduleBatch",
    "ChurnModel",
    "PoissonChurnModel",
    "DeterministicChurnModel",
]

#: Sentinel round index meaning "this event never happens": members with
#: ``join_round == NEVER`` never join, members with ``leave_round == NEVER``
#: never leave.  Any realistic round horizon is far below it.
NEVER = np.int64(np.iinfo(np.int32).max)


def _check_plane_args(n: int, source: int) -> None:
    """Cheap per-draw argument guard (two comparisons, no helper chain)."""
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    if not 0 <= source < n:
        raise ValueError(f"source must be in [0, {n}), got {source}")


@dataclass(frozen=True)
class ChurnSchedule:
    """A realised join/leave schedule for one execution.

    Attributes
    ----------
    join_round:
        ``(n,)`` integer round at which each member joins the group.
        ``0`` means present from the start; :data:`NEVER` means the member
        never joins.
    leave_round:
        ``(n,)`` integer round from which each member is gone.  A member is
        present during round ``t`` iff ``join_round <= t < leave_round``;
        :data:`NEVER` means the member never leaves.
    """

    join_round: np.ndarray
    leave_round: np.ndarray

    @property
    def n(self) -> int:
        """Return the group size ``n``."""
        return int(self.join_round.shape[0])

    def is_trivial(self) -> bool:
        """Return True iff no member ever joins late or leaves (static group)."""
        return not (self.join_round.any() or (self.leave_round != NEVER).any())

    def present_at(self, round_index: int) -> np.ndarray:
        """Return the ``(n,)`` presence mask during round ``round_index``."""
        return (self.join_round <= round_index) & (self.leave_round > round_index)


@dataclass(frozen=True)
class ChurnScheduleBatch:
    """``R`` realised join/leave schedules as ``(R, n)`` integer planes.

    The batched analogue of :class:`ChurnSchedule` with a leading replica
    axis — the input the churn-aware batched engines consume.  Storing event
    *rounds* instead of per-round presence masks keeps the plane at
    ``2·R·n`` integers regardless of the round horizon.
    """

    join_round: np.ndarray
    leave_round: np.ndarray

    @property
    def repetitions(self) -> int:
        """Return the number of replicas ``R``."""
        return int(self.join_round.shape[0])

    @property
    def n(self) -> int:
        """Return the group size ``n``."""
        return int(self.join_round.shape[1])

    def is_trivial(self) -> bool:
        """Return True iff no replica has any join/leave event (static group)."""
        return not (self.join_round.any() or (self.leave_round != NEVER).any())

    def present_at(self, round_index: int) -> np.ndarray:
        """Return the ``(R, n)`` presence masks during round ``round_index``."""
        return (self.join_round <= round_index) & (self.leave_round > round_index)

    def present_at_rounds(self, rounds: np.ndarray) -> np.ndarray:
        """Return per-replica presence at a per-replica round, shape ``(R, n)``.

        ``rounds[r]`` is the round index at which replica ``r`` is probed —
        typically the replica's final dissemination round, which makes the
        result the replica's **survivor** candidates (combine with ``alive``
        for the actual survivors).
        """
        rounds = np.asarray(rounds, dtype=np.int64)[:, None]
        return (self.join_round <= rounds) & (self.leave_round > rounds)

    def schedule(self, replica: int) -> ChurnSchedule:
        """Return one replica as a scalar :class:`ChurnSchedule` record."""
        replica = check_integer("replica", replica, minimum=0, maximum=self.repetitions - 1)
        return ChurnSchedule(
            join_round=self.join_round[replica].copy(),
            leave_round=self.leave_round[replica].copy(),
        )


def trivial_schedule_batch(n: int, repetitions: int) -> ChurnScheduleBatch:
    """Return the static-membership schedule (everyone present forever)."""
    return ChurnScheduleBatch(
        join_round=np.zeros((repetitions, n), dtype=np.int64),
        leave_round=np.full((repetitions, n), NEVER, dtype=np.int64),
    )


class ChurnModel(ABC):
    """Abstract generator of join/leave schedules."""

    @abstractmethod
    def draw_batch(
        self, n: int, repetitions: int, rng: np.random.Generator, *, source: int = 0
    ) -> ChurnScheduleBatch:
        """Draw ``repetitions`` independent schedules as ``(R, n)`` planes.

        Implementations must keep the source present throughout (the paper's
        "source never fails" assumption extends to "the source never
        churns"), and must consume **no randomness** when the model is
        configured for zero churn, so rate-0 runs stay bit-identical to the
        static path.
        """

    def draw(self, n: int, rng: np.random.Generator, *, source: int = 0) -> ChurnSchedule:
        """Draw one scalar schedule (a single-replica batch draw)."""
        return self.draw_batch(n, 1, rng, source=source).schedule(0)


@dataclass(frozen=True)
class PoissonChurnModel(ChurnModel):
    """Independent geometric join/leave hazards (discrete-time Poisson churn).

    Every non-source member independently:

    * starts **absent** with probability ``initially_absent`` and joins at a
      geometric time with per-round hazard ``join_rate`` (never, when
      ``join_rate`` is 0 — the member sat out this dissemination);
    * once present, stays for a geometric lifetime with per-round hazard
      ``leave_rate`` counted from its join round (never leaves at rate 0).

    With all three parameters at zero the draw consumes no randomness and
    returns a trivial (static) schedule — the bit-identity discipline the
    engines rely on.

    Parameters
    ----------
    leave_rate:
        Per-round probability that a present member leaves before the next
        round (the churn knob the ``churn_resilience`` experiment sweeps).
    join_rate:
        Per-round join probability of an initially-absent member.
    initially_absent:
        Fraction of members (in expectation) absent when dissemination
        starts — the join pool.
    """

    leave_rate: float = 0.0
    join_rate: float = 0.0
    initially_absent: float = 0.0

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "leave_rate", check_probability("leave_rate", self.leave_rate, allow_one=False)
        )
        object.__setattr__(
            self, "join_rate", check_probability("join_rate", self.join_rate, allow_one=False)
        )
        object.__setattr__(
            self, "initially_absent", check_probability("initially_absent", self.initially_absent)
        )

    def is_zero(self) -> bool:
        """Return True iff this model can only produce trivial schedules."""
        return self.leave_rate == 0.0 and self.initially_absent == 0.0

    # repro: zero-draw(is_zero)
    def draw_batch(
        self, n: int, repetitions: int, rng: np.random.Generator, *, source: int = 0
    ) -> ChurnScheduleBatch:
        _check_plane_args(n, source)
        if repetitions < 1:
            raise ValueError(f"repetitions must be >= 1, got {repetitions}")
        if self.is_zero():
            return trivial_schedule_batch(n, repetitions)
        rng = as_generator(rng)
        shape = (repetitions, n)
        join_round = np.zeros(shape, dtype=np.int64)
        if self.initially_absent > 0.0:
            absent = rng.random(shape) < self.initially_absent
            if self.join_rate > 0.0:
                # Geometric support is 1, 2, ... — an initially-absent member
                # joins at the earliest in round 1.
                joins = rng.geometric(self.join_rate, size=shape).astype(np.int64)
            else:
                joins = np.full(shape, NEVER, dtype=np.int64)
            join_round = np.where(absent, joins, 0)
        if self.leave_rate > 0.0:
            # Lifetimes are counted from the join round so late joiners are
            # not penalised by an absolute leave clock; the sum is clipped
            # back to the NEVER sentinel for never-joining members.
            lifetime = rng.geometric(self.leave_rate, size=shape).astype(np.int64)
            leave_round = np.minimum(join_round + lifetime, NEVER)
        else:
            leave_round = np.full(shape, NEVER, dtype=np.int64)
        join_round[:, source] = 0
        leave_round[:, source] = NEVER
        return ChurnScheduleBatch(join_round=join_round, leave_round=leave_round)


@dataclass(frozen=True)
class DeterministicChurnModel(ChurnModel):
    """Explicit join/leave event lists, replayed identically in every replica.

    Useful in tests and in engineered worst cases (e.g. tearing down a whole
    region at round 2).  Events are ``(round, member)`` pairs: ``joins``
    marks members absent until their join round, ``leaves`` removes members
    from their leave round onward.  The source cannot be scheduled away.
    """

    joins: tuple[tuple[int, int], ...] = ()
    leaves: tuple[tuple[int, int], ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "joins", tuple((int(r), int(m)) for r, m in self.joins))
        object.__setattr__(self, "leaves", tuple((int(r), int(m)) for r, m in self.leaves))
        for name, events in (("joins", self.joins), ("leaves", self.leaves)):
            for round_index, _ in events:
                if round_index < 0:
                    raise ValueError(f"{name} round indices must be >= 0, got {round_index}")

    def draw_batch(
        self, n: int, repetitions: int, rng: np.random.Generator, *, source: int = 0
    ) -> ChurnScheduleBatch:
        _check_plane_args(n, source)
        if repetitions < 1:
            raise ValueError(f"repetitions must be >= 1, got {repetitions}")
        join_row = np.zeros(n, dtype=np.int64)
        leave_row = np.full(n, NEVER, dtype=np.int64)
        for round_index, member in self.joins:
            if 0 <= member < n:
                join_row[member] = round_index
        for round_index, member in self.leaves:
            if 0 <= member < n:
                leave_row[member] = min(leave_row[member], round_index)
        join_row[source] = 0
        leave_row[source] = NEVER
        return ChurnScheduleBatch(
            join_round=np.tile(join_row, (repetitions, 1)),
            leave_round=np.tile(leave_row, (repetitions, 1)),
        )

"""Result records and aggregation for simulation experiments.

Three levels of results exist:

* :class:`ExecutionMetrics` — what one execution of the gossip algorithm
  produced (reached members, message counts, rounds).
* :class:`ReliabilityEstimate` — aggregation of many independent executions
  of the same configuration (the paper's "run 20 times and average").
* :class:`SuccessCountResult` — the Figs. 6-7 object: the empirical
  distribution of the number of successful executions out of ``t``, together
  with the Binomial reference.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.success import success_count_pmf

__all__ = [
    "ExecutionMetrics",
    "ReliabilityEstimate",
    "SuccessCountResult",
    "summarize_executions",
]


@dataclass(frozen=True)
class ExecutionMetrics:
    """Metrics of a single execution of the gossip algorithm.

    Attributes
    ----------
    n:
        Group size.
    n_alive:
        Number of nonfailed members in this execution.
    n_reached_alive:
        Number of nonfailed members that received the message (including the
        source).
    reliability:
        ``n_reached_alive / n_alive`` — the paper's reliability of gossiping.
    rounds:
        Number of BFS levels (gossip hops) until dissemination died out.
    messages_sent:
        Total gossip messages sent by nonfailed members.
    duplicates:
        Messages received by members that already had the message.
    success:
        ``True`` iff every nonfailed member received the message.
    spread:
        ``True`` iff the dissemination "took off" (delivered more than
        ``max(10, sqrt(n))`` members) rather than dying out immediately —
        the epidemic-occurred indicator used for conditional averages.
    """

    n: int
    n_alive: int
    n_reached_alive: int
    reliability: float
    rounds: int
    messages_sent: int
    duplicates: int
    success: bool
    spread: bool = True


@dataclass(frozen=True)
class ReliabilityEstimate:
    """Monte-Carlo estimate of ``R(q, P)`` from repeated executions.

    ``samples`` keeps the per-execution reliabilities so downstream analysis
    (confidence intervals, comparison plots) does not need to re-simulate.
    """

    n: int
    q: float
    mean_fanout: float
    repetitions: int
    mean_reliability: float
    std_reliability: float
    mean_rounds: float
    mean_messages: float
    success_rate: float
    spread_rate: float
    conditional_on_spread: bool
    samples: np.ndarray = field(repr=False)

    def stderr(self) -> float:
        """Return the standard error of the mean reliability."""
        if self.repetitions <= 1:
            return 0.0
        return float(self.std_reliability / np.sqrt(self.repetitions))

    def confidence_interval(self, z: float = 1.96) -> tuple[float, float]:
        """Return a normal-approximation confidence interval for the mean."""
        half = z * self.stderr()
        return (max(0.0, self.mean_reliability - half), min(1.0, self.mean_reliability + half))


def summarize_executions(
    executions: list[ExecutionMetrics],
    *,
    n: int,
    q: float,
    mean_fanout: float,
    conditional_on_spread: bool = False,
) -> ReliabilityEstimate:
    """Aggregate per-execution metrics into a :class:`ReliabilityEstimate`.

    When ``conditional_on_spread`` is True the reliability statistics are
    computed only over executions whose dissemination took off (the
    epidemic-occurred convention that matches the analytical giant-component
    size); if no execution spread, the unconditional statistics are reported.
    The ``spread_rate`` is always computed over all executions.
    """
    if not executions:
        raise ValueError("cannot summarize an empty list of executions")
    spread_flags = np.array([e.spread for e in executions], dtype=bool)
    selected = executions
    if conditional_on_spread and spread_flags.any():
        selected = [e for e, s in zip(executions, spread_flags, strict=True) if s]
    samples = np.array([e.reliability for e in selected], dtype=float)
    rounds = np.array([e.rounds for e in selected], dtype=float)
    messages = np.array([e.messages_sent for e in selected], dtype=float)
    successes = np.array([e.success for e in executions], dtype=float)
    return ReliabilityEstimate(
        n=n,
        q=q,
        mean_fanout=mean_fanout,
        repetitions=len(selected),
        mean_reliability=float(samples.mean()),
        std_reliability=float(samples.std(ddof=1)) if len(selected) > 1 else 0.0,
        mean_rounds=float(rounds.mean()),
        mean_messages=float(messages.mean()),
        success_rate=float(successes.mean()),
        spread_rate=float(spread_flags.mean()),
        conditional_on_spread=bool(conditional_on_spread),
        samples=samples,
    )


@dataclass(frozen=True)
class SuccessCountResult:
    """Empirical distribution of the success count ``X`` (Figs. 6-7).

    Attributes
    ----------
    executions:
        ``t`` — executions per simulation (the paper uses 20).
    simulations:
        Number of independent simulations (the paper uses 100).
    counts:
        ``X`` for each simulation (length ``simulations``).
    empirical_pmf:
        ``P(X = k)`` estimated from ``counts`` for ``k = 0..executions``.
    analytical_reliability:
        The ``p_r`` used for the Binomial reference.
    analytical_pmf:
        The ``B(t, p_r)`` PMF (Eq. 5's underlying distribution).
    """

    executions: int
    simulations: int
    counts: np.ndarray
    empirical_pmf: np.ndarray
    analytical_reliability: float
    analytical_pmf: np.ndarray

    def mean_count(self) -> float:
        """Return the empirical mean of ``X``."""
        return float(self.counts.mean())

    def total_variation_distance(self) -> float:
        """Return the TV distance between the empirical and Binomial PMFs."""
        return 0.5 * float(np.abs(self.empirical_pmf - self.analytical_pmf).sum())


def build_success_count_result(
    counts: np.ndarray, executions: int, analytical_reliability: float
) -> SuccessCountResult:
    """Construct a :class:`SuccessCountResult` from raw success counts."""
    counts = np.asarray(counts, dtype=np.int64)
    if counts.size == 0:
        raise ValueError("counts must be non-empty")
    if np.any((counts < 0) | (counts > executions)):
        raise ValueError("counts must lie in [0, executions]")
    hist = np.bincount(counts, minlength=executions + 1).astype(float)
    empirical_pmf = hist / counts.size
    analytical_pmf = success_count_pmf(executions, analytical_reliability)
    return SuccessCountResult(
        executions=executions,
        simulations=int(counts.size),
        counts=counts,
        empirical_pmf=empirical_pmf,
        analytical_reliability=analytical_reliability,
        analytical_pmf=analytical_pmf,
    )

"""Discretised per-message latency plane for the batched engines.

The batched engines (:func:`repro.simulation.gossip.simulate_gossip_batch`,
:func:`repro.simulation.protocol_batch.simulate_protocol_batch`) advance in
lock-step rounds; the event-driven reference advances in continuous time.
This module bridges the two: a :class:`DeliveryTimePlane` owns per-member
delivery times for a whole ``(R, n)`` batch and discretises continuous
latency draws back onto the round clock via time-buckets.

Timeline convention
-------------------
Round ``r`` (0-based) starts at time ``r * round_period``; everything a
protocol sends during round ``r`` leaves at that instant.  A message with
latency ``l`` is delivered at ``r * round_period + l`` and becomes
*processable* at the end of round ``r + d - 1`` where
``d = max(1, ceil(l / round_period))`` — i.e. a message whose latency fits
inside one round period (including zero) is usable by its target from the
next round on, exactly like today's latency-free engines.  That makes the
plane **bit-identical to the latency-free engines whenever the sampler is a
constant no larger than the round period**: every message has ``d == 1``,
no bucket is ever populated, and a :class:`~repro.simulation.network.ConstantLatency`
sampler consumes no randomness.

Channels
--------
Protocols send more than one kind of message.  Eager payload pushes carry
the message itself and stamp delivery times; digests (pbcast round digests,
lazy-push IHAVEs, anti-entropy push-pull digests) only *trigger* a later
exchange.  The plane therefore keeps an independent bucket set per named
channel (``"payload"``, ``"digest"``, ...), each optionally carrying an
auxiliary integer array alongside the cell ids (e.g. the advertising
sender of each digest).  Intra-round round trips (pull requests, IWANT
retries) never enter a bucket: the hook draws their extra legs directly
with :meth:`DeliveryTimePlane.draw` and records ``send_time + request_leg +
response_leg``, preserving the engines' same-round recovery dynamics for
*any* latency law.

Cells are flat ids ``replica * n + member`` — the same addressing every
batched hook already uses.
"""

from __future__ import annotations

import numpy as np

from repro.simulation.network import NetworkModel

__all__ = ["DeliveryTimePlane", "delivery_percentiles", "percentile_label"]


def percentile_label(p: float) -> str:
    """Format a percentile as a compact key: 50 -> 'p50', 99.9 -> 'p999'."""
    return "p" + ("%g" % float(p)).replace(".", "")


def delivery_percentiles(
    delivery_times: np.ndarray,
    percentiles: tuple[float, ...] = (50.0, 99.0, 99.9),
) -> dict[str, float]:
    """Percentiles of the *finite* (delivered) entries of a delivery-time array.

    Undelivered members carry ``inf`` and are excluded — the percentiles
    describe time-to-delivery conditioned on delivery, which is the tail
    metric the latency experiments report (reliability itself is already a
    first-class result field).  All-undelivered input yields ``nan`` values.
    """
    times = np.asarray(delivery_times, dtype=float).ravel()
    finite = times[np.isfinite(times)]
    out: dict[str, float] = {}
    for p in percentiles:
        label = percentile_label(p)
        out[label] = float(np.percentile(finite, p)) if finite.size else float("nan")
    return out


class DeliveryTimePlane:
    """Per-member delivery clocks plus time-buckets for in-flight messages.

    One plane instance serves one batched execution of ``R`` replicas over
    ``n`` members.  Hooks interact with it through four verbs:

    ``schedule(round_index, cells, rng, channel=, aux=)``
        Draw one latency per cell (through
        :meth:`~repro.simulation.network.NetworkModel.draw_latency_batch`,
        so ``total_latency`` stays correct), bucket the slow ones, and
        return the batch *processable this round*: everything previously
        bucketed for ``round_index`` plus this call's same-round arrivals.
        Call it once per round per channel — with an empty ``cells`` when
        the protocol sent nothing but bucketed messages may be due.

    ``record(cells, times)``
        Fold arrival times into the per-member delivery clock
        (element-wise minimum).  Hooks call this for *payload* arrivals
        only, pre-filtered to not-yet-delivered members (``minimum.at`` is
        the slow path; fresh-only keeps it off the hot loop).

    ``draw(rng, count)``
        Raw latency draws for intra-round round trips (request + response
        legs of pulls and IWANTs).

    ``drain(channel=)``
        Pop every still-bucketed message of a channel.  At a protocol's
        round horizon, in-flight *payloads* still arrive (the budget bounds
        sending, not physics) so hooks drain and record them; in-flight
        digests are simply dropped — the exchange they would have triggered
        is never sent.

    ``finalize(delivered)`` reshapes the clock to ``(R, n)`` and scrubs
    members the engine does not count as delivered (e.g. dead at horizon)
    back to ``inf``.
    """

    def __init__(
        self,
        network: NetworkModel,
        repetitions: int,
        n: int,
        *,
        round_period: float = 1.0,
    ) -> None:
        if round_period <= 0.0:
            raise ValueError(f"round_period must be > 0, got {round_period!r}")
        self.network = network
        self.repetitions = int(repetitions)
        self.n = int(n)
        self.round_period = float(round_period)
        self._delivery = np.full(self.repetitions * self.n, np.inf)
        #: channel name -> {process_round: [(cells, times, aux), ...]}
        self._buckets: dict[str, dict[int, list]] = {}
        self._pending_per_replica = np.zeros(self.repetitions, dtype=np.int64)
        sampler = getattr(network, "latency", None)
        #: constant latency within one round period: every message is
        #: same-round processable, so the bucket machinery is never touched
        #: and the plane adds nothing but the (randomness-free) latency
        #: accounting — the bit-identity fast path.
        self.constant_fast_path = bool(getattr(sampler, "is_constant", False)) and (
            float(getattr(sampler, "value", np.inf)) <= self.round_period
        )

    # ------------------------------------------------------------------ time

    def send_time(self, round_index: int) -> float:
        """Instant at which round ``round_index`` (0-based) sends depart."""
        return float(round_index) * self.round_period

    def draw(self, rng: np.random.Generator, count: int) -> np.ndarray:
        """Raw latency draws (booked into ``total_latency``) for extra legs."""
        return self.network.draw_latency_batch(rng, count)

    # ------------------------------------------------------------- scheduling

    def schedule(
        self,
        round_index: int,
        cells: np.ndarray,
        rng: np.random.Generator,
        *,
        channel: str = "payload",
        aux: np.ndarray | None = None,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray | None]:
        """Launch ``cells`` in round ``round_index``; return what is due now.

        Returns ``(due_cells, due_times, due_aux)`` where ``due_aux`` is
        ``None`` when the channel carries no auxiliary data.  The due batch
        is previously bucketed messages maturing this round followed by
        this call's same-round arrivals; in the constant fast path it is
        exactly the input (order preserved, no copies beyond the times).
        """
        cells = np.asarray(cells, dtype=np.int64)
        delays = self.network.draw_latency_batch(rng, cells.size)
        times = self.send_time(round_index) + delays
        if self.constant_fast_path:
            return cells, times, aux

        if cells.size:
            rounds_delay = np.ceil(delays / self.round_period).astype(np.int64)
            np.maximum(rounds_delay, 1, out=rounds_delay)
            due_now = rounds_delay == 1
        else:
            due_now = np.zeros(0, dtype=bool)

        channel_buckets = self._buckets.setdefault(channel, {})
        if cells.size and not due_now.all():
            late = ~due_now
            late_cells = cells[late]
            process_rounds = round_index + rounds_delay[late] - 1
            late_times = times[late]
            late_aux = aux[late] if aux is not None else None
            order = np.argsort(process_rounds, kind="stable")
            bounds = np.flatnonzero(np.diff(process_rounds[order])) + 1
            for chunk in np.split(order, bounds):
                key = int(process_rounds[chunk[0]])
                channel_buckets.setdefault(key, []).append(
                    (
                        late_cells[chunk],
                        late_times[chunk],
                        late_aux[chunk] if late_aux is not None else None,
                    )
                )
            self._pending_per_replica += np.bincount(
                late_cells // self.n, minlength=self.repetitions
            )
            cells, times = cells[due_now], times[due_now]
            aux = aux[due_now] if aux is not None else None

        matured = channel_buckets.pop(round_index, None)
        if not matured:
            return cells, times, aux
        parts = matured + [(cells, times, aux)] if cells.size else matured
        due_cells = np.concatenate([p[0] for p in parts])
        due_times = np.concatenate([p[1] for p in parts])
        if aux is not None or any(p[2] is not None for p in matured):
            due_aux = np.concatenate(
                [p[2] if p[2] is not None else np.zeros(p[0].size, dtype=np.int64) for p in parts]
            )
        else:
            due_aux = None
        matured_cells = np.concatenate([p[0] for p in matured])
        self._pending_per_replica -= np.bincount(
            matured_cells // self.n, minlength=self.repetitions
        )
        return due_cells, due_times, due_aux

    def pending_mask(self) -> np.ndarray:
        """``(R,)`` bool: replicas with messages still in flight (any channel)."""
        return self._pending_per_replica > 0

    def has_pending(self) -> bool:
        """True while any message of any channel sits in a bucket."""
        return bool(self._pending_per_replica.any())

    def drain(
        self, channel: str = "payload"
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray | None]:
        """Pop everything still bucketed on ``channel``; return it raw.

        Returns ``(cells, times, aux)`` concatenated across all remaining
        buckets (``aux`` is ``None`` when the channel never carried any).
        The caller decides what the late arrivals mean — payload drains are
        recorded as deliveries; digest channels are typically *not* drained
        because the protocol that would answer them has stopped.
        """
        channel_buckets = self._buckets.get(channel)
        if not channel_buckets:
            return (
                np.zeros(0, dtype=np.int64),
                np.zeros(0, dtype=float),
                None,
            )
        parts = [entry for key in sorted(channel_buckets) for entry in channel_buckets[key]]
        channel_buckets.clear()
        cells = np.concatenate([p[0] for p in parts])
        times = np.concatenate([p[1] for p in parts])
        if any(p[2] is not None for p in parts):
            aux = np.concatenate(
                [p[2] if p[2] is not None else np.zeros(p[0].size, dtype=np.int64) for p in parts]
            )
        else:
            aux = None
        self._pending_per_replica -= np.bincount(cells // self.n, minlength=self.repetitions)
        return cells, times, aux

    # -------------------------------------------------------------- recording

    def record(self, cells: np.ndarray, times: np.ndarray) -> None:
        """Fold payload arrival times into the delivery clock (min-merge)."""
        cells = np.asarray(cells, dtype=np.int64)
        if cells.size:
            np.minimum.at(self._delivery, cells, np.asarray(times, dtype=float))

    def finalize(self, delivered: np.ndarray) -> np.ndarray:
        """Return the ``(R, n)`` delivery-time array, ``inf`` where undelivered."""
        out = self._delivery.reshape(self.repetitions, self.n).copy()
        out[~np.asarray(delivered, dtype=bool)] = np.inf
        return out

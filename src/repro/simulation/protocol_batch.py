"""Batched Monte-Carlo engine for the whole baseline-protocol zoo.

PR 1 proved that propagating all replicas of a Monte-Carlo experiment as
``(R, n)`` boolean masks removes the Python-interpreter round trips that
dominate per-replica simulation (10-50× on the paper's gossip process).
This module extends that treatment from the paper's algorithm to **every**
:class:`~repro.protocols.base.Protocol`:

* :func:`simulate_protocol_batch` is the dispatch entry point: it draws the
  failure patterns for all replicas in one vectorised pass (any
  :class:`~repro.simulation.failures.FailureModel` — uniform or targeted
  crashes, pre- or mid-execution :class:`~repro.simulation.failures.CrashTiming`)
  and hands the ``(R, n)`` alive masks to the protocol's
  ``_disseminate_batch`` hook;
* every bundled protocol implements that hook as an array program over the
  shared :mod:`repro.utils.sampling` kernels (flooding = one overlay build +
  frontier waves in chunk-global node ids, pbcast/lpbcast = buffered rounds
  with batched view sampling, RDG = batched push masks + pull masks per
  round), while the base class provides a scalar-replay fallback so any
  external subclass works unbatched;
* an optional :class:`~repro.simulation.network.NetworkModel` adds the
  vectorised message-loss plane: each round's flat send list is thinned with
  one independent Bernoulli draw
  (:meth:`~repro.simulation.network.NetworkModel.draw_loss_batch`) and the
  per-replica ``messages_sent`` / ``messages_dropped`` accounting surfaces on
  :class:`BatchProtocolResult`;
* the scalar :meth:`~repro.protocols.base.Protocol.run` stays the exact
  behavioural reference — ``tests/protocols/test_protocol_batch.py`` pins
  each batched protocol to its scalar pin through the shared statistical
  harness (``tests/helpers/statistical.py``).

Per-round helpers for the round-based protocols live here
(:func:`sample_group_targets_batch`) so the protocol modules stay readable
and every protocol consumes the same target-drawing law.
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from repro.simulation.churn import ChurnModel, ChurnScheduleBatch
from repro.simulation.failures import (
    FailureModel,
    FailurePatternBatch,
    UniformCrashModel,
)
from repro.simulation.latency import DeliveryTimePlane, delivery_percentiles
from repro.simulation.network import NetworkModel
from repro.utils.rng import SeedLike, as_generator
from repro.utils.sampling import sample_distinct_rows_excluding
from repro.utils.validation import check_integer, check_probability

if TYPE_CHECKING:
    from repro.protocols.base import Protocol, ProtocolResult

__all__ = [
    "BatchProtocolResult",
    "simulate_protocol_batch",
    "sample_group_targets_batch",
]


@dataclass(frozen=True)
class BatchProtocolResult:
    """Outcome of ``R`` replica runs of one protocol, propagated as a batch.

    Every attribute is the batched analogue of the corresponding
    :class:`~repro.protocols.base.ProtocolResult` field, with a leading
    replica axis.

    Attributes
    ----------
    protocol:
        Protocol name.
    n:
        Group size.
    source:
        Source member identifier (shared by all replicas).
    alive:
        ``(R, n)`` boolean masks of nonfailed members.
    delivered:
        ``(R, n)`` boolean masks of nonfailed members holding the message.
    messages_sent:
        ``(R,)`` total point-to-point messages per replica.
    messages_dropped:
        ``(R,)`` messages lost in transit per replica (all zero unless a
        lossy :class:`~repro.simulation.network.NetworkModel` was supplied).
    rounds:
        ``(R,)`` protocol rounds / gossip hops executed per replica.
    failure:
        The batch failure pattern the replicas ran under (crash timing
        included, for mid-execution-crash bookkeeping).
    present:
        Optional ``(R, n)`` masks of members still in the group when each
        replica's dissemination ended (``None`` for churn-free runs, where
        everyone is present throughout).  Together with ``alive`` this
        defines the **survivors** — the denominator of the churn-resilience
        metrics.
    control_messages_sent:
        Optional ``(R,)`` per-replica counts of control messages (digests,
        IHAVE/IWANT, pull requests) — the subset of ``messages_sent`` that
        carried no payload.  ``None`` for protocols that never distinguish
        control traffic (treated as all-payload).
    delivery_times:
        Optional ``(R, n)`` float array of first-receipt times on the round
        clock (``inf`` where undelivered).  Present when the batch ran with
        a network model *and* the protocol's batched hook supports the
        latency plane; ``None`` otherwise (notably for scalar-replay
        fallbacks, which honestly report that no times were tracked).
    """

    protocol: str
    n: int
    source: int
    alive: np.ndarray
    delivered: np.ndarray
    messages_sent: np.ndarray
    messages_dropped: np.ndarray
    rounds: np.ndarray
    failure: FailurePatternBatch
    present: np.ndarray | None = None
    control_messages_sent: np.ndarray | None = None
    delivery_times: np.ndarray | None = None

    @property
    def repetitions(self) -> int:
        """Return the number of replicas ``R``."""
        return int(self.alive.shape[0])

    def n_alive(self) -> np.ndarray:
        """Return the per-replica number of nonfailed members, shape ``(R,)``."""
        return self.alive.sum(axis=1)

    def n_delivered(self) -> np.ndarray:
        """Return the per-replica number of reached nonfailed members, shape ``(R,)``."""
        return self.delivered.sum(axis=1)

    def reliability(self) -> np.ndarray:
        """Return the per-replica delivered/alive ratio, shape ``(R,)``."""
        return self.n_delivered() / self.n_alive()

    def is_atomic(self) -> np.ndarray:
        """Return per-replica flags: every nonfailed member got the message."""
        return ~np.any(self.alive & ~self.delivered, axis=1)

    def messages_per_member(self) -> np.ndarray:
        """Return the per-replica message cost normalised by group size."""
        return self.messages_sent / self.n

    def drop_rate(self) -> np.ndarray:
        """Return the per-replica fraction of sent messages lost in transit."""
        sent = np.maximum(self.messages_sent, 1)
        return self.messages_dropped / sent

    def control_messages(self) -> np.ndarray:
        """Return ``(R,)`` control-message counts (zeros for all-payload protocols)."""
        if self.control_messages_sent is None:
            return np.zeros_like(self.messages_sent)
        return self.control_messages_sent

    def payload_messages_sent(self) -> np.ndarray:
        """Return ``(R,)`` payload-carrying message counts (total minus control)."""
        return self.messages_sent - self.control_messages()

    def payload_messages_per_member(self) -> np.ndarray:
        """Return the per-replica payload-only message cost normalised by group size."""
        return self.payload_messages_sent() / self.n

    def control_messages_per_member(self) -> np.ndarray:
        """Return the per-replica control-message cost normalised by group size."""
        return self.control_messages() / self.n

    def survivors(self) -> np.ndarray:
        """Return ``(R, n)`` masks of nonfailed members still present at the end.

        Without churn this is exactly ``alive``; under churn a member counts
        only if it neither crashed nor left before its replica's
        dissemination finished.
        """
        if self.present is None:
            return self.alive
        return self.alive & self.present

    def n_survivors(self) -> np.ndarray:
        """Return the per-replica number of survivors, shape ``(R,)``."""
        return self.survivors().sum(axis=1)

    def survivor_fraction(self) -> np.ndarray:
        """Return the per-replica fraction of nonfailed members that survived churn."""
        return self.n_survivors() / np.maximum(self.n_alive(), 1)

    def reliability_among_survivors(self) -> np.ndarray:
        """Return the per-replica delivered/survivor ratio, shape ``(R,)``.

        The churn-resilience headline metric: of the members that were still
        nonfailed *and present* when dissemination ended, how many hold the
        message?  Members that received and then left neither help nor hurt.
        Identical to :meth:`reliability` for churn-free runs.
        """
        survivors = self.survivors()
        return (self.delivered & survivors).sum(axis=1) / np.maximum(
            survivors.sum(axis=1), 1
        )

    def delivery_percentiles(
        self, percentiles: tuple[float, ...] = (50.0, 99.0, 99.9)
    ) -> dict[str, float]:
        """Pooled delivery-time percentiles across all replicas (p50/p99/p999)."""
        if self.delivery_times is None:
            raise ValueError(
                "no delivery times recorded: run the batch with a network model "
                "and a latency-capable protocol hook"
            )
        return delivery_percentiles(self.delivery_times, percentiles)

    def result(self, replica: int) -> ProtocolResult:
        """Return one replica as a scalar :class:`~repro.protocols.base.ProtocolResult`."""
        from repro.protocols.base import ProtocolResult

        replica = check_integer("replica", replica, minimum=0, maximum=self.repetitions - 1)
        return ProtocolResult(
            protocol=self.protocol,
            n=self.n,
            alive=self.alive[replica],
            delivered=self.delivered[replica],
            messages_sent=int(self.messages_sent[replica]),
            rounds=int(self.rounds[replica]),
            messages_dropped=int(self.messages_dropped[replica]),
            control_messages_sent=int(self.control_messages()[replica]),
        )


def sample_group_targets_batch(
    n: int,
    rep_idx: np.ndarray,
    mem_idx: np.ndarray,
    fanout: int,
    rng: np.random.Generator,
) -> tuple[np.ndarray, np.ndarray]:
    """Draw ``fanout`` distinct group-wide targets for every (replica, member) sender.

    The whole-group analogue of
    :meth:`~repro.simulation.membership.FullView.sample_targets_batch`,
    specialised for the round-based protocols: every sender row draws the
    same (clipped) fanout, senders never target themselves, and the result
    comes back as flat ``(R·n)``-cell identifiers ready for mask indexing.

    Returns
    -------
    (cells, target_replica):
        ``cells[i] = target_replica[i] · n + target`` for each drawn
        message; ``target_replica`` maps every message back to its replica
        for per-replica message accounting.
    """
    k = min(int(fanout), n - 1)
    if k <= 0 or mem_idx.size == 0:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty
    ks = np.full(mem_idx.size, k, dtype=np.int64)
    matrix, valid = sample_distinct_rows_excluding(rng, n, ks, mem_idx)
    targets = matrix[valid].astype(np.int64, copy=False)
    target_replica = np.repeat(rep_idx, k)
    return target_replica * n + targets, target_replica


def simulate_protocol_batch(
    protocol: Protocol,
    n: int,
    q: float,
    *,
    repetitions: int = 20,
    source: int = 0,
    seed: SeedLike = None,
    failure_model: FailureModel | None = None,
    network: NetworkModel | None = None,
    churn: ChurnModel | ChurnScheduleBatch | None = None,
    round_period: float = 1.0,
) -> BatchProtocolResult:
    """Run ``repetitions`` independent executions of ``protocol`` as one array program.

    Semantically each replica is an independent
    :meth:`~repro.protocols.base.Protocol.run` (fresh failure pattern, fresh
    protocol randomness); the engine merely advances all replicas in
    lock-step so every protocol round costs a constant number of numpy
    operations instead of ``O(members)`` Python calls.

    Parameters
    ----------
    protocol:
        Any :class:`~repro.protocols.base.Protocol`.  The bundled protocols
        run fully vectorised; subclasses without a batched hook fall back to
        a scalar replay per replica (same results, no speedup).
    n, q, source:
        As for :meth:`~repro.protocols.base.Protocol.run`.
    repetitions:
        Number of replicas ``R`` propagated simultaneously.
    seed:
        Seed or generator for all randomness of the whole batch.
    failure_model:
        Failure-pattern generator; defaults to the paper's
        :class:`~repro.simulation.failures.UniformCrashModel` at ratio ``q``.
        Pass a :class:`~repro.simulation.failures.TargetedCrashModel` (or any
        custom model) to run the whole batch under engineered failures.
    network:
        Optional lossy :class:`~repro.simulation.network.NetworkModel`: every
        point-to-point message of every replica is independently dropped with
        ``network.loss_probability`` (the same loss law the event-driven
        reference engine applies per :meth:`~repro.simulation.network.NetworkModel.transmit`
        call).  The model is reset first so its counters describe this batch
        only.  With ``loss_probability == 0`` the batch is bit-for-bit
        identical to the ``network=None`` path.
    churn:
        Optional dynamic-membership plane: either a
        :class:`~repro.simulation.churn.ChurnModel` (a fresh
        :class:`~repro.simulation.churn.ChurnScheduleBatch` is drawn for this
        batch, after the failure draw) or a pre-drawn schedule batch.
        Members follow their join/leave schedules during dissemination;
        sends to absent peers are wasted, and the result's ``present`` masks
        record who was still in the group when each replica finished.  A
        zero-rate model draws no randomness and a trivial schedule is
        skipped, so churn rate 0 is bit-for-bit identical to the
        ``churn=None`` path.
    round_period:
        Round duration ``T`` of the latency plane's discretised clock.
        When a network is present and the protocol's batched hook accepts a
        ``latency`` plane, every message additionally draws a delivery
        latency from ``network.latency`` and the result carries
        ``delivery_times``; with the default constant unit latency the
        plane consumes no randomness and the batch stays bit-for-bit
        identical to earlier engines.
    """
    n = check_integer("n", n, minimum=2)
    q = check_probability("q", q)
    repetitions = check_integer("repetitions", repetitions, minimum=1)
    source = check_integer("source", source, minimum=0, maximum=n - 1)
    rng = as_generator(seed)
    model = failure_model if failure_model is not None else UniformCrashModel(q)
    failure = model.draw_batch(n, repetitions, rng, source=source)
    alive = failure.alive.copy()
    alive[:, source] = True

    schedule: ChurnScheduleBatch | None
    if isinstance(churn, ChurnModel):
        # Drawn after the failure plane so adding churn never perturbs the
        # failure draw of an otherwise-identical seeded run.
        schedule = churn.draw_batch(n, repetitions, rng, source=source)
    else:
        schedule = churn
    if schedule is not None:
        if (schedule.repetitions, schedule.n) != (repetitions, n):
            raise ValueError(
                f"churn schedule is for shape {(schedule.repetitions, schedule.n)}, "
                f"expected {(repetitions, n)}"
            )
        if schedule.is_trivial():
            schedule = None  # static group: take the churn-free path verbatim

    # Legacy hook contract: external subclasses may still implement the
    # loss-free 4-argument signature, so the network, churn, and latency
    # planes are threaded through only when actually requested.
    kwargs = {}
    plane = None
    if network is not None:
        network.reset()
        kwargs["network"] = network
        hook_params = inspect.signature(type(protocol)._disseminate_batch).parameters
        accepts_latency = "latency" in hook_params or any(
            p.kind is inspect.Parameter.VAR_KEYWORD for p in hook_params.values()
        )
        if accepts_latency:
            plane = DeliveryTimePlane(network, repetitions, n, round_period=round_period)
            # The source holds the message from the start of every replica.
            plane.record(
                np.arange(repetitions, dtype=np.int64) * n + source,
                np.zeros(repetitions),
            )
            kwargs["latency"] = plane
    if schedule is not None:
        kwargs["churn"] = schedule
    out = protocol._disseminate_batch(n, alive, source, rng, **kwargs)
    control = None
    if len(out) == 5:  # trailing per-replica control-message counts
        delivered, messages, dropped, rounds, control = out
        control = np.asarray(control, dtype=np.int64)
    elif len(out) == 4:
        delivered, messages, dropped, rounds = out
    else:  # (delivered, messages, rounds) from a loss-free legacy hook
        delivered, messages, rounds = out
        dropped = np.zeros(repetitions, dtype=np.int64)
    rounds = np.asarray(rounds, dtype=np.int64)
    delivered = np.asarray(delivered, dtype=bool)
    delivered &= alive  # failed members never count as delivered
    delivered[:, source] = True
    present = schedule.present_at_rounds(rounds) if schedule is not None else None
    delivery_times = plane.finalize(delivered) if plane is not None else None
    return BatchProtocolResult(
        protocol=protocol.name,
        n=n,
        source=source,
        alive=alive,
        delivered=delivered,
        messages_sent=np.asarray(messages, dtype=np.int64),
        messages_dropped=np.asarray(dropped, dtype=np.int64),
        rounds=rounds,
        failure=failure,
        present=present,
        control_messages_sent=control,
        delivery_times=delivery_times,
    )

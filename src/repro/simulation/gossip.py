"""Simulators of the general gossip algorithm (the paper's Figure 1).

Two implementations of the same protocol are provided:

* :func:`simulate_gossip_once` — a fast frontier (BFS) Monte-Carlo.  Time is
  abstracted into gossip "hops"; within a hop every newly infected nonfailed
  member draws its fanout, samples its targets, and the messages land at the
  next hop.  Because every member forwards at most once and duplicates are
  discarded, this is an exact simulation of the algorithm's reachability —
  the only abstraction is the delivery order, which reliability does not
  depend on.
* :func:`simulate_gossip_event_driven` — the behavioural reference built on
  the discrete-event engine.  It models per-message latencies, optional
  message loss, and the two crash timings explicitly.  With the default
  network (no loss) it must agree with the fast simulator in distribution;
  the integration tests check exactly that.

Both return :class:`GossipExecution`, which carries the raw masks as well as
the headline reliability so downstream code can compute any derived metric.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.distributions import FanoutDistribution
from repro.simulation.engine import EventScheduler
from repro.simulation.failures import CrashTiming, FailurePattern, UniformCrashModel
from repro.simulation.membership import FullView, MembershipView
from repro.simulation.metrics import ExecutionMetrics
from repro.simulation.network import NetworkModel
from repro.simulation.node import Member
from repro.utils.rng import as_generator
from repro.utils.validation import check_integer, check_probability

__all__ = ["GossipExecution", "simulate_gossip_once", "simulate_gossip_event_driven"]


@dataclass(frozen=True)
class GossipExecution:
    """Outcome of one execution of the gossip algorithm.

    Attributes
    ----------
    n:
        Group size.
    source:
        Source member identifier.
    alive:
        Boolean mask of nonfailed members.
    delivered:
        Boolean mask of members that count as having received the message
        (always a subset of ``alive``; the source is always delivered).
    rounds:
        Number of gossip hops until dissemination died out.
    messages_sent:
        Total messages sent by forwarding members.
    duplicates:
        Messages that arrived at members which already had the message.
    """

    n: int
    source: int
    alive: np.ndarray
    delivered: np.ndarray
    rounds: int
    messages_sent: int
    duplicates: int

    def n_alive(self) -> int:
        """Return the number of nonfailed members."""
        return int(self.alive.sum())

    def n_delivered(self) -> int:
        """Return the number of nonfailed members that received the message."""
        return int(self.delivered.sum())

    def reliability(self) -> float:
        """Return the realised reliability ``n_delivered / n_alive``."""
        alive = self.n_alive()
        return self.n_delivered() / alive if alive else 0.0

    def is_success(self, threshold: float = 1.0) -> bool:
        """Return True iff at least ``threshold`` of nonfailed members were reached."""
        threshold = check_probability("threshold", threshold)
        return self.reliability() >= threshold - 1e-12

    def spread_occurred(self, min_delivered: int | None = None) -> bool:
        """Return True iff the gossip "took off" instead of dying out immediately.

        Individual executions are bimodal: with probability roughly equal to
        the giant-component size the dissemination reaches ~S of the group,
        otherwise it dies out after a handful of hops.  The standard
        percolation-simulation convention is to call a run an *epidemic* when
        it delivers more than ``max(10, sqrt(n))`` members (sub-giant
        components have size ``O(log n)`` off criticality and ``O(n^{2/3})``
        at it).  The paper's analytical reliability corresponds to the
        *conditional* average over such runs; see
        :func:`repro.simulation.runner.estimate_reliability`.
        """
        if min_delivered is None:
            min_delivered = max(10, int(np.sqrt(self.n)))
        return self.n_delivered() > min_delivered

    def missed_members(self) -> np.ndarray:
        """Return the nonfailed members that did not receive the message."""
        return np.flatnonzero(self.alive & ~self.delivered)

    def metrics(self) -> ExecutionMetrics:
        """Return the flat metrics record for aggregation."""
        return ExecutionMetrics(
            n=self.n,
            n_alive=self.n_alive(),
            n_reached_alive=self.n_delivered(),
            reliability=self.reliability(),
            rounds=self.rounds,
            messages_sent=self.messages_sent,
            duplicates=self.duplicates,
            success=self.is_success(1.0),
            spread=self.spread_occurred(),
        )


def simulate_gossip_once(
    n: int,
    distribution: FanoutDistribution,
    q: float,
    *,
    source: int = 0,
    seed=None,
    membership: MembershipView | None = None,
    failure_pattern: FailurePattern | None = None,
) -> GossipExecution:
    """Run one execution of the general gossip algorithm (fast frontier simulation).

    Parameters
    ----------
    n:
        Group size.
    distribution:
        Fanout distribution ``P``.
    q:
        Nonfailed-member ratio (ignored when an explicit ``failure_pattern``
        is supplied).
    source:
        The member that multicasts the message (never fails).
    seed:
        Seed or generator for all randomness of this execution.
    membership:
        Membership view provider; defaults to a full view of the group.
    failure_pattern:
        Pre-drawn failure pattern (used by repeated-execution experiments
        that want to hold failures fixed across executions).
    """
    n = check_integer("n", n, minimum=1)
    q = check_probability("q", q)
    source = check_integer("source", source, minimum=0, maximum=n - 1)
    rng = as_generator(seed)
    view = membership if membership is not None else FullView(n)
    if view.n != n:
        raise ValueError(f"membership view is for n={view.n}, expected n={n}")

    if failure_pattern is None:
        failure_pattern = UniformCrashModel(q).draw(n, rng, source=source)
    alive = failure_pattern.alive.copy()
    alive[source] = True

    received = np.zeros(n, dtype=bool)
    delivered = np.zeros(n, dtype=bool)
    received[source] = True
    delivered[source] = True

    messages_sent = 0
    duplicates = 0
    rounds = 0

    frontier = np.array([source], dtype=np.int64)
    while frontier.size:
        rounds += 1
        fanouts = distribution.sample(frontier.size, seed=rng)
        target_batches = [
            view.sample_targets(int(member), int(fanout), rng)
            for member, fanout in zip(frontier, fanouts)
            if fanout > 0
        ]
        if not target_batches:
            break
        all_targets = np.concatenate(target_batches)
        messages_sent += int(all_targets.size)
        # Deliveries are processed as a batch: members that already had the
        # message (or appear twice in the batch) count as duplicates; failed
        # targets "receive" but never forward (crash-after-receive) or the
        # message is wasted (crash-before-receive) — either way they do not
        # join the frontier.
        unique_targets = np.unique(all_targets)
        fresh = unique_targets[~received[unique_targets]]
        duplicates += int(all_targets.size - fresh.size)
        received[fresh] = True
        newly_alive = fresh[alive[fresh]]
        delivered[newly_alive] = True
        frontier = newly_alive

    return GossipExecution(
        n=n,
        source=source,
        alive=alive,
        delivered=delivered,
        rounds=rounds,
        messages_sent=messages_sent,
        duplicates=duplicates,
    )


def simulate_gossip_event_driven(
    n: int,
    distribution: FanoutDistribution,
    q: float,
    *,
    source: int = 0,
    seed=None,
    membership: MembershipView | None = None,
    network: NetworkModel | None = None,
    failure_pattern: FailurePattern | None = None,
    max_events: int | None = None,
) -> GossipExecution:
    """Run one execution on the discrete-event engine (behavioural reference).

    Semantics match :func:`simulate_gossip_once`; additionally each message
    experiences a latency drawn from ``network.latency`` and may be lost with
    ``network.loss_probability``.  With the default loss-free network the
    reachability distribution is identical to the fast simulator's.
    """
    n = check_integer("n", n, minimum=1)
    q = check_probability("q", q)
    source = check_integer("source", source, minimum=0, maximum=n - 1)
    rng = as_generator(seed)
    view = membership if membership is not None else FullView(n)
    if view.n != n:
        raise ValueError(f"membership view is for n={view.n}, expected n={n}")
    net = network if network is not None else NetworkModel()

    if failure_pattern is None:
        failure_pattern = UniformCrashModel(q).draw(n, rng, source=source)
    alive = failure_pattern.alive.copy()
    alive[source] = True
    members = Member.build_group(n, alive, failure_pattern.timing)
    members[source].alive = True

    scheduler = EventScheduler()
    state = {"messages_sent": 0, "max_depth": 0}

    def handle_receive(sched: EventScheduler, data):
        member_id, depth = data
        member = members[member_id]
        should_forward = member.on_receive(sched.now)
        if not should_forward:
            return
        state["max_depth"] = max(state["max_depth"], depth)
        fanout = int(distribution.sample(1, seed=rng)[0])
        if fanout <= 0:
            return
        targets = view.sample_targets(member_id, fanout, rng)
        member.record_forward(len(targets))
        for target in targets:
            state["messages_sent"] += 1
            net.transmit(
                rng,
                lambda latency, t=int(target), d=depth + 1: scheduler.schedule(
                    latency, handle_receive, (t, d)
                ),
            )

    # The source "receives" its own message at time 0 and gossips it.
    scheduler.schedule(0.0, handle_receive, (source, 0))
    scheduler.run(max_events=max_events)

    delivered = np.array([m.delivered for m in members], dtype=bool)
    duplicates = int(sum(m.duplicates for m in members))
    return GossipExecution(
        n=n,
        source=source,
        alive=alive,
        delivered=delivered,
        rounds=int(state["max_depth"]) + 1 if delivered.sum() > 0 else 0,
        messages_sent=int(state["messages_sent"]),
        duplicates=duplicates,
    )

"""Simulators of the general gossip algorithm (the paper's Figure 1).

Three implementations of the same protocol are provided:

* :func:`simulate_gossip_batch` — the production Monte-Carlo engine.  It
  propagates **all replicas of an experiment simultaneously** as ``(R, n)``
  boolean masks: per gossip round there is one vectorised fanout draw for
  every (replica, frontier-member) pair, one batched distinct-target draw
  through :meth:`MembershipView.sample_targets_batch`, and one
  ``unique``/``bincount`` pass that books deliveries, duplicates, and message
  counts exactly.  This removes the Python-interpreter round trips that
  dominated per-replica simulation and is 10-50× faster on the paper's
  Figs. 4-5 sweeps.
* :func:`simulate_gossip_once` — the scalar frontier (BFS) Monte-Carlo kept
  as the behavioural reference for the batched engine.  Time is abstracted
  into gossip "hops"; within a hop every newly infected nonfailed member
  draws its fanout, samples its targets, and the messages land at the next
  hop.  Because every member forwards at most once and duplicates are
  discarded, this is an exact simulation of the algorithm's reachability —
  the only abstraction is the delivery order, which reliability does not
  depend on.
* :func:`simulate_gossip_event_driven` — the behavioural reference built on
  the discrete-event engine.  It models per-message latencies, optional
  message loss, and the two crash timings explicitly.  With the default
  network (no loss) it must agree with the fast simulators in distribution;
  the integration tests check exactly that.

The scalar simulators return :class:`GossipExecution`; the batched engine
returns :class:`BatchGossipResult`, which carries the per-replica arrays and
converts to per-execution records on demand.  The batched and scalar engines
agree in distribution (identical per-replica semantics, different draw
order); ``tests/simulation/test_gossip_batch.py`` pins them together.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.distributions import FanoutDistribution
from repro.simulation.churn import ChurnScheduleBatch
from repro.simulation.engine import EventScheduler
from repro.simulation.failures import FailurePattern, UniformCrashModel
from repro.simulation.latency import DeliveryTimePlane, delivery_percentiles
from repro.simulation.membership import FullView, MembershipView
from repro.simulation.metrics import ExecutionMetrics
from repro.simulation.network import NetworkModel
from repro.simulation.node import Member
from repro.utils.rng import SeedLike, as_generator
from repro.utils.validation import check_integer, check_probability

__all__ = [
    "GossipExecution",
    "BatchGossipResult",
    "simulate_gossip_once",
    "simulate_gossip_batch",
    "simulate_gossip_event_driven",
]


@dataclass(frozen=True)
class GossipExecution:
    """Outcome of one execution of the gossip algorithm.

    Attributes
    ----------
    n:
        Group size.
    source:
        Source member identifier.
    alive:
        Boolean mask of nonfailed members.
    delivered:
        Boolean mask of members that count as having received the message
        (always a subset of ``alive``; the source is always delivered).
    rounds:
        Number of gossip hops until dissemination died out.
    messages_sent:
        Total messages sent by forwarding members.
    duplicates:
        Messages that arrived at members which already had the message.
    messages_dropped:
        Messages lost in transit by the network model (0 without one).
    delivery_times:
        Optional ``(n,)`` float array of first-receipt times (``inf`` for
        members that never received the message).  Populated by the
        event-driven reference and by batched rows carrying a latency
        plane; ``None`` on the round-abstracted scalar path, where time
        does not exist.
    """

    n: int
    source: int
    alive: np.ndarray
    delivered: np.ndarray
    rounds: int
    messages_sent: int
    duplicates: int
    messages_dropped: int = 0
    delivery_times: np.ndarray | None = None

    def n_alive(self) -> int:
        """Return the number of nonfailed members."""
        return int(self.alive.sum())

    def n_delivered(self) -> int:
        """Return the number of nonfailed members that received the message."""
        return int(self.delivered.sum())

    def reliability(self) -> float:
        """Return the realised reliability ``n_delivered / n_alive``."""
        alive = self.n_alive()
        return self.n_delivered() / alive if alive else 0.0

    def is_success(self, threshold: float = 1.0) -> bool:
        """Return True iff at least ``threshold`` of nonfailed members were reached."""
        threshold = check_probability("threshold", threshold)
        return self.reliability() >= threshold - 1e-12

    def spread_occurred(self, min_delivered: int | None = None) -> bool:
        """Return True iff the gossip "took off" instead of dying out immediately.

        Individual executions are bimodal: with probability roughly equal to
        the giant-component size the dissemination reaches ~S of the group,
        otherwise it dies out after a handful of hops.  The standard
        percolation-simulation convention is to call a run an *epidemic* when
        it delivers more than ``max(10, sqrt(n))`` members (sub-giant
        components have size ``O(log n)`` off criticality and ``O(n^{2/3})``
        at it).  The paper's analytical reliability corresponds to the
        *conditional* average over such runs; see
        :func:`repro.simulation.runner.estimate_reliability`.
        """
        if min_delivered is None:
            min_delivered = max(10, int(np.sqrt(self.n)))
        return self.n_delivered() > min_delivered

    def missed_members(self) -> np.ndarray:
        """Return the nonfailed members that did not receive the message."""
        return np.flatnonzero(self.alive & ~self.delivered)

    def delivery_percentiles(
        self, percentiles: tuple[float, ...] = (50.0, 99.0, 99.9)
    ) -> dict[str, float]:
        """Delivery-time percentiles (delivered members only), e.g. p50/p99/p999."""
        if self.delivery_times is None:
            raise ValueError(
                "no delivery times recorded: this execution ran without a latency plane"
            )
        return delivery_percentiles(self.delivery_times, percentiles)

    def metrics(self) -> ExecutionMetrics:
        """Return the flat metrics record for aggregation."""
        return ExecutionMetrics(
            n=self.n,
            n_alive=self.n_alive(),
            n_reached_alive=self.n_delivered(),
            reliability=self.reliability(),
            rounds=self.rounds,
            messages_sent=self.messages_sent,
            duplicates=self.duplicates,
            success=self.is_success(1.0),
            spread=self.spread_occurred(),
        )


def simulate_gossip_once(
    n: int,
    distribution: FanoutDistribution,
    q: float,
    *,
    source: int = 0,
    seed: SeedLike = None,
    membership: MembershipView | None = None,
    failure_pattern: FailurePattern | None = None,
    network: NetworkModel | None = None,
) -> GossipExecution:
    """Run one execution of the general gossip algorithm (fast frontier simulation).

    Parameters
    ----------
    n:
        Group size.
    distribution:
        Fanout distribution ``P``.
    q:
        Nonfailed-member ratio (ignored when an explicit ``failure_pattern``
        is supplied).
    source:
        The member that multicasts the message (never fails).
    seed:
        Seed or generator for all randomness of this execution.
    membership:
        Membership view provider; defaults to a full view of the group.
    failure_pattern:
        Pre-drawn failure pattern (used by repeated-execution experiments
        that want to hold failures fixed across executions).
    network:
        Optional lossy transport: every sent message is independently dropped
        with ``network.loss_probability`` (latency is irrelevant to the
        round-abstracted simulation).  Dropped messages count as sent but
        never arrive, so they are neither deliveries nor duplicates.  With
        ``loss_probability == 0`` the execution is bit-for-bit identical to
        the ``network=None`` path.
    """
    n = check_integer("n", n, minimum=1)
    q = check_probability("q", q)
    source = check_integer("source", source, minimum=0, maximum=n - 1)
    rng = as_generator(seed)
    view = membership if membership is not None else FullView(n)
    if view.n != n:
        raise ValueError(f"membership view is for n={view.n}, expected n={n}")

    if failure_pattern is None:
        failure_pattern = UniformCrashModel(q).draw(n, rng, source=source)
    alive = failure_pattern.alive.copy()
    alive[source] = True

    received = np.zeros(n, dtype=bool)
    delivered = np.zeros(n, dtype=bool)
    received[source] = True
    delivered[source] = True

    messages_sent = 0
    duplicates = 0
    messages_dropped = 0
    rounds = 0

    frontier = np.array([source], dtype=np.int64)
    while frontier.size:
        rounds += 1
        fanouts = distribution.sample(frontier.size, seed=rng)
        target_batches = [
            view.sample_targets(int(member), int(fanout), rng)
            for member, fanout in zip(frontier, fanouts, strict=True)
            if fanout > 0
        ]
        if not target_batches:
            break
        all_targets = np.concatenate(target_batches)
        messages_sent += int(all_targets.size)
        if network is not None:
            keep = network.draw_loss(rng, all_targets.size)
            messages_dropped += int(all_targets.size - keep.sum())
            all_targets = all_targets[keep]
        # Deliveries are processed as a batch: members that already had the
        # message (or appear twice in the batch) count as duplicates; failed
        # targets "receive" but never forward (crash-after-receive) or the
        # message is wasted (crash-before-receive) — either way they do not
        # join the frontier.
        unique_targets = np.unique(all_targets)
        fresh = unique_targets[~received[unique_targets]]
        duplicates += int(all_targets.size - fresh.size)
        received[fresh] = True
        newly_alive = fresh[alive[fresh]]
        delivered[newly_alive] = True
        frontier = newly_alive

    return GossipExecution(
        n=n,
        source=source,
        alive=alive,
        delivered=delivered,
        rounds=rounds,
        messages_sent=messages_sent,
        duplicates=duplicates,
        messages_dropped=messages_dropped,
    )


@dataclass(frozen=True)
class BatchGossipResult:
    """Outcome of ``R`` replica executions propagated by the batched engine.

    Every attribute is the batched analogue of the corresponding
    :class:`GossipExecution` field, with a leading replica axis.

    Attributes
    ----------
    n:
        Group size.
    source:
        Source member identifier (shared by all replicas).
    alive:
        ``(R, n)`` boolean masks of nonfailed members.
    delivered:
        ``(R, n)`` boolean masks of members that received the message.
    rounds:
        ``(R,)`` gossip hops until each replica's dissemination died out.
    messages_sent:
        ``(R,)`` total messages sent per replica.
    duplicates:
        ``(R,)`` messages that hit already-infected members, per replica.
    messages_dropped:
        ``(R,)`` messages lost in transit per replica (all zero without a
        lossy network).
    delivery_times:
        Optional ``(R, n)`` float array of first-receipt times on the round
        clock (``round * round_period + latency``; ``inf`` where
        undelivered).  Present exactly when the batch ran with a network —
        the latency plane is part of the network model's contract — and
        ``None`` otherwise.
    """

    n: int
    source: int
    alive: np.ndarray
    delivered: np.ndarray
    rounds: np.ndarray
    messages_sent: np.ndarray
    duplicates: np.ndarray
    messages_dropped: np.ndarray | None = None
    delivery_times: np.ndarray | None = None

    def __post_init__(self) -> None:
        if self.messages_dropped is None:
            object.__setattr__(
                self, "messages_dropped", np.zeros_like(np.asarray(self.messages_sent))
            )

    @property
    def repetitions(self) -> int:
        """Return the number of replicas ``R``."""
        return int(self.alive.shape[0])

    def n_alive(self) -> np.ndarray:
        """Return the per-replica number of nonfailed members, shape ``(R,)``."""
        return self.alive.sum(axis=1)

    def n_delivered(self) -> np.ndarray:
        """Return the per-replica number of reached nonfailed members, shape ``(R,)``."""
        return self.delivered.sum(axis=1)

    def reliability(self) -> np.ndarray:
        """Return the per-replica realised reliability, shape ``(R,)``."""
        return self.n_delivered() / self.n_alive()

    def success(self, threshold: float = 1.0) -> np.ndarray:
        """Return per-replica success flags (reliability >= ``threshold``)."""
        threshold = check_probability("threshold", threshold)
        return self.reliability() >= threshold - 1e-12

    def spread_occurred(self, min_delivered: int | None = None) -> np.ndarray:
        """Return per-replica epidemic-took-off flags (see ``GossipExecution``)."""
        if min_delivered is None:
            min_delivered = max(10, int(np.sqrt(self.n)))
        return self.n_delivered() > min_delivered

    def delivery_percentiles(
        self, percentiles: tuple[float, ...] = (50.0, 99.0, 99.9)
    ) -> dict[str, float]:
        """Pooled delivery-time percentiles across all replicas (p50/p99/p999)."""
        if self.delivery_times is None:
            raise ValueError(
                "no delivery times recorded: run the batch with a network model "
                "to enable the latency plane"
            )
        return delivery_percentiles(self.delivery_times, percentiles)

    def execution(self, replica: int) -> GossipExecution:
        """Return one replica as a scalar :class:`GossipExecution` record."""
        replica = check_integer("replica", replica, minimum=0, maximum=self.repetitions - 1)
        return GossipExecution(
            n=self.n,
            source=self.source,
            alive=self.alive[replica],
            delivered=self.delivered[replica],
            rounds=int(self.rounds[replica]),
            messages_sent=int(self.messages_sent[replica]),
            duplicates=int(self.duplicates[replica]),
            messages_dropped=int(self.messages_dropped[replica]),
            delivery_times=(
                self.delivery_times[replica] if self.delivery_times is not None else None
            ),
        )

    def metrics(self) -> list[ExecutionMetrics]:
        """Return per-replica flat metric records (vectorised, no per-row sims)."""
        n_alive = self.n_alive()
        n_delivered = self.n_delivered()
        reliability = self.reliability()
        success = self.success()
        spread = self.spread_occurred()
        return [
            ExecutionMetrics(
                n=self.n,
                n_alive=int(n_alive[r]),
                n_reached_alive=int(n_delivered[r]),
                reliability=float(reliability[r]),
                rounds=int(self.rounds[r]),
                messages_sent=int(self.messages_sent[r]),
                duplicates=int(self.duplicates[r]),
                success=bool(success[r]),
                spread=bool(spread[r]),
            )
            for r in range(self.repetitions)
        ]


def simulate_gossip_batch(
    n: int,
    distribution: FanoutDistribution,
    q: float,
    *,
    repetitions: int = 20,
    source: int = 0,
    seed: SeedLike = None,
    membership: MembershipView | None = None,
    alive: np.ndarray | None = None,
    network: NetworkModel | None = None,
    churn: ChurnScheduleBatch | None = None,
    latency: DeliveryTimePlane | None = None,
    round_period: float = 1.0,
) -> BatchGossipResult:
    """Run ``repetitions`` independent gossip executions as one array program.

    Semantically each replica is an independent :func:`simulate_gossip_once`
    run (fresh failure pattern, fresh fanout and target draws); the engine
    merely advances all replica frontiers in lock-step so every round costs a
    constant number of numpy operations instead of ``O(frontier)`` Python
    calls.  Message and duplicate accounting follows the scalar engine
    exactly: duplicates are targets that already had the message or appeared
    twice within the round's batch (per replica).

    Parameters
    ----------
    n, distribution, q, source, membership:
        As for :func:`simulate_gossip_once`.
    repetitions:
        Number of replicas ``R`` propagated simultaneously.
    seed:
        Seed or generator for all randomness of the whole batch.
    alive:
        Optional pre-drawn ``(R, n)`` alive masks (replaces the uniform-``q``
        failure draw; the source column is forced alive either way).
    network:
        Optional lossy transport shared by all replicas: every round's flat
        send list is thinned with one independent Bernoulli draw
        (:meth:`~repro.simulation.network.NetworkModel.draw_loss_batch`) and
        the per-replica drop counts surface as ``messages_dropped``.  With
        ``loss_probability == 0`` the batch is bit-for-bit identical to the
        ``network=None`` path.
    churn:
        Optional pre-drawn :class:`~repro.simulation.churn.ChurnScheduleBatch`
        of join/leave events.  Per round ``t`` (1-based), frontier members no
        longer present stop forwarding, and sends to currently-absent targets
        are wasted: they count as sent but never arrive (they are *not*
        network drops — the peer simply is not there).  A trivial schedule is
        skipped entirely, so zero churn is bit-for-bit identical to the
        ``churn=None`` path.
    latency:
        Optional externally owned :class:`DeliveryTimePlane` (used by the
        protocol hooks that delegate here so the caller keeps the plane).
        When ``None`` and a network is present, the engine creates its own
        plane and surfaces ``delivery_times`` on the result: messages sent
        in round ``t`` (1-based) at time ``(t-1) * round_period`` arrive a
        latency draw later and infect their target once the round clock
        passes the arrival instant.  With the default constant unit latency
        the plane consumes no randomness and defers nothing, so results are
        bit-for-bit identical to the plane-free engine.
    round_period:
        Round duration ``T`` of the discretised clock (ignored when an
        external ``latency`` plane is passed, which carries its own).
    """
    n = check_integer("n", n, minimum=1)
    q = check_probability("q", q)
    repetitions = check_integer("repetitions", repetitions, minimum=1)
    source = check_integer("source", source, minimum=0, maximum=n - 1)
    rng = as_generator(seed)
    view = membership if membership is not None else FullView(n)
    if view.n != n:
        raise ValueError(f"membership view is for n={view.n}, expected n={n}")
    if churn is not None:
        if (churn.repetitions, churn.n) != (repetitions, n):
            raise ValueError(
                f"churn schedule is for shape {(churn.repetitions, churn.n)}, "
                f"expected {(repetitions, n)}"
            )
        if churn.is_trivial():
            churn = None  # static group: take the churn-free path verbatim

    if alive is None:
        alive_masks = rng.random((repetitions, n)) < q
    else:
        alive_masks = np.array(alive, dtype=bool, copy=True)
        if alive_masks.shape != (repetitions, n):
            raise ValueError(
                f"alive must have shape {(repetitions, n)}, got {alive_masks.shape}"
            )
    alive_masks[:, source] = True

    received = np.zeros((repetitions, n), dtype=bool)
    delivered = np.zeros((repetitions, n), dtype=bool)
    received[:, source] = True
    delivered[:, source] = True

    rounds = np.zeros(repetitions, dtype=np.int64)
    messages_sent = np.zeros(repetitions, dtype=np.int64)
    duplicates = np.zeros(repetitions, dtype=np.int64)
    messages_dropped = np.zeros(repetitions, dtype=np.int64)

    frontier = np.zeros((repetitions, n), dtype=bool)
    frontier[:, source] = True
    received_flat = received.ravel()
    delivered_flat = delivered.ravel()
    alive_flat = alive_masks.ravel()

    plane = latency
    if plane is None and network is not None:
        plane = DeliveryTimePlane(network, repetitions, n, round_period=round_period)
    if plane is not None:
        # The source holds the message from the start of the execution.
        plane.record(
            np.arange(repetitions, dtype=np.int64) * n + source,
            np.zeros(repetitions),
        )

    round_index = 0
    while True:
        round_index += 1
        present_flat = None
        if churn is not None:
            # Members that left (or have not yet joined) neither forward nor
            # receive during this round.
            present = churn.present_at(round_index)
            present_flat = present.ravel()
            frontier &= present
        active = frontier.any(axis=1)
        if plane is not None:
            # In-flight messages keep a replica's clock running even when no
            # member is forwarding this round.
            active |= plane.pending_mask()
        if not active.any():
            break
        rounds += active

        cell_ids = np.zeros(0, dtype=np.int64)
        arrived_per_replica = np.zeros(repetitions, dtype=np.int64)
        no_forwarders = False
        replica_idx, member_idx = np.nonzero(frontier)
        frontier = np.zeros((repetitions, n), dtype=bool)
        if member_idx.size:
            fanouts = distribution.sample(member_idx.size, seed=rng)
            forwarding = fanouts > 0
            if not forwarding.any():
                no_forwarders = True
            else:
                targets, sender_idx = view.sample_targets_batch(
                    member_idx[forwarding], fanouts[forwarding], rng
                )
                if targets.size:
                    target_replica = replica_idx[forwarding][sender_idx]
                    sent_per_replica = np.bincount(target_replica, minlength=repetitions)
                    messages_sent += sent_per_replica
                    arrived_per_replica = sent_per_replica
                    if network is not None:
                        keep, dropped = network.draw_loss_batch(
                            rng, target_replica, repetitions
                        )
                        messages_dropped += dropped
                        arrived_per_replica = sent_per_replica - dropped
                        targets = targets[keep]
                        target_replica = target_replica[keep]
                    if present_flat is not None and targets.size:
                        # Sends to absent peers are wasted: sent but never
                        # arrived (and never duplicates), without counting as
                        # network drops.
                        keep = present_flat[target_replica * n + targets]
                        if not keep.all():
                            arrived_per_replica = arrived_per_replica - np.bincount(
                                target_replica[~keep], minlength=repetitions
                            )
                            targets = targets[keep]
                            target_replica = target_replica[keep]
                    cell_ids = target_replica * n + targets

        cell_times = None
        if plane is not None:
            # One latency draw per surviving send; what comes back is the
            # batch processable this round (matured buckets + same-round
            # arrivals).  Deferred arrivals are re-checked against the churn
            # view of *this* round: the target must be there when the message
            # lands, not when it was sent.
            cell_ids, cell_times, _ = plane.schedule(round_index - 1, cell_ids, rng)
            if present_flat is not None and cell_ids.size:
                keep = present_flat[cell_ids]
                cell_ids = cell_ids[keep]
                cell_times = cell_times[keep]
            arrived_per_replica = np.bincount(cell_ids // n, minlength=repetitions)
        elif no_forwarders:
            break

        if not cell_ids.size:
            if no_forwarders and plane is not None and not plane.has_pending():
                break
            continue
        if plane is not None:
            fresh_mask = ~received_flat[cell_ids]
            plane.record(cell_ids[fresh_mask], cell_times[fresh_mask])

        # Deliveries are booked per (replica, target) cell: duplicates are
        # targets already infected or repeated within this round's batch
        # (dropped messages never arrive, so they are not duplicates).
        unique_cells = np.unique(cell_ids)
        fresh = unique_cells[~received_flat[unique_cells]]
        duplicates += arrived_per_replica - np.bincount(fresh // n, minlength=repetitions)
        received_flat[fresh] = True
        newly_alive = fresh[alive_flat[fresh]]
        delivered_flat[newly_alive] = True
        frontier.ravel()[newly_alive] = True

    delivery_times = None
    if plane is not None and latency is None:
        # The engine owns the plane: close it out.  (Hooks that passed their
        # own plane finalize it themselves with the protocol's delivered mask.)
        delivery_times = plane.finalize(delivered)

    return BatchGossipResult(
        n=n,
        source=source,
        alive=alive_masks,
        delivered=delivered,
        rounds=rounds,
        messages_sent=messages_sent,
        duplicates=duplicates,
        messages_dropped=messages_dropped,
        delivery_times=delivery_times,
    )


def simulate_gossip_event_driven(
    n: int,
    distribution: FanoutDistribution,
    q: float,
    *,
    source: int = 0,
    seed: SeedLike = None,
    membership: MembershipView | None = None,
    network: NetworkModel | None = None,
    failure_pattern: FailurePattern | None = None,
    max_events: int | None = None,
) -> GossipExecution:
    """Run one execution on the discrete-event engine (behavioural reference).

    Semantics match :func:`simulate_gossip_once`; additionally each message
    experiences a latency drawn from ``network.latency`` and may be lost with
    ``network.loss_probability``.  With the default loss-free network the
    reachability distribution is identical to the fast simulator's.
    """
    n = check_integer("n", n, minimum=1)
    q = check_probability("q", q)
    source = check_integer("source", source, minimum=0, maximum=n - 1)
    rng = as_generator(seed)
    view = membership if membership is not None else FullView(n)
    if view.n != n:
        raise ValueError(f"membership view is for n={view.n}, expected n={n}")
    net = network if network is not None else NetworkModel()
    dropped_before = net.messages_dropped

    if failure_pattern is None:
        failure_pattern = UniformCrashModel(q).draw(n, rng, source=source)
    alive = failure_pattern.alive.copy()
    alive[source] = True
    members = Member.build_group(n, alive, failure_pattern.timing)
    members[source].alive = True

    scheduler = EventScheduler()
    state = {"messages_sent": 0, "max_depth": 0}

    def handle_receive(sched: EventScheduler, data: tuple[int, int]) -> None:
        member_id, depth = data
        member = members[member_id]
        should_forward = member.on_receive(sched.now)
        if not should_forward:
            return
        state["max_depth"] = max(state["max_depth"], depth)
        fanout = int(distribution.sample(1, seed=rng)[0])
        if fanout <= 0:
            return
        targets = view.sample_targets(member_id, fanout, rng)
        member.record_forward(len(targets))
        for target in targets:
            state["messages_sent"] += 1
            net.transmit(
                rng,
                lambda latency, t=int(target), d=depth + 1: scheduler.schedule(
                    latency, handle_receive, (t, d)
                ),
            )

    # The source "receives" its own message at time 0 and gossips it.
    scheduler.schedule(0.0, handle_receive, (source, 0))
    scheduler.run(max_events=max_events)

    delivered = np.array([m.delivered for m in members], dtype=bool)
    duplicates = int(sum(m.duplicates for m in members))
    delivery_times = np.array([m.first_receipt_time for m in members], dtype=float)
    delivery_times[~delivered] = np.inf
    return GossipExecution(
        n=n,
        source=source,
        alive=alive,
        delivered=delivered,
        rounds=int(state["max_depth"]) + 1 if delivered.sum() > 0 else 0,
        messages_sent=int(state["messages_sent"]),
        duplicates=duplicates,
        messages_dropped=int(net.messages_dropped - dropped_before),
        delivery_times=delivery_times,
    )

"""Message-transport model for the event-driven and batched simulators.

The analytical model abstracts the network away entirely (a gossip arc either
exists or it does not), but the event-driven reference simulator and the
baseline protocols benefit from an explicit transport with per-message
latency and optional loss.  Keeping it in one small class also documents the
substitution: the paper's MATLAB simulation had no network model either, so
the default configuration (zero loss, unit latency) adds nothing beyond
ordering events in time.

The same model drives the vectorised loss plane of the batched engines:
:meth:`NetworkModel.draw_loss` thins one scalar engine's per-round send list
and :meth:`NetworkModel.draw_loss_batch` thins a whole ``(R, n, fanout)``
round of the batched engines with one Bernoulli draw, so the fast paths model
exactly the independent-loss law the event-driven reference implements one
:meth:`NetworkModel.transmit` call at a time.  Both hooks short-circuit at
``loss_probability == 0`` **without consuming randomness**, which is what
makes the lossy engines bit-for-bit identical to the loss-free ones at
``loss_probability = 0``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, ClassVar

import numpy as np

from repro.utils.rng import as_generator
from repro.utils.validation import check_probability

__all__ = [
    "NetworkModel",
    "GilbertElliottNetworkModel",
    "ConstantLatency",
    "UniformLatency",
    "ExponentialLatency",
    "latency_constant",
    "latency_uniform",
    "latency_exponential",
]


@dataclass(frozen=True)
class ConstantLatency:
    """Degenerate latency law: every message takes exactly ``value``.

    The latency samplers are small frozen dataclasses (not closures) so a
    :class:`NetworkModel` can cross a process boundary — latency-plane
    experiments fan their cells out through ``parallel_map``, which pickles
    the work tuples.  Each sampler supports both the scalar protocol
    (``sampler(rng) -> float``, used per message by the event-driven engine)
    and the vectorised one (``sampler.draw(rng, count) -> (count,)``, used by
    the batched latency plane).  The constant law is the only one whose
    ``draw`` consumes **no randomness** — that is what keeps the latency
    plane bit-identical to the latency-free engines at the default
    configuration.
    """

    value: float = 1.0
    #: degenerate laws let the latency plane skip its time-bucket machinery
    is_constant: ClassVar[bool] = True

    def __post_init__(self) -> None:
        if self.value < 0:
            raise ValueError(f"latency must be >= 0, got {self.value!r}")

    # repro: zero-draw
    def __call__(self, rng: np.random.Generator) -> float:
        return self.value

    # repro: zero-draw
    def draw(self, rng: np.random.Generator, count: int) -> np.ndarray:
        return np.full(count, self.value)

    def mean(self) -> float:
        return self.value


@dataclass(frozen=True)
class UniformLatency:
    """Latency uniform on ``[low, high]``."""

    low: float
    high: float
    is_constant: ClassVar[bool] = False

    def __post_init__(self) -> None:
        if self.low < 0 or self.high < self.low:
            raise ValueError(f"invalid latency range [{self.low}, {self.high}]")

    def __call__(self, rng: np.random.Generator) -> float:
        return float(rng.uniform(self.low, self.high))

    def draw(self, rng: np.random.Generator, count: int) -> np.ndarray:
        return rng.uniform(self.low, self.high, count)

    def mean(self) -> float:
        return 0.5 * (self.low + self.high)


@dataclass(frozen=True)
class ExponentialLatency:
    """Exponentially distributed latency with the given mean."""

    mean_latency: float
    is_constant: ClassVar[bool] = False

    def __post_init__(self) -> None:
        if self.mean_latency <= 0:
            raise ValueError(f"mean latency must be > 0, got {self.mean_latency!r}")

    def __call__(self, rng: np.random.Generator) -> float:
        return float(rng.exponential(self.mean_latency))

    def draw(self, rng: np.random.Generator, count: int) -> np.ndarray:
        return rng.exponential(self.mean_latency, count)

    def mean(self) -> float:
        return self.mean_latency


def latency_constant(value: float = 1.0) -> ConstantLatency:
    """Return a latency sampler that always returns ``value``."""
    return ConstantLatency(value)


def latency_uniform(low: float, high: float) -> UniformLatency:
    """Return a latency sampler uniform on ``[low, high]``."""
    return UniformLatency(low, high)


def latency_exponential(mean: float) -> ExponentialLatency:
    """Return an exponentially distributed latency sampler with the given mean."""
    return ExponentialLatency(mean)


@dataclass
class NetworkModel:
    """Point-to-point transport with latency and independent message loss.

    Attributes
    ----------
    latency:
        Callable drawing a delivery latency from an RNG.
    loss_probability:
        Probability that any given message is silently dropped.
    messages_sent, messages_dropped:
        Counters accumulated across :meth:`transmit` / :meth:`draw_loss` /
        :meth:`draw_loss_batch` calls (zeroed with :meth:`reset`).
    total_latency:
        Sum of the latencies of every delivered message (the latency
        bookkeeping side of the counters; zeroed with :meth:`reset`).
    """

    latency: Callable[[np.random.Generator], float] = field(default_factory=latency_constant)
    loss_probability: float = 0.0
    messages_sent: int = 0
    messages_dropped: int = 0
    total_latency: float = 0.0

    def __post_init__(self) -> None:
        self.loss_probability = check_probability("loss_probability", self.loss_probability)

    def draw_latency(self, rng: np.random.Generator) -> float:
        """Draw one delivery latency and book it into ``total_latency``."""
        delay = float(self.latency(as_generator(rng)))
        self.total_latency += delay
        return delay

    def draw_latency_batch(self, rng: np.random.Generator, count: int) -> np.ndarray:
        """Draw ``count`` delivery latencies at once; book them into ``total_latency``.

        The vectorised latency leg of the batched engines: one call per round
        leg covers every message that actually arrived (survived loss and
        membership filtering).  A :class:`ConstantLatency` sampler (the
        default) consumes **no randomness**, so enabling the latency plane at
        constant latency leaves every per-seed result bit-identical to the
        latency-free engines; ``count == 0`` never touches the sampler at
        all.  Legacy closure samplers (no vectorised ``draw``) fall back to a
        per-message Python loop.
        """
        count = int(count)
        if count < 0:
            raise ValueError(f"count must be >= 0, got {count}")
        if count == 0:
            return np.empty(0, dtype=float)
        rng = as_generator(rng)
        draw = getattr(self.latency, "draw", None)
        if draw is not None:
            delays = np.asarray(draw(rng, count), dtype=float)
        else:
            delays = np.array([float(self.latency(rng)) for _ in range(count)])
        self.total_latency += float(delays.sum())
        return delays

    def transmit(self, rng: np.random.Generator, deliver: Callable[[float], None]) -> bool:
        """Transmit one message: maybe drop it, otherwise call ``deliver(latency)``.

        Returns ``True`` if the message was delivered (scheduled), ``False``
        if it was lost.
        """
        rng = as_generator(rng)
        self.messages_sent += 1
        if self.loss_probability > 0.0 and rng.random() < self.loss_probability:
            self.messages_dropped += 1
            return False
        delay = self.latency(rng)
        self.total_latency += delay
        deliver(delay)
        return True

    # repro: zero-draw(loss_probability)
    def draw_loss(self, rng: np.random.Generator, count: int) -> np.ndarray:
        """Thin ``count`` messages at once; return the boolean keep mask.

        The vectorised equivalent of ``count`` :meth:`transmit` calls:
        counters are updated, ``mask[i]`` is ``True`` iff message ``i``
        survives, and — like :meth:`transmit` — every surviving message books
        one latency draw into ``total_latency``, so the scalar engines'
        counters describe exactly one execution whether messages go through
        :meth:`transmit` or through per-round ``draw_loss`` bursts.  At
        ``loss_probability == 0`` (or ``count == 0``) the mask is all-``True``
        and — with the default constant-latency sampler — **no randomness is
        consumed**, so a loss-free network leaves the caller's RNG stream —
        and therefore its per-seed results — untouched.
        """
        count = int(count)
        if count < 0:
            raise ValueError(f"count must be >= 0, got {count}")
        self.messages_sent += count
        if count == 0 or self.loss_probability <= 0.0:
            self.draw_latency_batch(rng, count)
            return np.ones(count, dtype=bool)
        keep = as_generator(rng).random(count) >= self.loss_probability
        self.messages_dropped += count - int(keep.sum())
        self.draw_latency_batch(rng, int(keep.sum()))
        return keep

    # repro: zero-draw(loss_probability)
    def draw_loss_batch(
        self,
        rng: np.random.Generator,
        target_replica: np.ndarray,
        repetitions: int,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Thin one batched round's flat send list with independent drops.

        Parameters
        ----------
        target_replica:
            Replica identifier of every in-flight message, shape ``(M,)``
            (the batched engines already carry this for message accounting).
        repetitions:
            Number of replicas ``R`` in the batch.

        Returns
        -------
        (keep, dropped_per_replica):
            ``keep`` is the ``(M,)`` boolean survival mask;
            ``dropped_per_replica`` books the losses back to their replicas,
            shape ``(R,)``.  Counters accumulate the batch totals.  Like
            :meth:`draw_loss`, the zero-loss path consumes no randomness.
            Latency bookkeeping is **not** done here: the batched engines
            own the per-message latency draws through their
            :class:`~repro.simulation.latency.DeliveryTimePlane`, which calls
            :meth:`draw_latency_batch` for every arrived message — doing it
            in both places would double-count ``total_latency``.
        """
        target_replica = np.asarray(target_replica, dtype=np.int64)
        count = int(target_replica.size)
        self.messages_sent += count
        if count == 0 or self.loss_probability <= 0.0:
            return np.ones(count, dtype=bool), np.zeros(repetitions, dtype=np.int64)
        keep = as_generator(rng).random(count) >= self.loss_probability
        dropped = np.bincount(target_replica[~keep], minlength=repetitions)
        self.messages_dropped += count - int(keep.sum())
        return keep, dropped.astype(np.int64, copy=False)

    def reset(self) -> None:
        """Zero the message counters and the latency bookkeeping.

        Called by :meth:`repro.protocols.base.Protocol.run` between replicas
        so counters always describe exactly one execution and never leak
        across runs.
        """
        self.messages_sent = 0
        self.messages_dropped = 0
        self.total_latency = 0.0

    def reset_counters(self) -> None:
        """Backwards-compatible alias of :meth:`reset`."""
        self.reset()


@dataclass
class GilbertElliottNetworkModel(NetworkModel):
    """Two-state Markov (Gilbert–Elliott) bursty-loss channel.

    The channel alternates between a *good* state dropping messages with the
    inherited ``loss_probability`` and a *bad* state dropping them with
    ``bad_loss_probability``; state transitions follow a two-state Markov
    chain (``p_good_to_bad``, ``p_bad_to_good``).  Consecutive draws are
    therefore **correlated**: a round that lands in the bad state loses a
    burst of messages at once — exactly the regime where recovery protocols
    (IHAVE/IWANT, anti-entropy) should dominate pure push.

    Granularity: the chain advances **once per draw call** — per
    :meth:`transmit` on the event-driven path, per :meth:`draw_loss` call
    (one sender's burst) on the scalar engines, and once per replica per
    :meth:`draw_loss_batch` call (one round leg) on the batched engines.  A
    round leg is thus one coherence interval (block fading), so the scalar
    and batched paths share the loss *law per leg* but not a per-message
    chain; cross-path pins for this channel are distributional only.
    Crucially the chain advances even on **empty legs** (``count == 0``):
    fading is a property of the channel's clock, not of offered traffic, so
    a quiet round must not freeze the burst state.

    Determinism contracts preserved from the base class:

    * both rates 0 → every path short-circuits all-``True`` and consumes
      **no randomness** (p=0 stays bit-identical to loss-free);
    * both rates equal → the state cannot matter, so every draw defers to
      the base class verbatim and the channel **collapses to the i.i.d.
      Bernoulli model bit-for-bit**.

    The chain starts from its stationary distribution (one extra uniform on
    first use), so the realised long-run drop rate matches
    :meth:`mean_loss_probability` without a warm-up transient.
    """

    bad_loss_probability: float = 0.0
    p_good_to_bad: float = 0.0
    p_bad_to_good: float = 1.0
    #: per-chain state: ``None`` until first lossy draw (lazily initialised
    #: from the stationary distribution), then a bool / ``(R,)`` bool array.
    _scalar_bad: bool | None = field(default=None, init=False, repr=False, compare=False)
    _batch_bad: np.ndarray | None = field(default=None, init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        super().__post_init__()
        self.bad_loss_probability = check_probability(
            "bad_loss_probability", self.bad_loss_probability
        )
        self.p_good_to_bad = check_probability("p_good_to_bad", self.p_good_to_bad)
        self.p_bad_to_good = check_probability("p_bad_to_good", self.p_bad_to_good)

    def _is_iid(self) -> bool:
        """True when the state cannot matter (both states share one drop rate)."""
        return self.bad_loss_probability == self.loss_probability

    def stationary_bad_fraction(self) -> float:
        """Return the stationary probability of the bad state."""
        denominator = self.p_good_to_bad + self.p_bad_to_good
        if denominator <= 0.0:
            return 0.0  # frozen chain; it starts (and stays) good
        return self.p_good_to_bad / denominator

    def mean_loss_probability(self) -> float:
        """Return the long-run (stationary) per-message drop probability."""
        bad = self.stationary_bad_fraction()
        return (1.0 - bad) * self.loss_probability + bad * self.bad_loss_probability

    def _advance_scalar(self, rng: np.random.Generator) -> float:
        """Advance the scalar chain one step; return the current drop rate."""
        if self._scalar_bad is None:
            self._scalar_bad = bool(rng.random() < self.stationary_bad_fraction())
        elif self._scalar_bad:
            self._scalar_bad = not (rng.random() < self.p_bad_to_good)
        else:
            self._scalar_bad = bool(rng.random() < self.p_good_to_bad)
        return self.bad_loss_probability if self._scalar_bad else self.loss_probability

    def _advance_batch(self, rng: np.random.Generator, repetitions: int) -> np.ndarray:
        """Advance every replica's chain one step; return ``(R,)`` bad-state mask.

        The chain is sized at first use (lazily, from the stationary
        distribution).  Changing ``repetitions`` mid-run would have to throw
        the accumulated burst state away, so it is an error: call
        :meth:`reset` between batches of different widths instead of relying
        on a silent stationary re-draw.
        """
        if self._batch_bad is not None and self._batch_bad.size != repetitions:
            raise ValueError(
                f"Gilbert-Elliott batch chain tracks {self._batch_bad.size} "
                f"replicas but this draw asked for {repetitions}; call reset() "
                "before reusing the model with a different batch width"
            )
        if self._batch_bad is None:
            self._batch_bad = rng.random(repetitions) < self.stationary_bad_fraction()
        else:
            uniforms = rng.random(repetitions)
            self._batch_bad = np.where(
                self._batch_bad,
                uniforms >= self.p_bad_to_good,
                uniforms < self.p_good_to_bad,
            )
        return self._batch_bad

    def transmit(self, rng: np.random.Generator, deliver: Callable[[float], None]) -> bool:
        if self._is_iid():
            return super().transmit(rng, deliver)
        rng = as_generator(rng)
        self.messages_sent += 1
        rate = self._advance_scalar(rng)
        if rate > 0.0 and rng.random() < rate:
            self.messages_dropped += 1
            return False
        delay = self.latency(rng)
        self.total_latency += delay
        deliver(delay)
        return True

    # repro: zero-draw(_is_iid)
    def draw_loss(self, rng: np.random.Generator, count: int) -> np.ndarray:
        if self._is_iid():
            return super().draw_loss(rng, count)
        count = int(count)
        if count < 0:
            raise ValueError(f"count must be >= 0, got {count}")
        self.messages_sent += count
        rng = as_generator(rng)
        # Block fading: advance the chain once per leg even when the leg is
        # empty, so the burst state tracks channel time rather than traffic.
        rate = self._advance_scalar(rng)
        if count == 0:
            return np.ones(0, dtype=bool)
        if rate <= 0.0:
            self.draw_latency_batch(rng, count)
            return np.ones(count, dtype=bool)
        keep = rng.random(count) >= rate
        self.messages_dropped += count - int(keep.sum())
        self.draw_latency_batch(rng, int(keep.sum()))
        return keep

    # repro: zero-draw(_is_iid)
    def draw_loss_batch(
        self,
        rng: np.random.Generator,
        target_replica: np.ndarray,
        repetitions: int,
    ) -> tuple[np.ndarray, np.ndarray]:
        if self._is_iid():
            return super().draw_loss_batch(rng, target_replica, repetitions)
        target_replica = np.asarray(target_replica, dtype=np.int64)
        count = int(target_replica.size)
        self.messages_sent += count
        rng = as_generator(rng)
        # Empty legs still advance every replica's chain (see draw_loss).
        bad = self._advance_batch(rng, repetitions)
        if count == 0:
            return np.ones(0, dtype=bool), np.zeros(repetitions, dtype=np.int64)
        rates = np.where(bad, self.bad_loss_probability, self.loss_probability)
        keep = rng.random(count) >= rates[target_replica]
        dropped = np.bincount(target_replica[~keep], minlength=repetitions)
        self.messages_dropped += count - int(keep.sum())
        return keep, dropped.astype(np.int64, copy=False)

    def reset(self) -> None:
        super().reset()
        self._scalar_bad = None
        self._batch_bad = None

"""Message-transport model for the event-driven and batched simulators.

The analytical model abstracts the network away entirely (a gossip arc either
exists or it does not), but the event-driven reference simulator and the
baseline protocols benefit from an explicit transport with per-message
latency and optional loss.  Keeping it in one small class also documents the
substitution: the paper's MATLAB simulation had no network model either, so
the default configuration (zero loss, unit latency) adds nothing beyond
ordering events in time.

The same model drives the vectorised loss plane of the batched engines:
:meth:`NetworkModel.draw_loss` thins one scalar engine's per-round send list
and :meth:`NetworkModel.draw_loss_batch` thins a whole ``(R, n, fanout)``
round of the batched engines with one Bernoulli draw, so the fast paths model
exactly the independent-loss law the event-driven reference implements one
:meth:`NetworkModel.transmit` call at a time.  Both hooks short-circuit at
``loss_probability == 0`` **without consuming randomness**, which is what
makes the lossy engines bit-for-bit identical to the loss-free ones at
``loss_probability = 0``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.utils.rng import as_generator
from repro.utils.validation import check_probability

__all__ = ["NetworkModel", "latency_constant", "latency_uniform", "latency_exponential"]


def latency_constant(value: float = 1.0) -> Callable[[np.random.Generator], float]:
    """Return a latency sampler that always returns ``value``."""
    if value < 0:
        raise ValueError(f"latency must be >= 0, got {value!r}")
    return lambda rng: value


def latency_uniform(low: float, high: float) -> Callable[[np.random.Generator], float]:
    """Return a latency sampler uniform on ``[low, high]``."""
    if low < 0 or high < low:
        raise ValueError(f"invalid latency range [{low}, {high}]")
    return lambda rng: float(rng.uniform(low, high))


def latency_exponential(mean: float) -> Callable[[np.random.Generator], float]:
    """Return an exponentially distributed latency sampler with the given mean."""
    if mean <= 0:
        raise ValueError(f"mean latency must be > 0, got {mean!r}")
    return lambda rng: float(rng.exponential(mean))


@dataclass
class NetworkModel:
    """Point-to-point transport with latency and independent message loss.

    Attributes
    ----------
    latency:
        Callable drawing a delivery latency from an RNG.
    loss_probability:
        Probability that any given message is silently dropped.
    messages_sent, messages_dropped:
        Counters accumulated across :meth:`transmit` / :meth:`draw_loss` /
        :meth:`draw_loss_batch` calls (zeroed with :meth:`reset`).
    total_latency:
        Sum of the latencies of every delivered message (the latency
        bookkeeping side of the counters; zeroed with :meth:`reset`).
    """

    latency: Callable[[np.random.Generator], float] = field(default_factory=latency_constant)
    loss_probability: float = 0.0
    messages_sent: int = 0
    messages_dropped: int = 0
    total_latency: float = 0.0

    def __post_init__(self):
        self.loss_probability = check_probability("loss_probability", self.loss_probability)

    def transmit(self, rng: np.random.Generator, deliver: Callable[[float], None]) -> bool:
        """Transmit one message: maybe drop it, otherwise call ``deliver(latency)``.

        Returns ``True`` if the message was delivered (scheduled), ``False``
        if it was lost.
        """
        rng = as_generator(rng)
        self.messages_sent += 1
        if self.loss_probability > 0.0 and rng.random() < self.loss_probability:
            self.messages_dropped += 1
            return False
        delay = self.latency(rng)
        self.total_latency += delay
        deliver(delay)
        return True

    def draw_loss(self, rng: np.random.Generator, count: int) -> np.ndarray:
        """Thin ``count`` messages at once; return the boolean keep mask.

        The vectorised equivalent of ``count`` :meth:`transmit` calls without
        the latency leg: counters are updated, ``mask[i]`` is ``True`` iff
        message ``i`` survives.  At ``loss_probability == 0`` (or
        ``count == 0``) the mask is all-``True`` and **no randomness is
        consumed**, so a loss-free network leaves the caller's RNG stream —
        and therefore its per-seed results — untouched.
        """
        count = int(count)
        if count < 0:
            raise ValueError(f"count must be >= 0, got {count}")
        self.messages_sent += count
        if count == 0 or self.loss_probability <= 0.0:
            return np.ones(count, dtype=bool)
        keep = as_generator(rng).random(count) >= self.loss_probability
        self.messages_dropped += count - int(keep.sum())
        return keep

    def draw_loss_batch(
        self,
        rng: np.random.Generator,
        target_replica: np.ndarray,
        repetitions: int,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Thin one batched round's flat send list with independent drops.

        Parameters
        ----------
        target_replica:
            Replica identifier of every in-flight message, shape ``(M,)``
            (the batched engines already carry this for message accounting).
        repetitions:
            Number of replicas ``R`` in the batch.

        Returns
        -------
        (keep, dropped_per_replica):
            ``keep`` is the ``(M,)`` boolean survival mask;
            ``dropped_per_replica`` books the losses back to their replicas,
            shape ``(R,)``.  Counters accumulate the batch totals.  Like
            :meth:`draw_loss`, the zero-loss path consumes no randomness.
        """
        target_replica = np.asarray(target_replica, dtype=np.int64)
        count = int(target_replica.size)
        self.messages_sent += count
        if count == 0 or self.loss_probability <= 0.0:
            return np.ones(count, dtype=bool), np.zeros(repetitions, dtype=np.int64)
        keep = as_generator(rng).random(count) >= self.loss_probability
        dropped = np.bincount(target_replica[~keep], minlength=repetitions)
        self.messages_dropped += count - int(keep.sum())
        return keep, dropped.astype(np.int64, copy=False)

    def reset(self) -> None:
        """Zero the message counters and the latency bookkeeping.

        Called by :meth:`repro.protocols.base.Protocol.run` between replicas
        so counters always describe exactly one execution and never leak
        across runs.
        """
        self.messages_sent = 0
        self.messages_dropped = 0
        self.total_latency = 0.0

    def reset_counters(self) -> None:
        """Backwards-compatible alias of :meth:`reset`."""
        self.reset()

"""Message-transport model for the event-driven simulator.

The analytical model abstracts the network away entirely (a gossip arc either
exists or it does not), but the event-driven reference simulator and the
baseline protocols benefit from an explicit transport with per-message
latency and optional loss.  Keeping it in one small class also documents the
substitution: the paper's MATLAB simulation had no network model either, so
the default configuration (zero loss, unit latency) adds nothing beyond
ordering events in time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.utils.rng import as_generator
from repro.utils.validation import check_probability

__all__ = ["NetworkModel", "latency_constant", "latency_uniform", "latency_exponential"]


def latency_constant(value: float = 1.0) -> Callable[[np.random.Generator], float]:
    """Return a latency sampler that always returns ``value``."""
    if value < 0:
        raise ValueError(f"latency must be >= 0, got {value!r}")
    return lambda rng: value


def latency_uniform(low: float, high: float) -> Callable[[np.random.Generator], float]:
    """Return a latency sampler uniform on ``[low, high]``."""
    if low < 0 or high < low:
        raise ValueError(f"invalid latency range [{low}, {high}]")
    return lambda rng: float(rng.uniform(low, high))


def latency_exponential(mean: float) -> Callable[[np.random.Generator], float]:
    """Return an exponentially distributed latency sampler with the given mean."""
    if mean <= 0:
        raise ValueError(f"mean latency must be > 0, got {mean!r}")
    return lambda rng: float(rng.exponential(mean))


@dataclass
class NetworkModel:
    """Point-to-point transport with latency and independent message loss.

    Attributes
    ----------
    latency:
        Callable drawing a delivery latency from an RNG.
    loss_probability:
        Probability that any given message is silently dropped.
    messages_sent, messages_dropped:
        Counters accumulated across :meth:`transmit` calls (reset with
        :meth:`reset_counters`).
    """

    latency: Callable[[np.random.Generator], float] = field(default_factory=latency_constant)
    loss_probability: float = 0.0
    messages_sent: int = 0
    messages_dropped: int = 0

    def __post_init__(self):
        self.loss_probability = check_probability("loss_probability", self.loss_probability)

    def transmit(self, rng: np.random.Generator, deliver: Callable[[float], None]) -> bool:
        """Transmit one message: maybe drop it, otherwise call ``deliver(latency)``.

        Returns ``True`` if the message was delivered (scheduled), ``False``
        if it was lost.
        """
        rng = as_generator(rng)
        self.messages_sent += 1
        if self.loss_probability > 0.0 and rng.random() < self.loss_probability:
            self.messages_dropped += 1
            return False
        deliver(self.latency(rng))
        return True

    def reset_counters(self) -> None:
        """Zero the message counters."""
        self.messages_sent = 0
        self.messages_dropped = 0

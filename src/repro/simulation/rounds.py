"""Repeated executions and the success-of-gossiping experiments (Figs. 6-7).

The paper increases the probability of the *success of gossiping* by
repeating the whole gossip execution ``t`` times and argues that each
execution is an independent Bernoulli trial with success probability equal to
the single-execution reliability ``p_r``, so the number of "successes" ``X``
among ``t`` executions follows ``B(t, p_r)`` (Section 4.2, case 2).

In the evaluation (Figs. 6-7) the measured ``X`` is compared against
``B(20, 0.967)``.  Two readings of "success of one execution" are possible
and both are implemented here:

* ``mode="per_member"`` (default, reproduces the paper's figures): ``X`` is
  the number of executions in which a designated nonfailed *observer* member
  received the message.  This is exactly the Bernoulli variable whose success
  probability is the reliability, so ``X ~ B(t, p_r)`` holds by construction
  and simulation verifies the independence assumption.
* ``mode="all_members"``: ``X`` counts executions in which **all** (or a
  fraction ``success_threshold`` of) nonfailed members received the message —
  the strict definition of ``S(q, P, t)``.  For large groups the all-members
  probability is far below ``p_r``; exposing it lets users see the gap the
  paper's Bernoulli approximation glosses over.
"""

from __future__ import annotations

import numpy as np

from repro.core.distributions import FanoutDistribution
from repro.core.reliability import reliability as analytical_reliability
from repro.simulation.gossip import (
    GossipExecution,
    simulate_gossip_batch,
    simulate_gossip_once,
)
from repro.simulation.membership import MembershipView
from repro.simulation.metrics import SuccessCountResult, build_success_count_result
from repro.utils.rng import SeedLike, as_generator
from repro.utils.validation import check_choice, check_integer, check_probability

__all__ = ["repeated_executions", "simulate_success_counts"]


def repeated_executions(
    n: int,
    distribution: FanoutDistribution,
    q: float,
    executions: int,
    *,
    source: int = 0,
    seed: SeedLike = None,
    membership: MembershipView | None = None,
) -> list[GossipExecution]:
    """Run ``executions`` independent executions of the gossip algorithm.

    Each execution draws a fresh failure pattern (the paper's trials are
    independent Bernoulli trials, so nothing is held fixed between them).
    """
    executions = check_integer("executions", executions, minimum=0)
    rng = as_generator(seed)
    return [
        simulate_gossip_once(
            n, distribution, q, source=source, seed=rng, membership=membership
        )
        for _ in range(executions)
    ]


def simulate_success_counts(
    n: int,
    distribution: FanoutDistribution,
    q: float,
    *,
    executions: int = 20,
    simulations: int = 100,
    mode: str = "per_member",
    success_threshold: float = 1.0,
    condition_on_spread: bool = False,
    max_redraws: int = 50,
    source: int = 0,
    seed: SeedLike = None,
    membership: MembershipView | None = None,
    engine: str = "batch",
) -> SuccessCountResult:
    """Estimate the distribution of the success count ``X`` (Figs. 6-7 protocol).

    Parameters
    ----------
    n, distribution, q:
        The ``Gossip(n, P, q)`` configuration.
    executions:
        ``t`` — executions per simulation (paper: 20).
    simulations:
        Number of independent simulations, i.e. samples of ``X`` (paper: 100).
    mode:
        ``"per_member"`` — count executions in which a randomly chosen
        nonfailed observer received the message (the Binomial reference of
        the paper's figures).  ``"all_members"`` — count executions reaching
        at least ``success_threshold`` of nonfailed members.
    success_threshold:
        Reliability threshold defining success in ``"all_members"`` mode.
    condition_on_spread:
        When True, each of the ``executions`` trials is conditioned on the
        gossip taking off: an execution that dies out within a few hops is
        redrawn (up to ``max_redraws`` times).  The paper's Binomial reference
        ``B(t, R(q, P))`` uses the analytical reliability, which corresponds
        to this conditional reading (see DESIGN.md); the Figs. 6-7 experiment
        configs therefore enable it, while the plain default reports the
        unconditional trials.
    max_redraws:
        Retry budget per trial when ``condition_on_spread`` is True.
    engine:
        ``"batch"`` (default) runs all ``simulations × executions`` trials
        through the batched engine — conditioning redraws re-run only the
        still-dead trials, as one batch per retry round.  ``"scalar"`` keeps
        the per-trial reference loop.
    """
    n = check_integer("n", n, minimum=2)
    q = check_probability("q", q)
    executions = check_integer("executions", executions, minimum=1)
    simulations = check_integer("simulations", simulations, minimum=1)
    success_threshold = check_probability("success_threshold", success_threshold)
    max_redraws = check_integer("max_redraws", max_redraws, minimum=0)
    mode = check_choice("mode", mode, ("per_member", "all_members"))
    engine = check_choice("engine", engine, ("batch", "scalar"))
    rng = as_generator(seed)

    if engine == "batch":
        counts = _batched_success_counts(
            n,
            distribution,
            q,
            executions=executions,
            simulations=simulations,
            mode=mode,
            success_threshold=success_threshold,
            condition_on_spread=condition_on_spread,
            max_redraws=max_redraws,
            source=source,
            rng=rng,
            membership=membership,
        )
        p_r = analytical_reliability(distribution, q)
        return build_success_count_result(counts, executions, p_r)

    counts = np.zeros(simulations, dtype=np.int64)
    for sim in range(simulations):
        # The observer must be a member other than the source (the source
        # trivially always receives); it is re-drawn per simulation.
        if n > 1:
            observer = int(rng.integers(0, n - 1))
            observer += observer >= source
        else:
            observer = 0
        successes = 0
        for _ in range(executions):
            execution = simulate_gossip_once(
                n, distribution, q, source=source, seed=rng, membership=membership
            )
            if condition_on_spread:
                redraws = 0
                while not execution.spread_occurred() and redraws < max_redraws:
                    execution = simulate_gossip_once(
                        n, distribution, q, source=source, seed=rng, membership=membership
                    )
                    redraws += 1
            if mode == "per_member":
                # Only count executions where the observer did not fail; if it
                # failed, re-sample the outcome as "not received" would bias
                # the estimate, so instead we condition on it being alive by
                # treating a failed observer as a missed trial and drawing the
                # Bernoulli from another alive member chosen uniformly.
                if execution.alive[observer]:
                    successes += int(execution.delivered[observer])
                else:
                    alive_others = np.flatnonzero(execution.alive)
                    alive_others = alive_others[alive_others != source]
                    if alive_others.size:
                        stand_in = int(alive_others[int(rng.integers(0, alive_others.size))])
                        successes += int(execution.delivered[stand_in])
            else:
                successes += int(execution.is_success(success_threshold))
        counts[sim] = successes

    p_r = analytical_reliability(distribution, q)
    return build_success_count_result(counts, executions, p_r)


def _batched_success_counts(
    n: int,
    distribution: FanoutDistribution,
    q: float,
    *,
    executions: int,
    simulations: int,
    mode: str,
    success_threshold: float,
    condition_on_spread: bool,
    max_redraws: int,
    source: int,
    rng: np.random.Generator,
    membership: MembershipView | None,
) -> np.ndarray:
    """Vectorised Figs. 6-7 trial loop: all trials advance as one replica batch.

    Trial ``t`` belongs to simulation ``t // executions``.  Conditioning on
    spread redraws only the trials that died out, one batch per retry round,
    so the retry cost scales with the (small) die-out fraction instead of the
    trial count.
    """
    trials = simulations * executions
    result = simulate_gossip_batch(
        n,
        distribution,
        q,
        repetitions=trials,
        source=source,
        seed=rng,
        membership=membership,
    )
    alive = result.alive
    delivered = result.delivered
    if condition_on_spread:
        pending = ~result.spread_occurred()
        redraws = 0
        while pending.any() and redraws < max_redraws:
            retry = simulate_gossip_batch(
                n,
                distribution,
                q,
                repetitions=int(pending.sum()),
                source=source,
                seed=rng,
                membership=membership,
            )
            rows = np.flatnonzero(pending)
            alive[rows] = retry.alive
            delivered[rows] = retry.delivered
            pending[rows] = ~retry.spread_occurred()
            redraws += 1

    if mode == "all_members":
        n_alive = alive.sum(axis=1)
        reliability = delivered.sum(axis=1) / n_alive
        successes = reliability >= success_threshold - 1e-12
    else:
        # One observer per simulation (a member other than the source),
        # shared by that simulation's trials; draws from the n-1 virtual
        # slots with the source removed, shifting to real identifiers.
        if n > 1:
            observers = rng.integers(0, n - 1, size=simulations)
            observers += observers >= source
        else:
            observers = np.zeros(simulations, dtype=np.int64)
        per_trial_observer = np.repeat(observers, executions)
        trial_rows = np.arange(trials)
        successes = delivered[trial_rows, per_trial_observer].copy()
        # Trials whose observer failed draw a uniformly random alive stand-in
        # (excluding the source); random keys make the per-row argmax a
        # uniform choice over each row's alive set.
        need_stand_in = np.flatnonzero(~alive[trial_rows, per_trial_observer])
        if need_stand_in.size:
            candidates = alive[need_stand_in].copy()
            candidates[:, source] = False
            keys = rng.random(candidates.shape)
            keys[~candidates] = -1.0
            stand_ins = np.argmax(keys, axis=1)
            has_candidate = candidates.any(axis=1)
            successes[need_stand_in] = np.where(
                has_candidate, delivered[need_stand_in, stand_ins], False
            )
    return successes.reshape(simulations, executions).sum(axis=1).astype(np.int64)

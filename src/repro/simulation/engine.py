"""A small deterministic discrete-event engine.

The paper's simulations only need a Monte-Carlo of the gossip process, but a
proper protocol-level reference — with per-message latencies, message loss,
and crash timing — requires an event scheduler.  ``simpy`` is not available
in this offline environment, so this module provides the minimal equivalent:
a priority-queue scheduler with deterministic FIFO tie-breaking, suitable for
the event-driven gossip simulator and the baseline protocols.

Determinism guarantees:

* Events firing at the same simulated time are processed in scheduling order
  (a monotonically increasing sequence number breaks ties).
* All randomness lives in the callers' RNGs; the engine itself draws nothing.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable

__all__ = ["Event", "EventScheduler"]


@dataclass(order=True, frozen=True)
class Event:
    """A scheduled event.

    Events are ordered by ``(time, seq)`` so the scheduler is a stable
    priority queue.  The payload (``callback`` and ``data``) does not take
    part in ordering.
    """

    time: float
    seq: int
    callback: Callable[["EventScheduler", Any], None] = field(compare=False)
    data: Any = field(compare=False, default=None)


class EventScheduler:
    """Priority-queue event scheduler with a simulated clock.

    Examples
    --------
    >>> sched = EventScheduler()
    >>> seen = []
    >>> sched.schedule(1.0, lambda s, d: seen.append(d), "a")   # doctest: +ELLIPSIS
    Event(...)
    >>> sched.schedule(0.5, lambda s, d: seen.append(d), "b")   # doctest: +ELLIPSIS
    Event(...)
    >>> sched.run()
    2
    >>> seen
    ['b', 'a']
    """

    def __init__(self) -> None:
        self._queue: list[Event] = []
        self._counter = itertools.count()
        self._cancelled: set[int] = set()
        self.now: float = 0.0
        self.processed: int = 0

    def __len__(self) -> int:
        return len(self._queue)

    def schedule(self, delay: float, callback: Callable, data: Any = None) -> Event:
        """Schedule ``callback(scheduler, data)`` to fire ``delay`` from now.

        Negative delays are rejected: the engine never travels back in time.
        """
        if delay < 0:
            raise ValueError(f"delay must be >= 0, got {delay!r}")
        event = Event(time=self.now + delay, seq=next(self._counter), callback=callback, data=data)
        heapq.heappush(self._queue, event)
        return event

    def schedule_at(self, time: float, callback: Callable, data: Any = None) -> Event:
        """Schedule an event at an absolute simulated time (>= now)."""
        if time < self.now:
            raise ValueError(f"cannot schedule in the past (now={self.now}, time={time})")
        return self.schedule(time - self.now, callback, data)

    def cancel(self, event: Event) -> None:
        """Cancel a previously scheduled event (lazy removal)."""
        self._cancelled.add(event.seq)

    def peek_time(self) -> float | None:
        """Return the firing time of the next pending event, or None if empty."""
        while self._queue and self._queue[0].seq in self._cancelled:
            heapq.heappop(self._queue)
        return self._queue[0].time if self._queue else None

    def step(self) -> bool:
        """Process a single event; return False when the queue is empty."""
        while self._queue:
            event = heapq.heappop(self._queue)
            if event.seq in self._cancelled:
                self._cancelled.discard(event.seq)
                continue
            self.now = event.time
            event.callback(self, event.data)
            self.processed += 1
            return True
        return False

    def run(self, until: float | None = None, max_events: int | None = None) -> int:
        """Run until the queue is drained, ``until`` is reached, or ``max_events`` fire.

        Returns the number of events processed by this call.
        """
        processed_before = self.processed
        while self._queue:
            next_time = self.peek_time()
            if next_time is None:
                break
            if until is not None and next_time > until:
                break
            if max_events is not None and self.processed - processed_before >= max_events:
                break
            self.step()
        if until is not None and (self.peek_time() is None or self.peek_time() > until):
            self.now = max(self.now, until)
        return self.processed - processed_before

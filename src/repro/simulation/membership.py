"""Membership views for gossip target selection.

Section 3 of the paper assumes "a scalable membership protocol is available"
(e.g. SCAMP) and deliberately scopes membership out of the analysis: every
member selects its gossip targets "uniformly at random from its membership
view".  The analytical model implicitly assumes that view is the whole group.

Two view providers are implemented:

* :class:`FullView` — every member knows every other member (the paper's
  implicit assumption and the default everywhere).
* :class:`UniformPartialView` — every member knows a fixed-size uniformly
  random subset of the group, refreshed once per execution (a SCAMP-like
  partial view).  Used by the membership ablation benchmark to show how the
  reliability degrades when the view is much smaller than the group.

Views expose two sampling operations:

* :meth:`MembershipView.sample_targets` — draw ``k`` distinct gossip targets
  for one member (never including the member itself).  Small draws use
  Floyd's algorithm (O(k) expected work); draws that are a large fraction of
  the view switch to a numpy partial permutation.
* :meth:`MembershipView.sample_targets_batch` — draw distinct targets for a
  whole *batch* of (member, fanout) pairs in a handful of array operations.
  This is the hot path of the batched Monte-Carlo engine
  (:func:`repro.simulation.gossip.simulate_gossip_batch`): per gossip round
  it replaces thousands of Python-level Floyd loops with one vectorised
  rejection pass (draw with replacement, redraw the rare rows that collide)
  backed by an exact random-key top-``k`` (Gumbel-top-k style argpartition)
  fallback for rows whose fanout is a large fraction of the view.

The distinct-sampling kernels themselves live in
:mod:`repro.utils.sampling` so the graph-percolation ensemble
(:mod:`repro.graphs.ensemble`) and the simulator share one implementation;
``sample_distinct`` and ``sample_distinct_rows`` are re-exported here for
backwards compatibility.

Time-varying membership
-----------------------

Views additionally carry an optional **presence mask** — the dynamic-membership
contract used by the churn plane (:mod:`repro.simulation.churn`):

* :meth:`MembershipView.apply_events` applies join/leave events, updating the
  mask of members currently in the group;
* :meth:`MembershipView.alive_mask` / :meth:`MembershipView.alive_mask_batch`
  expose the current mask (scalar and replica-broadcast forms);
* both sampling operations silently drop absent targets — a member whose view
  still names a departed peer wastes that send, exactly as a real system
  would until its peer-sampling service repairs the view.

The mask is lazily allocated: while no events have been applied (or all
members rejoined) it stays ``None`` and every sampling path is *bit-identical*
to the static implementation — zero churn costs nothing and changes nothing.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

from typing import Iterable

import numpy as np
import numpy.typing as npt

from repro.utils.rng import SeedLike, as_generator
from repro.utils.sampling import (
    sample_distinct,
    sample_distinct_rows,
    sample_distinct_rows_excluding,
)
from repro.utils.validation import check_integer

__all__ = [
    "MembershipView",
    "FullView",
    "UniformPartialView",
    "sample_distinct",
    "sample_distinct_rows",
]


def _check_batch_args(
    members: npt.ArrayLike, fanouts: npt.ArrayLike, n: int
) -> tuple[np.ndarray, np.ndarray]:
    """Cast and validate the (members, fanouts) pair of a batched draw.

    Mirrors the scalar path's member validation: out-of-range identifiers
    raise instead of silently wrapping through numpy negative indexing.
    """
    members = np.asarray(members, dtype=np.int64)
    fanouts = np.asarray(fanouts, dtype=np.int64)
    if members.shape != fanouts.shape:
        raise ValueError("members and fanouts must have the same shape")
    if members.size and (members.min() < 0 or members.max() >= n):
        raise ValueError(f"members must be identifiers in [0, {n}), got values outside")
    return members, fanouts


class MembershipView(ABC):
    """Abstract membership-view provider for a group of ``n`` members.

    Views are *time-varying*: :meth:`apply_events` feeds join/leave events
    into a lazily-allocated presence mask, and both sampling operations drop
    targets that are currently absent.  With no events applied the mask stays
    ``None`` and every code path is bit-identical to a static view.
    """

    def __init__(self, n: int) -> None:
        self.n = check_integer("n", n, minimum=1)
        self._present: np.ndarray | None = None

    @abstractmethod
    def view_of(self, member: int) -> np.ndarray:
        """Return the member identifiers visible to ``member`` (excluding itself)."""

    @abstractmethod
    def sample_targets(self, member: int, k: int, rng: np.random.Generator) -> np.ndarray:
        """Draw ``k`` distinct gossip targets for ``member`` from its view.

        Targets absent from the group (after :meth:`apply_events`) are
        dropped, so fewer than ``k`` targets may come back under churn.
        """

    def alive_mask(self, round_index: int = 0) -> np.ndarray:
        """Return the ``(n,)`` mask of members currently in the group.

        ``round_index`` is accepted for symmetry with the churn schedules'
        :meth:`~repro.simulation.churn.ChurnScheduleBatch.present_at`; a
        plain view has no event clock of its own, so the mask reflects
        whatever events have been applied so far.
        """
        if self._present is None:
            return np.ones(self.n, dtype=bool)
        return self._present.copy()

    def alive_mask_batch(self, repetitions: int, round_index: int = 0) -> np.ndarray:
        """Return the presence mask broadcast over replicas, shape ``(R, n)``.

        The vectorised variant the batched engines consume; each replica row
        is the same mask because events applied through the view API are
        global (per-replica schedules live in
        :class:`~repro.simulation.churn.ChurnScheduleBatch` instead).
        """
        repetitions = check_integer("repetitions", repetitions, minimum=1)
        return np.broadcast_to(
            self.alive_mask(round_index)[None, :], (repetitions, self.n)
        ).copy()

    def apply_events(
        self, round_index: int, joins: Iterable[int] = (), leaves: Iterable[int] = ()
    ) -> None:
        """Apply join/leave events effective from round ``round_index`` on.

        ``joins`` mark members (re-)entering the group, ``leaves`` mark
        members departing; subsequent sampling drops absent targets.  When
        every member ends up present again the mask deallocates back to
        ``None``, restoring the bit-identical static path.
        """
        check_integer("round_index", round_index, minimum=0)
        joins = np.asarray(list(joins), dtype=np.int64)
        leaves = np.asarray(list(leaves), dtype=np.int64)
        for name, events in (("joins", joins), ("leaves", leaves)):
            if events.size and (events.min() < 0 or events.max() >= self.n):
                raise ValueError(f"{name} must be identifiers in [0, {self.n})")
        if self._present is None:
            if not leaves.size:
                return  # joins of already-present members change nothing
            self._present = np.ones(self.n, dtype=bool)
        self._present[joins] = True
        self._present[leaves] = False
        if self._present.all():
            self._present = None

    def _drop_absent(
        self, targets: np.ndarray, senders: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Filter a (targets, senders) pair down to currently-present targets."""
        if self._present is None or not targets.size:
            return targets, senders
        keep = self._present[targets]
        return targets[keep], senders[keep]

    def sample_targets_batch(
        self, members: np.ndarray, fanouts: np.ndarray, rng: np.random.Generator
    ) -> tuple[np.ndarray, np.ndarray]:
        """Draw distinct targets for a whole batch of (member, fanout) pairs.

        Parameters
        ----------
        members:
            Sender identifiers, shape ``(M,)`` (duplicates allowed — the
            batched engine sends the same member id from different replicas).
        fanouts:
            Requested fanout per sender, shape ``(M,)``; clipped per row to
            the sender's view size.
        rng:
            Generator supplying all randomness of the draw.

        Returns
        -------
        (targets, senders):
            Flat arrays of equal length: ``targets[i]`` is one gossip target
            drawn for the sender at index ``senders[i]`` of ``members``.
            Row ``j``'s targets are distinct and never include
            ``members[j]``.

        The base implementation loops over :meth:`sample_targets` (correct
        for any view); :class:`FullView` and :class:`UniformPartialView`
        override it with fully vectorised paths.
        """
        members, fanouts = _check_batch_args(members, fanouts, self.n)
        batches = [
            self.sample_targets(int(member), int(k), rng)
            for member, k in zip(members, fanouts, strict=True)
        ]
        senders = np.repeat(
            np.arange(members.size, dtype=np.int64),
            [len(b) for b in batches],
        )
        if not batches:
            return np.empty(0, dtype=np.int64), senders
        return np.concatenate(batches).astype(np.int64, copy=False), senders

    def view_size(self, member: int) -> int:
        """Return the number of members visible to ``member``."""
        return int(len(self.view_of(member)))

    def reset(self, seed: SeedLike = None) -> None:
        """Re-randomise the view (no-op for deterministic views)."""


class FullView(MembershipView):
    """Every member sees the entire group (the analytical model's assumption)."""

    def __init__(self, n: int) -> None:
        super().__init__(n)
        self._all_members = np.arange(self.n, dtype=np.int64)
        self._all_members.setflags(write=False)
        self._cached_member: int | None = None
        self._cached_view: np.ndarray | None = None

    def view_of(self, member: int) -> np.ndarray:
        """Return the read-only view of ``member`` (everyone but itself).

        The last requested view is cached, so the common access pattern —
        metric/ablation code hitting the same member repeatedly — stops
        reallocating O(n) per lookup; a different member costs one slice
        concatenation of the shared cached arange.  Memory stays O(n).
        """
        member = check_integer("member", member, minimum=0, maximum=self.n - 1)
        if member != self._cached_member:
            view = np.concatenate(
                (self._all_members[:member], self._all_members[member + 1 :])
            )
            view.setflags(write=False)
            self._cached_member = member
            self._cached_view = view
        return self._cached_view

    def sample_targets(self, member: int, k: int, rng: np.random.Generator) -> np.ndarray:
        member = check_integer("member", member, minimum=0, maximum=self.n - 1)
        targets = sample_distinct(rng, self.n, k, exclude=member)
        if self._present is not None and targets.size:
            targets = targets[self._present[targets]]
        return targets

    def sample_targets_batch(
        self, members: np.ndarray, fanouts: np.ndarray, rng: np.random.Generator
    ) -> tuple[np.ndarray, np.ndarray]:
        members, fanouts = _check_batch_args(members, fanouts, self.n)
        # Each row samples from the n-1 virtual slots with its own id removed
        # (the shared exclusion kernel restores real identifiers).
        ks = np.minimum(fanouts, self.n - 1)
        matrix, valid = sample_distinct_rows_excluding(rng, self.n, fanouts, members)
        senders = np.repeat(np.arange(members.size, dtype=np.int64), np.maximum(ks, 0))
        # The shared sampler may hand back a narrower dtype; the view API
        # contract (and the other implementations) is int64 identifiers.
        return self._drop_absent(matrix[valid].astype(np.int64, copy=False), senders)


class UniformPartialView(MembershipView):
    """Every member sees a fixed-size uniformly random subset of the group.

    Parameters
    ----------
    n:
        Group size.
    view_size:
        Number of other members each member knows.  Values >= n - 1 degrade
        to a full view.
    seed:
        Seed for the view assignment (views are re-drawn by :meth:`reset`).
    """

    def __init__(self, n: int, view_size: int, *, seed: SeedLike = None) -> None:
        super().__init__(n)
        self._view_size = check_integer("view_size", view_size, minimum=1)
        self._view_matrix = np.zeros((0, 0), dtype=np.int64)
        self.reset(seed)

    def reset(self, seed: SeedLike = None) -> None:
        rng = as_generator(seed)
        size = min(self._view_size, self.n - 1)
        # All views share one size, so they pack into an (n, size) matrix the
        # batched sampler can gather from without Python-level lookups.
        matrix = np.empty((self.n, size), dtype=np.int64)
        for member in range(self.n):
            matrix[member] = np.sort(sample_distinct(rng, self.n, size, exclude=member))
        self._view_matrix = matrix

    def view_of(self, member: int) -> np.ndarray:
        member = check_integer("member", member, minimum=0, maximum=self.n - 1)
        return self._view_matrix[member]

    def sample_targets(self, member: int, k: int, rng: np.random.Generator) -> np.ndarray:
        member = check_integer("member", member, minimum=0, maximum=self.n - 1)
        view = self._view_matrix[member]
        if len(view) == 0:
            return np.empty(0, dtype=np.int64)
        k = min(int(k), len(view))
        if k <= 0:
            return np.empty(0, dtype=np.int64)
        idx = sample_distinct(rng, len(view), k)
        targets = view[idx]
        if self._present is not None and targets.size:
            targets = targets[self._present[targets]]
        return targets

    def sample_targets_batch(
        self, members: np.ndarray, fanouts: np.ndarray, rng: np.random.Generator
    ) -> tuple[np.ndarray, np.ndarray]:
        members, fanouts = _check_batch_args(members, fanouts, self.n)
        size = self._view_matrix.shape[1]
        ks = np.minimum(fanouts, size)
        idx, valid = sample_distinct_rows(rng, size, ks)
        senders = np.repeat(np.arange(members.size, dtype=np.int64), np.maximum(ks, 0))
        if not idx.shape[1]:
            return np.empty(0, dtype=np.int64), senders
        targets = self._view_matrix[members[:, None], idx]
        return self._drop_absent(targets[valid], senders)

"""Membership views for gossip target selection.

Section 3 of the paper assumes "a scalable membership protocol is available"
(e.g. SCAMP) and deliberately scopes membership out of the analysis: every
member selects its gossip targets "uniformly at random from its membership
view".  The analytical model implicitly assumes that view is the whole group.

Two view providers are implemented:

* :class:`FullView` — every member knows every other member (the paper's
  implicit assumption and the default everywhere).
* :class:`UniformPartialView` — every member knows a fixed-size uniformly
  random subset of the group, refreshed once per execution (a SCAMP-like
  partial view).  Used by the membership ablation benchmark to show how the
  reliability degrades when the view is much smaller than the group.

Views expose a single operation, :meth:`MembershipView.sample_targets`, that
draws ``k`` distinct gossip targets for a member (never including the member
itself).  Sampling uses Floyd's algorithm so cost is ``O(k)`` regardless of
group size.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from repro.utils.rng import as_generator
from repro.utils.validation import check_integer

__all__ = ["MembershipView", "FullView", "UniformPartialView", "sample_distinct"]


def sample_distinct(
    rng: np.random.Generator, population: int, k: int, exclude: int | None = None
) -> np.ndarray:
    """Sample ``k`` distinct integers from ``[0, population)`` excluding ``exclude``.

    Uses Floyd's algorithm (O(k) expected work).  If ``k`` exceeds the number
    of available values it is truncated.
    """
    if population <= 0:
        return np.empty(0, dtype=np.int64)
    available = population - (1 if exclude is not None and 0 <= exclude < population else 0)
    k = min(int(k), available)
    if k <= 0:
        return np.empty(0, dtype=np.int64)
    if exclude is None or not (0 <= exclude < population):
        # Floyd over [0, population)
        chosen: set[int] = set()
        for j in range(population - k, population):
            t = int(rng.integers(0, j + 1))
            chosen.add(t if t not in chosen else j)
        return np.fromiter(chosen, dtype=np.int64, count=len(chosen))
    # Sample from population-1 virtual slots then shift indices >= exclude.
    m = population - 1
    chosen = set()
    for j in range(m - k, m):
        t = int(rng.integers(0, j + 1))
        chosen.add(t if t not in chosen else j)
    arr = np.fromiter(chosen, dtype=np.int64, count=len(chosen))
    arr[arr >= exclude] += 1
    return arr


class MembershipView(ABC):
    """Abstract membership-view provider for a group of ``n`` members."""

    def __init__(self, n: int):
        self.n = check_integer("n", n, minimum=1)

    @abstractmethod
    def view_of(self, member: int) -> np.ndarray:
        """Return the member identifiers visible to ``member`` (excluding itself)."""

    @abstractmethod
    def sample_targets(self, member: int, k: int, rng: np.random.Generator) -> np.ndarray:
        """Draw ``k`` distinct gossip targets for ``member`` from its view."""

    def view_size(self, member: int) -> int:
        """Return the number of members visible to ``member``."""
        return int(len(self.view_of(member)))

    def reset(self, seed=None) -> None:
        """Re-randomise the view (no-op for deterministic views)."""


class FullView(MembershipView):
    """Every member sees the entire group (the analytical model's assumption)."""

    def view_of(self, member: int) -> np.ndarray:
        member = check_integer("member", member, minimum=0, maximum=self.n - 1)
        view = np.arange(self.n, dtype=np.int64)
        return np.delete(view, member)

    def sample_targets(self, member: int, k: int, rng: np.random.Generator) -> np.ndarray:
        member = check_integer("member", member, minimum=0, maximum=self.n - 1)
        return sample_distinct(rng, self.n, k, exclude=member)


class UniformPartialView(MembershipView):
    """Every member sees a fixed-size uniformly random subset of the group.

    Parameters
    ----------
    n:
        Group size.
    view_size:
        Number of other members each member knows.  Values >= n - 1 degrade
        to a full view.
    seed:
        Seed for the view assignment (views are re-drawn by :meth:`reset`).
    """

    def __init__(self, n: int, view_size: int, *, seed=None):
        super().__init__(n)
        self._view_size = check_integer("view_size", view_size, minimum=1)
        self._views: dict[int, np.ndarray] = {}
        self.reset(seed)

    def reset(self, seed=None) -> None:
        rng = as_generator(seed)
        size = min(self._view_size, self.n - 1)
        self._views = {
            member: np.sort(sample_distinct(rng, self.n, size, exclude=member))
            for member in range(self.n)
        }

    def view_of(self, member: int) -> np.ndarray:
        member = check_integer("member", member, minimum=0, maximum=self.n - 1)
        return self._views[member]

    def sample_targets(self, member: int, k: int, rng: np.random.Generator) -> np.ndarray:
        member = check_integer("member", member, minimum=0, maximum=self.n - 1)
        view = self._views[member]
        if len(view) == 0:
            return np.empty(0, dtype=np.int64)
        k = min(int(k), len(view))
        if k <= 0:
            return np.empty(0, dtype=np.int64)
        idx = sample_distinct(rng, len(view), k)
        return view[idx]

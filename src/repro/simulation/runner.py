"""Monte-Carlo runner and parameter sweeps.

This is the driver behind the paper's Figs. 4-5 protocol: "For each pair of
{f, q}, we run our gossiping algorithm 20 times and report the average
results of the reliability of gossiping."  :func:`estimate_reliability`
handles one ``(distribution, q)`` pair; :func:`reliability_sweep` handles the
full grid and returns a tidy result object the experiment drivers and
benchmarks render into tables.

The default engine is the **batched** simulator
(:func:`repro.simulation.gossip.simulate_gossip_batch`): all repetitions of a
parameter pair advance together as ``(R, n)`` masks, so a whole estimate
costs a handful of numpy passes.  ``engine="scalar"`` falls back to the
per-replica reference simulator.  When fanned out over a process pool the
repetitions are split into *chunked replica batches* (one batch per worker
task, not one task per replica); worker inputs are plain picklable tuples of
integers/floats so the pool never has to ship generator state.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from repro.core.distributions import FanoutDistribution, PoissonFanout
from repro.core.reliability import reliability as analytical_reliability
from repro.simulation.gossip import simulate_gossip_batch, simulate_gossip_once
from repro.simulation.membership import MembershipView
from repro.simulation.metrics import (
    ExecutionMetrics,
    ReliabilityEstimate,
    summarize_executions,
)
from repro.utils.parallel import parallel_map
from repro.utils.rng import SeedLike, as_generator, spawn_seeds
from repro.utils.validation import check_choice, check_integer, check_probability

__all__ = ["estimate_reliability", "reliability_sweep", "SweepResult", "SweepPoint"]

#: Replicas per worker task in the parallel path.  The chunk layout is a
#: function of ``repetitions`` alone — never of the worker or host core
#: count — so a fixed seed reproduces the same numbers on any machine.
_CHUNK_REPETITIONS = 8


def _run_replica_batch(
    args: tuple[int, FanoutDistribution, float, int, int, int],
) -> list[tuple]:
    """Process-pool worker: run one chunk of replicas through the batched engine.

    Returns one ``(n_alive, n_reached_alive, reliability, rounds, messages,
    duplicates, success, spread)`` tuple per replica.
    """
    n, distribution, q, source, seed, repetitions = args
    result = simulate_gossip_batch(
        n, distribution, q, repetitions=repetitions, source=source, seed=seed
    )
    return [
        (
            m.n_alive,
            m.n_reached_alive,
            m.reliability,
            m.rounds,
            m.messages_sent,
            m.duplicates,
            m.success,
            m.spread,
        )
        for m in result.metrics()
    ]


def _run_one_replica(
    args: tuple[int, FanoutDistribution, float, int, int],
) -> tuple[int, int, float, int, int, int, bool, bool]:
    """Process-pool worker: run one scalar execution and return flat metrics.

    Returns ``(n_alive, n_reached_alive, reliability, rounds, messages,
    duplicates, success, spread)``.  Kept for the ``engine="scalar"``
    reference path.
    """
    n, distribution, q, source, seed = args
    execution = simulate_gossip_once(n, distribution, q, source=source, seed=seed)
    return (
        execution.n_alive(),
        execution.n_delivered(),
        execution.reliability(),
        execution.rounds,
        execution.messages_sent,
        execution.duplicates,
        execution.is_success(1.0),
        execution.spread_occurred(),
    )


def estimate_reliability(
    n: int,
    distribution: FanoutDistribution,
    q: float,
    *,
    repetitions: int = 20,
    source: int = 0,
    seed: SeedLike = None,
    membership: MembershipView | None = None,
    processes: int | None = 1,
    conditional_on_spread: bool = False,
    engine: str = "batch",
) -> ReliabilityEstimate:
    """Estimate ``R(q, P)`` by averaging ``repetitions`` independent executions.

    Parameters
    ----------
    repetitions:
        Number of independent executions (paper: 20 per parameter pair).
    processes:
        Worker processes.  The default of 1 runs in the calling process;
        values > 1 (or ``None`` for auto) fan the work out over a pool.
        With the default full membership view the repetitions are *always*
        split into the same chunked replica batches (a function of
        ``repetitions`` alone) and seeded by spawning one child seed per
        chunk, so at a fixed seed every ``processes`` setting — ``1``,
        ``None``, or any worker count — produces bit-identical numbers.
        Partial membership views are not shipped to workers and therefore
        force serial execution.
    conditional_on_spread:
        When True, average only over executions whose dissemination took off
        (delivered more than ``max(10, sqrt(n))`` members).  Single
        executions are bimodal — either the gossip dies out within a few hops
        or it reaches ~R(q, P) of the group — and the paper's analytical
        reliability (the giant-component size) corresponds to the conditional
        branch; the Figs. 4-5 reproduction therefore enables this flag.  The
        unconditional default reports the plain average, and ``spread_rate``
        records how often the gossip took off either way.
    engine:
        ``"batch"`` (default) propagates all replicas simultaneously through
        :func:`simulate_gossip_batch`; ``"scalar"`` runs the per-replica
        reference simulator (slower, kept for equivalence checks).
    """
    n = check_integer("n", n, minimum=2)
    q = check_probability("q", q)
    repetitions = check_integer("repetitions", repetitions, minimum=1)
    engine = check_choice("engine", engine, ("batch", "scalar"))

    def _summarize(executions: list[ExecutionMetrics]) -> ReliabilityEstimate:
        return summarize_executions(
            executions,
            n=n,
            q=q,
            mean_fanout=distribution.mean(),
            conditional_on_spread=conditional_on_spread,
        )

    if membership is not None:
        # Partial views are not shipped to workers: run serially.  There is
        # no parallel twin of this path, so no seed-layout split to guard.
        if engine == "scalar":
            rng = as_generator(seed)
            return _summarize(
                [
                    simulate_gossip_once(
                        n, distribution, q, source=source, seed=rng, membership=membership
                    ).metrics()
                    for _ in range(repetitions)
                ]
            )
        result = simulate_gossip_batch(
            n,
            distribution,
            q,
            repetitions=repetitions,
            source=source,
            seed=seed,
            membership=membership,
        )
        return _summarize(result.metrics())

    if engine == "scalar":
        # One spawned seed per replica regardless of `processes`; the pool
        # only changes *where* a replica runs, never which stream it reads,
        # so processes=None / 1 / k are bit-identical at a fixed seed.
        seeds = spawn_seeds(repetitions, seed)
        work = [(n, distribution, q, source, s) for s in seeds]
        rows = parallel_map(_run_one_replica, work, processes=processes)
        return _summarize(
            [
                ExecutionMetrics(
                    n=n,
                    n_alive=row[0],
                    n_reached_alive=row[1],
                    reliability=row[2],
                    rounds=row[3],
                    messages_sent=row[4],
                    duplicates=row[5],
                    success=row[6],
                    spread=row[7],
                )
                for row in rows
            ]
        )

    # Chunked replica batches: one task per chunk, not per replica.  Chunk
    # count and per-chunk seeds depend only on `repetitions` and `seed` —
    # never on `processes` or the host core count — so the serial spelling
    # (processes=1), the auto spelling (processes=None), and any explicit
    # pool size reproduce exactly the same numbers at a fixed seed.
    n_chunks = max(1, -(-repetitions // _CHUNK_REPETITIONS))
    chunk_sizes = [len(c) for c in np.array_split(np.arange(repetitions), n_chunks)]
    seeds = spawn_seeds(n_chunks, seed)
    work = [
        (n, distribution, q, source, s, size)
        for s, size in zip(seeds, chunk_sizes, strict=True)
        if size > 0
    ]
    chunks = parallel_map(_run_replica_batch, work, processes=processes, serial_threshold=1)
    executions = [
        ExecutionMetrics(
            n=n,
            n_alive=row[0],
            n_reached_alive=row[1],
            reliability=row[2],
            rounds=row[3],
            messages_sent=row[4],
            duplicates=row[5],
            success=row[6],
            spread=row[7],
        )
        for chunk in chunks
        for row in chunk
    ]
    return _summarize(executions)


@dataclass(frozen=True)
class SweepPoint:
    """One cell of a reliability sweep: a ``(mean fanout, q)`` pair with results."""

    mean_fanout: float
    q: float
    simulated: float
    simulated_std: float
    analytical: float
    repetitions: int

    def absolute_error(self) -> float:
        """Return ``|simulated − analytical|``."""
        return abs(self.simulated - self.analytical)


@dataclass
class SweepResult:
    """Results of a full (fanout × q) reliability sweep.

    The points are stored in row-major order (q varies slowest); accessors
    return the per-``q`` series used to draw the paper's Figs. 4-5.
    """

    n: int
    fanouts: tuple
    qs: tuple
    points: list = field(default_factory=list)

    def series_for_q(self, q: float) -> list[SweepPoint]:
        """Return the sweep points of one ``q`` series, ordered by fanout."""
        matches = [p for p in self.points if abs(p.q - q) < 1e-12]
        return sorted(matches, key=lambda p: p.mean_fanout)

    def max_absolute_error(self) -> float:
        """Return the worst analysis-vs-simulation gap across the sweep."""
        return max((p.absolute_error() for p in self.points), default=0.0)

    def mean_absolute_error(self) -> float:
        """Return the average analysis-vs-simulation gap across the sweep."""
        if not self.points:
            return 0.0
        return float(np.mean([p.absolute_error() for p in self.points]))

    def to_rows(self) -> list[tuple]:
        """Return ``(fanout, q, simulated, analytical, |error|)`` rows for tables."""
        return [
            (p.mean_fanout, p.q, p.simulated, p.analytical, p.absolute_error())
            for p in self.points
        ]


def reliability_sweep(
    n: int,
    fanouts: Sequence[float],
    qs: Sequence[float],
    *,
    repetitions: int = 20,
    distribution_factory: Callable[[float], FanoutDistribution] = PoissonFanout,
    seed: SeedLike = None,
    processes: int | None = 1,
    conditional_on_spread: bool = False,
    engine: str = "batch",
) -> SweepResult:
    """Sweep reliability over a (mean fanout × nonfailed ratio) grid.

    This reproduces the Figs. 4-5 protocol.  ``distribution_factory`` maps a
    mean fanout to a distribution instance (default Poisson); the analytical
    column uses the same distribution so the comparison is apples-to-apples.
    ``conditional_on_spread`` and ``engine`` are forwarded to
    :func:`estimate_reliability`.
    """
    n = check_integer("n", n, minimum=2)
    fanouts = tuple(float(f) for f in fanouts)
    qs = tuple(float(check_probability("q", q)) for q in qs)
    rng = as_generator(seed)

    result = SweepResult(n=n, fanouts=fanouts, qs=qs)
    for q in qs:
        for fanout in fanouts:
            dist = distribution_factory(fanout)
            # One spawned child seed per grid cell, whatever the `processes`
            # spelling: serial (1), auto (None), and explicit pool sizes all
            # hand the same integer to the same chunk layout downstream, so
            # a fixed-seed sweep is bit-identical across all of them.
            estimate = estimate_reliability(
                n,
                dist,
                q,
                repetitions=repetitions,
                seed=spawn_seeds(1, rng)[0],
                processes=processes,
                conditional_on_spread=conditional_on_spread,
                engine=engine,
            )
            result.points.append(
                SweepPoint(
                    mean_fanout=fanout,
                    q=q,
                    simulated=estimate.mean_reliability,
                    simulated_std=estimate.std_reliability,
                    analytical=analytical_reliability(dist, q),
                    repetitions=repetitions,
                )
            )
    return result

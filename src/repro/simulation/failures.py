"""Fail-stop failure injection (Section 3 / Section 4.1 failure model).

The paper assumes a fail-stop model: failed members never gossip messages
they receive, they fail only by crashing, and the source node never fails.
Two crash timings are distinguished but "treated the same" analytically:
crash *before* receiving the message, or crash *after* receiving it but
*before* forwarding.  The simulator honours that distinction so the
equivalence can actually be demonstrated:

* ``CrashTiming.BEFORE_RECEIVE`` — the member is dead from the start; it is
  not counted as having received the message.
* ``CrashTiming.AFTER_RECEIVE`` — the member receives (the message reaches
  its host) but crashes before forwarding; it still does not count towards
  the reliability because reliability is defined over *nonfailed* members.

Either way the member contributes nothing to further dissemination, which is
why the analysis can lump both cases into a single nonfailed ratio ``q``.
"""

from __future__ import annotations

import enum
from abc import ABC, abstractmethod
from dataclasses import dataclass

import numpy as np

from repro.utils.rng import as_generator
from repro.utils.validation import check_integer, check_probability

__all__ = ["CrashTiming", "FailurePattern", "FailureModel", "UniformCrashModel", "TargetedCrashModel"]


class CrashTiming(enum.Enum):
    """When a failed member crashes relative to message receipt."""

    BEFORE_RECEIVE = "before_receive"
    AFTER_RECEIVE = "after_receive"


@dataclass(frozen=True)
class FailurePattern:
    """A realised failure pattern for one execution.

    Attributes
    ----------
    alive:
        Boolean mask over members; ``True`` means the member never crashes.
    timing:
        For failed members, whether the crash happens before or after receipt
        (irrelevant to reliability, modelled for completeness).  Entries for
        alive members are ``CrashTiming.BEFORE_RECEIVE`` by convention and
        ignored.
    """

    alive: np.ndarray
    timing: np.ndarray

    def n_alive(self) -> int:
        """Return the number of nonfailed members."""
        return int(self.alive.sum())

    def failed_members(self) -> np.ndarray:
        """Return the identifiers of failed members."""
        return np.flatnonzero(~self.alive)


class FailureModel(ABC):
    """Abstract generator of failure patterns."""

    @abstractmethod
    def draw(self, n: int, rng: np.random.Generator, *, source: int = 0) -> FailurePattern:
        """Draw a failure pattern for a group of ``n`` members.

        Implementations must keep the source alive (the paper assumes the
        source never fails).
        """


@dataclass
class UniformCrashModel(FailureModel):
    """Every member (except the source) fails independently with probability ``1 - q``.

    This is the paper's uniform-``q_k`` specialisation (Section 4.1): the
    non-failure probability does not depend on the member's fanout.
    """

    q: float
    after_receive_fraction: float = 0.5

    def __post_init__(self):
        self.q = check_probability("q", self.q)
        self.after_receive_fraction = check_probability(
            "after_receive_fraction", self.after_receive_fraction
        )

    def draw(self, n: int, rng: np.random.Generator, *, source: int = 0) -> FailurePattern:
        n = check_integer("n", n, minimum=1)
        source = check_integer("source", source, minimum=0, maximum=n - 1)
        rng = as_generator(rng)
        alive = rng.random(n) < self.q
        alive[source] = True
        timing_draw = rng.random(n) < self.after_receive_fraction
        timing = np.where(
            timing_draw, CrashTiming.AFTER_RECEIVE, CrashTiming.BEFORE_RECEIVE
        )
        return FailurePattern(alive=alive, timing=timing)


@dataclass
class TargetedCrashModel(FailureModel):
    """Fail exactly the given members (deterministic failure injection).

    Useful in tests and in worst-case ablations (e.g. failing the highest
    fanout members first to probe the uniform-failure assumption).
    """

    failed: tuple

    def __post_init__(self):
        self.failed = tuple(int(f) for f in self.failed)

    def draw(self, n: int, rng: np.random.Generator, *, source: int = 0) -> FailurePattern:
        n = check_integer("n", n, minimum=1)
        source = check_integer("source", source, minimum=0, maximum=n - 1)
        alive = np.ones(n, dtype=bool)
        for member in self.failed:
            if 0 <= member < n and member != source:
                alive[member] = False
        timing = np.full(n, CrashTiming.BEFORE_RECEIVE, dtype=object)
        return FailurePattern(alive=alive, timing=timing)

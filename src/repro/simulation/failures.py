"""Fail-stop failure injection (Section 3 / Section 4.1 failure model).

The paper assumes a fail-stop model: failed members never gossip messages
they receive, they fail only by crashing, and the source node never fails.
Two crash timings are distinguished but "treated the same" analytically:
crash *before* receiving the message, or crash *after* receiving it but
*before* forwarding.  The simulator honours that distinction so the
equivalence can actually be demonstrated:

* ``CrashTiming.BEFORE_RECEIVE`` — the member is dead from the start; it is
  not counted as having received the message.
* ``CrashTiming.AFTER_RECEIVE`` — the member receives (the message reaches
  its host) but crashes mid-execution, before forwarding; it still does not
  count towards the reliability because reliability is defined over
  *nonfailed* members.

Either way the member contributes nothing to further dissemination, which is
why the analysis can lump both cases into a single nonfailed ratio ``q``.

Failure models expose two draw granularities:

* :meth:`FailureModel.draw` — one scalar :class:`FailurePattern` (used by the
  per-execution reference simulators).
* :meth:`FailureModel.draw_batch` — ``R`` independent patterns as one
  :class:`FailurePatternBatch` of ``(R, n)`` masks, the input of the batched
  engines (:func:`repro.simulation.gossip.simulate_gossip_batch` and
  :func:`repro.simulation.protocol_batch.simulate_protocol_batch`).  The base
  implementation stacks scalar draws (correct for any model); the bundled
  models override it with fully vectorised draws.

Model parameters are validated **once**, in ``__post_init__``; the draw
methods themselves are allocation-lean hot paths (no per-call parameter
re-validation, no Python-level list materialisation) and only guard the
per-call ``n``/``source`` arguments with two comparisons.
"""

from __future__ import annotations

import enum
from abc import ABC, abstractmethod
from dataclasses import dataclass, field

import numpy as np

from repro.utils.rng import as_generator
from repro.utils.validation import check_integer, check_probability

__all__ = [
    "CrashTiming",
    "FailurePattern",
    "FailurePatternBatch",
    "FailureModel",
    "UniformCrashModel",
    "TargetedCrashModel",
]


class CrashTiming(enum.Enum):
    """When a failed member crashes relative to message receipt."""

    BEFORE_RECEIVE = "before_receive"
    AFTER_RECEIVE = "after_receive"


def _check_draw_args(n: int, source: int) -> None:
    """Cheap per-draw argument guard (two comparisons, no helper chain)."""
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    if not 0 <= source < n:
        raise ValueError(f"source must be in [0, {n}), got {source}")


@dataclass(frozen=True)
class FailurePattern:
    """A realised failure pattern for one execution.

    Attributes
    ----------
    alive:
        Boolean mask over members; ``True`` means the member never crashes.
    timing:
        For failed members, whether the crash happens before or after receipt
        (irrelevant to reliability, modelled for completeness).  Entries for
        alive members are ``CrashTiming.BEFORE_RECEIVE`` by convention and
        ignored.
    """

    alive: np.ndarray
    timing: np.ndarray

    def n_alive(self) -> int:
        """Return the number of nonfailed members."""
        return int(self.alive.sum())

    def failed_members(self) -> np.ndarray:
        """Return the identifiers of failed members."""
        return np.flatnonzero(~self.alive)


@dataclass(frozen=True)
class FailurePatternBatch:
    """``R`` realised failure patterns as ``(R, n)`` masks.

    Attributes
    ----------
    alive:
        ``(R, n)`` boolean masks; ``True`` means the member never crashes.
    after_receive:
        ``(R, n)`` boolean masks; ``True`` marks a *failed* member whose
        crash happens mid-execution (after receipt, before forwarding).
        Entries for alive members are ``False`` by convention and ignored.
        Stored as a compact boolean plane instead of per-cell enum objects so
        a batch draw costs two array fills, not ``R·n`` boxed values.
    """

    alive: np.ndarray
    after_receive: np.ndarray

    @property
    def repetitions(self) -> int:
        """Return the number of replicas ``R``."""
        return int(self.alive.shape[0])

    @property
    def n(self) -> int:
        """Return the group size ``n``."""
        return int(self.alive.shape[1])

    def n_alive(self) -> np.ndarray:
        """Return the per-replica number of nonfailed members, shape ``(R,)``."""
        return self.alive.sum(axis=1)

    def pattern(self, replica: int) -> FailurePattern:
        """Return one replica as a scalar :class:`FailurePattern` record."""
        replica = check_integer("replica", replica, minimum=0, maximum=self.repetitions - 1)
        timing = np.where(
            self.after_receive[replica], CrashTiming.AFTER_RECEIVE, CrashTiming.BEFORE_RECEIVE
        )
        return FailurePattern(alive=self.alive[replica].copy(), timing=timing)


class FailureModel(ABC):
    """Abstract generator of failure patterns."""

    @abstractmethod
    def draw(self, n: int, rng: np.random.Generator, *, source: int = 0) -> FailurePattern:
        """Draw a failure pattern for a group of ``n`` members.

        Implementations must keep the source alive (the paper assumes the
        source never fails).
        """

    def draw_batch(
        self, n: int, repetitions: int, rng: np.random.Generator, *, source: int = 0
    ) -> FailurePatternBatch:
        """Draw ``repetitions`` independent failure patterns as ``(R, n)`` masks.

        The base implementation stacks scalar :meth:`draw` calls — correct
        for any model; the bundled models override it with one vectorised
        draw so the batched engines never enter a Python-level replica loop.
        """
        _check_draw_args(n, source)
        if repetitions < 1:
            raise ValueError(f"repetitions must be >= 1, got {repetitions}")
        rng = as_generator(rng)
        patterns = [self.draw(n, rng, source=source) for _ in range(repetitions)]
        alive = np.stack([p.alive for p in patterns])
        after = np.stack(
            [np.asarray(p.timing == CrashTiming.AFTER_RECEIVE, dtype=bool) for p in patterns]
        )
        after &= ~alive
        return FailurePatternBatch(alive=alive, after_receive=after)


@dataclass(frozen=True)
class UniformCrashModel(FailureModel):
    """Every member (except the source) fails independently with probability ``1 - q``.

    This is the paper's uniform-``q_k`` specialisation (Section 4.1): the
    non-failure probability does not depend on the member's fanout.  Frozen
    (like every failure/churn/latency model, enforced by repro-lint RL003):
    model instances cross ``utils.parallel`` pools inside pickled work tuples
    and are shared across experiment cells, so they must stay immutable.
    """

    q: float
    after_receive_fraction: float = 0.5

    def __post_init__(self) -> None:
        object.__setattr__(self, "q", check_probability("q", self.q))
        object.__setattr__(
            self,
            "after_receive_fraction",
            check_probability("after_receive_fraction", self.after_receive_fraction),
        )

    def draw(self, n: int, rng: np.random.Generator, *, source: int = 0) -> FailurePattern:
        _check_draw_args(n, source)
        rng = as_generator(rng)
        alive = rng.random(n) < self.q
        alive[source] = True
        timing_draw = rng.random(n) < self.after_receive_fraction
        timing = np.where(
            timing_draw, CrashTiming.AFTER_RECEIVE, CrashTiming.BEFORE_RECEIVE
        )
        return FailurePattern(alive=alive, timing=timing)

    def draw_batch(
        self, n: int, repetitions: int, rng: np.random.Generator, *, source: int = 0
    ) -> FailurePatternBatch:
        _check_draw_args(n, source)
        if repetitions < 1:
            raise ValueError(f"repetitions must be >= 1, got {repetitions}")
        rng = as_generator(rng)
        alive = rng.random((repetitions, n)) < self.q
        alive[:, source] = True
        after = rng.random((repetitions, n)) < self.after_receive_fraction
        after &= ~alive
        return FailurePatternBatch(alive=alive, after_receive=after)


@dataclass(frozen=True)
class TargetedCrashModel(FailureModel):
    """Fail exactly the given members (deterministic failure injection).

    Useful in tests and in worst-case ablations (e.g. failing the highest
    fanout members first to probe the uniform-failure assumption).  Frozen
    so instances pickle cleanly into worker pools (repro-lint RL003).
    """

    failed: tuple[int, ...]
    #: Deduplicated failed identifiers cached at construction so every draw
    #: is one fancy-indexed mask write instead of a Python loop.
    _failed_array: np.ndarray = field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        object.__setattr__(self, "failed", tuple(int(f) for f in self.failed))
        object.__setattr__(
            self, "_failed_array", np.unique(np.asarray(self.failed, dtype=np.int64))
        )

    def draw(self, n: int, rng: np.random.Generator, *, source: int = 0) -> FailurePattern:
        _check_draw_args(n, source)
        alive = np.ones(n, dtype=bool)
        failed = self._failed_array
        alive[failed[(failed >= 0) & (failed < n)]] = False
        alive[source] = True
        timing = np.full(n, CrashTiming.BEFORE_RECEIVE, dtype=object)
        return FailurePattern(alive=alive, timing=timing)

    def draw_batch(
        self, n: int, repetitions: int, rng: np.random.Generator, *, source: int = 0
    ) -> FailurePatternBatch:
        _check_draw_args(n, source)
        if repetitions < 1:
            raise ValueError(f"repetitions must be >= 1, got {repetitions}")
        row = np.ones(n, dtype=bool)
        failed = self._failed_array
        row[failed[(failed >= 0) & (failed < n)]] = False
        row[source] = True
        alive = np.tile(row, (repetitions, 1))
        after = np.zeros((repetitions, n), dtype=bool)
        return FailurePatternBatch(alive=alive, after_receive=after)

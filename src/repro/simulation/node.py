"""Per-member state machine for the event-driven gossip simulator.

The general gossip algorithm (the paper's Figure 1) is tiny, and so is the
node state machine implementing it:

* on first receipt of the message, draw a fanout ``f`` from the distribution,
  select ``f`` targets from the membership view, and send the message;
* on any later receipt, discard the duplicate;
* a failed member never forwards (its crash timing decides whether it even
  counts the receipt).

The :class:`Member` class keeps the counters the metrics module aggregates
(receipts, duplicates, forwards) so protocol-level statistics — not just the
reliability ratio — are available from the event-driven runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.simulation.failures import CrashTiming

__all__ = ["Member"]


@dataclass
class Member:
    """State of one multicast-group member during an event-driven execution.

    Attributes
    ----------
    member_id:
        Identifier in ``0..n-1``.
    alive:
        ``False`` if this member crashes during the execution.
    crash_timing:
        When the crash occurs relative to the first receipt (only meaningful
        when ``alive`` is ``False``).
    received:
        ``True`` once the first copy of the message reached this member's
        host.  Failed members with ``BEFORE_RECEIVE`` timing never set this.
    delivered:
        ``True`` when the member counts as having received the message for
        reliability purposes (alive and received).
    receipts, duplicates, forwards:
        Message counters.
    first_receipt_time:
        Simulated time of the first receipt (``math.inf`` if never received).
    """

    member_id: int
    alive: bool = True
    crash_timing: CrashTiming = CrashTiming.BEFORE_RECEIVE
    received: bool = False
    delivered: bool = False
    receipts: int = 0
    duplicates: int = 0
    forwards: int = 0
    first_receipt_time: float = field(default=float("inf"))

    def on_receive(self, now: float) -> bool:
        """Record a message receipt; return ``True`` if the member should forward.

        The return value implements the algorithm's "first time" guard plus
        the fail-stop rules: only alive members that are receiving the message
        for the first time forward it.
        """
        self.receipts += 1
        if self.received:
            self.duplicates += 1
            return False
        if not self.alive and self.crash_timing is CrashTiming.BEFORE_RECEIVE:
            # The member crashed before the message arrived; the transport
            # wasted a message but nothing is recorded at the member.
            return False
        self.received = True
        self.first_receipt_time = now
        if not self.alive:
            # Crashed after receiving but before forwarding.
            return False
        self.delivered = True
        return True

    def record_forward(self, fanout: int) -> None:
        """Record that this member forwarded the message to ``fanout`` targets."""
        self.forwards += int(fanout)

    @staticmethod
    def build_group(
        n: int, alive: np.ndarray, timing: np.ndarray
    ) -> list["Member"]:
        """Construct the member list for a failure pattern."""
        members = []
        for i in range(n):
            members.append(
                Member(
                    member_id=i,
                    alive=bool(alive[i]),
                    crash_timing=timing[i]
                    if isinstance(timing[i], CrashTiming)
                    else CrashTiming.BEFORE_RECEIVE,
                )
            )
        return members

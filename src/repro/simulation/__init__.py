"""Simulation substrate for the general gossip algorithm.

Two simulators are provided:

* a **fast Monte-Carlo simulator** (:mod:`repro.simulation.gossip`) that
  executes the gossip algorithm as a frontier/BFS process over vectorised
  target sampling — this is the engine behind the paper's Figs. 4-7
  reproductions, and
* a **discrete-event simulator** (:mod:`repro.simulation.engine`,
  :mod:`repro.simulation.node`, :mod:`repro.simulation.network`) that models
  per-message latencies, message loss, and crash timing explicitly — the
  behavioural reference used in tests and in the protocol baselines.

Supporting modules supply membership views (:mod:`repro.simulation.membership`),
fail-stop failure injection (:mod:`repro.simulation.failures`), repeated-execution
experiments (:mod:`repro.simulation.rounds`), result records
(:mod:`repro.simulation.metrics`), and the Monte-Carlo runner / parameter sweep
driver (:mod:`repro.simulation.runner`).  The batched treatment extends to the
whole baseline-protocol zoo through
:mod:`repro.simulation.protocol_batch` (``simulate_protocol_batch`` — ``(R, n)``
array programs for flooding, pbcast, lpbcast, RDG, and the fanout gossips,
with vectorised pluggable failure drawing) and to the network plane: pass a
:class:`~repro.simulation.network.NetworkModel` to any engine and every
round's send list is thinned with one vectorised Bernoulli loss draw
(``NetworkModel.draw_loss_batch``), with per-replica
``messages_sent``/``messages_dropped`` accounting.  The dynamic-membership
plane (:mod:`repro.simulation.churn`) adds time-varying join/leave schedules
drawn as compact ``(R, n)`` event planes: pass a ``ChurnModel`` or
``ChurnScheduleBatch`` to either batched engine and members enter and leave
mid-dissemination, with survivor-aware reliability accounting on
``BatchProtocolResult``.  The latency plane (:mod:`repro.simulation.latency`)
closes the loop with the event-driven reference: the same ``NetworkModel``
latency samplers drive a :class:`~repro.simulation.latency.DeliveryTimePlane`
that discretises per-message delays onto the round clock, so both batched
engines report per-member ``delivery_times`` and tail percentiles
(``delivery_percentiles``) at batched speed — bit-identical to the
latency-free engines whenever the sampler is a constant within one round
period.
"""

from repro.simulation.engine import EventScheduler, Event
from repro.simulation.membership import FullView, UniformPartialView, MembershipView
from repro.simulation.churn import (
    ChurnModel,
    ChurnSchedule,
    ChurnScheduleBatch,
    DeterministicChurnModel,
    PoissonChurnModel,
)
from repro.simulation.failures import (
    FailureModel,
    FailurePattern,
    FailurePatternBatch,
    TargetedCrashModel,
    UniformCrashModel,
    CrashTiming,
)
from repro.simulation.network import (
    ConstantLatency,
    ExponentialLatency,
    GilbertElliottNetworkModel,
    NetworkModel,
    UniformLatency,
    latency_constant,
    latency_exponential,
    latency_uniform,
)
from repro.simulation.latency import (
    DeliveryTimePlane,
    delivery_percentiles,
    percentile_label,
)
from repro.simulation.gossip import (
    BatchGossipResult,
    GossipExecution,
    simulate_gossip_batch,
    simulate_gossip_once,
    simulate_gossip_event_driven,
)
from repro.simulation.protocol_batch import (
    BatchProtocolResult,
    simulate_protocol_batch,
)
from repro.simulation.metrics import (
    ReliabilityEstimate,
    SuccessCountResult,
    summarize_executions,
)
from repro.simulation.rounds import simulate_success_counts, repeated_executions
from repro.simulation.runner import estimate_reliability, reliability_sweep, SweepResult

__all__ = [
    "EventScheduler",
    "Event",
    "MembershipView",
    "FullView",
    "UniformPartialView",
    "ChurnModel",
    "ChurnSchedule",
    "ChurnScheduleBatch",
    "PoissonChurnModel",
    "DeterministicChurnModel",
    "FailureModel",
    "FailurePattern",
    "FailurePatternBatch",
    "UniformCrashModel",
    "TargetedCrashModel",
    "CrashTiming",
    "NetworkModel",
    "GilbertElliottNetworkModel",
    "ConstantLatency",
    "UniformLatency",
    "ExponentialLatency",
    "latency_constant",
    "latency_exponential",
    "latency_uniform",
    "DeliveryTimePlane",
    "delivery_percentiles",
    "percentile_label",
    "GossipExecution",
    "BatchGossipResult",
    "simulate_gossip_once",
    "simulate_gossip_batch",
    "simulate_gossip_event_driven",
    "BatchProtocolResult",
    "simulate_protocol_batch",
    "ReliabilityEstimate",
    "SuccessCountResult",
    "summarize_executions",
    "simulate_success_counts",
    "repeated_executions",
    "estimate_reliability",
    "reliability_sweep",
    "SweepResult",
]

#!/usr/bin/env python
"""Quickstart — analyse and simulate a gossip configuration in a few lines.

This walks through the paper's favourite configuration (a 1000-member group,
Poisson fanout with mean 4, 10% of members crash):

1. build the ``Gossip(n, P, q)`` model,
2. read off the analytical reliability, critical point, and the number of
   executions needed for a 0.999 delivery guarantee, and
3. cross-check the analysis with a Monte-Carlo simulation.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import GossipModel, PoissonFanout


def main() -> None:
    model = GossipModel(n=1000, distribution=PoissonFanout(4.0), q=0.9)

    print("Gossip(n=1000, Po(4.0), q=0.9)")
    print("-" * 40)

    # --- analytical side (Section 4 of the paper) -------------------------
    print(f"critical nonfailed ratio q_c      : {model.critical_ratio():.4f}  (Eq. 3 / Eq. 10)")
    print(f"supercritical (giant component)?  : {model.is_supercritical()}")
    print(f"analytical reliability R(q, P)    : {model.reliability():.4f}  (Eq. 11)")
    print(f"success probability of 1 run      : {model.success_probability(1):.4f}  (Eq. 5)")
    print(f"success probability of 3 runs     : {model.success_probability(3):.6f}")
    print(f"executions for 0.999 success      : {model.min_executions(0.999)}  (Eq. 6)")
    print(
        "max tolerable failure ratio for"
        f" R >= 0.9                         : {model.max_tolerable_failure_ratio(0.9):.3f}"
    )

    # --- simulation side (Section 5 of the paper) -------------------------
    estimate = model.simulate_reliability(repetitions=20, seed=7)
    print()
    print("Monte-Carlo check (20 executions, fresh failures each time)")
    print(f"simulated mean reliability        : {estimate.mean_reliability:.4f}")
    print(f"single-execution std deviation    : {estimate.std_reliability:.4f}")
    print(f"gossip take-off rate              : {estimate.spread_rate:.2f}")
    print(f"average gossip hops per execution : {estimate.mean_rounds:.1f}")
    print(f"average messages per execution    : {estimate.mean_messages:.0f}")

    gap = abs(estimate.mean_reliability - model.reliability())
    print(f"analysis-vs-simulation gap        : {gap:.4f}")


if __name__ == "__main__":
    main()

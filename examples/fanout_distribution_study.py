#!/usr/bin/env python
"""Fanout-distribution study — what the shape of the fanout really buys you.

The paper's model accepts arbitrary fanout distributions; this example uses
that freedom to answer a practical question: *at the same average cost (mean
fanout 4), does it matter whether every member forwards to exactly 4 peers,
to Poisson(4) peers, or to a heavy-at-zero Geometric(mean 4) number of
peers?*

Two different quantities respond very differently (see DESIGN.md):

* the probability that the gossip takes off at all (the fanout shape matters
  a lot — any mass at fanout 0 risks immediate die-out near the source), and
* the fraction of live members reached once it has taken off (essentially
  shape-independent, because targets are chosen uniformly so in-degrees are
  Poisson regardless).

Run with::

    python examples/fanout_distribution_study.py
"""

from __future__ import annotations

from repro.core.distributions import FixedFanout, GeometricFanout, PoissonFanout, UniformFanout
from repro.core.percolation import critical_ratio, giant_component_size
from repro.simulation.runner import estimate_reliability
from repro.utils.tables import format_table

GROUP_SIZE = 2000
NONFAILED_RATIO = 0.9
REPETITIONS = 15


def main() -> None:
    families = {
        "fixed(4)": FixedFanout(4),
        "uniform(2..6)": UniformFanout(2, 6),
        "poisson(4)": PoissonFanout(4.0),
        "geometric(mean 4)": GeometricFanout.from_mean(4.0),
    }

    rows = []
    for label, dist in families.items():
        estimate = estimate_reliability(
            GROUP_SIZE,
            dist,
            NONFAILED_RATIO,
            repetitions=REPETITIONS,
            seed=42,
            conditional_on_spread=True,
        )
        rows.append(
            (
                label,
                dist.mean(),
                critical_ratio(dist),
                giant_component_size(dist, NONFAILED_RATIO),
                estimate.spread_rate,
                estimate.mean_reliability,
            )
        )

    print(
        f"Fanout-distribution study — n={GROUP_SIZE}, q={NONFAILED_RATIO}, "
        f"{REPETITIONS} runs per family\n"
    )
    print(
        format_table(
            [
                "fanout family",
                "mean",
                "q_c (Eq. 3)",
                "model S=1-G0(u)",
                "take-off rate",
                "reached | take-off",
            ],
            rows,
            precision=3,
        )
    )
    print(
        "\nReading: the 'reached | take-off' column is nearly identical across"
        "\nfamilies (uniform target choice makes in-degrees Poisson), while the"
        "\ntake-off rate tracks the probability of drawing fanout 0 near the"
        "\nsource — the practical reason to avoid heavy-at-zero fanouts even"
        "\nwhen the mean is generous.  The model column S = 1 - G0(u) describes"
        "\nthe undirected configuration-model ensemble the paper analyses."
    )


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""Design scenario — dimension a gossip protocol for a reliability target.

The question a protocol designer actually asks (and the reason the paper
derives Eq. 12): *"My publish/subscribe cluster has ~2000 brokers, up to 20%
of them may be down during a rolling upgrade, and I need each event to reach
99% of the live brokers with probability 0.9999.  How many peers must each
broker forward an event to, and how many times should the publisher repeat
the multicast?"*

This example answers it with the analytical model and then validates the
resulting configuration by simulation.

Run with::

    python examples/plan_fault_tolerant_multicast.py
"""

from __future__ import annotations

from repro import (
    GossipModel,
    PoissonFanout,
    mean_fanout_for_reliability,
    min_executions,
    poisson_critical_fanout,
)

GROUP_SIZE = 2000
WORST_CASE_FAILED_FRACTION = 0.20
TARGET_RELIABILITY = 0.99          # fraction of live brokers per execution
TARGET_SUCCESS = 0.9999            # per-broker delivery guarantee after repeats


def main() -> None:
    q = 1.0 - WORST_CASE_FAILED_FRACTION

    print("Design inputs")
    print("-" * 40)
    print(f"group size                        : {GROUP_SIZE}")
    print(f"worst-case failed fraction        : {WORST_CASE_FAILED_FRACTION:.0%} (q = {q})")
    print(f"per-execution reliability target  : {TARGET_RELIABILITY}")
    print(f"per-broker delivery target        : {TARGET_SUCCESS}")
    print()

    # --- step 1: the percolation floor ------------------------------------
    floor = poisson_critical_fanout(q)
    print(f"1. Any mean fanout below {floor:.2f} is useless at q={q} (Eq. 10).")

    # --- step 2: fanout for the reliability target (Eq. 12) ---------------
    fanout = mean_fanout_for_reliability(TARGET_RELIABILITY, q)
    print(f"2. Eq. 12 gives the required mean fanout: z = {fanout:.2f}")

    # --- step 3: repeats for the per-broker guarantee (Eq. 6) -------------
    repeats = min_executions(TARGET_SUCCESS, TARGET_RELIABILITY)
    print(f"3. Eq. 6 gives the required executions : t = {repeats}")
    print()

    # --- step 4: validate by simulation ------------------------------------
    model = GossipModel(n=GROUP_SIZE, distribution=PoissonFanout(fanout), q=q)
    estimate = model.simulate_reliability(repetitions=20, seed=11)
    print("Validation (20 simulated executions)")
    print("-" * 40)
    print(f"analytical reliability            : {model.reliability():.4f}")
    print(f"simulated mean reliability        : {estimate.mean_reliability:.4f}")
    print(f"simulated take-off rate           : {estimate.spread_rate:.2f}")
    print(f"messages per execution            : {estimate.mean_messages:.0f}")
    print(
        f"messages per delivered broker     : "
        f"{estimate.mean_messages / (q * GROUP_SIZE * estimate.mean_reliability):.2f}"
    )
    print()

    # --- step 5: sensitivity — what if failures exceed the budget? ---------
    print("Sensitivity: reliability if the failure estimate was optimistic")
    print("-" * 40)
    for failed in (0.2, 0.3, 0.4, 0.5, 0.6):
        sensitivity_model = GossipModel(
            n=GROUP_SIZE, distribution=PoissonFanout(fanout), q=1.0 - failed
        )
        print(
            f"  failed fraction {failed:.0%} -> analytical reliability "
            f"{sensitivity_model.reliability():.4f}"
        )
    tolerable = model.max_tolerable_failure_ratio(TARGET_RELIABILITY)
    print(
        f"\nThe chosen fanout keeps reliability >= {TARGET_RELIABILITY} up to a failed "
        f"fraction of {tolerable:.1%} (the paper's 'maximum tolerated failure ratio')."
    )


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""Regenerate any of the paper's figures from the command line.

A thin front-end over :mod:`repro.experiments`: pick a figure id, optionally
shrink the configuration for a quick look, and the script prints the same
series the paper plots plus the qualitative-shape check.

Examples::

    python examples/reproduce_figures.py fig2
    python examples/reproduce_figures.py fig4 --scale 0.3
    python examples/reproduce_figures.py all --scale 0.2
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.experiments.registry import get_experiment, list_experiments


def scale_config(spec, config, scale: float):
    """Shrink a simulation-backed configuration by ``scale`` (no-op for analytical)."""
    if spec.analytical_only or scale >= 0.999:
        return config
    if hasattr(config, "repetitions"):
        return config.scaled(
            n=max(100, int(config.n * scale)),
            repetitions=max(4, int(config.repetitions * scale)),
        )
    return config.scaled(
        n=max(200, int(config.n * scale)),
        simulations=max(15, int(config.simulations * scale)),
    )


def run_one(experiment_id: str, scale: float) -> bool:
    spec = get_experiment(experiment_id)
    config = scale_config(spec, spec.config_factory(), scale)
    print(f"\n=== {spec.experiment_id}: {spec.paper_reference} ===")
    started = time.time()
    result = spec.runner(config)
    elapsed = time.time() - started
    print(result.to_table())
    problems = result.check_shape() if scale >= 0.999 or spec.analytical_only else []
    status = "OK" if not problems else f"SHAPE VIOLATIONS: {problems}"
    print(f"\n[{spec.experiment_id}] {status}  ({elapsed:.1f}s)")
    return not problems


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "figure",
        choices=[spec.experiment_id for spec in list_experiments()] + ["all"],
        help="which figure to regenerate",
    )
    parser.add_argument(
        "--scale",
        type=float,
        default=1.0,
        help="shrink group sizes / repetitions by this factor (default 1.0 = paper scale)",
    )
    args = parser.parse_args(argv)

    targets = (
        [spec.experiment_id for spec in list_experiments()]
        if args.figure == "all"
        else [args.figure]
    )
    ok = all([run_one(target, args.scale) for target in targets])
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())

#!/usr/bin/env python
"""Protocol bake-off — the paper's algorithm against related-work baselines.

Runs every protocol in :mod:`repro.protocols` under the identical fail-stop
fault model (1000 members, 30% crashed) and prints reliability, atomicity
rate, message cost and rounds, i.e. the comparison the paper's related-work
section implies but never measures.

Run with::

    python examples/compare_protocols.py
"""

from __future__ import annotations

import numpy as np

from repro.core.distributions import PoissonFanout
from repro.protocols import (
    FixedFanoutGossip,
    FloodingProtocol,
    LpbcastProtocol,
    PbcastProtocol,
    RandomFanoutGossip,
    RouteDrivenGossip,
)
from repro.utils.tables import format_table

GROUP_SIZE = 1000
NONFAILED_RATIO = 0.7
REPETITIONS = 10


def main() -> None:
    protocols = [
        ("paper's random-fanout gossip", RandomFanoutGossip(PoissonFanout(4.0))),
        ("traditional fixed-fanout gossip", FixedFanoutGossip(4)),
        ("pbcast (broadcast + anti-entropy)", PbcastProtocol(fanout=2, rounds=6)),
        ("lpbcast (partial views)", LpbcastProtocol(fanout=3, rounds=8, view_size=30)),
        ("route driven gossip (push/pull)", RouteDrivenGossip(fanout=2, rounds=6, pull_fanout=1)),
        ("flooding (upper bound)", FloodingProtocol(degree=4)),
    ]

    rows = []
    for label, protocol in protocols:
        reliabilities, atomic, msgs, rounds = [], [], [], []
        for rep in range(REPETITIONS):
            outcome = protocol.run(GROUP_SIZE, NONFAILED_RATIO, seed=1000 + rep)
            reliabilities.append(outcome.reliability())
            atomic.append(outcome.is_atomic())
            msgs.append(outcome.messages_per_member())
            rounds.append(outcome.rounds)
        rows.append(
            (
                label,
                float(np.mean(reliabilities)),
                float(np.mean(atomic)),
                float(np.mean(msgs)),
                float(np.mean(rounds)),
            )
        )

    print(
        f"Protocol comparison — n={GROUP_SIZE}, q={NONFAILED_RATIO}, "
        f"{REPETITIONS} runs per protocol\n"
    )
    print(
        format_table(
            ["protocol", "reliability", "atomic_rate", "msgs_per_member", "rounds"],
            rows,
            precision=3,
        )
    )
    print(
        "\nReading: flooding shows the reliability ceiling and its message cost;"
        "\ngossip variants trade a small reliability gap for a much smaller and"
        "\nevenly distributed per-member load; pull/anti-entropy phases (pbcast,"
        "\nRDG) close most of the gap at moderate extra cost."
    )


if __name__ == "__main__":
    main()

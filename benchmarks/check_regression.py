"""Benchmark-regression gate for the CI smoke benchmarks.

The smoke benchmarks (``bench_microbenchmarks.py``, ``bench_graph_ensemble.py``,
``bench_protocol_batch.py``, ``bench_loss_resilience.py``,
``bench_dimensioning.py``, ``bench_churn_resilience.py``,
``bench_recovery.py``, ``bench_latency.py``) each emit a
``BENCH_*.json`` perf record whose
head-to-head **speedup ratios** (batched engine time / scalar reference
time, inverted — or, for the dimensioning solver, dense-grid replicas /
solver replicas) are the numbers the repository actually promises.  This script compares the freshly produced
records against the baselines committed under ``benchmarks/baselines/`` and
exits non-zero when any ratio regressed by more than the threshold
(default: 25%), so a perf regression can no longer merge green.

Speedup *ratios* are compared rather than wall-clock seconds because ratios
divide out the runner's absolute speed: a slow CI machine slows both sides
of every head-to-head.  The committed baselines are deliberately set ~20%
below locally observed smoke-scale means so ordinary runner noise does not
trip the gate while an engine-level regression (which typically halves a
ratio) still does.

Usage::

    python benchmarks/check_regression.py                  # gate ./BENCH_*.json
    python benchmarks/check_regression.py --threshold 0.4  # looser gate
    python benchmarks/check_regression.py --current-dir /tmp/records

Exit status: 0 when every ratio holds, 1 on any regression or missing
record.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

#: Records gated by default: every BENCH_*.json the smoke benchmarks emit.
DEFAULT_RECORDS = (
    "BENCH_engine.json",
    "BENCH_graphs.json",
    "BENCH_protocols.json",
    "BENCH_loss.json",
    "BENCH_dimensioning.json",
    "BENCH_churn.json",
    "BENCH_recovery.json",
    "BENCH_latency.json",
    "BENCH_serving.json",
)

__all__ = ["collect_speedups", "compare_records", "check_directories", "main"]


def collect_speedups(record: dict, prefix: str = "") -> dict[str, float]:
    """Extract every ``speedup`` ratio from a perf record, keyed by its path.

    Walks the record recursively so one function understands both the flat
    single-benchmark records (``{"speedup": 14.9}``) and the per-protocol
    nested ones (``{"protocols": {"rdg": {"speedup": 83.1}}}``), yielding
    dotted keys like ``"speedup"`` and ``"protocols.rdg.speedup"``.
    """
    speedups: dict[str, float] = {}
    for key, value in record.items():
        path = f"{prefix}{key}"
        if key == "speedup" and isinstance(value, (int, float)):
            speedups[path] = float(value)
        elif isinstance(value, dict):
            speedups.update(collect_speedups(value, prefix=f"{path}."))
    return speedups


def compare_records(
    baseline: dict, current: dict, *, threshold: float, label: str = "record"
) -> list[str]:
    """Compare one current record's speedups against its baseline.

    Returns a list of human-readable problems: a ratio that fell more than
    ``threshold`` below its baseline, or a baseline ratio missing from the
    current record (a silently dropped benchmark must not pass the gate).
    Ratios that improved or appeared anew are fine.
    """
    problems: list[str] = []
    baseline_speedups = collect_speedups(baseline)
    current_speedups = collect_speedups(current)
    for key, reference in sorted(baseline_speedups.items()):
        if key not in current_speedups:
            problems.append(f"{label}: baseline ratio {key!r} missing from current record")
            continue
        floor = reference * (1.0 - threshold)
        observed = current_speedups[key]
        if observed < floor:
            problems.append(
                f"{label}: {key} regressed to {observed:.2f}x "
                f"(baseline {reference:.2f}x, floor {floor:.2f}x at "
                f"threshold {threshold:.0%})"
            )
    return problems


def check_directories(
    baseline_dir: Path,
    current_dir: Path,
    *,
    threshold: float,
    records=DEFAULT_RECORDS,
) -> list[str]:
    """Gate every committed baseline record against its freshly produced twin."""
    problems: list[str] = []
    baselines_found = 0
    for name in records:
        baseline_path = baseline_dir / name
        current_path = current_dir / name
        if not baseline_path.exists():
            # No baseline committed for this record: nothing to gate on.
            print(f"  {name}: no committed baseline, skipped")
            continue
        baselines_found += 1
        if not current_path.exists():
            problems.append(f"{name}: baseline committed but no current record produced")
            continue
        with open(baseline_path) as fh:
            baseline = json.load(fh)
        with open(current_path) as fh:
            current = json.load(fh)
        record_problems = compare_records(
            baseline, current, threshold=threshold, label=name
        )
        problems.extend(record_problems)
        ratios = collect_speedups(current)
        status = "FAIL" if record_problems else "ok"
        print(f"  {name}: {len(ratios)} ratio(s) checked — {status}")
    if baselines_found == 0:
        problems.append(f"no baseline records found under {baseline_dir}")
    return problems


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Fail when a BENCH_*.json speedup ratio regressed past the threshold."
    )
    parser.add_argument(
        "--baseline-dir",
        type=Path,
        default=Path(__file__).resolve().parent / "baselines",
        help="directory holding the committed baseline records",
    )
    parser.add_argument(
        "--current-dir",
        type=Path,
        default=Path("."),
        help="directory holding the freshly produced records (default: cwd)",
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.25,
        help="maximum tolerated fractional slowdown of any speedup ratio (default 0.25)",
    )
    parser.add_argument(
        "--records",
        nargs="+",
        default=list(DEFAULT_RECORDS),
        help="record file names to gate (default: all BENCH_*.json records)",
    )
    args = parser.parse_args(argv)
    if not 0.0 <= args.threshold < 1.0:
        parser.error(f"threshold must be in [0, 1), got {args.threshold}")

    print(
        f"benchmark-regression gate: baselines={args.baseline_dir}, "
        f"threshold={args.threshold:.0%}"
    )
    problems = check_directories(
        args.baseline_dir,
        args.current_dir,
        threshold=args.threshold,
        records=args.records,
    )
    if problems:
        print("\nBENCHMARK REGRESSIONS:")
        for problem in problems:
            print(f"  - {problem}")
        return 1
    print("all speedup ratios within threshold")
    return 0


if __name__ == "__main__":
    sys.exit(main())

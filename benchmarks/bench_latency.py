"""Benchmark of the batched latency plane vs the event-driven reference.

The delivery-time percentiles the ``latency_profile`` experiment reports
could also be produced by the continuous-time event-driven simulator
(:func:`repro.simulation.gossip.simulate_gossip_event_driven`) — one heap
event per message, exact timestamps, no discretisation.  The latency plane
exists because the batched engines produce a statistically matching
delivery-time law (KS-pinned in ``tests/simulation/test_latency.py``) at a
fraction of the cost: the heap loop is per-event python, the plane is a few
vectorised bucket operations per round.

This head-to-head races both at the same workload (exponential per-message
latency, q=1) and lands the **speedup ratio** in a ``BENCH_latency.json``
perf record (path overridable via ``REPRO_BENCH_RECORD_LATENCY``) for the
CI regression gate.  At full scale (n=5000, 20 replicas) the plane must be
>= 10x faster (1.5x on scaled smoke runs, where fixed per-call overheads
dominate).
"""

from __future__ import annotations

import json
import os
import time

import numpy as np

from _bench_utils import bench_scale, print_banner, scaled

from repro.core.distributions import FixedFanout
from repro.simulation.gossip import simulate_gossip_batch, simulate_gossip_event_driven
from repro.simulation.network import NetworkModel, latency_exponential

_RECORD: dict = {"benchmark": "latency_plane"}


def _write_record() -> str:
    record_path = os.environ.get("REPRO_BENCH_RECORD_LATENCY", "BENCH_latency.json")
    with open(record_path, "w") as fh:
        json.dump(_RECORD, fh, indent=2)
        fh.write("\n")
    return record_path


def test_latency_plane_vs_event_driven():
    """Event-driven delivery times vs the batched plane at equal workload."""
    scale = bench_scale()
    n = scaled(5000, 400, scale)
    repetitions = scaled(20, 6, scale)
    distribution = FixedFanout(4)
    mean_latency = 1.0

    print_banner(
        f"latency plane head-to-head — n={n}, {repetitions} replicas, "
        f"exponential({mean_latency}) per-message latency"
    )

    def run_event_driven() -> float:
        rng = np.random.default_rng(123)
        start = time.perf_counter()
        for _ in range(repetitions):
            simulate_gossip_event_driven(
                n,
                distribution,
                1.0,
                seed=rng,
                network=NetworkModel(latency=latency_exponential(mean_latency)),
            )
        return time.perf_counter() - start

    def run_batch() -> float:
        network = NetworkModel(latency=latency_exponential(mean_latency))
        start = time.perf_counter()
        simulate_gossip_batch(
            n,
            distribution,
            1.0,
            repetitions=repetitions,
            seed=123,
            network=network,
        )
        return time.perf_counter() - start

    # The event-driven heap loop is the expensive side: one timing suffices;
    # the batched plane takes best-of-3 so a hiccup cannot decide the race.
    event_seconds = run_event_driven()
    batch_seconds = min(run_batch() for _ in range(3))
    speedup = event_seconds / batch_seconds
    print(
        f"{'latency-plane':14s} event-driven {event_seconds * 1000:8.1f}ms   "
        f"batched {batch_seconds * 1000:8.1f}ms   {speedup:8.1f}x"
    )

    _RECORD.update(
        n=n,
        repetitions=repetitions,
        q=1.0,
        latency=f"exponential({mean_latency:g})",
        scale=scale,
    )
    _RECORD["latency-plane"] = {
        "event_seconds": event_seconds,
        "batch_seconds": batch_seconds,
        "speedup": speedup,
    }
    record_path = _write_record()
    print(f"perf record written to {record_path}")

    floor = 10.0 if scale >= 0.99 else 1.5
    assert speedup >= floor, (
        f"latency plane only {speedup:.1f}x faster than the event-driven "
        f"reference (floor {floor}x at scale {scale})"
    )

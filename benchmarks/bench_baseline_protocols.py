"""Baseline comparison — the paper's algorithm against related-work protocols.

The paper motivates gossip against the protocols of its related-work section
but never measures them.  This bench runs every baseline under the identical
fault model (n members, fail-stop crashes with nonfailed ratio q, source never
fails) and reports reliability, atomicity rate, message cost, and rounds, at
two failure levels.

Expected shape (asserted):

* flooding is the reliability upper bound but pays the highest message cost
  per delivered member among push-only protocols with comparable degree;
* the paper's random-fanout gossip matches fixed-fanout gossip at equal mean
  fanout (the generalisation costs nothing);
* protocols with recovery rounds (pbcast, RDG) close most of the gap to
  flooding at lower message cost than flooding;
* everyone's reliability degrades gracefully as q drops.
"""

from __future__ import annotations

import numpy as np
from _bench_utils import bench_scale, print_banner, scaled

from repro.core.distributions import PoissonFanout
from repro.protocols import (
    FixedFanoutGossip,
    FloodingProtocol,
    LpbcastProtocol,
    PbcastProtocol,
    RandomFanoutGossip,
    RouteDrivenGossip,
)
from repro.utils.tables import format_table


def protocol_suite():
    return [
        FixedFanoutGossip(4),
        RandomFanoutGossip(PoissonFanout(4.0)),
        PbcastProtocol(fanout=2, rounds=6, broadcast_reach=0.8),
        LpbcastProtocol(fanout=3, rounds=8, view_size=30),
        RouteDrivenGossip(fanout=2, rounds=6, pull_fanout=1),
        FloodingProtocol(degree=4),
    ]


def run_protocol_comparison(n: int, repetitions: int, qs, seed: int = 20080149):
    """Return {q: {protocol: (mean_rel, atomic_rate, msgs_per_member, rounds, median_rel)}}.

    The median reliability is reported alongside the mean because push-gossip
    runs are bimodal (a run occasionally dies out immediately); the median is
    the robust statistic for "what a typical run delivers".
    """
    results: dict[float, dict[str, tuple]] = {}
    for q in qs:
        per_protocol: dict[str, tuple] = {}
        for proto_index, protocol in enumerate(protocol_suite()):
            reliabilities = []
            atomic = []
            messages = []
            rounds = []
            for rep in range(repetitions):
                outcome = protocol.run(n, q, seed=seed + 97 * proto_index + rep)
                reliabilities.append(outcome.reliability())
                atomic.append(outcome.is_atomic())
                messages.append(outcome.messages_per_member())
                rounds.append(outcome.rounds)
            per_protocol[protocol.name] = (
                float(np.mean(reliabilities)),
                float(np.mean(atomic)),
                float(np.mean(messages)),
                float(np.mean(rounds)),
                float(np.median(reliabilities)),
            )
        results[q] = per_protocol
    return results


def test_baseline_protocol_comparison(benchmark):
    scale = bench_scale()
    n = scaled(1000, 200, scale)
    repetitions = scaled(10, 3, scale)
    qs = (0.9, 0.6)

    results = benchmark.pedantic(
        run_protocol_comparison, args=(n, repetitions, qs), rounds=1, iterations=1
    )

    for q, per_protocol in results.items():
        print_banner(
            f"Baseline protocols — n={n}, q={q}, {repetitions} runs per protocol"
        )
        rows = [
            (name, values[0], values[4], values[1], values[2], values[3])
            for name, values in per_protocol.items()
        ]
        print(
            format_table(
                [
                    "protocol",
                    "mean_reliability",
                    "median_reliability",
                    "atomic_rate",
                    "msgs_per_member",
                    "rounds",
                ],
                rows,
            )
        )

    for q, per_protocol in results.items():
        flooding = per_protocol["flooding"]
        fixed = per_protocol["fixed-fanout"]
        random_fanout = per_protocol["random-fanout"]
        pbcast = per_protocol["pbcast"]
        rdg = per_protocol["rdg"]

        # Flooding is the reliability upper bound (within noise).
        best_other = max(v[0] for name, v in per_protocol.items() if name != "flooding")
        assert flooding[0] >= best_other - 0.03
        # The paper's random-fanout gossip matches fixed fanout at equal mean
        # in the typical (median) run; its *mean* can sit lower because a
        # Poisson fanout occasionally draws 0 near the source and dies out,
        # which is exactly the take-off effect documented in DESIGN.md.
        assert abs(random_fanout[4] - fixed[4]) < 0.12
        assert random_fanout[0] <= fixed[0] + 0.05
        # Recovery-based protocols beat plain push gossip on reliability.
        assert pbcast[0] >= fixed[0] - 0.02
        assert rdg[0] >= fixed[0] - 0.10
        # Plain push gossip is the cheapest in messages per member.
        assert fixed[2] <= flooding[2] + 0.5
        # Everything is a probability.
        for name, values in per_protocol.items():
            assert 0.0 <= values[0] <= 1.0, name

    # Reliability degrades (or stays flat) when more members fail.
    for name in results[0.9]:
        assert results[0.6][name][4] <= results[0.9][name][4] + 0.05

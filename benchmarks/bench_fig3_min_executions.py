"""Reproduce Fig. 3 — minimum executions for a 0.999 success requirement (Eq. 6).

Prints the (reliability, minimum executions) series and checks the paper's
shape: the curve is non-increasing and reaches ~3 executions once the
per-execution reliability exceeds 0.9 (the paper's worked example with
p_r = 0.967 needs t = 3).
"""

from __future__ import annotations

from _bench_utils import print_banner

from repro.core.success import min_executions
from repro.experiments.fig3_min_executions import Fig3Config, run_fig3


def test_fig3_minimum_executions(benchmark):
    config = Fig3Config()
    result = benchmark.pedantic(run_fig3, args=(config,), rounds=1, iterations=1)

    print_banner("Fig. 3 — Minimum executions for success requirement 0.999 (Eq. 6)")
    print(result.to_table())

    problems = result.check_shape()
    assert problems == [], f"Fig. 3 shape violations: {problems}"

    # The paper's worked example: p_r = 0.967 requires t = 3.
    assert min_executions(0.999, 0.967) == 3
    # Low-reliability regime needs an order of magnitude more executions.
    assert result.min_executions[0] >= 15
    assert result.min_executions[-1] <= 2

"""Benchmarks of the two-phase recovery protocols (lazy-push, anti-entropy).

Both measurements race the scalar reference (:meth:`Protocol.run` looped
over the replicas) against the batched array program
(:func:`repro.simulation.protocol_batch.simulate_protocol_batch`) under a
moderately lossy channel — the regime the recovery plane exists for, and
the one that stresses its extra legs (IHAVE digests, IWANT round trips,
push-pull transfers).  The per-protocol **speedup ratios** land in a
``BENCH_recovery.json`` perf record (path overridable via
``REPRO_BENCH_RECORD_RECOVERY``) for the CI regression gate.

The scalar sides are per-member python loops with per-burst loss draws, so
at full scale the batched hooks must be >= 10x faster (1.5x on scaled
smoke runs, where fixed per-call overheads dominate).
"""

from __future__ import annotations

import json
import os
import time

import numpy as np

from _bench_utils import bench_scale, print_banner, scaled

from repro.protocols import AntiEntropyProtocol, LazyPushProtocol
from repro.simulation.network import NetworkModel
from repro.simulation.protocol_batch import simulate_protocol_batch

#: Shared perf record, filled per protocol and rewritten after each.
_RECORD: dict = {"benchmark": "recovery_protocols"}


def _write_record() -> str:
    record_path = os.environ.get("REPRO_BENCH_RECORD_RECOVERY", "BENCH_recovery.json")
    with open(record_path, "w") as fh:
        json.dump(_RECORD, fh, indent=2)
        fh.write("\n")
    return record_path


def _head_to_head(name: str, protocol, *, loss: float) -> None:
    scale = bench_scale()
    n = scaled(2000, 300, scale)
    repetitions = scaled(20, 8, scale)
    q = 0.9

    print_banner(
        f"{name} head-to-head — n={n}, {repetitions} replicas, q={q}, loss={loss}"
    )

    def run_scalar() -> float:
        rng = np.random.default_rng(123)
        network = NetworkModel(loss_probability=loss)
        start = time.perf_counter()
        for _ in range(repetitions):
            protocol.run(n, q, seed=rng, network=network)
        return time.perf_counter() - start

    def run_batch() -> float:
        network = NetworkModel(loss_probability=loss)
        start = time.perf_counter()
        simulate_protocol_batch(
            protocol, n, q, repetitions=repetitions, seed=123, network=network
        )
        return time.perf_counter() - start

    # The scalar loop is the expensive side: one timing suffices; the
    # batched engine takes best-of-3 so a hiccup cannot decide the race.
    scalar_seconds = run_scalar()
    batch_seconds = min(run_batch() for _ in range(3))
    speedup = scalar_seconds / batch_seconds
    print(
        f"{name:14s} scalar {scalar_seconds * 1000:8.1f}ms   "
        f"batched {batch_seconds * 1000:8.1f}ms   {speedup:8.1f}x"
    )

    _RECORD.update(n=n, repetitions=repetitions, q=q, loss=loss, scale=scale)
    _RECORD[name] = {
        "scalar_seconds": scalar_seconds,
        "batch_seconds": batch_seconds,
        "speedup": speedup,
    }
    record_path = _write_record()
    print(f"perf record written to {record_path}")

    floor = 10.0 if scale >= 0.99 else 1.5
    assert speedup >= floor, (
        f"{name}: batched hook only {speedup:.1f}x faster than the scalar "
        f"reference (floor {floor}x at scale {scale})"
    )


def test_lazy_push_head_to_head():
    """Scalar IHAVE/IWANT recovery vs the batched hook under 25% loss."""
    _head_to_head(
        "lazy-push",
        LazyPushProtocol(fanout=4, rounds=12, eager_threshold=0.4, retry_budget=10),
        loss=0.25,
    )


def test_anti_entropy_head_to_head():
    """Scalar push-pull reconciliation vs the batched hook under 25% loss."""
    _head_to_head(
        "anti-entropy",
        AntiEntropyProtocol(fanout=2, rounds=12),
        loss=0.25,
    )

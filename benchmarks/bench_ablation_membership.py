"""Ablation — sensitivity of the reliability to the membership-view size.

Section 3 of the paper assumes a scalable membership protocol and lets every
member pick targets "from its membership view"; the analysis implicitly
assumes that view is the whole group.  This bench quantifies how much the
reliability degrades when members only know a bounded, SCAMP-like partial
view, sweeping the view size from 2 to the full group at the paper's
favourite configuration (Poisson fanout 4, q = 0.9).

Expected shape: reliability is essentially flat down to view sizes of a few
times the fanout (partial views cost almost nothing, which is why partial-view
protocols work), and only collapses when the view size approaches the fanout
itself.
"""

from __future__ import annotations

import numpy as np
from _bench_utils import bench_scale, print_banner, scaled

from repro.core.distributions import PoissonFanout
from repro.core.poisson_case import poisson_reliability
from repro.simulation.membership import UniformPartialView
from repro.simulation.runner import estimate_reliability
from repro.utils.tables import format_table


def run_membership_ablation(n: int, repetitions: int, view_sizes, seed: int = 20080149):
    """Return (view_size, simulated reliability, spread rate) rows."""
    rows = []
    dist = PoissonFanout(4.0)
    for idx, view_size in enumerate(view_sizes):
        if view_size >= n - 1:
            membership = None  # full view
        else:
            membership = UniformPartialView(n, int(view_size), seed=seed + idx)
        estimate = estimate_reliability(
            n,
            dist,
            0.9,
            repetitions=repetitions,
            seed=seed + 1000 + idx,
            membership=membership,
            conditional_on_spread=True,
        )
        rows.append((int(view_size), estimate.mean_reliability, estimate.spread_rate))
    return rows


def test_ablation_membership_view_size(benchmark):
    scale = bench_scale()
    n = scaled(2000, 300, scale)
    repetitions = scaled(10, 4, scale)
    view_sizes = [3, 5, 8, 15, 30, 60, 120, n - 1]

    rows = benchmark.pedantic(
        run_membership_ablation, args=(n, repetitions, view_sizes), rounds=1, iterations=1
    )

    print_banner(
        f"Ablation — membership view size (Poisson fanout 4, q=0.9, n={n}, "
        f"{repetitions} runs per point)"
    )
    print(format_table(["view_size", "simulated_reliability", "spread_rate"], rows))
    print(f"analytical full-view reliability: {poisson_reliability(4.0, 0.9):.4f}")

    reliabilities = np.array([r[1] for r in rows])
    # The full view matches the analytical value.
    assert reliabilities[-1] == np.max(reliabilities) or reliabilities[-1] > 0.9
    assert abs(reliabilities[-1] - poisson_reliability(4.0, 0.9)) < 0.05
    # Moderate partial views (a few times the fanout) lose little reliability.
    moderate = [r for size, r, _ in rows if 15 <= size <= 120]
    assert min(moderate) > 0.85
    # Reliability is (noise-tolerantly) non-decreasing in the view size.
    assert np.all(np.diff(reliabilities) > -0.12)

"""Head-to-head benchmark of the batched graph-percolation ensemble engine.

``test_graph_ensemble_head_to_head`` races the seed scalar path — per-node
``rng.choice`` edge construction (:func:`build_gossip_graph` with
``method="scalar"``), the per-edge Python union-find
(``component_sizes(method="unionfind")``) for the giant component, and the
list-frontier BFS (``reachable_from(method="python")``) for the source
reachability — against :class:`repro.graphs.ensemble.GossipGraphEnsemble`
performing the same per-replica measurements on the same workload (n = 10⁵,
20 replicas, Poisson(4), q = 0.9).  The scalar side is measured on a small
number of replicas and extrapolated (one scalar replica takes seconds;
timing all 20 would only add noise), the ensemble side is timed in full.  A million-node single-replica ensemble build is timed as well, and
everything is written to ``BENCH_graphs.json`` (path overridable via
``REPRO_BENCH_RECORD_GRAPHS``) so CI can archive the numbers next to
``BENCH_engine.json``.
"""

from __future__ import annotations

import json
import os
import time

import numpy as np
import pytest

from _bench_utils import bench_scale, print_banner, scaled

from repro.core.distributions import PoissonFanout
from repro.core.percolation import giant_component_size
from repro.graphs.components import component_sizes, reachable_from
from repro.graphs.ensemble import GossipGraphEnsemble, percolation_ensemble
from repro.graphs.gossip_graph import build_gossip_graph


def test_graph_ensemble_head_to_head():
    """Scalar graph path vs batched ensemble on n=1e5, 20 replicas."""
    scale = bench_scale()
    n = scaled(100_000, 10_000, scale)
    replicas = scaled(20, 8, scale)
    n_large = scaled(1_000_000, 100_000, scale)
    dist = PoissonFanout(4.0)
    q = 0.9

    scalar_measured = min(2, replicas)

    def run_scalar() -> float:
        # The seed path performing the ensemble's per-replica measurements:
        # giant component via the per-edge union-find, reliability via the
        # list-frontier BFS.
        rng = np.random.default_rng(123)
        start = time.perf_counter()
        for _ in range(scalar_measured):
            graph = build_gossip_graph(n, dist, q, seed=rng, method="scalar")
            effective = graph.effective_edges()
            sizes = component_sizes(graph.n, effective, method="unionfind")
            reached = reachable_from(graph.n, effective, graph.source, method="python")
            assert sizes[0] > 0 and reached[graph.source]
        return (time.perf_counter() - start) / scalar_measured

    def run_ensemble() -> float:
        start = time.perf_counter()
        result = GossipGraphEnsemble(n, dist, q).realise(replicas, seed=123)
        assert result.repetitions == replicas
        return time.perf_counter() - start

    # Interleaved best-of-3 on both sides: machine noise (co-tenant memory
    # bandwidth) swings individual runs by 2x, so pairing the measurements
    # and taking minima keeps a single hiccup from deciding the race.
    scalar_times, ensemble_times = [], []
    for _ in range(3):
        scalar_times.append(run_scalar())
        ensemble_times.append(run_ensemble())
    scalar_per_replica = min(scalar_times)
    scalar_seconds = scalar_per_replica * replicas
    ensemble_seconds = min(ensemble_times)
    speedup = scalar_seconds / ensemble_seconds

    start = time.perf_counter()
    large = GossipGraphEnsemble(n_large, dist, q).realise(1, seed=7)
    large_seconds = time.perf_counter() - start
    # Only gate accuracy when the replica took off: the single execution
    # dies out with probability ~3% at Poisson(4)·q=0.9, and that branch's
    # reliability is legitimately ~0, not a regression.
    if large.spread_occurred()[0]:
        assert abs(large.reliability[0] - giant_component_size(dist, q)) < 0.02

    start = time.perf_counter()
    perc = percolation_ensemble(dist, n_large, q, repetitions=1, seed=8)
    perc_seconds = time.perf_counter() - start
    assert abs(perc.mean_fraction() - giant_component_size(dist, q)) < 0.02

    print_banner(
        f"Graph ensemble head-to-head — n={n}, {replicas} replicas "
        f"(scalar extrapolated from {scalar_measured})"
    )
    print(f"scalar path   : {scalar_seconds * 1000:9.1f} ms  ({scalar_per_replica * 1000:.1f} ms/replica)")
    print(f"ensemble      : {ensemble_seconds * 1000:9.1f} ms")
    print(f"speedup       : {speedup:9.1f}x")
    print(f"n={n_large} gossip replica      : {large_seconds * 1000:9.1f} ms")
    print(f"n={n_large} percolation replica : {perc_seconds * 1000:9.1f} ms")

    record = {
        "benchmark": "graph_ensemble_head_to_head",
        "n": n,
        "replicas": replicas,
        "scale": scale,
        "scalar_seconds_per_replica": scalar_per_replica,
        "scalar_seconds_extrapolated": scalar_seconds,
        "ensemble_seconds": ensemble_seconds,
        "speedup": speedup,
        "n_large": n_large,
        "gossip_replica_seconds_large": large_seconds,
        "percolation_replica_seconds_large": perc_seconds,
    }
    record_path = os.environ.get("REPRO_BENCH_RECORD_GRAPHS", "BENCH_graphs.json")
    with open(record_path, "w") as fh:
        json.dump(record, fh, indent=2)
        fh.write("\n")
    print(f"perf record written to {record_path}")

    if scale >= 0.99:
        assert speedup >= 20.0, f"graph ensemble only {speedup:.1f}x faster"
        assert large_seconds < 30.0, f"n=1e6 replica took {large_seconds:.1f}s"
    else:
        assert speedup >= 3.0, f"graph ensemble only {speedup:.1f}x faster (scaled run)"


def test_gossip_ensemble_n10k(benchmark):
    dist = PoissonFanout(4.0)
    result = benchmark(
        lambda: GossipGraphEnsemble(10_000, dist, 0.9).realise(8, seed=11)
    )
    assert result.repetitions == 8
    assert np.all((result.giant_fraction >= 0.0) & (result.giant_fraction <= 1.0))


def test_percolation_ensemble_n10k(benchmark):
    dist = PoissonFanout(4.0)
    result = benchmark(
        lambda: percolation_ensemble(dist, 10_000, 0.9, repetitions=8, seed=12)
    )
    assert result.mean_fraction() == pytest.approx(
        giant_component_size(dist, 0.9), abs=0.03
    )


def test_vectorized_build_n100k(benchmark):
    dist = PoissonFanout(4.0)
    graph = benchmark(build_gossip_graph, 100_000, dist, 0.9, seed=13)
    assert graph.edges.shape[1] == 2

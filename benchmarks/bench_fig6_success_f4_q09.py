"""Reproduce Fig. 6 — distribution of gossiping success with {f=4.0, q=0.9}.

Runs the paper's protocol (2000 members, 20 executions per simulation, 100
simulations), prints the Pr(X = k) table against the Binomial reference, and
checks that the empirical success probability matches the analytical
reliability (~0.967) and that Eq. 6 yields t = 3 executions for a 0.999
success requirement.
"""

from __future__ import annotations

from _bench_utils import bench_scale, print_banner, scaled

from repro.experiments.fig6_success_f4_q09 import Fig6Config, run_fig6


def test_fig6_success_distribution_f4_q09(benchmark):
    scale = bench_scale()
    config = Fig6Config().scaled(
        n=scaled(2000, 200, scale), simulations=scaled(100, 20, scale)
    )
    result = benchmark.pedantic(run_fig6, args=(config,), rounds=1, iterations=1)

    print_banner(
        f"Fig. 6 — Distribution of gossiping success, f=4.0, q=0.9, n={config.n}, "
        f"{config.simulations} simulations x {config.executions} executions, "
        f"{config.engine} engine"
    )
    print(result.to_table())
    print()
    print(
        f"analytical reliability p_r = {result.counts.analytical_reliability:.4f} "
        f"(paper reports ~0.967); empirical MLE = {result.fit.estimated_probability:.4f}"
    )
    print(
        f"total variation distance to B({config.executions}, p_r) = "
        f"{result.counts.total_variation_distance():.4f}; "
        f"chi-square p-value = {result.chi_square.p_value:.4f}"
    )
    print(f"Eq. 6 minimum executions for 0.999 success: {result.required_executions}")

    problems = result.check_shape()
    assert problems == [], f"Fig. 6 shape violations: {problems}"
    # The paper's worked value: roughly 0.967 reliability and t = 3 (Eq. 6
    # evaluated at the rounded 0.967; the exact fixed point gives 2).
    assert result.counts.analytical_reliability == 0.9695058720241387 or (
        0.95 < result.counts.analytical_reliability < 0.98
    )
    assert result.required_executions in (2, 3)

"""Reproduce Fig. 2 — mean fanout vs. reliability of gossiping (Eq. 12).

Prints the (S, z) series for q ∈ {0.2, 0.4, 0.6, 0.8, 1.0} and checks the
paper's qualitative claims: curves increase with the target reliability,
lower nonfailed ratios require larger fanouts, and Eq. 12 round-trips through
Eq. 11.
"""

from __future__ import annotations

from _bench_utils import print_banner

from repro.experiments.fig2_mean_fanout import Fig2Config, run_fig2


def test_fig2_mean_fanout_vs_reliability(benchmark):
    config = Fig2Config()
    result = benchmark.pedantic(run_fig2, args=(config,), rounds=1, iterations=1)

    print_banner("Fig. 2 — Mean fanout vs. reliability of gossiping (Eq. 12)")
    print(result.to_table())

    problems = result.check_shape()
    assert problems == [], f"Fig. 2 shape violations: {problems}"

    # Anchor values the paper's figure shows: at S ~= 0.9999 the q = 0.2 curve
    # is near the top of the 0-50 axis while q = 1.0 stays below 10.
    assert result.fanouts_by_q[0.2][-1] > 40.0
    assert result.fanouts_by_q[1.0][-1] < 10.0
    # At the left edge (S ~= 0.11) every curve needs only a small fanout.
    for q in config.qs:
        assert result.fanouts_by_q[q][0] < 10.0

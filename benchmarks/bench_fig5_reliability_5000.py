"""Reproduce Figs. 5a/5b — reliability of gossiping in a 5000-member group.

Same protocol as Fig. 4 at group size 5000.  Besides the per-figure checks,
this bench verifies the paper's observation that the larger group tracks the
analytical curve at least as well as the 1000-member group (finite-size
effects shrink with n).
"""

from __future__ import annotations

from _bench_utils import bench_scale, print_banner, scaled

from repro.experiments.fig4_reliability_1000 import Fig4Config, run_fig4
from repro.experiments.fig5_reliability_5000 import Fig5Config, run_fig5


def test_fig5_reliability_5000_nodes(benchmark):
    scale = bench_scale()
    config = Fig5Config().scaled(
        n=scaled(5000, 300, scale), repetitions=scaled(20, 4, scale)
    )
    result = benchmark.pedantic(run_fig5, args=(config,), rounds=1, iterations=1)

    print_banner(
        f"Figs. 5a/5b — Reliability vs mean fanout, n={config.n}, "
        f"{config.repetitions} runs per point, {config.engine} engine"
    )
    print(result.to_table())
    print()
    print("Per-q analysis-vs-simulation agreement:")
    print(result.comparison_table())

    if scale >= 0.99:
        problems = result.check_shape(tolerance=0.1)
        assert problems == [], f"Fig. 5 shape violations: {problems}"
    else:
        # Scaled smoke runs keep only the coarse agreement checks.
        for q, comparison in result.comparisons.items():
            if q >= 0.4:
                assert comparison.mean_absolute_error < 0.25, f"q={q}"

    # Paper's observation: the 5000-node simulation tallies with the analysis
    # better than (or at least as well as) the 1000-node one.  Compare the
    # worst per-q mean absolute error against a small 1000-node rerun.
    small = run_fig4(
        Fig4Config().scaled(n=scaled(1000, 100, scale), repetitions=scaled(20, 4, scale))
    )
    worst_5000 = max(c.mean_absolute_error for c in result.comparisons.values())
    worst_1000 = max(c.mean_absolute_error for c in small.comparisons.values())
    print(f"worst per-q MAE: n={config.n} -> {worst_5000:.4f}, smaller group -> {worst_1000:.4f}")
    if scale >= 0.99:
        assert worst_5000 <= worst_1000 + 0.05

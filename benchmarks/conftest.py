"""Pytest configuration for the benchmark/reproduction harness.

Every ``bench_fig*.py`` module regenerates one table or figure of the paper:
it runs the corresponding experiment driver, prints the same rows/series the
paper reports, and asserts the qualitative shape (threshold location,
monotonicity, analysis-vs-simulation agreement, who wins and by roughly what
factor).  Timings are collected with pytest-benchmark so the harness doubles
as a performance regression suite.

Scaling
-------
The default configurations are the paper's (n = 1000/5000/2000, 20
repetitions, 100 simulations).  Set the environment variable
``REPRO_BENCH_SCALE`` to a value in (0, 1] to shrink group sizes and
repetition counts proportionally for quick smoke runs, e.g.::

    REPRO_BENCH_SCALE=0.2 pytest benchmarks/ --benchmark-only
"""

from __future__ import annotations

import sys
from pathlib import Path

import pytest

# Make `from _bench_utils import ...` work regardless of how pytest was invoked.
sys.path.insert(0, str(Path(__file__).resolve().parent))

from _bench_utils import bench_scale  # noqa: E402


@pytest.fixture(scope="session")
def scale() -> float:
    """The session-wide benchmark scale factor."""
    return bench_scale()

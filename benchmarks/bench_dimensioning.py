"""Benchmark of the auto-dimensioning solver against a naive dense-grid sweep.

``test_dimensioning_solver_vs_grid`` poses the same inverse problem — the
minimal Poisson mean fanout whose Wilson lower confidence bound clears a
0.99 reliability target at q = 0.9 — to the adaptive solver
(:func:`repro.analysis.dimensioning.dimension_fanout`: analytic bracket
seeding + confidence-aware bisection with doubling replica blocks) and to
the naive reference (:func:`repro.analysis.dimensioning.dense_grid_dimension`:
a fixed fanout grid at the full per-point replica budget), once loss-free
and once under a 10% loss budget.

The headline ratio is **replicas consumed** (grid / solver), not wall-clock:
replica counts are fully determined by the fixed seeds, so the ratio is
machine-independent and safe for the CI regression gate to pin — the
wall-clock seconds are recorded for information only.  The record lands in
``BENCH_dimensioning.json`` (path overridable via
``REPRO_BENCH_RECORD_DIMENSIONING``) next to the other ``BENCH_*.json``
perf records.

At any scale the solver must be >= 5x cheaper in replicas than the dense
grid on every cell (the repository's dimensioning promise), and every
solver answer must carry its confidence certificate (``ci_low >= target``).
"""

from __future__ import annotations

import json
import os
import time

from _bench_utils import bench_scale, print_banner, scaled

from repro.analysis.dimensioning import dense_grid_dimension, dimension_fanout


def test_dimensioning_solver_vs_grid():
    """Adaptive solver vs dense grid on the 0.99-target inverse (n=2000, q=0.9)."""
    scale = bench_scale()
    n = scaled(2000, 400, scale)
    q = 0.9
    target = 0.99
    losses = (0.0, 0.1)
    seed = 123

    print_banner(
        f"Auto-dimensioning solver vs dense grid — n={n}, q={q}, target={target}"
    )
    print(
        f"{'loss':>5s} {'solver f':>9s} {'grid f':>8s} {'solver reps':>12s} "
        f"{'grid reps':>10s} {'speedup':>8s}"
    )

    cells = {}
    for loss in losses:
        start = time.perf_counter()
        solved = dimension_fanout(
            n, q, target, loss=loss, seed=seed, conditional_on_spread=True
        )
        solver_seconds = time.perf_counter() - start

        start = time.perf_counter()
        grid = dense_grid_dimension(
            n, q, target, loss=loss, seed=seed, conditional_on_spread=True
        )
        grid_seconds = time.perf_counter() - start

        assert solved.feasible and solved.certified
        assert solved.ci_low >= target, (
            f"loss={loss}: solver answer lacks its certificate "
            f"(ci_low {solved.ci_low:.4f} < target {target})"
        )
        speedup = grid.replicas_used / solved.replicas_used
        cells[f"loss_{loss}"] = {
            "solver_fanout": solved.fanout,
            "grid_fanout": grid.fanout,
            "solver_replicas": solved.replicas_used,
            "grid_replicas": grid.replicas_used,
            "solver_evaluations": solved.evaluations,
            "grid_evaluations": grid.evaluations,
            "solver_seconds": solver_seconds,
            "grid_seconds": grid_seconds,
            "speedup": speedup,
        }
        print(
            f"{loss:5.2f} {solved.fanout:9.3f} {grid.fanout:8.3f} "
            f"{solved.replicas_used:12d} {grid.replicas_used:10d} {speedup:7.1f}x"
        )

    total_speedup = sum(c["grid_replicas"] for c in cells.values()) / sum(
        c["solver_replicas"] for c in cells.values()
    )
    record = {
        "benchmark": "dimensioning_solver_vs_grid",
        "n": n,
        "q": q,
        "target_reliability": target,
        "scale": scale,
        "cells": cells,
        "speedup": total_speedup,
    }
    record_path = os.environ.get("REPRO_BENCH_RECORD_DIMENSIONING", "BENCH_dimensioning.json")
    with open(record_path, "w") as fh:
        json.dump(record, fh, indent=2)
        fh.write("\n")
    print(f"total replica speedup: {total_speedup:.1f}x")
    print(f"perf record written to {record_path}")

    for name, cell in cells.items():
        assert cell["speedup"] >= 5.0, (
            f"{name}: solver only {cell['speedup']:.1f}x cheaper than the dense "
            f"grid in replicas (floor 5x)"
        )

"""Reproduce Figs. 4a/4b — reliability of gossiping in a 1000-member group.

Runs the paper's simulation protocol (Poisson fanout swept from 1.1 to 6.7,
q ∈ {0.1, 0.3, 0.4, 0.5, 0.6, 0.8, 1.0}, 20 executions per point), prints the
simulated vs. analytical reliability for every point, and checks the figure's
qualitative claims: the percolation threshold at f·q = 1, monotonicity, and
simulation/analysis agreement.
"""

from __future__ import annotations

from _bench_utils import bench_scale, print_banner, scaled

from repro.experiments.fig4_reliability_1000 import Fig4Config, run_fig4


def test_fig4_reliability_1000_nodes(benchmark):
    scale = bench_scale()
    config = Fig4Config().scaled(
        n=scaled(1000, 100, scale), repetitions=scaled(20, 4, scale)
    )
    result = benchmark.pedantic(run_fig4, args=(config,), rounds=1, iterations=1)

    print_banner(
        f"Figs. 4a/4b — Reliability vs mean fanout, n={config.n}, "
        f"{config.repetitions} runs per point, {config.engine} engine"
    )
    print(result.to_table())
    print()
    print("Per-q analysis-vs-simulation agreement:")
    print(result.comparison_table())

    if scale >= 0.99:
        problems = result.check_shape(tolerance=0.12)
        assert problems == [], f"Fig. 4 shape violations: {problems}"
        # Panel-level anchors from the paper: with q = 0.1 even a fanout of
        # 6.7 is below the critical point (f·q < 1), so reliability stays ~0.
        # The bound matches check_shape's below-critical guard: under
        # conditional averaging a rare large finite component can lift a
        # single subcritical point well above the typical ~0.02 level.
        q_low = result.series(0.1)[1]
        assert q_low.max() < 0.35
    else:
        # Scaled smoke runs keep only the coarse agreement checks — the
        # strict threshold/monotonicity checks need the paper-size group.
        for q, comparison in result.comparisons.items():
            if q >= 0.4:
                assert comparison.mean_absolute_error < 0.25, f"q={q}"
    q_full = result.series(1.0)[1]
    assert q_full.max() > 0.9

"""Head-to-head benchmark of the vectorised lossy-network plane.

``test_loss_head_to_head`` races every bundled protocol's scalar lossy
reference (:meth:`repro.protocols.base.Protocol.run` with a
:class:`~repro.simulation.network.NetworkModel`, looped over the replicas)
against the batched lossy engine
(:func:`repro.simulation.protocol_batch.simulate_protocol_batch` with the
same network) on the Fig. 5-sized workload (n = 5000, 20 replicas, q = 0.9,
10% message loss), prints the per-protocol speedups, and emits a
``BENCH_loss.json`` perf record (path overridable via
``REPRO_BENCH_RECORD_LOSS``) so CI can archive and regression-gate the
numbers next to the other ``BENCH_*.json`` records.

At full scale the batched lossy path must be >= 10x faster than the scalar
``NetworkModel`` reference for every protocol; scaled smoke runs
(``REPRO_BENCH_SCALE < 1``) assert a looser 1.5x so CI stays robust on small
``n`` where fixed overheads matter.
"""

from __future__ import annotations

import json
import os
import time

import numpy as np

from _bench_utils import bench_scale, print_banner, scaled

from repro.experiments.protocol_comparison import protocol_zoo
from repro.simulation.network import NetworkModel
from repro.simulation.protocol_batch import simulate_protocol_batch


def test_loss_head_to_head():
    """Scalar lossy loop vs batched lossy engine (n=5000, R=20, q=0.9, loss=0.1)."""
    scale = bench_scale()
    n = scaled(5000, 500, scale)
    repetitions = scaled(20, 8, scale)
    q = 0.9
    loss = 0.1

    print_banner(
        f"Lossy-network head-to-head — n={n}, {repetitions} replicas, "
        f"q={q}, loss={loss}"
    )
    print(f"{'protocol':14s} {'scalar':>10s} {'batched':>10s} {'speedup':>9s}")

    records = {}
    for name, protocol in protocol_zoo(mean_fanout=4, rounds=8):

        def run_scalar() -> float:
            rng = np.random.default_rng(123)
            network = NetworkModel(loss_probability=loss)
            start = time.perf_counter()
            for _ in range(repetitions):
                protocol.run(n, q, seed=rng, network=network)
            return time.perf_counter() - start

        def run_batch() -> float:
            network = NetworkModel(loss_probability=loss)
            start = time.perf_counter()
            simulate_protocol_batch(
                protocol, n, q, repetitions=repetitions, seed=123, network=network
            )
            return time.perf_counter() - start

        # The scalar loop is the expensive side: one timing suffices; the
        # batched engine takes best-of-3 so a hiccup cannot decide the race.
        scalar_seconds = run_scalar()
        batch_seconds = min(run_batch() for _ in range(3))
        speedup = scalar_seconds / batch_seconds
        records[name] = {
            "scalar_seconds": scalar_seconds,
            "batch_seconds": batch_seconds,
            "speedup": speedup,
        }
        print(
            f"{name:14s} {scalar_seconds * 1000:8.1f}ms {batch_seconds * 1000:8.1f}ms "
            f"{speedup:8.1f}x"
        )

    record = {
        "benchmark": "loss_head_to_head",
        "n": n,
        "repetitions": repetitions,
        "q": q,
        "loss_probability": loss,
        "scale": scale,
        "protocols": records,
    }
    record_path = os.environ.get("REPRO_BENCH_RECORD_LOSS", "BENCH_loss.json")
    with open(record_path, "w") as fh:
        json.dump(record, fh, indent=2)
        fh.write("\n")
    print(f"perf record written to {record_path}")

    floor = 10.0 if scale >= 0.99 else 1.5
    for name, row in records.items():
        assert row["speedup"] >= floor, (
            f"{name}: batched lossy engine only {row['speedup']:.1f}x faster "
            f"(floor {floor}x at scale {scale})"
        )

"""Benchmark of the serving layer: surface queries vs live dimensioning solves.

``test_serving_vs_live_dimensioning`` poses the same inverse problem — the
minimal mean fanout whose certificate clears a reliability target — to the
surface fast path (:func:`repro.serving.query.dimension_from_surface` over a
precomputed :func:`repro.serving.surface.build_surface` grid) and to the live
solver (:func:`repro.analysis.dimensioning.dimension_fanout`), over a batch
of held-out ``(target, q, loss)`` queries that avoid the surface knots.

The headline ratio is **wall-clock speedup** (live seconds / served median
seconds): unlike the replica ratios of the other benchmarks this one is
genuinely about latency — the service's reason to exist — so the committed
baseline pins a deliberately conservative floor (10^3; observed speedups
run one to two orders of magnitude higher) rather than the measured value.
The one-off surface build cost is recorded alongside so the amortisation
story stays visible.  The record lands in ``BENCH_serving.json`` (path
overridable via ``REPRO_BENCH_RECORD_SERVING``).

At any scale every served answer must come from the surface (no silent live
fallback), carry its conservative Wilson certificate
(``ci_low >= target``), and the median speedup must be >= 10^3.
"""

from __future__ import annotations

import json
import os
import time

from _bench_utils import bench_scale, print_banner, scaled

from repro.analysis.dimensioning import dimension_fanout
from repro.serving.query import SurfaceQueryEngine, dimension_from_surface
from repro.serving.surface import SurfaceGrid, build_surface

#: Served-path timing repeats per query; the median is the served latency.
QUERY_REPEATS = 50


def _median(values) -> float:
    ordered = sorted(values)
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[mid]
    return 0.5 * (ordered[mid - 1] + ordered[mid])


def test_serving_vs_live_dimensioning():
    """Surface fast path vs live bisection on held-out dimensioning queries."""
    scale = bench_scale()
    n = scaled(1000, 300, scale)
    seed = 321

    grid = SurfaceGrid(
        ns=(n,),
        qs=(0.75, 0.85, 0.95),
        losses=(0.0, 0.1, 0.2),
        fanouts=(2.0, 3.0, 4.0, 6.0, 8.0, 11.0, 15.0),
    )
    queries = [
        (target, q, loss)
        for target in (0.8, 0.9)
        for q in (0.8, 0.9)
        for loss in (0.05, 0.15)
    ]

    print_banner(
        f"Serving vs live dimensioning — n={n}, {len(list(grid.cells()))} surface "
        f"cells, {len(queries)} held-out queries"
    )

    build_start = time.perf_counter()
    surface = build_surface(grid, repetitions=96, seed=seed)
    build_seconds = time.perf_counter() - build_start
    engine = SurfaceQueryEngine(surface)
    print(f"surface build: {build_seconds:.2f}s (one-off, amortised over all queries)")
    print(
        f"{'target':>7s} {'q':>5s} {'loss':>5s} {'served f':>9s} {'live f':>7s} "
        f"{'served us':>10s} {'live s':>7s} {'speedup':>9s}"
    )

    cells = {}
    speedups = []
    for index, (target, q, loss) in enumerate(queries):
        timings = []
        for _ in range(QUERY_REPEATS):
            tick = time.perf_counter()
            served = dimension_from_surface(
                engine, n=n, q=q, target_reliability=target, loss=loss,
                allow_live_fallback=False,
            )
            timings.append(time.perf_counter() - tick)
        served_seconds = _median(timings)

        live_start = time.perf_counter()
        live = dimension_fanout(
            n, q, target, loss=loss, seed=seed + index, conditional_on_spread=True
        )
        live_seconds = time.perf_counter() - live_start

        assert served.source == "surface", (
            f"target={target} q={q} loss={loss}: served answer fell back to "
            f"{served.source}"
        )
        assert served.feasible and served.ci_low >= target, (
            f"target={target} q={q} loss={loss}: served answer lacks its "
            f"certificate (ci_low {served.ci_low:.4f})"
        )
        assert live.feasible

        speedup = live_seconds / max(served_seconds, 1e-9)
        speedups.append(speedup)
        cells[f"target_{target}_q_{q}_loss_{loss}"] = {
            "served_fanout": served.fanout,
            "live_fanout": live.fanout,
            "served_ci_low": served.ci_low,
            "live_ci_low": live.ci_low,
            "served_seconds": served_seconds,
            "live_seconds": live_seconds,
        }
        print(
            f"{target:7.2f} {q:5.2f} {loss:5.2f} {served.fanout:9.2f} "
            f"{live.fanout:7.2f} {served_seconds * 1e6:10.1f} {live_seconds:7.2f} "
            f"{speedup:8.0f}x"
        )

    median_speedup = _median(speedups)
    record = {
        "benchmark": "serving_vs_live_dimensioning",
        "n": n,
        "scale": scale,
        "surface_cells": surface.cells,
        "surface_build_seconds": build_seconds,
        "query_repeats": QUERY_REPEATS,
        "cells": cells,
        "speedup": median_speedup,
    }
    record_path = os.environ.get("REPRO_BENCH_RECORD_SERVING", "BENCH_serving.json")
    with open(record_path, "w") as fh:
        json.dump(record, fh, indent=2)
        fh.write("\n")
    print(f"median served-vs-live speedup: {median_speedup:.0f}x")
    print(f"perf record written to {record_path}")

    assert median_speedup >= 1e3, (
        f"median serving speedup only {median_speedup:.0f}x (floor 1000x)"
    )

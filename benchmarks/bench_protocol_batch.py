"""Head-to-head benchmark of the batched multi-protocol engine.

``test_protocol_head_to_head`` races every bundled protocol's scalar
reference (:meth:`repro.protocols.base.Protocol.run`, looped over the
replicas) against the batched engine
(:func:`repro.simulation.protocol_batch.simulate_protocol_batch`) on the
Fig. 5-sized workload (n = 5000, 20 replicas, q = 0.9), prints the per-
protocol speedups, and emits a ``BENCH_protocols.json`` perf record (path
overridable via ``REPRO_BENCH_RECORD_PROTOCOLS``) so CI can archive the
numbers next to ``BENCH_engine.json`` and ``BENCH_graphs.json``.

At full scale the batched engine must be >= 5x faster for every protocol;
scaled smoke runs (``REPRO_BENCH_SCALE < 1``) assert a looser 1.5x so CI
stays robust on small ``n`` where fixed overheads matter.
"""

from __future__ import annotations

import json
import os
import time

import numpy as np

from _bench_utils import bench_scale, print_banner, scaled

from repro.core.distributions import PoissonFanout
from repro.protocols import (
    FixedFanoutGossip,
    FloodingProtocol,
    LpbcastProtocol,
    PbcastProtocol,
    RandomFanoutGossip,
    RouteDrivenGossip,
)
from repro.simulation.protocol_batch import simulate_protocol_batch


def _protocol_zoo():
    return [
        ("flooding", FloodingProtocol(degree=4)),
        ("pbcast", PbcastProtocol(fanout=4, rounds=8, broadcast_reach=0.8)),
        ("lpbcast", LpbcastProtocol(fanout=4, rounds=8, view_size=30)),
        ("rdg", RouteDrivenGossip(fanout=4, rounds=8, pull_fanout=1)),
        ("fixed-fanout", FixedFanoutGossip(4)),
        ("random-fanout", RandomFanoutGossip(PoissonFanout(4.0))),
    ]


def test_protocol_head_to_head():
    """Scalar loop vs batched engine for every protocol (n=5000, R=20, q=0.9)."""
    scale = bench_scale()
    n = scaled(5000, 500, scale)
    repetitions = scaled(20, 8, scale)
    q = 0.9

    print_banner(
        f"Protocol zoo head-to-head — n={n}, {repetitions} replicas, q={q}"
    )
    print(f"{'protocol':14s} {'scalar':>10s} {'batched':>10s} {'speedup':>9s}")

    records = {}
    for name, protocol in _protocol_zoo():

        def run_scalar() -> float:
            rng = np.random.default_rng(123)
            start = time.perf_counter()
            for _ in range(repetitions):
                protocol.run(n, q, seed=rng)
            return time.perf_counter() - start

        def run_batch() -> float:
            start = time.perf_counter()
            simulate_protocol_batch(protocol, n, q, repetitions=repetitions, seed=123)
            return time.perf_counter() - start

        # The scalar loop is the expensive side: one timing suffices (it is
        # seconds long at full scale, far above scheduler noise); the batched
        # engine takes best-of-3 so a hiccup cannot decide the race.
        scalar_seconds = run_scalar()
        batch_seconds = min(run_batch() for _ in range(3))
        speedup = scalar_seconds / batch_seconds
        records[name] = {
            "scalar_seconds": scalar_seconds,
            "batch_seconds": batch_seconds,
            "speedup": speedup,
        }
        print(
            f"{name:14s} {scalar_seconds * 1000:8.1f}ms {batch_seconds * 1000:8.1f}ms "
            f"{speedup:8.1f}x"
        )

    record = {
        "benchmark": "protocol_head_to_head",
        "n": n,
        "repetitions": repetitions,
        "q": q,
        "scale": scale,
        "protocols": records,
    }
    record_path = os.environ.get("REPRO_BENCH_RECORD_PROTOCOLS", "BENCH_protocols.json")
    with open(record_path, "w") as fh:
        json.dump(record, fh, indent=2)
        fh.write("\n")
    print(f"perf record written to {record_path}")

    floor = 5.0 if scale >= 0.99 else 1.5
    for name, row in records.items():
        assert row["speedup"] >= floor, (
            f"{name}: batched engine only {row['speedup']:.1f}x faster "
            f"(floor {floor}x at scale {scale})"
        )

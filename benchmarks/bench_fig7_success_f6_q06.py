"""Reproduce Fig. 7 — distribution of gossiping success with {f=6.0, q=0.6}.

Same protocol as Fig. 6 with the second parameter pair.  Additionally checks
the paper's closing observation: {4.0, 0.9} and {6.0, 0.6} share the same
analytical reliability (equal f·q) yet their realised success-count
distributions are not exactly identical.
"""

from __future__ import annotations

import numpy as np
from _bench_utils import bench_scale, print_banner, scaled

from repro.experiments.fig6_success_f4_q09 import Fig6Config, run_fig6
from repro.experiments.fig7_success_f6_q06 import Fig7Config, run_fig7


def test_fig7_success_distribution_f6_q06(benchmark):
    scale = bench_scale()
    config = Fig7Config().scaled(
        n=scaled(2000, 200, scale), simulations=scaled(100, 20, scale)
    )
    result = benchmark.pedantic(run_fig7, args=(config,), rounds=1, iterations=1)

    print_banner(
        f"Fig. 7 — Distribution of gossiping success, f=6.0, q=0.6, n={config.n}, "
        f"{config.simulations} simulations x {config.executions} executions, "
        f"{config.engine} engine"
    )
    print(result.to_table())
    print()
    print(
        f"analytical reliability p_r = {result.counts.analytical_reliability:.4f}; "
        f"empirical MLE = {result.fit.estimated_probability:.4f}; "
        f"TV distance = {result.counts.total_variation_distance():.4f}"
    )

    problems = result.check_shape()
    assert problems == [], f"Fig. 7 shape violations: {problems}"

    # Cross-figure comparison (the paper's final observation in Section 5.2).
    fig6 = run_fig6(
        Fig6Config().scaled(n=scaled(2000, 200, scale), simulations=scaled(100, 20, scale))
    )
    assert abs(fig6.counts.analytical_reliability - result.counts.analytical_reliability) < 1e-9
    same_mean_within_noise = abs(fig6.counts.mean_count() - result.counts.mean_count()) < 2.0
    identical_distributions = np.allclose(
        fig6.counts.empirical_pmf, result.counts.empirical_pmf
    )
    print(
        f"Fig. 6 mean X = {fig6.counts.mean_count():.2f}, "
        f"Fig. 7 mean X = {result.counts.mean_count():.2f}, "
        f"identical distributions: {identical_distributions}"
    )
    assert same_mean_within_noise
    if scale >= 0.99:
        assert not identical_distributions

"""Ablation — the model's claim that arbitrary fanout distributions are supported.

The paper's stated advantage over prior models is that the generalized
random-graph machinery handles *any* fanout distribution, not just Poisson
(Section 2).  This bench holds the mean fanout at 4 and swaps the family
(Poisson, fixed, geometric, uniform), reporting for every (family, q) cell:

* the analytical reliability from the generating-function solver
  (``1 − G0(u)``, the undirected configuration-model ensemble), and
* the simulated reliability of the actual gossip algorithm.

It asserts the analytical ordering the theory predicts at equal mean —
lower fanout variance ⇒ larger giant component (fixed ≥ poisson ≥ geometric)
— and that every family's critical ratio obeys ``q_c = E[F] / E[F(F−1)]``.
"""

from __future__ import annotations

from _bench_utils import bench_scale, print_banner, scaled

from repro.analysis.sweep import distribution_ablation
from repro.analysis.tables import distribution_sweep_to_table
from repro.core.percolation import critical_ratio
from repro.core.reliability import reliability as analytical_reliability


def test_ablation_fanout_distributions(benchmark):
    scale = bench_scale()
    n = scaled(2000, 200, scale)
    repetitions = scaled(10, 3, scale)
    qs = (0.3, 0.5, 0.7, 0.9, 1.0)

    result = benchmark.pedantic(
        distribution_ablation,
        args=(n, 4.0, qs),
        kwargs={"repetitions": repetitions, "seed": 20080149},
        rounds=1,
        iterations=1,
    )

    print_banner(
        f"Ablation — fanout distribution families at mean fanout 4 (n={n}, "
        f"{repetitions} runs per cell)"
    )
    print(distribution_sweep_to_table(result))

    families = {row.family: None for row in result.rows}
    assert set(families) == {"poisson", "fixed", "geometric", "uniform"}

    # Analytical ordering at equal mean: lower fanout variance gives a larger
    # giant component in the supercritical regime.
    for q in (0.7, 0.9, 1.0):
        fixed = next(r for r in result.rows if r.family == "fixed" and r.q == q)
        poisson = next(r for r in result.rows if r.family == "poisson" and r.q == q)
        geometric = next(r for r in result.rows if r.family == "geometric" and r.q == q)
        assert fixed.analytical >= poisson.analytical >= geometric.analytical

    # Critical ratios: heavier tails (geometric) percolate earlier than
    # Poisson, which percolates earlier than the degenerate fixed fanout is
    # *not* true — fixed fanout has the smallest excess-degree denominator of
    # the three at equal mean 4, so check the exact formula instead of an
    # ad-hoc ordering.
    for row in result.rows:
        assert row.critical_ratio > 0.0
    geometric_qc = next(r.critical_ratio for r in result.rows if r.family == "geometric")
    poisson_qc = next(r.critical_ratio for r in result.rows if r.family == "poisson")
    assert geometric_qc < poisson_qc

    # Simulated reliabilities are probabilities and broadly track the
    # supercritical/subcritical split.
    for row in result.rows:
        assert 0.0 <= row.simulated <= 1.0
        if row.q < row.critical_ratio * 0.8:
            assert row.simulated < 0.35
    # Sanity: the analytical column agrees with a direct solver call.
    sample = result.rows[0]
    from repro.analysis.sweep import default_distribution_families

    dist = default_distribution_families(4.0)[sample.family]
    assert abs(sample.analytical - analytical_reliability(dist, sample.q)) < 1e-9
    assert abs(sample.critical_ratio - critical_ratio(dist)) < 1e-9

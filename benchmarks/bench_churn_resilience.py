"""Benchmarks of the dynamic-membership (churn) plane.

Two measurements, both emitted into a ``BENCH_churn.json`` perf record
(path overridable via ``REPRO_BENCH_RECORD_CHURN``) for the CI
regression gate:

* ``test_hyparview_head_to_head`` races the HyParView-style peer-sampling
  protocol's scalar reference (:meth:`repro.protocols.base.Protocol.run`
  looped over the replicas) against the batched engine
  (:func:`repro.simulation.protocol_batch.simulate_protocol_batch`) at zero
  churn.  The scalar hook maintains every member's active/passive views in a
  python loop, so this is the zoo's most view-heavy head-to-head; at full
  scale the batched path must be >= 10x faster (1.5x on scaled smoke runs).
* ``test_churn_plane_overhead`` measures what turning churn ON costs the
  batched engine: the same seeded workload with ``churn=None`` versus a
  ``PoissonChurnModel`` at 5% leave/join rates.  The recorded ratio is
  ``static_seconds / churn_seconds`` (the fraction of static throughput the
  churn-aware path retains), so a regression that bloats the per-round
  presence masking shows up as the ratio falling — exactly what the
  ``check_regression.py`` gate watches.
"""

from __future__ import annotations

import json
import os
import time

import numpy as np

from _bench_utils import bench_scale, print_banner, scaled

from repro.experiments.protocol_comparison import protocol_zoo
from repro.protocols.hyparview import HyParViewProtocol
from repro.simulation.churn import PoissonChurnModel
from repro.simulation.protocol_batch import simulate_protocol_batch

#: Shared perf record, filled by both tests and rewritten after each.
_RECORD: dict = {"benchmark": "churn_plane"}


def _write_record() -> str:
    record_path = os.environ.get("REPRO_BENCH_RECORD_CHURN", "BENCH_churn.json")
    with open(record_path, "w") as fh:
        json.dump(_RECORD, fh, indent=2)
        fh.write("\n")
    return record_path


def test_hyparview_head_to_head():
    """Scalar per-member view maintenance vs the batched hook (zero churn)."""
    scale = bench_scale()
    n = scaled(2000, 300, scale)
    repetitions = scaled(20, 8, scale)
    q = 0.9
    protocol = HyParViewProtocol(fanout=4, rounds=8, active_size=8, passive_size=30)

    print_banner(
        f"HyParView head-to-head — n={n}, {repetitions} replicas, q={q}, zero churn"
    )

    def run_scalar() -> float:
        rng = np.random.default_rng(123)
        start = time.perf_counter()
        for _ in range(repetitions):
            protocol.run(n, q, seed=rng)
        return time.perf_counter() - start

    def run_batch() -> float:
        start = time.perf_counter()
        simulate_protocol_batch(protocol, n, q, repetitions=repetitions, seed=123)
        return time.perf_counter() - start

    # The scalar loop is the expensive side: one timing suffices; the
    # batched engine takes best-of-3 so a hiccup cannot decide the race.
    scalar_seconds = run_scalar()
    batch_seconds = min(run_batch() for _ in range(3))
    speedup = scalar_seconds / batch_seconds
    print(
        f"{'hyparview':14s} scalar {scalar_seconds * 1000:8.1f}ms   "
        f"batched {batch_seconds * 1000:8.1f}ms   {speedup:8.1f}x"
    )

    _RECORD.update(
        n=n,
        repetitions=repetitions,
        q=q,
        scale=scale,
        hyparview={
            "scalar_seconds": scalar_seconds,
            "batch_seconds": batch_seconds,
            "speedup": speedup,
        },
    )
    record_path = _write_record()
    print(f"perf record written to {record_path}")

    floor = 10.0 if scale >= 0.99 else 1.5
    assert speedup >= floor, (
        f"hyparview: batched hook only {speedup:.1f}x faster than the scalar "
        f"reference (floor {floor}x at scale {scale})"
    )


def test_churn_plane_overhead():
    """Batched engine with churn=None vs a 5% Poisson churn plane."""
    scale = bench_scale()
    n = scaled(2000, 300, scale)
    repetitions = scaled(20, 8, scale)
    q = 0.9
    churn = PoissonChurnModel(leave_rate=0.05, join_rate=0.05, initially_absent=0.1)

    print_banner(
        f"Churn-plane overhead — n={n}, {repetitions} replicas, q={q}, "
        f"Poisson leave/join 5%"
    )
    print(f"{'protocol':14s} {'static':>10s} {'churned':>10s} {'retained':>9s}")

    rows = {}
    zoo = protocol_zoo(mean_fanout=4, rounds=8, include_peer_sampling=True)
    for name, protocol in zoo:

        def run_static() -> float:
            start = time.perf_counter()
            simulate_protocol_batch(protocol, n, q, repetitions=repetitions, seed=123)
            return time.perf_counter() - start

        def run_churned() -> float:
            start = time.perf_counter()
            simulate_protocol_batch(
                protocol, n, q, repetitions=repetitions, seed=123, churn=churn
            )
            return time.perf_counter() - start

        static_seconds = min(run_static() for _ in range(3))
        churn_seconds = min(run_churned() for _ in range(3))
        # "speedup" here is the retained-throughput ratio static/churned; the
        # regression gate flags it falling, i.e. the churn plane getting
        # relatively more expensive.
        retained = static_seconds / churn_seconds
        rows[name] = {
            "static_seconds": static_seconds,
            "churn_seconds": churn_seconds,
            "speedup": retained,
        }
        print(
            f"{name:14s} {static_seconds * 1000:8.1f}ms {churn_seconds * 1000:8.1f}ms "
            f"{retained:8.2f}x"
        )

    _RECORD["churn_overhead"] = rows
    record_path = _write_record()
    print(f"perf record written to {record_path}")

    # The churn plane must stay a bounded-overhead feature: with fewer live
    # members each round the churned run can even be *faster*, but it must
    # never cost more than ~10x the static path for any protocol.
    for name, row in rows.items():
        assert row["speedup"] >= 0.1, (
            f"{name}: churn plane costs {1.0 / row['speedup']:.1f}x the static "
            f"path (bound 10x)"
        )

"""Micro-benchmarks of the library's hot paths.

These are conventional pytest-benchmark timings (many rounds, statistical
reporting) rather than figure reproductions: the percolation fixed-point
solver, a single gossip execution at n = 1000 and n = 5000, the batched
replica engine, the configuration model builder, and the reachability kernel.
They exist so performance regressions in the simulator show up in CI next to
the reproduction harness.

``test_engine_head_to_head_fig5_workload`` is the scalar-vs-batched showdown
on the Fig. 5 workload (n = 5000, 20 replicas): it prints the speedup,
asserts the batched engine's ≥ 10× win at full scale, and emits a
``BENCH_engine.json`` perf record (path overridable via the
``REPRO_BENCH_RECORD`` environment variable) so CI can archive the numbers.
"""

from __future__ import annotations

import json
import os
import time

import numpy as np
import pytest

from _bench_utils import bench_scale, print_banner, scaled

from repro.core.distributions import PoissonFanout
from repro.core.percolation import giant_component_size
from repro.core.poisson_case import poisson_reliability
from repro.graphs.components import reachable_from
from repro.graphs.configuration_model import configuration_model_edges
from repro.simulation.gossip import simulate_gossip_batch, simulate_gossip_once


def test_percolation_solver_poisson_closed_form(benchmark):
    result = benchmark(poisson_reliability, 4.0, 0.9)
    assert result == pytest.approx(0.9695, abs=1e-3)


def test_percolation_solver_generic(benchmark):
    dist = PoissonFanout(4.0)
    result = benchmark(giant_component_size, dist, 0.9)
    assert result == pytest.approx(0.9695, abs=1e-3)


def test_single_execution_n1000(benchmark):
    dist = PoissonFanout(4.0)
    execution = benchmark(simulate_gossip_once, 1000, dist, 0.9, seed=1)
    assert 0.0 <= execution.reliability() <= 1.0


def test_single_execution_n5000(benchmark):
    dist = PoissonFanout(4.0)
    execution = benchmark(simulate_gossip_once, 5000, dist, 0.9, seed=2)
    assert 0.0 <= execution.reliability() <= 1.0


def test_batched_executions_n5000(benchmark):
    dist = PoissonFanout(4.0)
    result = benchmark(
        lambda: simulate_gossip_batch(5000, dist, 0.9, repetitions=20, seed=7)
    )
    assert result.repetitions == 20
    assert np.all((result.reliability() >= 0.0) & (result.reliability() <= 1.0))


def test_engine_head_to_head_fig5_workload():
    """Scalar loop vs batched engine on the Fig. 5 workload (n=5000, R=20)."""
    scale = bench_scale()
    n = scaled(5000, 500, scale)
    repetitions = scaled(20, 8, scale)
    dist = PoissonFanout(4.0)

    def run_scalar() -> float:
        rng = np.random.default_rng(123)
        start = time.perf_counter()
        for _ in range(repetitions):
            simulate_gossip_once(n, dist, 0.9, seed=rng)
        return time.perf_counter() - start

    def run_batch() -> float:
        start = time.perf_counter()
        simulate_gossip_batch(n, dist, 0.9, repetitions=repetitions, seed=123)
        return time.perf_counter() - start

    # Best-of-3 for both engines so a scheduler hiccup cannot decide the race.
    scalar_seconds = min(run_scalar() for _ in range(3))
    batch_seconds = min(run_batch() for _ in range(3))
    speedup = scalar_seconds / batch_seconds

    print_banner(
        f"Engine head-to-head — n={n}, {repetitions} replicas (Fig. 5 workload)"
    )
    print(f"scalar loop : {scalar_seconds * 1000:9.1f} ms")
    print(f"batched     : {batch_seconds * 1000:9.1f} ms")
    print(f"speedup     : {speedup:9.1f}x")

    record = {
        "benchmark": "engine_head_to_head_fig5_workload",
        "n": n,
        "repetitions": repetitions,
        "scale": scale,
        "scalar_seconds": scalar_seconds,
        "batch_seconds": batch_seconds,
        "speedup": speedup,
    }
    record_path = os.environ.get("REPRO_BENCH_RECORD", "BENCH_engine.json")
    with open(record_path, "w") as fh:
        json.dump(record, fh, indent=2)
        fh.write("\n")
    print(f"perf record written to {record_path}")

    if scale >= 0.99:
        assert speedup >= 10.0, f"batched engine only {speedup:.1f}x faster"
    else:
        assert speedup >= 2.0, f"batched engine only {speedup:.1f}x faster (scaled run)"


def test_configuration_model_build(benchmark):
    degrees = PoissonFanout(4.0).sample(5000, seed=3)
    edges = benchmark(configuration_model_edges, degrees, seed=4)
    assert edges.shape[1] == 2


def test_reachability_kernel(benchmark):
    rng = np.random.default_rng(5)
    n = 5000
    edges = rng.integers(0, n, size=(4 * n, 2))
    reached = benchmark(reachable_from, n, edges, 0)
    assert reached[0]

"""Micro-benchmarks of the library's hot paths.

These are conventional pytest-benchmark timings (many rounds, statistical
reporting) rather than figure reproductions: the percolation fixed-point
solver, a single gossip execution at n = 1000 and n = 5000, the configuration
model builder, and the reachability kernel.  They exist so performance
regressions in the simulator show up in CI next to the reproduction harness.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.distributions import PoissonFanout
from repro.core.percolation import giant_component_size
from repro.core.poisson_case import poisson_reliability
from repro.graphs.components import reachable_from
from repro.graphs.configuration_model import configuration_model_edges
from repro.simulation.gossip import simulate_gossip_once


def test_percolation_solver_poisson_closed_form(benchmark):
    result = benchmark(poisson_reliability, 4.0, 0.9)
    assert result == pytest.approx(0.9695, abs=1e-3)


def test_percolation_solver_generic(benchmark):
    dist = PoissonFanout(4.0)
    result = benchmark(giant_component_size, dist, 0.9)
    assert result == pytest.approx(0.9695, abs=1e-3)


def test_single_execution_n1000(benchmark):
    dist = PoissonFanout(4.0)
    execution = benchmark(simulate_gossip_once, 1000, dist, 0.9, seed=1)
    assert 0.0 <= execution.reliability() <= 1.0


def test_single_execution_n5000(benchmark):
    dist = PoissonFanout(4.0)
    execution = benchmark(simulate_gossip_once, 5000, dist, 0.9, seed=2)
    assert 0.0 <= execution.reliability() <= 1.0


def test_configuration_model_build(benchmark):
    degrees = PoissonFanout(4.0).sample(5000, seed=3)
    edges = benchmark(configuration_model_edges, degrees, seed=4)
    assert edges.shape[1] == 2


def test_reachability_kernel(benchmark):
    rng = np.random.default_rng(5)
    n = 5000
    edges = rng.integers(0, n, size=(4 * n, 2))
    reached = benchmark(reachable_from, n, edges, 0)
    assert reached[0]

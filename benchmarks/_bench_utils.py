"""Utility helpers shared by the benchmark modules (kept out of conftest so
they can be imported explicitly as ``from _bench_utils import ...``)."""

from __future__ import annotations

import os


def bench_scale() -> float:
    """Return the global benchmark scale factor from ``REPRO_BENCH_SCALE``."""
    raw = os.environ.get("REPRO_BENCH_SCALE", "1.0")
    try:
        scale = float(raw)
    except ValueError as exc:
        raise ValueError(f"REPRO_BENCH_SCALE must be a float, got {raw!r}") from exc
    if not 0.0 < scale <= 1.0:
        raise ValueError(f"REPRO_BENCH_SCALE must be in (0, 1], got {scale}")
    return scale


def scaled(value: int, minimum: int, scale: float | None = None) -> int:
    """Scale an integer parameter, never dropping below ``minimum``."""
    if scale is None:
        scale = bench_scale()
    return max(minimum, int(round(value * scale)))


def print_banner(title: str) -> None:
    """Print a section banner so the bench output reads like the paper's figures."""
    print()
    print("=" * 78)
    print(title)
    print("=" * 78)

"""Tests for the cross-protocol comparison experiment."""

from __future__ import annotations

import pytest

from repro.experiments.protocol_comparison import (
    ProtocolComparisonConfig,
    ProtocolComparisonResult,
    run_protocol_comparison,
)
from repro.experiments.registry import get_experiment


def small_config(**overrides) -> ProtocolComparisonConfig:
    defaults = dict(n=200, qs=(0.5, 0.9, 1.0), repetitions=10, seed=42)
    defaults.update(overrides)
    return ProtocolComparisonConfig(**defaults)


class TestConfig:
    def test_defaults_cover_six_protocols(self):
        config = ProtocolComparisonConfig()
        ids = [pid for pid, _ in config.protocols()]
        assert ids == [
            "flooding",
            "pbcast",
            "lpbcast",
            "rdg",
            "fixed-fanout",
            "random-fanout",
        ]

    def test_with_scale_shrinks(self):
        config = ProtocolComparisonConfig().with_scale(0.1)
        assert config.n == 200
        assert config.repetitions == 8
        assert config.qs == ProtocolComparisonConfig().qs

    def test_with_scale_identity_at_full(self):
        config = ProtocolComparisonConfig()
        assert config.with_scale(1.0) is config

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            ProtocolComparisonConfig(n=1)
        with pytest.raises(ValueError):
            ProtocolComparisonConfig(qs=())
        with pytest.raises(ValueError):
            ProtocolComparisonConfig(qs=(1.5,))
        with pytest.raises(ValueError):
            ProtocolComparisonConfig(engine="vectorised")
        with pytest.raises(ValueError):
            ProtocolComparisonConfig().with_scale(0.0)


class TestRun:
    @pytest.fixture(scope="class")
    def result(self) -> ProtocolComparisonResult:
        return run_protocol_comparison(small_config())

    def test_grid_is_complete(self, result):
        assert len(result.points) == 6 * 3
        assert len(result.protocols()) == 6
        for protocol in result.protocols():
            series = result.series_for(protocol)
            assert [p.q for p in series] == [0.5, 0.9, 1.0]

    def test_measurements_are_sane(self, result):
        for point in result.points:
            assert 0.0 <= point.reliability <= 1.0
            assert 0.0 <= point.atomic_rate <= 1.0
            assert point.mean_rounds >= 0.0
            assert point.messages_per_member > 0.0
            assert point.repetitions == 10

    def test_flooding_is_upper_bound_at_high_q(self, result):
        flooding = result.point("flooding", 0.9).reliability
        for protocol in result.protocols():
            assert flooding >= result.point(protocol, 0.9).reliability - 0.05

    def test_to_table_renders(self, result):
        table = result.to_table()
        for protocol in result.protocols():
            assert protocol in table
        assert "reliability" in table and "msgs/member" in table

    def test_check_shape_clean_on_small_run(self, result):
        assert result.check_shape() == []

    def test_point_lookup_raises_for_unknown(self, result):
        with pytest.raises(KeyError):
            result.point("flooding", 0.123)
        with pytest.raises(KeyError):
            result.point("unknown", 0.9)

    def test_deterministic_for_seed(self):
        a = run_protocol_comparison(small_config(qs=(0.9,), repetitions=6))
        b = run_protocol_comparison(small_config(qs=(0.9,), repetitions=6))
        for pa, pb in zip(a.points, b.points, strict=True):
            assert pa == pb

    def test_scalar_engine_agrees_with_batch(self):
        config = small_config(qs=(0.9,), repetitions=16)
        batch = run_protocol_comparison(config)
        scalar = run_protocol_comparison(
            ProtocolComparisonConfig(
                n=200, qs=(0.9,), repetitions=16, seed=42, engine="scalar"
            )
        )
        for protocol in batch.protocols():
            gap = abs(
                batch.point(protocol, 0.9).reliability
                - scalar.point(protocol, 0.9).reliability
            )
            assert gap < 0.1, f"{protocol}: batch vs scalar gap {gap:.3f}"


class TestRegistry:
    def test_registered(self):
        spec = get_experiment("protocol_comparison")
        assert spec.analytical_only is False
        assert spec.config_factory is ProtocolComparisonConfig
        config = spec.config_factory()
        assert hasattr(config, "with_scale")

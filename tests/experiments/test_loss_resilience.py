"""Tests for the loss-resilience experiment."""

from __future__ import annotations

import pytest

from repro.experiments.loss_resilience import (
    LossResilienceConfig,
    LossResilienceResult,
    run_loss_resilience,
)
from repro.experiments.protocol_comparison import (
    ProtocolComparisonConfig,
    run_protocol_comparison,
)
from repro.experiments.registry import get_experiment


def small_config(**overrides) -> LossResilienceConfig:
    defaults = dict(
        n=200,
        qs=(0.9,),
        loss_probabilities=(0.0, 0.2, 0.5),
        repetitions=10,
        seed=42,
    )
    defaults.update(overrides)
    return LossResilienceConfig(**defaults)


class TestConfig:
    def test_defaults_cover_six_protocols(self):
        config = LossResilienceConfig()
        ids = [pid for pid, _ in config.protocols()]
        assert ids == [
            "flooding",
            "pbcast",
            "lpbcast",
            "rdg",
            "fixed-fanout",
            "random-fanout",
        ]

    def test_same_zoo_as_protocol_comparison(self):
        # The two protocol-level experiments must dimension identically so
        # their loss=0 numbers are comparable.
        loss_ids = [pid for pid, _ in LossResilienceConfig().protocols()]
        comparison_ids = [pid for pid, _ in ProtocolComparisonConfig().protocols()]
        assert loss_ids == comparison_ids

    def test_with_scale_shrinks(self):
        config = LossResilienceConfig().with_scale(0.1)
        assert config.n == 200
        assert config.repetitions == 8
        assert config.loss_probabilities == LossResilienceConfig().loss_probabilities

    def test_with_scale_identity_at_full(self):
        config = LossResilienceConfig()
        assert config.with_scale(1.0) is config

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            LossResilienceConfig(n=1)
        with pytest.raises(ValueError):
            LossResilienceConfig(qs=())
        with pytest.raises(ValueError):
            LossResilienceConfig(loss_probabilities=())
        with pytest.raises(ValueError):
            LossResilienceConfig(loss_probabilities=(1.5,))
        with pytest.raises(ValueError):
            LossResilienceConfig(engine="vectorised")
        with pytest.raises(ValueError):
            LossResilienceConfig().with_scale(0.0)


class TestRun:
    @pytest.fixture(scope="class")
    def result(self) -> LossResilienceResult:
        return run_loss_resilience(small_config())

    def test_grid_is_complete(self, result):
        assert len(result.points) == 6 * 1 * 3
        assert len(result.protocols()) == 6
        for protocol in result.protocols():
            series = result.series_for(protocol, 0.9)
            assert [p.loss_probability for p in series] == [0.0, 0.2, 0.5]

    def test_measurements_are_sane(self, result):
        for point in result.points:
            assert 0.0 <= point.reliability <= 1.0
            assert 0.0 <= point.atomic_rate <= 1.0
            assert 0.0 <= point.drop_rate <= 1.0
            assert point.messages_per_member > 0.0
            assert point.repetitions == 10

    def test_zero_loss_drops_nothing(self, result):
        for protocol in result.protocols():
            assert result.point(protocol, 0.9, 0.0).drop_rate == 0.0

    def test_drop_rate_tracks_requested_loss(self, result):
        for protocol in result.protocols():
            for loss in (0.2, 0.5):
                point = result.point(protocol, 0.9, loss)
                assert point.drop_rate == pytest.approx(loss, abs=0.05)

    def test_heavy_loss_degrades_reliability(self, result):
        for protocol in result.protocols():
            clean = result.point(protocol, 0.9, 0.0).reliability
            lossy = result.point(protocol, 0.9, 0.5).reliability
            assert lossy <= clean + 0.02

    def test_to_table_renders(self, result):
        table = result.to_table()
        for protocol in result.protocols():
            assert protocol in table
        assert "loss" in table and "drop rate" in table

    def test_check_shape_clean_on_small_run(self, result):
        assert result.check_shape() == []

    def test_point_lookup_raises_for_unknown(self, result):
        with pytest.raises(KeyError):
            result.point("flooding", 0.9, 0.123)
        with pytest.raises(KeyError):
            result.point("unknown", 0.9, 0.2)

    def test_deterministic_for_seed(self):
        a = run_loss_resilience(small_config(loss_probabilities=(0.2,), repetitions=6))
        b = run_loss_resilience(small_config(loss_probabilities=(0.2,), repetitions=6))
        for pa, pb in zip(a.points, b.points, strict=True):
            assert pa == pb

    def test_network_model_crosses_the_process_pool(self):
        # The NetworkModel is pickled into the workers whole (the latency
        # samplers are frozen dataclasses); the old code rebuilt the model
        # inside each worker to dodge unpicklable closures.
        config = small_config(
            n=60, loss_probabilities=(0.0, 0.3), repetitions=10, processes=2
        )
        result = run_loss_resilience(config)
        assert len(result.points) == len(config.protocols()) * 2
        assert all(0.0 <= p.reliability <= 1.0 for p in result.points)

    def test_scalar_engine_agrees_with_batch(self):
        # 24 replicas: random-fanout is bimodal (take-off or die-out), so
        # smaller samples leave the mean one take-off short of the other side.
        config = small_config(loss_probabilities=(0.2,), repetitions=24)
        batch = run_loss_resilience(config)
        scalar = run_loss_resilience(
            LossResilienceConfig(
                n=200,
                qs=(0.9,),
                loss_probabilities=(0.2,),
                repetitions=24,
                seed=42,
                engine="scalar",
            )
        )
        for protocol in batch.protocols():
            gap = abs(
                batch.point(protocol, 0.9, 0.2).reliability
                - scalar.point(protocol, 0.9, 0.2).reliability
            )
            assert gap < 0.1, f"{protocol}: batch vs scalar gap {gap:.3f}"

    def test_loss_free_column_matches_protocol_comparison(self):
        # At loss=0 the sweep must reproduce the loss-free experiment's
        # numbers up to Monte-Carlo error (different seed streams): the gap
        # per protocol has to be explained by the combined standard errors.
        loss = run_loss_resilience(small_config(loss_probabilities=(0.0,), repetitions=16))
        comparison = run_protocol_comparison(
            ProtocolComparisonConfig(n=200, qs=(0.9,), repetitions=16, seed=42)
        )
        for protocol in loss.protocols():
            a = loss.point(protocol, 0.9, 0.0)
            b = comparison.point(protocol, 0.9)
            se = (a.reliability_std**2 / 16 + b.reliability_std**2 / 16) ** 0.5
            tolerance = max(4.0 * se, 0.02)
            gap = abs(a.reliability - b.reliability)
            assert gap < tolerance, (
                f"{protocol}: loss-free gap {gap:.4f} exceeds {tolerance:.4f}"
            )


class TestRegistry:
    def test_registered(self):
        spec = get_experiment("loss_resilience")
        assert spec.analytical_only is False
        assert spec.config_factory is LossResilienceConfig
        config = spec.config_factory()
        assert hasattr(config, "with_scale")

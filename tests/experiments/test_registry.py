"""Tests for the experiment registry."""

from __future__ import annotations

import pytest

from repro.experiments.registry import get_experiment, list_experiments


class TestRegistry:
    def test_all_figures_registered(self):
        ids = [spec.experiment_id for spec in list_experiments()]
        assert ids == [
            "churn_resilience",
            "dimensioning",
            "fig2",
            "fig3",
            "fig4",
            "fig5",
            "fig6",
            "fig7",
            "latency_profile",
            "loss_resilience",
            "protocol_comparison",
            "recovery_resilience",
            "sec4_percolation_validation",
            "surface_dimensioning",
        ]

    def test_analytical_flags(self):
        assert get_experiment("fig2").analytical_only
        assert get_experiment("fig3").analytical_only
        assert not get_experiment("fig4").analytical_only
        assert not get_experiment("fig6").analytical_only

    def test_config_factories_produce_defaults(self):
        spec = get_experiment("fig4")
        config = spec.config_factory()
        assert config.n == 1000

    def test_unknown_experiment(self):
        with pytest.raises(KeyError, match="fig9"):
            get_experiment("fig9")

    def test_analytical_runners_execute(self):
        for experiment_id in ("fig2", "fig3"):
            spec = get_experiment(experiment_id)
            result = spec.runner(spec.config_factory())
            assert result.check_shape() == []

    def test_paper_references_present(self):
        for spec in list_experiments():
            assert spec.paper_reference.startswith(("Fig", "Sec"))

"""Tests for the Sec. 4 large-n percolation validation experiment."""

from __future__ import annotations

import math

import pytest

from repro.experiments.registry import get_experiment
from repro.experiments.sec4_percolation_validation import (
    Sec4Config,
    Sec4Result,
    run_sec4,
)


def small_config() -> Sec4Config:
    return Sec4Config(
        ns=(1500, 4000),
        qs=(0.15, 0.6, 0.9),
        replicas=4,
        replicas_large=2,
        large_n_threshold=3000,
        seed=7,
    )


class TestConfig:
    def test_defaults_span_large_n(self):
        config = Sec4Config()
        assert max(config.ns) == 1_000_000
        assert config.replicas_for(1_000_000) == config.replicas_large
        assert config.replicas_for(10_000) == config.replicas

    def test_with_scale_shrinks(self):
        config = Sec4Config().with_scale(0.02)
        assert max(config.ns) <= 20_000
        assert min(config.ns) >= 2000
        assert config.replicas >= 2

    def test_invalid_configs_rejected(self):
        with pytest.raises(ValueError):
            Sec4Config(ns=())
        with pytest.raises(ValueError):
            Sec4Config(qs=(1.5,))
        with pytest.raises(ValueError):
            Sec4Config(replicas=0)
        with pytest.raises(ValueError):
            Sec4Config().with_scale(0.0)


class TestRun:
    @pytest.fixture(scope="class")
    def result(self) -> Sec4Result:
        return run_sec4(small_config())

    def test_grid_is_complete(self, result):
        assert len(result.points) == 2 * 3
        assert len(result.critical) == 2
        assert len(result.points_for_n(4000)) == 3
        # replicas_large applies above the threshold
        assert {p.replicas for p in result.points_for_n(4000)} == {2}
        assert {p.replicas for p in result.points_for_n(1500)} == {4}

    def test_supercritical_points_match_eq4(self, result):
        for p in result.points:
            if p.q >= 0.6:
                assert p.giant_error() < 0.05
                assert not math.isnan(p.gossip_reliability)
                assert p.reliability_error() < 0.06

    def test_subcritical_point_vanishes(self, result):
        for p in result.points:
            if p.q <= 0.15:
                assert p.giant_empirical < 0.1

    def test_critical_ratio_estimates(self, result):
        for c in result.critical:
            assert c.error() < 0.05
            assert c.analytical == pytest.approx(0.25)

    def test_table_renders(self, result):
        table = result.to_table()
        assert "giant_emp" in table
        assert "qc_empirical" in table
        assert "4000" in table

    def test_check_shape_passes(self, result):
        assert result.check_shape() == []


class TestRegistry:
    def test_registered_and_runnable(self):
        spec = get_experiment("sec4_percolation_validation")
        assert not spec.analytical_only
        assert spec.paper_reference.startswith("Sec. 4")
        config = spec.config_factory()
        assert isinstance(config, Sec4Config)
        assert spec.runner is run_sec4

"""Tests for the churn-resilience experiment."""

from __future__ import annotations

import math

import pytest

from repro.experiments.churn_resilience import (
    ChurnResilienceConfig,
    ChurnResilienceResult,
    run_churn_resilience,
)
from repro.experiments.protocol_comparison import (
    ProtocolComparisonConfig,
    run_protocol_comparison,
)
from repro.experiments.registry import get_experiment


def small_config(**overrides) -> ChurnResilienceConfig:
    defaults = dict(
        n=250,
        qs=(0.9,),
        churn_rates=(0.0, 0.05, 0.15),
        repetitions=12,
        seed=42,
    )
    defaults.update(overrides)
    return ChurnResilienceConfig(**defaults)


class TestConfig:
    def test_roster_is_zoo_plus_peer_sampling_and_anchor(self):
        ids = [pid for pid, _ in ChurnResilienceConfig().protocols()]
        assert ids == [
            "flooding",
            "pbcast",
            "lpbcast",
            "rdg",
            "fixed-fanout",
            "random-fanout",
            "hyparview",
            "lpbcast-frozen",
        ]

    def test_frozen_anchor_matches_peer_view_budget(self):
        # The comparison isolates view *repair*: the frozen lpbcast anchor
        # must gossip over views of exactly the hyparview active-view size.
        protocols = dict(ChurnResilienceConfig().protocols())
        assert protocols["lpbcast-frozen"].view_size == protocols["hyparview"].active_size

    def test_churn_model_grid(self):
        config = ChurnResilienceConfig(initially_absent=0.2)
        assert config.churn_model(0.0).is_zero()
        model = config.churn_model(0.1)
        assert model.leave_rate == 0.1
        assert model.join_rate == 0.1
        assert model.initially_absent == 0.2

    def test_with_scale_shrinks(self):
        config = ChurnResilienceConfig().with_scale(0.1)
        assert config.n == 200
        assert config.repetitions == 8
        assert config.churn_rates == ChurnResilienceConfig().churn_rates

    def test_with_scale_identity_at_full(self):
        config = ChurnResilienceConfig()
        assert config.with_scale(1.0) is config

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            ChurnResilienceConfig(n=1)
        with pytest.raises(ValueError):
            ChurnResilienceConfig(qs=())
        with pytest.raises(ValueError):
            ChurnResilienceConfig(churn_rates=())
        with pytest.raises(ValueError):
            ChurnResilienceConfig(churn_rates=(1.0,))
        with pytest.raises(ValueError):
            ChurnResilienceConfig(initially_absent=-0.1)
        with pytest.raises(ValueError):
            ChurnResilienceConfig().with_scale(0.0)


class TestRun:
    @pytest.fixture(scope="class")
    def result(self) -> ChurnResilienceResult:
        return run_churn_resilience(small_config())

    def test_grid_is_complete(self, result):
        assert len(result.points) == 8 * 1 * 3
        assert len(result.protocols()) == 8
        for protocol in result.protocols():
            series = result.series_for(protocol, 0.9)
            assert [p.churn_rate for p in series] == [0.0, 0.05, 0.15]

    def test_measurements_are_sane(self, result):
        for point in result.points:
            assert 0.0 <= point.reliability <= 1.0
            assert 0.0 <= point.survivor_fraction <= 1.0
            assert 0.0 <= point.atomic_rate <= 1.0
            assert point.messages_per_member > 0.0
            assert point.repetitions == 12

    def test_zero_churn_keeps_everyone(self, result):
        for protocol in result.protocols():
            point = result.point(protocol, 0.9, 0.0)
            assert point.survivor_fraction == 1.0

    def test_churn_erodes_survivors(self, result):
        for protocol in result.protocols():
            series = result.series_for(protocol, 0.9)
            assert series[-1].survivor_fraction < series[0].survivor_fraction

    def test_peer_sampling_stats_only_for_hyparview(self, result):
        for point in result.points:
            if point.protocol == "hyparview" and point.churn_rate > 0.0:
                assert point.view_staleness > 0.0
                assert point.repairs > 0
                assert point.repair_latency > 0.0
            elif point.protocol != "hyparview":
                assert math.isnan(point.view_staleness)
                assert point.repairs == 0

    def test_to_table_renders(self, result):
        table = result.to_table()
        for protocol in result.protocols():
            assert protocol in table
        assert "churn" in table and "staleness" in table

    def test_check_shape_clean_on_small_run(self, result):
        assert result.check_shape() == []

    def test_point_lookup_raises_for_unknown(self, result):
        with pytest.raises(KeyError):
            result.point("hyparview", 0.9, 0.123)
        with pytest.raises(KeyError):
            result.point("unknown", 0.9, 0.05)

    def test_deterministic_for_seed(self):
        a = run_churn_resilience(small_config(churn_rates=(0.05,), repetitions=6))
        b = run_churn_resilience(small_config(churn_rates=(0.05,), repetitions=6))
        for pa, pb in zip(a.points, b.points, strict=True):
            for field, va in vars(pa).items():
                vb = getattr(pb, field)
                if isinstance(va, float) and math.isnan(va):
                    assert math.isnan(vb), f"{pa.protocol}.{field}"
                else:
                    assert va == vb, f"{pa.protocol}.{field}"

    def test_zero_churn_column_matches_protocol_comparison(self):
        # At churn rate 0 the sweep runs the exact static engines, so the
        # zoo's numbers must reproduce the static experiment's up to
        # Monte-Carlo error (different seed streams).
        churn = run_churn_resilience(small_config(churn_rates=(0.0,), repetitions=16))
        comparison = run_protocol_comparison(
            ProtocolComparisonConfig(n=250, qs=(0.9,), repetitions=16, seed=42)
        )
        for protocol, _ in ProtocolComparisonConfig().protocols():
            a = churn.point(protocol, 0.9, 0.0)
            b = comparison.point(protocol, 0.9)
            se = (a.reliability_std**2 / 16 + b.reliability_std**2 / 16) ** 0.5
            tolerance = max(4.0 * se, 0.02)
            gap = abs(a.reliability - b.reliability)
            assert gap < tolerance, (
                f"{protocol}: zero-churn gap {gap:.4f} exceeds {tolerance:.4f}"
            )


class TestRegistry:
    def test_registered(self):
        spec = get_experiment("churn_resilience")
        assert spec.analytical_only is False
        assert spec.config_factory is ChurnResilienceConfig
        config = spec.config_factory()
        assert hasattr(config, "with_scale")

"""Tests of the served-vs-live surface dimensioning experiment driver."""

from __future__ import annotations

import pytest

from repro.experiments.registry import get_experiment
from repro.experiments.surface_dimensioning import (
    SurfaceDimensioningConfig,
    run_surface_dimensioning,
)


def tiny_config(**overrides) -> SurfaceDimensioningConfig:
    defaults = dict(
        n=250,
        grid_qs=(0.8, 0.9, 1.0),
        grid_losses=(0.0, 0.1),
        grid_fanouts=(2.0, 4.0, 8.0, 14.0),
        targets=(0.85,),
        held_out_qs=(0.85,),
        held_out_losses=(0.05,),
        query_repeats=5,
        pareto_n=200,
        targeted_n=200,
        seed=777,
    )
    defaults.update(overrides)
    return SurfaceDimensioningConfig(**defaults)


class TestConfig:
    def test_defaults_validate(self):
        config = SurfaceDimensioningConfig()
        assert config.n == 1000
        assert config.repetitions == 96

    def test_registered(self):
        spec = get_experiment("surface_dimensioning")
        assert spec.config_factory is SurfaceDimensioningConfig
        assert not spec.analytical_only

    def test_wilson_floor_enforced(self):
        # 96 replicas cannot certify a 0.99 target at 95% confidence.
        with pytest.raises(ValueError, match="Wilson"):
            tiny_config(targets=(0.99,))

    def test_held_out_must_be_spanned(self):
        with pytest.raises(ValueError, match="outside the surface span"):
            tiny_config(held_out_qs=(0.5,))
        with pytest.raises(ValueError, match="outside the surface span"):
            tiny_config(held_out_losses=(0.5,))

    def test_with_scale_preserves_replica_budget(self):
        config = SurfaceDimensioningConfig()
        scaled = config.with_scale(0.1)
        assert scaled.n < config.n
        assert scaled.repetitions == config.repetitions
        assert len(scaled.held_out_qs) == 1
        assert config.with_scale(1.0) == config
        with pytest.raises(ValueError):
            config.with_scale(0.0)


class TestRunSurfaceDimensioning:
    @pytest.fixture(scope="class")
    def result(self):
        return run_surface_dimensioning(tiny_config())

    def test_all_points_served_from_surface(self, result):
        assert result.points
        for point in result.points:
            assert point.served_source == "surface"
            assert point.served_ci_low >= point.target_reliability

    def test_served_agrees_with_live(self, result):
        for point in result.points:
            assert point.agree

    def test_speedup_is_massive(self, result):
        assert result.median_speedup() >= 1e3

    def test_pareto_section(self, result):
        assert result.pareto_frontier
        assert result.pareto_best_cost is not None

    def test_targeted_matches_uniform(self, result):
        assert abs(result.targeted_fanout - result.uniform_fanout) <= 2.0

    def test_check_shape_clean(self, result):
        assert result.check_shape() == []

    def test_table_renders(self, result):
        table = result.to_table()
        assert "speedup" in table
        assert "Pareto frontier" in table
        assert "targeted-crash" in table

    def test_deterministic(self, result):
        again = run_surface_dimensioning(tiny_config())
        assert [p.served_fanout for p in again.points] == [
            p.served_fanout for p in result.points
        ]
        assert [p.live_fanout for p in again.points] == [
            p.live_fanout for p in result.points
        ]
        assert again.targeted_fanout == result.targeted_fanout

"""Tests for the recovery-resilience experiment."""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments.recovery_resilience import (
    PURE_PUSH_PROTOCOLS,
    RECOVERY_PROTOCOLS,
    RecoveryResilienceConfig,
    RecoveryResilienceResult,
    run_recovery_resilience,
)
from repro.experiments.registry import get_experiment


@pytest.fixture(scope="module")
def result() -> RecoveryResilienceResult:
    # The default config at smoke scale (n=200, 24 repetitions) — the same
    # workload the CI smoke step runs, shared across the assertions below.
    return run_recovery_resilience(RecoveryResilienceConfig().with_scale(0.1))


class TestConfig:
    def test_roster_is_zoo_plus_recovery(self):
        ids = [pid for pid, _ in RecoveryResilienceConfig().protocols()]
        assert ids == [
            "flooding",
            "pbcast",
            "lpbcast",
            "rdg",
            "fixed-fanout",
            "random-fanout",
            "lazy-push",
            "anti-entropy",
        ]
        assert set(RECOVERY_PROTOCOLS) <= set(ids)
        assert set(PURE_PUSH_PROTOCOLS) <= set(ids)

    def test_channel_columns(self):
        config = RecoveryResilienceConfig()
        channels = config.channels()
        assert channels[:-1] == tuple(("iid", p) for p in config.loss_probabilities)
        assert channels[-1][0] == "burst"
        assert config.burst_mean_loss() == pytest.approx(0.2375)

    def test_with_scale_shrinks_with_floors(self):
        config = RecoveryResilienceConfig().with_scale(0.1)
        assert config.n == 200
        assert config.repetitions == 24
        assert config.loss_probabilities == RecoveryResilienceConfig().loss_probabilities

    def test_with_scale_identity_at_full(self):
        config = RecoveryResilienceConfig()
        assert config.with_scale(1.0) is config

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            RecoveryResilienceConfig(n=1)
        with pytest.raises(ValueError):
            RecoveryResilienceConfig(loss_probabilities=())
        with pytest.raises(ValueError):
            RecoveryResilienceConfig(loss_probabilities=(1.2,))
        with pytest.raises(ValueError):
            RecoveryResilienceConfig(churn_rates=(1.0,))
        with pytest.raises(ValueError):
            RecoveryResilienceConfig(burst_loss_bad=-0.1)
        with pytest.raises(ValueError):
            RecoveryResilienceConfig(targeted_fraction=1.0)
        with pytest.raises(ValueError):
            RecoveryResilienceConfig().with_scale(0.0)


class TestRun:
    def test_grid_is_complete(self, result):
        config = result.config
        n_channels = len(config.channels())
        per_protocol = n_channels * len(config.churn_rates) + 1  # + targeted row
        assert len(result.points) == 8 * per_protocol
        targeted = [p for p in result.points if p.failure == "targeted"]
        assert len(targeted) == 8
        top_loss = max(config.loss_probabilities)
        for p in targeted:
            assert p.channel == "iid"
            assert p.loss == top_loss
            assert p.churn_rate == 0.0

    def test_shape_checks_pass_at_smoke_scale(self, result):
        assert result.check_shape() == []

    def test_accounting_split_is_consistent(self, result):
        for p in result.points:
            assert p.payload_per_member >= 0.0
            assert p.control_per_member >= 0.0
            assert p.payload_per_member + p.control_per_member == pytest.approx(
                p.messages_per_member
            )
        # Pure push never sends control traffic; recovery always does.
        for p in result.points:
            if p.protocol in ("flooding", "fixed-fanout", "random-fanout", "lpbcast"):
                assert p.control_per_member == 0.0
            if p.protocol in RECOVERY_PROTOCOLS:
                assert p.control_per_member > 0.0

    def test_headline_at_top_loss(self, result):
        # The claim the experiment exists for, asserted directly: at the
        # highest i.i.d. loss column (churn-free), both recovery protocols
        # beat every pure-push protocol's payload cost without losing
        # reliability.
        top_loss = max(result.config.loss_probabilities)
        for recovery_id in RECOVERY_PROTOCOLS:
            recovery = result.point(recovery_id, "iid", top_loss, 0.0)
            assert recovery.reliability >= 0.95
            for push_id in PURE_PUSH_PROTOCOLS:
                push = result.point(push_id, "iid", top_loss, 0.0)
                assert recovery.reliability >= push.reliability - 0.03
                assert recovery.payload_per_member <= push.payload_per_member * 1.05

    def test_point_and_series_accessors(self, result):
        config = result.config
        series = result.series_for("lazy-push", "iid", 0.0)
        assert [p.churn_rate for p in series] == sorted(config.churn_rates)
        with pytest.raises(KeyError):
            result.point("lazy-push", "iid", 0.123, 0.0)

    def test_to_table_renders_grid(self, result):
        table = result.to_table()
        for token in ("lazy-push", "anti-entropy", "burst", "targeted", "control"):
            assert token in table

    def test_survivors_reflect_churn_and_crashes(self, result):
        for p in result.points:
            assert 0.0 < p.survivor_fraction <= 1.0
            if p.churn_rate == 0.0 and p.failure == "uniform":
                assert p.survivor_fraction == pytest.approx(1.0)
            if p.churn_rate > 0.0:
                assert p.survivor_fraction < 1.0


class TestDeterminismAndRegistry:
    def test_same_seed_reproduces(self):
        config = RecoveryResilienceConfig(
            n=120,
            loss_probabilities=(0.0, 0.3),
            churn_rates=(0.0,),
            rounds=8,
            repetitions=6,
            seed=99,
        )
        a = run_recovery_resilience(config)
        b = run_recovery_resilience(config)
        for pa, pb in zip(a.points, b.points, strict=True):
            assert pa == pb

    def test_parallel_matches_serial(self):
        # Different chunking means different per-chunk seeds, so the two
        # runs agree statistically, not bit-for-bit; loss-free channels keep
        # every cell far from the bimodal regime where 16 repetitions of a
        # subcritical protocol make a mean comparison meaningless.
        kwargs = dict(
            n=120,
            loss_probabilities=(0.0,),
            burst_loss_good=0.0,
            burst_loss_bad=0.0,
            churn_rates=(0.0, 0.05),
            rounds=8,
            repetitions=16,
            seed=7,
        )
        serial = run_recovery_resilience(RecoveryResilienceConfig(**kwargs))
        parallel = run_recovery_resilience(
            RecoveryResilienceConfig(**kwargs, processes=2)
        )
        for ps, pp in zip(serial.points, parallel.points, strict=True):
            assert (ps.protocol, ps.channel, ps.churn_rate, ps.failure) == (
                pp.protocol,
                pp.channel,
                pp.churn_rate,
                pp.failure,
            )
            assert np.isclose(ps.reliability, pp.reliability, atol=0.15)

    def test_registry_entry(self):
        spec = get_experiment("recovery_resilience")
        assert spec.config_factory is RecoveryResilienceConfig
        assert spec.runner is run_recovery_resilience
        assert not spec.analytical_only

"""Tests for the analytical experiments (Figs. 2 and 3)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments.fig2_mean_fanout import Fig2Config, run_fig2
from repro.experiments.fig3_min_executions import Fig3Config, run_fig3


class TestFig2:
    def test_default_run_has_paper_shape(self):
        result = run_fig2()
        assert result.check_shape() == []

    def test_series_structure(self):
        config = Fig2Config(points=10)
        result = run_fig2(config)
        assert result.reliabilities.shape == (10,)
        assert set(result.fanouts_by_q) == set(config.qs)
        for curve in result.fanouts_by_q.values():
            assert curve.shape == (10,)
            assert np.all(curve > 0)

    def test_fanout_range_matches_paper(self):
        # The paper's Fig. 2 y-axis reaches ~45-50 at S=0.9999 for q=0.2.
        result = run_fig2()
        q02 = result.fanouts_by_q[0.2]
        assert q02[-1] > 40.0
        q10 = result.fanouts_by_q[1.0]
        assert q10[-1] < 10.0

    def test_to_table_renders_all_columns(self):
        result = run_fig2(Fig2Config(points=5))
        table = result.to_table()
        assert "z(q=0.2)" in table.splitlines()[0]
        assert len(table.splitlines()) == 2 + 5

    def test_custom_q_grid(self):
        config = Fig2Config(qs=(0.5, 1.0), points=8)
        result = run_fig2(config)
        assert set(result.fanouts_by_q) == {0.5, 1.0}
        assert result.check_shape() == []


class TestFig3:
    def test_default_run_has_paper_shape(self):
        result = run_fig3()
        assert result.check_shape() == []

    def test_endpoints_match_equation_6(self):
        result = run_fig3(Fig3Config(points=5))
        # At the lowest reliability in the grid many executions are needed;
        # at the highest only 1-2 are.
        assert result.min_executions[0] >= result.min_executions[-1]
        assert result.min_executions[-1] <= 2

    def test_paper_anchor_values(self):
        result = run_fig3(Fig3Config(reliability_min=0.3, reliability_max=0.967, points=2))
        # S = 0.3 needs ~20 executions for p_s = 0.999; S = 0.967 needs 3.
        assert result.min_executions[0] == 20
        assert result.min_executions[1] == 3

    def test_to_table(self):
        result = run_fig3(Fig3Config(points=4))
        assert len(result.to_table().splitlines()) == 2 + 4

    def test_invalid_requirement(self):
        with pytest.raises(ValueError):
            Fig3Config(required_success=1.0)

"""Tests for the success-of-gossiping figures (Figs. 6-7 machinery)."""

from __future__ import annotations

import pytest

from repro.core.poisson_case import poisson_reliability
from repro.experiments.fig6_success_f4_q09 import Fig6Config, run_fig6
from repro.experiments.fig7_success_f6_q06 import Fig7Config
from repro.experiments.success_figures import SuccessFigureConfig, run_success_figure


class TestConfig:
    def test_paper_defaults(self):
        fig6 = Fig6Config()
        fig7 = Fig7Config()
        assert fig6.n == fig7.n == 2000
        assert fig6.executions == fig7.executions == 20
        assert fig6.simulations == fig7.simulations == 100
        assert (fig6.mean_fanout, fig6.q) == (4.0, 0.9)
        assert (fig7.mean_fanout, fig7.q) == (6.0, 0.6)

    def test_equal_product_means_equal_analytical_reliability(self):
        fig6 = Fig6Config()
        fig7 = Fig7Config()
        assert fig6.mean_fanout * fig6.q == pytest.approx(fig7.mean_fanout * fig7.q)
        assert poisson_reliability(fig6.mean_fanout, fig6.q) == pytest.approx(
            poisson_reliability(fig7.mean_fanout, fig7.q)
        )

    def test_scaled_copy(self):
        small = Fig6Config().scaled(n=200, simulations=10)
        assert small.n == 200
        assert small.simulations == 10
        assert small.mean_fanout == 4.0 and small.q == 0.9

    def test_invalid_config(self):
        with pytest.raises(ValueError):
            SuccessFigureConfig(n=1)
        with pytest.raises(ValueError):
            SuccessFigureConfig(required_success=1.0)
        with pytest.raises(ValueError):
            SuccessFigureConfig(q=1.2)


class TestScaledRun:
    @pytest.fixture(scope="class")
    def small_result(self):
        return run_success_figure(SuccessFigureConfig(n=500, simulations=40, seed=5))

    def test_counts_structure(self, small_result):
        assert small_result.counts.counts.shape == (40,)
        assert small_result.counts.executions == 20
        assert small_result.counts.empirical_pmf.sum() == pytest.approx(1.0)

    def test_qualitative_shape(self, small_result):
        assert small_result.check_shape() == []

    def test_required_executions_matches_equation_6(self, small_result):
        from repro.core.success import min_executions

        expected = min_executions(0.999, small_result.counts.analytical_reliability)
        assert small_result.required_executions == expected
        assert small_result.required_executions <= 3

    def test_fit_close_to_analytical(self, small_result):
        assert small_result.fit.absolute_difference < 0.06

    def test_table_rendering(self, small_result):
        table = small_result.to_table()
        assert len(table.splitlines()) == 2 + 21

    def test_fig6_runner_scaled(self):
        result = run_fig6(Fig6Config().scaled(n=300, simulations=15))  # type: ignore[arg-type]
        assert result.config.n == 300
        assert result.counts.simulations == 15

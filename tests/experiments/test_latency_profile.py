"""Tests of the latency-profile experiment (delivery-time percentiles)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.tables import latency_to_table
from repro.experiments.latency_profile import (
    LatencyPoint,
    LatencyProfileConfig,
    LatencyProfileResult,
    run_latency_profile,
)
from repro.experiments.registry import get_experiment


def tiny_config(**overrides):
    params = dict(
        n=120,
        q=0.9,
        latencies=(("constant", 1.0), ("exponential", 1.0)),
        loss_probabilities=(0.0, 0.2),
        rounds=8,
        repetitions=8,
        mean_fanout=4,
        seed=424242,
    )
    params.update(overrides)
    return LatencyProfileConfig(**params)


@pytest.fixture(scope="module")
def result():
    return run_latency_profile(tiny_config())


class TestConfigValidation:
    def test_defaults_are_valid_and_paper_scaled(self):
        config = LatencyProfileConfig()
        assert config.n == 1000
        assert len(config.protocols()) == 9
        assert [spec[0] for spec in config.latencies] == [
            "constant",
            "uniform",
            "exponential",
        ]

    def test_rejects_unknown_latency_kind(self):
        with pytest.raises(ValueError):
            tiny_config(latencies=(("pareto", 1.0),))

    def test_rejects_empty_axes(self):
        with pytest.raises(ValueError):
            tiny_config(latencies=())
        with pytest.raises(ValueError):
            tiny_config(loss_probabilities=())
        with pytest.raises(ValueError):
            tiny_config(percentiles=())

    def test_rejects_bad_scalars(self):
        with pytest.raises(ValueError):
            tiny_config(round_period=0.0)
        with pytest.raises(ValueError):
            tiny_config(percentiles=(0.0,))
        with pytest.raises(ValueError):
            tiny_config(percentiles=(100.0,))
        with pytest.raises(ValueError):
            tiny_config(loss_probabilities=(1.5,))

    def test_with_scale_clamps_floors(self):
        config = LatencyProfileConfig()
        scaled = config.with_scale(0.1)
        assert scaled.n == 200
        assert scaled.repetitions == 8
        assert config.with_scale(1.0) is config
        with pytest.raises(ValueError):
            config.with_scale(0.0)


class TestResultSurface:
    def test_grid_is_complete(self, result):
        config = result.config
        expected = len(config.protocols()) * len(config.latencies) * len(
            config.loss_probabilities
        )
        assert len(result.points) == expected == 9 * 2 * 2
        assert len(result.protocols()) == 9

    def test_point_lookup(self, result):
        cell = result.point("flooding", "constant(1)", 0.0)
        assert isinstance(cell, LatencyPoint)
        assert cell.reliability > 0.8
        with pytest.raises(KeyError):
            result.point("flooding", "constant(1)", 0.5)

    def test_percentile_accessor(self, result):
        cell = result.point("fixed-fanout", "exponential(1)", 0.0)
        assert cell.percentile(50.0) <= cell.percentile(99.0) <= cell.percentile(99.9)
        with pytest.raises(KeyError):
            cell.percentile(12.5)

    def test_constant_column_is_round_aligned(self, result):
        # constant(1.0) at round_period 1.0: the plane's fast path is the
        # round clock, so every raw delivery time sits on the round grid.
        for p in result.points:
            if p.latency.startswith("constant"):
                assert p.round_aligned is True
            else:
                assert p.round_aligned is None

    def test_to_table_renders_grid(self, result):
        table = result.to_table()
        for fragment in ("protocol", "p50", "p99", "p999", "flooding", "exponential(1)"):
            assert fragment in table

    def test_check_shape_is_clean(self, result):
        assert result.check_shape() == []

    def test_check_shape_flags_inverted_percentiles(self, result):
        bad_point = LatencyPoint(
            protocol="flooding",
            latency="constant(1)",
            loss_probability=0.0,
            repetitions=8,
            reliability=1.0,
            reliability_std=0.0,
            messages_per_member=4.0,
            delivery_percentiles=(("p50", 5.0), ("p99", 2.0), ("p999", 1.0)),
        )
        broken = LatencyProfileResult(config=result.config, points=(bad_point,))
        assert any("not ordered" in problem for problem in broken.check_shape())

    def test_check_shape_flags_off_grid_constant_times(self, result):
        bad_point = LatencyPoint(
            protocol="flooding",
            latency="constant(1)",
            loss_probability=0.0,
            repetitions=8,
            reliability=1.0,
            reliability_std=0.0,
            messages_per_member=4.0,
            delivery_percentiles=(("p50", 1.0), ("p99", 2.0), ("p999", 3.0)),
            round_aligned=False,
        )
        broken = LatencyProfileResult(config=result.config, points=(bad_point,))
        assert any("round grid" in problem for problem in broken.check_shape())

    def test_deterministic_given_seed(self, result):
        rerun = run_latency_profile(tiny_config())
        assert rerun.points == result.points

    def test_latency_to_table_helper(self, result):
        table = latency_to_table(result.points)
        assert "msgs/member" in table
        assert "p999" in table


class TestParallelExecution:
    def test_network_model_crosses_the_process_pool(self):
        # The timed NetworkModel is pickled into the workers whole; this is
        # the regression pin for the frozen-dataclass samplers.
        config = tiny_config(
            n=60,
            latencies=(("exponential", 1.0),),
            loss_probabilities=(0.1,),
            repetitions=10,
            processes=2,
        )
        result = run_latency_profile(config)
        assert len(result.points) == 9
        assert all(np.isfinite(p.percentile(50.0)) for p in result.points)


class TestRegistry:
    def test_registry_entry(self):
        spec = get_experiment("latency_profile")
        assert spec.config_factory is LatencyProfileConfig
        assert spec.runner is run_latency_profile
        assert not spec.analytical_only

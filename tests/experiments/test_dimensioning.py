"""Tests of the auto-dimensioning experiment driver."""

from __future__ import annotations

import pytest

from repro.experiments.dimensioning import (
    ROUND_BASED_PROTOCOLS,
    DimensioningConfig,
    run_dimensioning,
)
from repro.experiments.registry import get_experiment


def tiny_config(**overrides) -> DimensioningConfig:
    """A grid small enough for unit tests but large enough to have shape."""
    defaults = dict(
        n=300,
        targets=(0.9,),
        qs=(0.9, 1.0),
        losses=(0.0, 0.2),
        protocols=("flooding", "pbcast", "fixed-fanout"),
        rounds=6,
        seed=4242,
    )
    defaults.update(overrides)
    return DimensioningConfig(**defaults)


class TestConfig:
    def test_defaults_validate(self):
        config = DimensioningConfig()
        assert config.n == 1000
        assert len(config.protocols) == 6

    def test_with_scale_shrinks_n_not_budgets(self):
        config = DimensioningConfig()
        scaled = config.with_scale(0.1)
        assert scaled.n < config.n
        # The replica budgets encode the statistical contract: untouched.
        assert scaled.initial_replicas == config.initial_replicas
        assert scaled.max_replicas == config.max_replicas
        # Small scales trim the grid to corner cells.
        assert len(scaled.qs) <= len(config.qs)
        assert config.with_scale(1.0) == config

    def test_invalid_configs_rejected(self):
        with pytest.raises(ValueError):
            DimensioningConfig(targets=())
        with pytest.raises(ValueError):
            DimensioningConfig(targets=(1.0,))
        with pytest.raises(ValueError):
            DimensioningConfig(protocols=("carrier-pigeon",))
        with pytest.raises(ValueError):
            DimensioningConfig(losses=(1.0,))
        with pytest.raises(ValueError):
            DimensioningConfig().with_scale(0.0)


class TestRunDimensioning:
    @pytest.fixture(scope="class")
    def result(self):
        return run_dimensioning(tiny_config())

    def test_grid_coverage(self, result):
        config = result.config
        expected = (
            len(config.protocols) * len(config.targets) * len(config.qs) * len(config.losses)
        )
        assert len(result.points) == expected
        assert result.protocols() == list(config.protocols)

    def test_cells_certified(self, result):
        for p in result.points:
            if p.feasible:
                assert p.certified
                assert p.ci_low >= p.target_reliability, (p.protocol, p.q, p.loss)
                assert 0.0 <= p.ci_low <= p.achieved_reliability <= 1.0 + 1e-12

    def test_rounds_only_for_round_based(self, result):
        for p in result.points:
            if p.protocol in ROUND_BASED_PROTOCOLS:
                assert p.rounds is not None and 1 <= p.rounds <= result.config.rounds
            else:
                assert p.rounds is None

    def test_integer_fanouts(self, result):
        for p in result.points:
            assert p.fanout == int(p.fanout)
            assert 1 <= p.fanout <= result.config.max_fanout

    def test_check_shape_clean(self, result):
        assert result.check_shape() == []

    def test_point_lookup(self, result):
        p = result.point("flooding", 0.9, 0.9, 0.0)
        assert p.protocol == "flooding"
        with pytest.raises(KeyError):
            result.point("flooding", 0.42, 0.9, 0.0)

    def test_table_rendering(self, result):
        table = result.to_table()
        header = table.splitlines()[0]
        for column in ("protocol", "target", "loss", "fanout", "rounds", "replicas"):
            assert column in header
        assert "flooding" in table

    def test_total_replicas_positive(self, result):
        assert result.total_replicas() >= len(result.points) * 2

    def test_deterministic_at_fixed_seed(self, result):
        again = run_dimensioning(tiny_config())
        assert again.points == result.points

    def test_processes_do_not_change_numbers(self, result):
        parallel = run_dimensioning(tiny_config(processes=2))
        assert parallel.points == result.points


class TestRegistryIntegration:
    def test_registered(self):
        spec = get_experiment("dimensioning")
        assert spec.experiment_id == "dimensioning"
        assert not spec.analytical_only
        assert spec.config_factory is DimensioningConfig

"""Tests for the simulation-backed reliability figures (Figs. 4-5 machinery).

The paper-scale configurations (n=1000/5000, 20 repetitions, 15 fanouts) are
exercised by the benchmark harness; here the shared machinery is validated on
scaled-down configurations that keep the qualitative shape.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments.fig4_reliability_1000 import Fig4Config, run_fig4
from repro.experiments.fig5_reliability_5000 import Fig5Config
from repro.experiments.reliability_figures import (
    ReliabilityFigureConfig,
    paper_fanout_grid,
    run_reliability_figure,
)


class TestConfig:
    def test_paper_fanout_grid(self):
        grid = paper_fanout_grid()
        assert grid[0] == pytest.approx(1.1)
        assert grid[-1] == pytest.approx(6.7)
        assert len(grid) == 15
        assert np.allclose(np.diff(grid), 0.4)

    def test_default_figure_configs_match_paper(self):
        fig4 = Fig4Config()
        fig5 = Fig5Config()
        assert fig4.n == 1000
        assert fig5.n == 5000
        assert fig4.repetitions == 20
        assert fig4.qs_panel_a == (0.1, 0.3, 0.5, 1.0)
        assert fig4.qs_panel_b == (0.4, 0.6, 0.8, 1.0)

    def test_all_qs_union(self):
        config = Fig4Config()
        assert config.all_qs() == (0.1, 0.3, 0.4, 0.5, 0.6, 0.8, 1.0)

    def test_scaled_copy(self):
        small = Fig4Config().scaled(n=200, repetitions=3)
        assert small.n == 200
        assert small.repetitions == 3
        assert small.fanouts == Fig4Config().fanouts

    def test_invalid_config(self):
        with pytest.raises(ValueError):
            ReliabilityFigureConfig(n=1)
        with pytest.raises(ValueError):
            ReliabilityFigureConfig(n=100, repetitions=0)


class TestScaledRun:
    @pytest.fixture(scope="class")
    def small_result(self):
        config = ReliabilityFigureConfig(
            n=600,
            fanouts=(1.1, 2.3, 3.5, 4.7, 5.9),
            qs_panel_a=(0.3, 1.0),
            qs_panel_b=(0.6, 1.0),
            repetitions=8,
            seed=99,
        )
        return run_reliability_figure(config)

    def test_sweep_covers_grid(self, small_result):
        assert len(small_result.sweep.points) == 5 * 3  # 5 fanouts x {0.3, 0.6, 1.0}

    def test_qualitative_shape(self, small_result):
        assert small_result.check_shape(tolerance=0.15) == []

    def test_series_accessor(self, small_result):
        fanouts, simulated, analytical = small_result.series(1.0)
        assert fanouts.shape == simulated.shape == analytical.shape == (5,)
        assert np.all((simulated >= 0) & (simulated <= 1))

    def test_tables_render(self, small_result):
        assert len(small_result.to_table().splitlines()) == 2 + 15
        assert "mae" in small_result.comparison_table().splitlines()[0]

    def test_simulation_tracks_analysis(self, small_result):
        for comparison in small_result.comparisons.values():
            assert comparison.mean_absolute_error < 0.15

    def test_fig4_runner_accepts_scaled_config(self):
        config = Fig4Config().scaled(n=300, repetitions=4)
        result = run_fig4(config)  # type: ignore[arg-type]
        assert result.config.n == 300
        assert len(result.sweep.points) == len(config.fanouts) * len(config.all_qs())

"""Fixture-based tests for every repro-lint rule plus the engine and CLI.

Each rule gets at least one *failing* fixture (a small source snippet that
must trigger the rule) and one *clean* fixture (the compliant shape of the
same code).  The live-tree test at the bottom pins the acceptance criterion:
``python -m tools.lint src benchmarks`` exits 0 on the repository itself.
"""

from __future__ import annotations

import shutil
import subprocess
import sys
import textwrap
from pathlib import Path

import pytest

from tools.lint.engine import Violation, lint_paths, load_file_context
from tools.lint.rules import ALL_RULES

REPO_ROOT = Path(__file__).resolve().parents[2]


def lint_source(
    tmp_path: Path,
    source: str,
    *,
    select: list[str],
    filename: str = "mod.py",
) -> list[Violation]:
    """Write ``source`` to a scratch file and run the selected rules on it."""
    target = tmp_path / filename
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(textwrap.dedent(source), encoding="utf-8")
    return lint_paths([target], select=select)


def codes(violations: list[Violation]) -> set[str]:
    return {violation.code for violation in violations}


# ---------------------------------------------------------------------------
# RL001 — no global-RNG calls
# ---------------------------------------------------------------------------


class TestRL001GlobalRng:
    def test_numpy_legacy_global_api_flagged(self, tmp_path: Path) -> None:
        violations = lint_source(
            tmp_path,
            """
            import numpy as np

            def sample(n):
                return np.random.rand(n)
            """,
            select=["RL001"],
        )
        assert codes(violations) == {"RL001"}
        assert "np.random.rand" in violations[0].message

    def test_stdlib_random_module_flagged(self, tmp_path: Path) -> None:
        violations = lint_source(
            tmp_path,
            """
            import random

            def jitter():
                return random.random()
            """,
            select=["RL001"],
        )
        assert codes(violations) == {"RL001"}

    def test_from_random_import_flagged(self, tmp_path: Path) -> None:
        violations = lint_source(
            tmp_path,
            """
            from random import shuffle

            def mix(items):
                shuffle(items)
                return items
            """,
            select=["RL001"],
        )
        assert codes(violations) == {"RL001"}

    def test_seedless_default_rng_flagged(self, tmp_path: Path) -> None:
        violations = lint_source(
            tmp_path,
            """
            import numpy as np

            def fresh():
                return np.random.default_rng()
            """,
            select=["RL001"],
        )
        assert codes(violations) == {"RL001"}
        assert "fresh OS entropy" in violations[0].message

    def test_default_rng_none_flagged(self, tmp_path: Path) -> None:
        violations = lint_source(
            tmp_path,
            """
            import numpy as np

            def fresh():
                return np.random.default_rng(None)
            """,
            select=["RL001"],
        )
        assert codes(violations) == {"RL001"}

    def test_wall_clock_seed_flagged(self, tmp_path: Path) -> None:
        violations = lint_source(
            tmp_path,
            """
            import time
            import numpy as np

            def fresh():
                return np.random.default_rng(time.time())
            """,
            select=["RL001"],
        )
        assert codes(violations) == {"RL001"}
        assert "wall clock" in violations[0].message

    def test_explicit_seed_and_generator_clean(self, tmp_path: Path) -> None:
        violations = lint_source(
            tmp_path,
            """
            import numpy as np

            def sample(seed, n):
                rng = np.random.default_rng(seed)
                return rng.random(n)

            def fixed():
                return np.random.default_rng(42)

            def from_sequence(ss):
                return np.random.default_rng(np.random.SeedSequence(7))
            """,
            select=["RL001"],
        )
        assert violations == []


# ---------------------------------------------------------------------------
# RL002 — hook-signature conformance
# ---------------------------------------------------------------------------


class TestRL002HookSignatures:
    def test_scalar_hook_without_network_flagged(self, tmp_path: Path) -> None:
        violations = lint_source(
            tmp_path,
            """
            class BadProtocol:
                def _disseminate(self, n, alive, source, rng):
                    return alive, 0, 0
            """,
            select=["RL002"],
        )
        assert codes(violations) == {"RL002"}
        assert "network" in violations[0].message

    def test_scalar_hook_network_without_default_flagged(self, tmp_path: Path) -> None:
        violations = lint_source(
            tmp_path,
            """
            class BadProtocol:
                def _disseminate(self, n, alive, source, rng, network):
                    return alive, 0, 0
            """,
            select=["RL002"],
        )
        assert codes(violations) == {"RL002"}
        assert "default" in violations[0].message

    def test_batch_hook_missing_latency_flagged(self, tmp_path: Path) -> None:
        violations = lint_source(
            tmp_path,
            """
            class BadProtocol:
                def _disseminate_batch(self, n, alive, source, rng, network=None, churn=None):
                    return alive, 0, 0, 0
            """,
            select=["RL002"],
        )
        assert codes(violations) == {"RL002"}
        assert "latency" in violations[0].message

    def test_batch_hook_plane_without_default_flagged(self, tmp_path: Path) -> None:
        violations = lint_source(
            tmp_path,
            """
            class BadProtocol:
                def _disseminate_batch(
                    self, n, alive, source, rng, network, churn=None, latency=None
                ):
                    return alive, 0, 0, 0
            """,
            select=["RL002"],
        )
        assert codes(violations) == {"RL002"}

    def test_full_signature_clean(self, tmp_path: Path) -> None:
        violations = lint_source(
            tmp_path,
            """
            class GoodProtocol:
                def _disseminate(self, n, alive, source, rng, network=None):
                    return alive, 0, 0

                def _disseminate_batch(
                    self, n, alive, source, rng, network=None, churn=None, latency=None
                ):
                    return alive, 0, 0, 0
            """,
            select=["RL002"],
        )
        assert violations == []

    def test_kwargs_catchall_clean(self, tmp_path: Path) -> None:
        violations = lint_source(
            tmp_path,
            """
            class ForwardingProtocol:
                def _disseminate(self, n, alive, source, rng, **kwargs):
                    return alive, 0, 0

                def _disseminate_batch(self, n, alive, source, rng, **kwargs):
                    return alive, 0, 0, 0
            """,
            select=["RL002"],
        )
        assert violations == []

    def test_pragma_opt_out(self, tmp_path: Path) -> None:
        violations = lint_source(
            tmp_path,
            """
            class OptedOut:
                def _disseminate_batch(  # repro-lint: disable=RL002
                    self, n, alive, source, rng, network=None, churn=None
                ):
                    return alive, 0, 0, 0
            """,
            select=["RL002"],
        )
        assert violations == []


# ---------------------------------------------------------------------------
# RL003 — frozen, picklable model classes
# ---------------------------------------------------------------------------


class TestRL003FrozenSamplers:
    def test_plain_churn_model_subclass_flagged(self, tmp_path: Path) -> None:
        violations = lint_source(
            tmp_path,
            """
            from repro.simulation.churn import ChurnModel

            class MutableChurn(ChurnModel):
                def draw_batch(self, n, repetitions, rng, *, source=0):
                    return None
            """,
            select=["RL003"],
        )
        assert codes(violations) == {"RL003"}
        assert "frozen=True" in violations[0].message

    def test_unfrozen_dataclass_failure_model_flagged(self, tmp_path: Path) -> None:
        violations = lint_source(
            tmp_path,
            """
            from dataclasses import dataclass
            from repro.simulation.failures import FailureModel

            @dataclass
            class MutableModel(FailureModel):
                q: float = 0.9

                def draw(self, n, rng, *, source=0):
                    return None
            """,
            select=["RL003"],
        )
        assert codes(violations) == {"RL003"}

    def test_latency_sampler_duck_type_flagged(self, tmp_path: Path) -> None:
        violations = lint_source(
            tmp_path,
            """
            class ClosureSampler:
                def __call__(self, rng):
                    return 1.0

                def draw(self, rng, count):
                    return [1.0] * count
            """,
            select=["RL003"],
        )
        assert codes(violations) == {"RL003"}

    def test_generator_field_flagged(self, tmp_path: Path) -> None:
        violations = lint_source(
            tmp_path,
            """
            from dataclasses import dataclass
            import numpy as np
            from repro.simulation.churn import ChurnModel

            @dataclass(frozen=True)
            class StreamOwningChurn(ChurnModel):
                rng: np.random.Generator

                def draw_batch(self, n, repetitions, rng, *, source=0):
                    return None
            """,
            select=["RL003"],
        )
        assert codes(violations) == {"RL003"}
        assert "Generator" in violations[0].message

    def test_lambda_default_flagged(self, tmp_path: Path) -> None:
        violations = lint_source(
            tmp_path,
            """
            from dataclasses import dataclass, field
            from repro.simulation.churn import ChurnModel

            @dataclass(frozen=True)
            class LambdaChurn(ChurnModel):
                hazard: object = field(default_factory=lambda: 0.1)

                def draw_batch(self, n, repetitions, rng, *, source=0):
                    return None
            """,
            select=["RL003"],
        )
        assert codes(violations) == {"RL003"}
        assert "lambda" in violations[0].message

    def test_frozen_dataclass_clean(self, tmp_path: Path) -> None:
        violations = lint_source(
            tmp_path,
            """
            from dataclasses import dataclass
            from repro.simulation.failures import FailureModel

            @dataclass(frozen=True)
            class GoodModel(FailureModel):
                q: float = 0.9

                def draw(self, n, rng, *, source=0):
                    return None
            """,
            select=["RL003"],
        )
        assert violations == []

    def test_abstract_base_exempt(self, tmp_path: Path) -> None:
        violations = lint_source(
            tmp_path,
            """
            from abc import ABC, abstractmethod

            class FailureModel(ABC):
                @abstractmethod
                def draw(self, n, rng, *, source=0):
                    ...
            """,
            select=["RL003"],
        )
        assert violations == []


# ---------------------------------------------------------------------------
# RL004 — zero-draw discipline
# ---------------------------------------------------------------------------


class TestRL004ZeroDraw:
    def test_unguarded_draw_flagged(self, tmp_path: Path) -> None:
        violations = lint_source(
            tmp_path,
            """
            class Plane:
                # repro: zero-draw(loss_probability)
                def draw_loss(self, rng, count):
                    return rng.random(count) < self.loss_probability
            """,
            select=["RL004"],
        )
        assert codes(violations) == {"RL004"}
        assert "loss_probability" in violations[0].message

    def test_bare_marker_with_any_draw_flagged(self, tmp_path: Path) -> None:
        violations = lint_source(
            tmp_path,
            """
            class ConstantSampler:
                # repro: zero-draw
                def draw(self, rng, count):
                    return rng.normal(size=count)
            """,
            select=["RL004"],
        )
        assert codes(violations) == {"RL004"}
        assert "no randomness at all" in violations[0].message

    def test_if_guarded_draw_clean(self, tmp_path: Path) -> None:
        violations = lint_source(
            tmp_path,
            """
            import numpy as np

            class Plane:
                # repro: zero-draw(loss_probability)
                def draw_loss(self, rng, count):
                    lost = np.zeros(count, dtype=bool)
                    if self.loss_probability > 0.0:
                        lost = rng.random(count) < self.loss_probability
                    return lost
            """,
            select=["RL004"],
        )
        assert violations == []

    def test_early_return_guard_clean(self, tmp_path: Path) -> None:
        violations = lint_source(
            tmp_path,
            """
            import numpy as np

            class Plane:
                # repro: zero-draw(rate)
                def draw(self, rng, count):
                    if self.rate == 0.0:
                        return np.zeros(count)
                    return rng.geometric(self.rate, size=count)
            """,
            select=["RL004"],
        )
        assert violations == []

    def test_unmarked_function_draws_freely(self, tmp_path: Path) -> None:
        violations = lint_source(
            tmp_path,
            """
            def sample(rng, n):
                return rng.random(n)
            """,
            select=["RL004"],
        )
        assert violations == []


# ---------------------------------------------------------------------------
# RL005 — no wall-clock reads
# ---------------------------------------------------------------------------


class TestRL005WallClock:
    def test_time_time_flagged(self, tmp_path: Path) -> None:
        violations = lint_source(
            tmp_path,
            """
            import time

            def stamp():
                return time.time()
            """,
            select=["RL005"],
        )
        assert codes(violations) == {"RL005"}
        assert "perf_counter" in violations[0].message

    def test_datetime_now_flagged(self, tmp_path: Path) -> None:
        violations = lint_source(
            tmp_path,
            """
            from datetime import datetime

            def stamp():
                return datetime.now()
            """,
            select=["RL005"],
        )
        assert codes(violations) == {"RL005"}

    def test_monotonic_clocks_clean(self, tmp_path: Path) -> None:
        violations = lint_source(
            tmp_path,
            """
            import time

            def measure():
                start = time.perf_counter()
                mono = time.monotonic()
                cpu = time.process_time()
                return time.perf_counter() - start, mono, cpu
            """,
            select=["RL005"],
        )
        assert violations == []


# ---------------------------------------------------------------------------
# RL006 — experiment-registry hygiene
# ---------------------------------------------------------------------------

_EXPERIMENT_MODULE = """
PAPER_REFERENCE = "Section 4"

def run_demo(scale=1.0):
    return None
"""

_REGISTRY_TEMPLATE = """
import demo
from repro.experiments.registry import ExperimentSpec

SPECS = [
{entries}
]
"""


class TestRL006Registry:
    def _write_tree(self, tmp_path: Path, registry_entries: list[str] | None) -> Path:
        experiments = tmp_path / "experiments"
        experiments.mkdir()
        (experiments / "demo.py").write_text(
            textwrap.dedent(_EXPERIMENT_MODULE), encoding="utf-8"
        )
        if registry_entries is not None:
            body = "\n".join(f"    {entry}," for entry in registry_entries)
            (experiments / "registry.py").write_text(
                textwrap.dedent(_REGISTRY_TEMPLATE).format(entries=body),
                encoding="utf-8",
            )
        return experiments

    def test_unregistered_experiment_module_flagged(self, tmp_path: Path) -> None:
        experiments = self._write_tree(tmp_path, registry_entries=[])
        violations = lint_paths([experiments], select=["RL006"])
        assert codes(violations) == {"RL006"}
        assert "not registered" in violations[0].message

    def test_double_registration_flagged(self, tmp_path: Path) -> None:
        entry = 'ExperimentSpec(name="demo", runner=demo.run_demo)'
        experiments = self._write_tree(tmp_path, registry_entries=[entry, entry])
        violations = lint_paths([experiments], select=["RL006"])
        assert codes(violations) == {"RL006"}
        assert "2 times" in violations[0].message

    def test_missing_registry_flagged(self, tmp_path: Path) -> None:
        experiments = self._write_tree(tmp_path, registry_entries=None)
        violations = lint_paths([experiments], select=["RL006"])
        assert codes(violations) == {"RL006"}
        assert "no experiments/registry.py" in violations[0].message

    def test_single_registration_clean(self, tmp_path: Path) -> None:
        experiments = self._write_tree(
            tmp_path,
            registry_entries=['ExperimentSpec(name="demo", runner=demo.run_demo)'],
        )
        violations = lint_paths([experiments], select=["RL006"])
        assert violations == []

    def test_with_scale_without_factor_validation_flagged(self, tmp_path: Path) -> None:
        violations = lint_source(
            tmp_path,
            """
            from dataclasses import replace

            class Config:
                def with_scale(self, factor):
                    return replace(self, replicas=int(self.replicas * factor))
            """,
            select=["RL006"],
        )
        assert codes(violations) == {"RL006"}
        assert "validates" in violations[0].message

    def test_with_scale_division_by_factor_flagged(self, tmp_path: Path) -> None:
        violations = lint_source(
            tmp_path,
            """
            from dataclasses import replace

            class Config:
                def with_scale(self, factor):
                    if not 0.0 < factor <= 1.0:
                        raise ValueError(factor)
                    return replace(self, replicas=int(self.replicas / factor))
            """,
            select=["RL006"],
        )
        assert codes(violations) == {"RL006"}
        assert "widens" in violations[0].message

    def test_with_scale_literal_widening_flagged(self, tmp_path: Path) -> None:
        violations = lint_source(
            tmp_path,
            """
            from dataclasses import replace

            class Config:
                def with_scale(self, factor):
                    if not 0.0 < factor <= 1.0:
                        raise ValueError(factor)
                    return replace(self, replicas=int(self.replicas * factor * 4))
            """,
            select=["RL006"],
        )
        assert codes(violations) == {"RL006"}
        assert "literal 4" in violations[0].message

    def test_with_scale_ignoring_factor_flagged(self, tmp_path: Path) -> None:
        violations = lint_source(
            tmp_path,
            """
            from dataclasses import replace

            class Config:
                def with_scale(self, factor):
                    if not 0.0 < factor <= 1.0:
                        raise ValueError(factor)
                    return replace(self, replicas=self.replicas)
            """,
            select=["RL006"],
        )
        assert codes(violations) == {"RL006"}
        assert "ignores `factor`" in violations[0].message

    def test_shrinking_with_scale_clean(self, tmp_path: Path) -> None:
        violations = lint_source(
            tmp_path,
            """
            from dataclasses import replace

            class Config:
                def with_scale(self, factor):
                    if not 0.0 < factor <= 1.0:
                        raise ValueError(factor)
                    replicas = max(1, int(self.replicas * factor))
                    return replace(self, replicas=replicas)
            """,
            select=["RL006"],
        )
        assert violations == []


# ---------------------------------------------------------------------------
# Engine: pragmas, markers, selection, rendering
# ---------------------------------------------------------------------------


class TestEngine:
    def test_inline_pragma_suppresses_violation(self, tmp_path: Path) -> None:
        violations = lint_source(
            tmp_path,
            """
            import time

            def stamp():
                return time.time()  # repro-lint: disable=RL005
            """,
            select=["RL005"],
        )
        assert violations == []

    def test_pragma_with_multiple_codes(self, tmp_path: Path) -> None:
        violations = lint_source(
            tmp_path,
            """
            import time
            import numpy as np

            def stamp():
                return np.random.default_rng(time.time())  # repro-lint: disable=RL001,RL005
            """,
            select=["RL001", "RL005"],
        )
        assert violations == []

    def test_pragma_does_not_leak_to_other_lines(self, tmp_path: Path) -> None:
        violations = lint_source(
            tmp_path,
            """
            import time

            def stamp():
                first = time.time()  # repro-lint: disable=RL005
                return first + time.time()
            """,
            select=["RL005"],
        )
        assert len(violations) == 1

    def test_unknown_select_code_raises(self, tmp_path: Path) -> None:
        target = tmp_path / "mod.py"
        target.write_text("x = 1\n", encoding="utf-8")
        with pytest.raises(ValueError, match="RL999"):
            lint_paths([target], select=["RL999"])

    def test_violation_render_format(self) -> None:
        violation = Violation(code="RL001", path="src/x.py", line=7, message="boom")
        assert violation.render() == "src/x.py:7: RL001 boom"

    def test_zero_draw_marker_parsing(self, tmp_path: Path) -> None:
        target = tmp_path / "mod.py"
        target.write_text(
            textwrap.dedent(
                """
                # repro: zero-draw(rate)
                def draw(rng):
                    return None

                # repro: zero-draw
                def constant(rng):
                    return 1.0
                """
            ),
            encoding="utf-8",
        )
        context = load_file_context(target)
        guards = {marker.guard for marker in context.zero_draw_markers.values()}
        assert guards == {"rate", None}

    def test_all_rules_have_unique_codes_and_summaries(self) -> None:
        rule_codes = [rule.code for rule in ALL_RULES]
        assert sorted(rule_codes) == ["RL001", "RL002", "RL003", "RL004", "RL005", "RL006"]
        assert len(set(rule_codes)) == len(rule_codes)
        assert all(rule.summary for rule in ALL_RULES)


# ---------------------------------------------------------------------------
# CLI and live tree
# ---------------------------------------------------------------------------


def run_lint_cli(*args: str) -> subprocess.CompletedProcess[str]:
    return subprocess.run(
        [sys.executable, "-m", "tools.lint", *args],
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
        timeout=300,
    )


class TestCli:
    def test_live_tree_is_clean(self) -> None:
        """Acceptance criterion: the repository itself passes repro-lint."""
        result = run_lint_cli("src", "benchmarks")
        assert result.returncode == 0, result.stdout + result.stderr

    def test_broken_invariant_fails_the_run(self, tmp_path: Path) -> None:
        """Acceptance criterion: deliberately breaking an invariant fails lint."""
        bad = tmp_path / "bad.py"
        bad.write_text(
            "import numpy as np\n\n\ndef sample(n):\n    return np.random.rand(n)\n",
            encoding="utf-8",
        )
        result = run_lint_cli(str(bad))
        assert result.returncode == 1
        assert "RL001" in result.stdout
        assert "violation" in result.stderr

    def test_list_rules(self) -> None:
        result = run_lint_cli("--list-rules")
        assert result.returncode == 0
        for code in ("RL001", "RL002", "RL003", "RL004", "RL005", "RL006"):
            assert code in result.stdout

    def test_select_restricts_rules(self, tmp_path: Path) -> None:
        bad = tmp_path / "bad.py"
        bad.write_text("import time\n\nstamp = time.time()\n", encoding="utf-8")
        clean_for_rl001 = run_lint_cli(str(bad), "--select", "RL001")
        assert clean_for_rl001.returncode == 0
        flagged = run_lint_cli(str(bad), "--select", "RL005")
        assert flagged.returncode == 1

    def test_missing_path_is_usage_error(self) -> None:
        result = run_lint_cli("no/such/path")
        assert result.returncode == 2

    def test_unknown_rule_code_is_usage_error(self, tmp_path: Path) -> None:
        target = tmp_path / "mod.py"
        target.write_text("x = 1\n", encoding="utf-8")
        result = run_lint_cli(str(target), "--select", "RL999")
        assert result.returncode == 2

    def test_unparseable_file_is_usage_error(self, tmp_path: Path) -> None:
        target = tmp_path / "broken.py"
        target.write_text("def broken(:\n", encoding="utf-8")
        result = run_lint_cli(str(target))
        assert result.returncode == 2


@pytest.mark.skipif(shutil.which("mypy") is None, reason="mypy not installed")
def test_mypy_strict_gate() -> None:
    """The strict-typing gate holds whenever mypy is available (always in CI)."""
    result = subprocess.run(
        ["mypy", "--strict", "src/repro"],
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert result.returncode == 0, result.stdout + result.stderr

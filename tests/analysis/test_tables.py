"""Unit tests for table rendering of experiment results."""

from __future__ import annotations

import numpy as np

from repro.analysis.compare import compare_sweep
from repro.analysis.sweep import distribution_ablation
from repro.analysis.tables import (
    comparison_to_table,
    distribution_sweep_to_table,
    pmf_to_table,
    sweep_to_table,
)
from repro.core.distributions import PoissonFanout
from repro.simulation.metrics import build_success_count_result
from repro.simulation.runner import reliability_sweep


class TestTableRendering:
    def test_sweep_table_has_header_and_rows(self):
        sweep = reliability_sweep(100, fanouts=[2.0, 4.0], qs=[0.8], repetitions=2, seed=1)
        table = sweep_to_table(sweep)
        lines = table.splitlines()
        assert "mean_fanout" in lines[0]
        assert len(lines) == 2 + len(sweep.points)

    def test_comparison_table(self):
        sweep = reliability_sweep(100, fanouts=[2.0, 4.0], qs=[0.8], repetitions=2, seed=2)
        table = comparison_to_table(compare_sweep(sweep))
        assert "mae" in table.splitlines()[0]
        assert len(table.splitlines()) == 3

    def test_pmf_table(self):
        counts = np.array([4, 5, 5, 3])
        result = build_success_count_result(counts, executions=5, analytical_reliability=0.9)
        table = pmf_to_table(result)
        lines = table.splitlines()
        assert len(lines) == 2 + 6  # header, separator, k = 0..5
        assert "binomial" in lines[0]

    def test_distribution_sweep_table(self):
        sweep = distribution_ablation(
            100,
            3.0,
            qs=[0.8],
            families={"poisson": PoissonFanout(3.0)},
            repetitions=2,
            seed=3,
        )
        table = distribution_sweep_to_table(sweep)
        assert "family" in table.splitlines()[0]
        assert "poisson" in table

"""Unit tests for analysis-vs-simulation comparison utilities."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.analysis.compare import compare_series, compare_sweep, threshold_crossing
from repro.simulation.runner import reliability_sweep


class TestThresholdCrossing:
    def test_basic_crossing(self):
        assert threshold_crossing([1, 2, 3, 4], [0.0, 0.2, 0.6, 0.9], 0.5) == 3

    def test_never_crossed(self):
        assert math.isnan(threshold_crossing([1, 2], [0.1, 0.2], 0.5))

    def test_crossed_at_first_point(self):
        assert threshold_crossing([1, 2], [0.7, 0.9], 0.5) == 1

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            threshold_crossing([1, 2, 3], [0.1, 0.2], 0.5)


class TestCompareSeries:
    def test_identical_series_have_zero_error(self):
        xs = [1.0, 2.0, 3.0]
        ys = [0.1, 0.5, 0.9]
        c = compare_series(xs, ys, ys)
        assert c.mean_absolute_error == 0.0
        assert c.max_absolute_error == 0.0
        assert c.rmse == 0.0
        assert c.threshold_gap() == 0.0

    def test_error_metrics_values(self):
        c = compare_series([1, 2], [0.0, 1.0], [0.5, 0.5])
        assert c.mean_absolute_error == pytest.approx(0.5)
        assert c.max_absolute_error == pytest.approx(0.5)
        assert c.rmse == pytest.approx(0.5)

    def test_threshold_gap_nan_when_not_crossed(self):
        c = compare_series([1, 2], [0.1, 0.2], [0.6, 0.9])
        assert math.isnan(c.threshold_gap())

    def test_empty_series_rejected(self):
        with pytest.raises(ValueError):
            compare_series([], [], [])

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            compare_series([1, 2], [0.1], [0.2, 0.3])


class TestCompareSweep:
    def test_per_q_comparisons(self):
        sweep = reliability_sweep(
            500,
            fanouts=[1.0, 2.0, 4.0, 6.0],
            qs=[0.5, 0.9],
            repetitions=5,
            seed=1,
            conditional_on_spread=True,
        )
        comparisons = compare_sweep(sweep)
        assert set(comparisons) == {0.5, 0.9}
        for c in comparisons.values():
            assert c.xs.shape == (4,)
            assert c.mean_absolute_error <= c.max_absolute_error + 1e-12
            assert 0.0 <= c.mean_absolute_error <= 1.0

    def test_thresholds_near_critical_fanout(self):
        sweep = reliability_sweep(
            2000,
            fanouts=np.arange(0.5, 6.6, 0.5),
            qs=[1.0],
            repetitions=6,
            seed=2,
            conditional_on_spread=True,
        )
        comparison = compare_sweep(sweep, threshold_level=0.5)[1.0]
        # For q=1 the 0.5-reliability level is crossed a bit above the
        # critical fanout of 1; analysis and simulation should agree closely.
        assert comparison.analytical_threshold == pytest.approx(2.0, abs=0.6)
        assert comparison.threshold_gap() <= 1.0

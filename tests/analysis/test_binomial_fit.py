"""Unit tests for the Binomial goodness-of-fit utilities."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.binomial_fit import chi_square_binomial_test, fit_binomial


class TestFitBinomial:
    def test_mle_estimate(self):
        counts = np.array([8, 9, 10, 7, 6])
        fit = fit_binomial(counts, executions=10, reference_probability=0.8)
        assert fit.estimated_probability == pytest.approx(np.mean(counts) / 10)
        assert fit.absolute_difference == pytest.approx(abs(fit.estimated_probability - 0.8))

    def test_perfect_counts(self):
        fit = fit_binomial(np.full(20, 10), executions=10, reference_probability=1.0)
        assert fit.estimated_probability == 1.0
        assert fit.absolute_difference == 0.0

    def test_empty_counts_rejected(self):
        with pytest.raises(ValueError):
            fit_binomial(np.array([]), executions=10, reference_probability=0.5)

    def test_out_of_range_counts_rejected(self):
        with pytest.raises(ValueError):
            fit_binomial(np.array([11]), executions=10, reference_probability=0.5)

    def test_invalid_reference(self):
        with pytest.raises(ValueError):
            fit_binomial(np.array([5]), executions=10, reference_probability=1.5)


class TestChiSquare:
    def test_binomial_samples_not_rejected(self):
        rng = np.random.default_rng(1)
        counts = rng.binomial(20, 0.95, size=300)
        result = chi_square_binomial_test(counts, executions=20, probability=0.95)
        assert result.p_value > 0.01
        assert not result.rejects_at(0.01)
        assert result.degrees_of_freedom == result.pooled_bins - 1

    def test_wrong_probability_rejected(self):
        rng = np.random.default_rng(2)
        counts = rng.binomial(20, 0.5, size=300)
        result = chi_square_binomial_test(counts, executions=20, probability=0.95)
        assert result.rejects_at(0.05)

    def test_degenerate_pooling(self):
        # Tiny sample: everything pools into very few bins but the call succeeds.
        counts = np.array([20, 20, 19])
        result = chi_square_binomial_test(counts, executions=20, probability=0.99)
        assert result.pooled_bins >= 1
        assert 0.0 <= result.p_value <= 1.0

    def test_statistic_non_negative(self):
        rng = np.random.default_rng(3)
        counts = rng.binomial(10, 0.7, size=100)
        result = chi_square_binomial_test(counts, executions=10, probability=0.7)
        assert result.statistic >= 0.0

    def test_invalid_counts(self):
        with pytest.raises(ValueError):
            chi_square_binomial_test(np.array([]), executions=10, probability=0.5)
        with pytest.raises(ValueError):
            chi_square_binomial_test(np.array([-1]), executions=10, probability=0.5)
